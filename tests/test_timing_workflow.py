"""Tests for timing helpers, move-timing model and workflow budgets.

Includes the cross-checks that keep the analytic hardware budgets
(:mod:`repro.workflow.system`) and the measured pipeline stage reports
(:mod:`repro.timing.latency`) on one stage vocabulary and one unit, so
``StageReport.compare_to_budget`` stays a like-for-like table.
"""

from __future__ import annotations

import pytest

from repro.aod.move import LineShift, ParallelMove
from repro.aod.schedule import MoveSchedule
from repro.aod.timing import DEFAULT_MOVE_TIMING, MoveTimingModel
from repro.errors import ConfigurationError
from repro.lattice.geometry import Direction
from repro.timing.latency import (
    BUDGETED_STAGES,
    PIPELINE_STAGES,
    LatencyComparison,
    StageReport,
    cycles_to_us,
    measure_best_of,
    measure_wall,
    us_to_cycles,
)
from repro.workflow.links import AXI_DDR, COAXPRESS_12, GIGE, LinkModel
from repro.workflow.system import (
    architecture_a_budget,
    architecture_b_budget,
    compare_architectures,
)


class TestLatencyHelpers:
    def test_cycles_to_us(self):
        assert cycles_to_us(250, 250.0) == 1.0
        assert us_to_cycles(2.0, 250.0) == 500

    def test_invalid_clock(self):
        with pytest.raises(ConfigurationError):
            cycles_to_us(1, 0)
        with pytest.raises(ConfigurationError):
            us_to_cycles(1, -1)

    def test_measure_wall(self):
        result, elapsed = measure_wall(lambda: 42)
        assert result == 42
        assert elapsed >= 0

    def test_measure_best_of(self):
        result, best = measure_best_of(lambda: "ok", repeats=3)
        assert result == "ok"
        assert best >= 0

    def test_measure_best_of_validation(self):
        with pytest.raises(ConfigurationError):
            measure_best_of(lambda: 1, repeats=0)

    def test_latency_comparison_speedups(self):
        row = LatencyComparison(
            size=50, fpga_us=2.0, cpu_model_us=54.0, cpu_measured_us=100.0
        )
        assert row.speedup_model == pytest.approx(27.0)
        assert row.speedup_measured == pytest.approx(50.0)


class TestMoveTiming:
    def test_move_duration(self):
        timing = MoveTimingModel(
            pickup_us=100, drop_us=100, transfer_us_per_site=10, settle_us=5
        )
        move = ParallelMove.of([LineShift(Direction.EAST, 0, 0, 3, steps=4)])
        assert timing.move_duration_us(move) == 100 + 40 + 100

    def test_schedule_motion_time(self, geo8):
        timing = MoveTimingModel(
            pickup_us=10, drop_us=10, transfer_us_per_site=1, settle_us=2
        )
        schedule = MoveSchedule(geo8)
        move = ParallelMove.of([LineShift(Direction.EAST, 0, 0, 2)])
        schedule.append(move)
        schedule.append(move)
        assert timing.schedule_motion_us(schedule) == 21 + 21 + 2

    def test_empty_schedule_zero(self, geo8):
        assert DEFAULT_MOVE_TIMING.schedule_motion_us(MoveSchedule(geo8)) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MoveTimingModel(pickup_us=-1)


class TestLinks:
    def test_transfer_time_includes_latency(self):
        link = LinkModel("test", bandwidth_gbps=1.0, latency_us=10.0)
        # 1 Gbps = 1000 bits/us.
        assert link.transfer_us(1000) == pytest.approx(11.0)

    def test_zero_bits_is_latency(self):
        assert GIGE.transfer_us(0) == GIGE.latency_us

    def test_faster_link_faster(self):
        bits = 1_000_000
        assert AXI_DDR.transfer_us(bits) < COAXPRESS_12.transfer_us(bits)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinkModel("bad", bandwidth_gbps=0, latency_us=0)
        with pytest.raises(ConfigurationError):
            COAXPRESS_12.transfer_us(-1)


class TestArchitectureBudgets:
    def test_architecture_b_faster(self):
        budgets = compare_architectures(50, fpga_analysis_us=1.6)
        assert budgets["b"].total_us < budgets["a"].total_us

    def test_architecture_a_dominated_by_host_path(self):
        budget = architecture_a_budget(50)
        host_items = [item for item in budget.items if "host" in item.stage]
        assert sum(i.time_us for i in host_items) > budget.total_us / 2

    def test_architecture_b_analysis_is_minor(self):
        budget = architecture_b_budget(50, fpga_analysis_us=1.6)
        analysis = next(i for i in budget.items if "analysis" in i.stage)
        assert analysis.time_us < 0.1 * budget.total_us

    def test_budget_formatting(self):
        budget = architecture_b_budget(20, fpga_analysis_us=1.0)
        text = budget.format()
        assert "total" in text
        assert "QRM accelerator analysis" in text

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            architecture_a_budget(1)
        with pytest.raises(ConfigurationError):
            architecture_b_budget(0, 1.0)

    def test_budgets_scale_with_size(self):
        small = architecture_a_budget(20).total_us
        large = architecture_a_budget(90).total_us
        assert large > small


class TestBudgetStageVocabulary:
    """Budgets and measured stage reports must share one vocabulary."""

    @staticmethod
    def budgets():
        return (
            architecture_a_budget(20),
            architecture_b_budget(20, fpga_analysis_us=1.6),
        )

    def test_every_budget_item_has_canonical_key(self):
        for budget in self.budgets():
            for item in budget.items:
                assert item.key in PIPELINE_STAGES, (
                    f"budget row {item.stage!r} has non-canonical "
                    f"key {item.key!r}"
                )

    def test_stage_totals_cover_only_budgeted_stages(self):
        # `replay` is physical motion, not control latency: no budget
        # row may claim it, and the totals must account for every row.
        for budget in self.budgets():
            totals = budget.stage_totals()
            assert set(totals) <= set(BUDGETED_STAGES)
            assert sum(totals.values()) == pytest.approx(budget.total_us)

    def test_stage_totals_follow_data_path_order(self):
        for budget in self.budgets():
            keys = list(budget.stage_totals())
            assert keys == [k for k in PIPELINE_STAGES if k in keys]

    def test_compare_to_budget_joins_on_shared_keys(self):
        report = StageReport()
        for stage in PIPELINE_STAGES:
            report.record(stage, 100.0)
        budget = architecture_b_budget(20, fpga_analysis_us=1.6)
        table = report.compare_to_budget(budget.stage_totals(), "unit budget")
        for key in BUDGETED_STAGES:
            assert key in table
        assert "replay" not in table
