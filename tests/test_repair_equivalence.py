"""Repair stage: vectorised == reference, plus routing invariants.

The vectorised :func:`repro.core.repair.repair_defects` must emit
exactly the moves of :func:`repair_defects_reference` (same legs, tags,
order, counters, final grid), and both must satisfy the physical
routing invariants: an atom is only ever transported through empty
sites, the move budget is respected, and replaying the emitted moves
through the executor reproduces the in-place outcome grid.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from oracles import assert_repair_outcomes_identical, atom_arrays

from repro.aod.executor import apply_parallel_move_reference
from repro.core.qrm import QrmScheduler
from repro.core.repair import repair_defects, repair_defects_reference
from repro.lattice.array import AtomArray


@st.composite
def repair_cases(draw):
    """An array (optionally pre-compacted by QRM) plus a move budget.

    Running QRM first produces the realistic post-compaction defect
    patterns the repair stage exists for; the raw-array half of the
    distribution keeps pathological loadings in play.
    """
    array = draw(atom_arrays())
    if draw(st.booleans()):
        array = QrmScheduler(array.geometry).schedule(array).final
    max_moves = draw(st.sampled_from([1, 2, 5, 4096]))
    return array, max_moves


@given(repair_cases())
@settings(max_examples=60, deadline=None)
def test_vectorized_repair_bit_identical(case):
    array, max_moves = case
    ours = array.copy()
    theirs = array.copy()
    outcome = repair_defects(ours, max_moves=max_moves)
    expected = repair_defects_reference(theirs, max_moves=max_moves)
    assert_repair_outcomes_identical(outcome, expected)
    assert np.array_equal(ours.grid, theirs.grid)


@given(repair_cases())
@settings(max_examples=60, deadline=None)
def test_repair_never_moves_through_occupied_sites(case):
    array, max_moves = case
    work = array.copy()
    outcome = repair_defects(work, max_moves=max_moves)

    # Replay every leg from the initial state; each must depart from an
    # occupied site and sweep only empty sites (destination included).
    replay = array.copy()
    for move in outcome.moves:
        assert len(move.shifts) == 1
        shift = move.shifts[0]
        (site,) = shift.sites()
        assert replay.grid[site], f"leg departs from empty site {site}"
        dr, dc = shift.direction.delta
        for step in range(1, shift.steps + 1):
            swept = (site[0] + dr * step, site[1] + dc * step)
            assert not replay.grid[swept], (
                f"leg from {site} sweeps occupied site {swept}"
            )
        apply_parallel_move_reference(replay.grid, move)
    # The executor replay must land on the in-place outcome grid.
    assert np.array_equal(replay.grid, work.grid)


@given(repair_cases())
@settings(max_examples=60, deadline=None)
def test_repair_respects_budget_and_accounts_every_defect(case):
    array, max_moves = case
    n_defects = len(array.target_defects())
    n_atoms = array.n_atoms
    work = array.copy()
    outcome = repair_defects(work, max_moves=max_moves)

    # Every initial defect is either filled or explicitly unresolved.
    assert outcome.filled + outcome.unresolved == n_defects
    # Each routed defect costs one or two legs; the budget check happens
    # before routing, so it can be exceeded by at most one leg.
    assert outcome.filled <= len(outcome.moves) <= 2 * outcome.filled
    assert len(outcome.moves) <= max_moves + 1
    # Repair transports atoms, never creates or destroys them, and the
    # target fill grows by exactly the filled count.
    assert work.n_atoms == n_atoms
    assert work.target_count() == array.target_count() + outcome.filled


def test_repair_zero_budget_resolves_nothing(geo8):
    array = AtomArray.full(geo8)
    array.set_site(0, 0, False)
    array.grid[3, 3] = False
    outcome = repair_defects(array, max_moves=0)
    assert outcome.moves == []
    assert outcome.filled == 0
    assert outcome.unresolved == 1
