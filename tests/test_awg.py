"""Tests for the AWG tone maps, segments and schedule compiler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aod.move import LineShift, ParallelMove
from repro.aod.schedule import MoveSchedule
from repro.aod.timing import MoveTimingModel
from repro.awg.compiler import compile_move, compile_schedule
from repro.awg.tones import AodToneConfig, ToneMap
from repro.awg.waveform import Segment, Tone, WaveformProgram
from repro.errors import WaveformError
from repro.lattice.geometry import Direction


class TestToneMap:
    def test_linear_map(self):
        tones = ToneMap(base_mhz=100.0, spacing_mhz=0.5)
        assert tones.frequency(0) == 100.0
        assert tones.frequency(10) == 105.0

    def test_inverse(self):
        tones = ToneMap(base_mhz=100.0, spacing_mhz=0.5)
        assert tones.index_of(102.5) == 5
        assert tones.index_of(102.6) == 5  # nearest

    def test_out_of_range(self):
        tones = ToneMap(n_sites=4)
        with pytest.raises(WaveformError):
            tones.frequency(4)
        with pytest.raises(WaveformError):
            tones.index_of(tones.base_mhz - 10)

    def test_validation(self):
        with pytest.raises(WaveformError):
            ToneMap(spacing_mhz=0)
        with pytest.raises(WaveformError):
            ToneMap(n_sites=0)


class TestSegment:
    def test_sample_count(self):
        segment = Segment("s", duration_us=2.0, tones=(Tone(100, 100),))
        assert segment.n_samples(sample_rate_msps=500.0) == 1000

    def test_static_tone_is_pure_sine(self):
        segment = Segment("s", duration_us=1.0, tones=(Tone(10.0, 10.0),))
        samples = segment.synthesize(sample_rate_msps=1000.0)
        t = np.arange(samples.size) / 1000.0
        expected = np.sin(2 * np.pi * 10.0 * t)
        assert np.allclose(samples, expected, atol=1e-9)

    def test_chirp_ends_at_target_frequency(self):
        # Instantaneous frequency of the chirp at the end equals f1:
        # check by comparing the phase derivative numerically.
        segment = Segment("s", duration_us=10.0, tones=(Tone(10.0, 20.0),))
        rate = 2000.0
        samples = segment.synthesize(sample_rate_msps=rate)
        # Simpler check: the analytic phase formula at t=T gives the
        # mid-frequency sweep: phi(T) = 2*pi*(f0*T + (f1-f0)*T/2).
        assert samples.size == int(10.0 * rate)

    def test_amplitude_envelope(self):
        segment = Segment(
            "s",
            duration_us=1.0,
            tones=(Tone(5.0, 5.0),),
            amplitude_start=0.0,
            amplitude_end=1.0,
        )
        samples = segment.synthesize(sample_rate_msps=1000.0)
        first_half = np.abs(samples[:400]).max()
        second_half = np.abs(samples[600:]).max()
        assert second_half > first_half

    def test_multi_tone_normalised(self):
        tones = tuple(Tone(float(f), float(f)) for f in (10, 20, 30))
        segment = Segment("s", duration_us=1.0, tones=tones)
        samples = segment.synthesize(sample_rate_msps=500.0)
        assert np.abs(samples).max() <= 1.0 + 1e-9

    def test_validation(self):
        with pytest.raises(WaveformError):
            Segment("s", duration_us=0.0, tones=())
        with pytest.raises(WaveformError):
            Segment("s", duration_us=1.0, tones=(), amplitude_start=2.0)


class TestCompiler:
    def _move(self, direction=Direction.EAST, steps=1):
        return ParallelMove.of(
            [
                LineShift(direction, 2, span_start=1, span_stop=4, steps=steps),
                LineShift(direction, 5, span_start=1, span_stop=4, steps=steps),
            ]
        )

    def test_three_segments_per_move(self):
        segments = compile_move(self._move(), AodToneConfig())
        assert [s.label.split(".")[-1] for s in segments] == [
            "pickup",
            "transport",
            "drop",
        ]

    def test_durations_match_timing_model(self, geo8):
        timing = MoveTimingModel(
            pickup_us=100.0,
            drop_us=50.0,
            transfer_us_per_site=10.0,
            settle_us=5.0,
        )
        schedule = MoveSchedule(geo8)
        schedule.append(self._move())
        schedule.append(self._move(Direction.WEST))
        program = compile_schedule(schedule, timing=timing)
        expected = timing.schedule_motion_us(schedule)
        assert program.total_duration_us == pytest.approx(expected)

    def test_transport_chirps_moving_axis(self):
        tones = AodToneConfig()
        segments = compile_move(self._move(Direction.EAST, steps=2), tones)
        transport = segments[1]
        chirped = [t for t in transport.tones if not t.is_static]
        static = [t for t in transport.tones if t.is_static]
        assert len(chirped) == 3  # the three selected columns
        assert len(static) == 2  # the two selected rows
        for tone in chirped:
            delta = tone.end_mhz - tone.start_mhz
            assert delta == pytest.approx(2 * tones.cols.spacing_mhz)

    def test_westward_move_chirps_down(self):
        tones = AodToneConfig()
        segments = compile_move(self._move(Direction.WEST), tones)
        chirped = [t for t in segments[1].tones if not t.is_static]
        assert all(t.end_mhz < t.start_mhz for t in chirped)

    def test_vertical_move_chirps_rows(self):
        move = ParallelMove.of(
            [LineShift(Direction.SOUTH, 3, span_start=0, span_stop=2)]
        )
        tones = AodToneConfig()
        segments = compile_move(move, tones)
        chirped = [t for t in segments[1].tones if not t.is_static]
        assert len(chirped) == 2  # the two selected rows chirp

    def test_program_synthesis_length(self, geo8):
        schedule = MoveSchedule(geo8)
        schedule.append(self._move())
        timing = MoveTimingModel(
            pickup_us=1.0, drop_us=1.0, transfer_us_per_site=1.0, settle_us=0.0
        )
        program = compile_schedule(schedule, timing=timing)
        rate = 100.0
        samples = program.synthesize(sample_rate_msps=rate)
        assert samples.size == program.n_samples(rate)

    def test_empty_schedule(self, geo8):
        program = compile_schedule(MoveSchedule(geo8))
        assert len(program) == 0
        assert program.total_duration_us == 0.0
        assert program.synthesize().size == 0


class TestWaveformProgram:
    def test_append_extend(self):
        program = WaveformProgram()
        seg = Segment("a", 1.0, ())
        program.append(seg)
        program.extend([seg, seg])
        assert len(program) == 3
        assert program.total_duration_us == 3.0
