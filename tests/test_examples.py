"""Smoke tests: every example script runs end to end."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run_example(monkeypatch, capsys, name: str, argv: list[str]) -> str:
    monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = _run_example(
        monkeypatch, capsys, "quickstart.py", ["--size", "12", "--seed", "1"]
    )
    assert "qrm" in out
    assert "cycles" in out


def test_full_workflow(monkeypatch, capsys):
    out = _run_example(
        monkeypatch, capsys, "full_workflow.py", ["--size", "12", "--seed", "2"]
    )
    assert "[detect]" in out
    assert "[awg]" in out
    assert "faster" in out


def test_algorithm_comparison(monkeypatch, capsys):
    out = _run_example(
        monkeypatch,
        capsys,
        "algorithm_comparison.py",
        ["--size", "12", "--trials", "1"],
    )
    assert "mta1" in out
    assert "target fill" in out


def test_scalability_study(monkeypatch, capsys):
    out = _run_example(
        monkeypatch, capsys, "scalability_study.py", ["--sizes", "10", "20"]
    )
    assert "Fig 7a" in out
    assert "Fig 8" in out


def test_fpga_cycle_trace(monkeypatch, capsys):
    out = _run_example(monkeypatch, capsys, "fpga_cycle_trace.py", ["--size", "10"])
    assert "Fig 6(a)" in out
    assert "column stream" in out


def test_feasibility_study(monkeypatch, capsys):
    out = _run_example(
        monkeypatch,
        capsys,
        "feasibility_study.py",
        ["--size", "20", "--trials", "1"],
    )
    assert "predicted fill" in out
    assert "loss model" in out


ALL_EXAMPLES = [
    "quickstart.py",
    "full_workflow.py",
    "algorithm_comparison.py",
    "scalability_study.py",
    "fpga_cycle_trace.py",
    "feasibility_study.py",
]


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert set(ALL_EXAMPLES) <= names


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_examples_have_docstrings(name):
    text = (EXAMPLES / name).read_text()
    assert text.startswith('"""')
