"""Unit tests for repro.aod.schedule and repro.aod.validator."""

from __future__ import annotations

import pytest

from repro.aod.move import LineShift, ParallelMove
from repro.aod.schedule import MoveSchedule
from repro.aod.validator import require_valid, validate_schedule
from repro.errors import ScheduleValidationError
from repro.lattice.array import AtomArray
from repro.lattice.geometry import Direction


def _east(line, start, stop):
    return ParallelMove.of([LineShift(Direction.EAST, line, start, stop)])


def _north(line, start, stop):
    return ParallelMove.of([LineShift(Direction.NORTH, line, start, stop)])


class TestMoveSchedule:
    def test_append_extend_iter(self, geo8):
        schedule = MoveSchedule(geo8, algorithm="t")
        schedule.append(_east(0, 0, 2))
        schedule.extend([_east(1, 0, 2), _north(0, 4, 6)])
        assert len(schedule) == 3
        assert schedule[0].direction is Direction.EAST
        assert [m.direction for m in schedule].count(Direction.NORTH) == 1

    def test_counters(self, geo8):
        schedule = MoveSchedule(geo8)
        schedule.append(
            ParallelMove.of(
                [
                    LineShift(Direction.EAST, 0, 0, 3),
                    LineShift(Direction.EAST, 1, 0, 3),
                ]
            )
        )
        assert schedule.n_line_shifts == 2
        assert schedule.total_steps == 1
        assert schedule.max_line_tones() == 2
        assert schedule.max_cross_tones() == 3

    def test_direction_histogram_complete(self, geo8):
        schedule = MoveSchedule(geo8)
        schedule.append(_east(0, 0, 2))
        hist = schedule.direction_histogram()
        assert set(hist) == set(Direction)
        assert hist[Direction.EAST] == 1
        assert hist[Direction.WEST] == 0

    def test_summary_text(self, geo8):
        schedule = MoveSchedule(geo8, algorithm="demo")
        schedule.append(_east(0, 0, 2))
        text = schedule.summary()
        assert "demo" in text
        assert "1 parallel moves" in text

    def test_empty_schedule_stats(self, geo8):
        schedule = MoveSchedule(geo8)
        assert schedule.max_line_tones() == 0
        assert schedule.total_steps == 0


class TestValidator:
    def test_clean_schedule_ok(self, geo8):
        array = AtomArray(geo8)
        array.set_site(0, 0, True)
        schedule = MoveSchedule(geo8, algorithm="ok")
        schedule.append(_east(0, 0, 2))
        report = validate_schedule(array, schedule)
        assert report.ok
        assert report.atoms_conserved
        assert report.n_moves == 1
        assert report.final_array.is_occupied(0, 1)

    def test_violating_schedule_reported(self, geo8):
        array = AtomArray(geo8)
        array.set_site(0, 0, True)
        array.set_site(0, 2, True)
        schedule = MoveSchedule(geo8, algorithm="bad")
        schedule.append(_east(0, 0, 2))
        report = validate_schedule(array, schedule)
        assert not report.ok
        assert report.violations
        assert report.atoms_conserved  # failed moves are skipped, not lost

    def test_defect_tracking(self, geo8):
        array = AtomArray.full(geo8)
        schedule = MoveSchedule(geo8, algorithm="noop")
        report = validate_schedule(array, schedule)
        assert report.defect_free
        assert report.initial_defects == 0

    def test_format_mentions_algorithm(self, geo8):
        schedule = MoveSchedule(geo8, algorithm="fmt")
        report = validate_schedule(AtomArray(geo8), schedule)
        assert "fmt" in report.format()

    def test_require_valid_passes(self, geo8):
        array = AtomArray(geo8)
        array.set_site(0, 0, True)
        schedule = MoveSchedule(geo8, algorithm="ok")
        schedule.append(_east(0, 0, 2))
        assert require_valid(array, schedule).ok

    def test_require_valid_raises(self, geo8):
        array = AtomArray(geo8)
        array.set_site(0, 0, True)
        array.set_site(0, 2, True)
        schedule = MoveSchedule(geo8, algorithm="bad")
        schedule.append(_east(0, 0, 2))
        with pytest.raises(ScheduleValidationError):
            require_valid(array, schedule)
