"""Unit tests for repro.lattice.geometry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.lattice.geometry import (
    ArrayGeometry,
    Direction,
    Quadrant,
    Region,
)


class TestDirection:
    def test_deltas_are_unit_steps(self):
        for direction in Direction:
            dr, dc = direction.delta
            assert abs(dr) + abs(dc) == 1

    def test_north_decreases_row(self):
        assert Direction.NORTH.delta == (-1, 0)

    def test_east_increases_col(self):
        assert Direction.EAST.delta == (0, 1)

    def test_opposites_are_involutions(self):
        for direction in Direction:
            assert direction.opposite.opposite is direction

    def test_horizontal_classification(self):
        assert Direction.EAST.is_horizontal
        assert Direction.WEST.is_horizontal
        assert not Direction.NORTH.is_horizontal
        assert not Direction.SOUTH.is_horizontal


class TestRegion:
    def test_sites_row_major(self):
        region = Region(1, 2, 2, 2)
        assert region.sites() == [(1, 2), (1, 3), (2, 2), (2, 3)]

    def test_contains_boundaries(self):
        region = Region(1, 1, 2, 3)
        assert region.contains(1, 1)
        assert region.contains(2, 3)
        assert not region.contains(3, 1)
        assert not region.contains(1, 4)
        assert not region.contains(0, 1)

    def test_n_sites(self):
        assert Region(0, 0, 3, 4).n_sites == 12

    def test_negative_side_rejected(self):
        with pytest.raises(GeometryError):
            Region(0, 0, -1, 2)

    def test_intersect_overlapping(self):
        a = Region(0, 0, 4, 4)
        b = Region(2, 2, 4, 4)
        inter = a.intersect(b)
        assert (inter.row0, inter.col0, inter.height, inter.width) == (2, 2, 2, 2)

    def test_intersect_disjoint_is_empty(self):
        a = Region(0, 0, 2, 2)
        b = Region(5, 5, 2, 2)
        assert a.intersect(b).n_sites == 0

    def test_slices(self):
        region = Region(1, 2, 3, 4)
        assert region.row_slice == slice(1, 4)
        assert region.col_slice == slice(2, 6)


class TestArrayGeometryValidation:
    def test_square_factory_default_target(self):
        geo = ArrayGeometry.square(50)
        assert geo.target_width == 30
        assert geo.target_height == 30

    def test_square_factory_small(self):
        geo = ArrayGeometry.square(4)
        assert geo.target_width == 2

    def test_odd_width_rejected(self):
        with pytest.raises(GeometryError):
            ArrayGeometry(width=9, height=8, target_width=4, target_height=4)

    def test_odd_target_rejected(self):
        with pytest.raises(GeometryError):
            ArrayGeometry(width=8, height=8, target_width=3, target_height=4)

    def test_zero_size_rejected(self):
        with pytest.raises(GeometryError):
            ArrayGeometry(width=0, height=8, target_width=0, target_height=4)

    def test_target_larger_than_array_rejected(self):
        with pytest.raises(GeometryError):
            ArrayGeometry(width=8, height=8, target_width=10, target_height=4)

    def test_target_region_centred(self):
        geo = ArrayGeometry.square(8, 4)
        target = geo.target_region
        assert (target.row0, target.col0) == (2, 2)
        assert (target.height, target.width) == (4, 4)

    def test_counts(self):
        geo = ArrayGeometry.square(10, 6)
        assert geo.n_sites == 100
        assert geo.n_target_sites == 36
        assert geo.half_width == 5
        assert geo.shape == (10, 10)

    def test_contains(self):
        geo = ArrayGeometry.square(8, 4)
        assert geo.contains(0, 0)
        assert geo.contains(7, 7)
        assert not geo.contains(8, 0)
        assert not geo.contains(0, -1)


class TestQuadrantFrames:
    @pytest.mark.parametrize("quadrant", list(Quadrant))
    def test_round_trip(self, quadrant):
        geo = ArrayGeometry.square(10, 6)
        frame = geo.quadrant_frame(quadrant)
        for u in range(frame.n_rows):
            for v in range(frame.n_cols):
                r, c = frame.to_full(u, v)
                assert frame.to_local(r, c) == (u, v)
                assert frame.region.contains(r, c)

    @pytest.mark.parametrize(
        "quadrant,corner",
        [
            (Quadrant.NW, (4, 4)),
            (Quadrant.NE, (4, 5)),
            (Quadrant.SW, (5, 4)),
            (Quadrant.SE, (5, 5)),
        ],
    )
    def test_local_origin_is_centre_adjacent_corner(self, quadrant, corner):
        geo = ArrayGeometry.square(10, 6)
        frame = geo.quadrant_frame(quadrant)
        assert frame.to_full(0, 0) == corner

    @pytest.mark.parametrize(
        "quadrant,horizontal,vertical",
        [
            (Quadrant.NW, Direction.EAST, Direction.SOUTH),
            (Quadrant.NE, Direction.WEST, Direction.SOUTH),
            (Quadrant.SW, Direction.EAST, Direction.NORTH),
            (Quadrant.SE, Direction.WEST, Direction.NORTH),
        ],
    )
    def test_inward_directions(self, quadrant, horizontal, vertical):
        geo = ArrayGeometry.square(10, 6)
        frame = geo.quadrant_frame(quadrant)
        assert frame.horizontal_inward is horizontal
        assert frame.vertical_inward is vertical

    def test_inward_moves_decrease_local_v(self):
        geo = ArrayGeometry.square(10, 6)
        for frame in geo.quadrant_frames():
            r, c = frame.to_full(2, 3)
            dr, dc = frame.horizontal_inward.delta
            u2, v2 = frame.to_local(r + dr, c + dc)
            assert (u2, v2) == (2, 2)

    def test_extract_insert_round_trip(self, rng):
        geo = ArrayGeometry.square(12, 6)
        grid = rng.random(geo.shape) < 0.5
        for frame in geo.quadrant_frames():
            copy = grid.copy()
            local = frame.extract(copy)
            frame.insert(copy, local)
            assert np.array_equal(copy, grid)

    def test_extract_orientation(self):
        geo = ArrayGeometry.square(4, 2)
        grid = np.zeros(geo.shape, dtype=bool)
        grid[1, 1] = True  # NW quadrant, centre-adjacent corner
        frame = geo.quadrant_frame(Quadrant.NW)
        local = frame.extract(grid)
        assert local[0, 0]
        assert local.sum() == 1

    def test_insert_shape_mismatch_raises(self):
        geo = ArrayGeometry.square(8, 4)
        frame = geo.quadrant_frame(Quadrant.SE)
        with pytest.raises(GeometryError):
            frame.insert(np.zeros(geo.shape, dtype=bool), np.zeros((2, 2)))

    def test_quadrant_regions_partition_array(self):
        geo = ArrayGeometry.square(8, 4)
        seen = set()
        for frame in geo.quadrant_frames():
            sites = set(frame.region.sites())
            assert not (seen & sites)
            seen |= sites
        assert len(seen) == geo.n_sites

    def test_quadrant_target_region_shares_target(self):
        geo = ArrayGeometry.square(8, 4)
        total = sum(geo.quadrant_target_region(q).n_sites for q in Quadrant)
        assert total == geo.n_target_sites
        for q in Quadrant:
            assert geo.quadrant_target_region(q).n_sites == 4

    def test_mirror_relations(self):
        assert Quadrant.NW.horizontal_mirror is Quadrant.SW
        assert Quadrant.NW.vertical_mirror is Quadrant.NE
        assert Quadrant.SE.horizontal_mirror is Quadrant.NE
        assert Quadrant.SE.vertical_mirror is Quadrant.SW
