"""Bit-identity of the vectorised pass against its reference oracles.

The vectorised :func:`repro.core.passes.run_pass` must emit exactly the
schedule of the per-command :func:`run_pass_reference` (and of the
pinned pre-vectorization seed implementation): same moves, same tags,
same order, same statistics, same final grid.  These tests enforce that
for single passes and end-to-end schedules across scan modes, mirror
merging, and the ``s_en`` bound.

The identity assertions live in the shared :mod:`oracles` harness —
this suite is the QRM instantiation of the repository-wide
differential-oracle convention (see README, "Testing convention").
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from oracles import (
    PASS_EDGE_SIZES,
    assert_moves_identical,
    assert_pass_outcomes_identical,
    atom_arrays,
    scan_limits,
)

from repro.analysis.seed_baseline import seed_run_pass
from repro.config import QrmParameters, ScanMode
from repro.core.passes import (
    QUADRANT_ORDER,
    Phase,
    batch_order_key,
    run_pass,
    run_pass_reference,
)
from repro.core.qrm import QrmScheduler
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry, Direction, Quadrant
from repro.lattice.loading import load_uniform


def _frames(geometry):
    return {q: geometry.quadrant_frame(q) for q in Quadrant}


PASS_RUNNERS = {"reference": run_pass_reference, "seed": seed_run_pass}


class TestSinglePassEquivalence:
    @pytest.mark.parametrize("oracle", sorted(PASS_RUNNERS))
    @pytest.mark.parametrize("phase", [Phase.ROW, Phase.COLUMN])
    @pytest.mark.parametrize("merge", [True, False])
    @pytest.mark.parametrize("limit", [None, 3])
    def test_fresh_pass(self, oracle, phase, merge, limit, rng):
        geometry = ArrayGeometry.square(12, 8)
        for _ in range(10):
            grid = rng.random(geometry.shape) < rng.uniform(0.1, 0.9)
            ours = AtomArray(geometry, grid.copy())
            theirs = AtomArray(geometry, grid.copy())
            outcome = run_pass(
                ours,
                _frames(geometry),
                phase,
                scan_source=ours.grid,
                merge_mirror=merge,
                scan_limit=limit,
            )
            expected = PASS_RUNNERS[oracle](
                theirs,
                _frames(geometry),
                phase,
                scan_source=theirs.grid,
                merge_mirror=merge,
                scan_limit=limit,
            )
            assert_pass_outcomes_identical(outcome, expected)
            assert np.array_equal(ours.grid, theirs.grid)

    @pytest.mark.parametrize("oracle", sorted(PASS_RUNNERS))
    @pytest.mark.parametrize("merge", [True, False])
    def test_guarded_column_pass_on_stale_snapshot(self, oracle, merge, rng):
        # The paper's pipelined mode: scan an iteration-start snapshot,
        # execute against a live grid the row pass already changed.
        geometry = ArrayGeometry.square(12, 8)
        for _ in range(10):
            grid = rng.random(geometry.shape) < 0.5
            snapshot = grid.copy()
            ours = AtomArray(geometry, grid.copy())
            theirs = AtomArray(geometry, grid.copy())
            run_pass(
                ours,
                _frames(geometry),
                Phase.ROW,
                scan_source=ours.grid,
                merge_mirror=merge,
            )
            PASS_RUNNERS[oracle](
                theirs,
                _frames(geometry),
                Phase.ROW,
                scan_source=theirs.grid,
                merge_mirror=merge,
            )
            outcome = run_pass(
                ours,
                _frames(geometry),
                Phase.COLUMN,
                scan_source=snapshot,
                merge_mirror=merge,
                guard=True,
            )
            expected = PASS_RUNNERS[oracle](
                theirs,
                _frames(geometry),
                Phase.COLUMN,
                scan_source=snapshot.copy(),
                merge_mirror=merge,
                guard=True,
            )
            assert_pass_outcomes_identical(outcome, expected)
            assert np.array_equal(ours.grid, theirs.grid)


class TestGuardedDrainProperties:
    """Closed-form guarded drain == per-round reference, edge cases in.

    The guarded ``run_pass`` no longer loops per round — every command's
    stale/empty fate is derived from the pass-start occupancy in one
    sweep.  These properties pin it to :func:`run_pass_reference` across
    the shared oracle strategies, crossed with the ``s_en`` limit
    (including limits smaller than the deepest command list),
    single-position quadrants (size-2 geometries), and rounds that the
    guard empties entirely.
    """

    @staticmethod
    def _run_both(array, phase, merge, limit):
        geometry = array.geometry
        frames = _frames(geometry)
        snapshot = array.grid.copy()
        ours = array.copy()
        theirs = array.copy()
        # Stale the live grids first, exactly as the pipelined mode does.
        run_pass(ours, frames, Phase.ROW, scan_source=ours.grid, merge_mirror=merge)
        run_pass_reference(
            theirs, frames, Phase.ROW, scan_source=theirs.grid, merge_mirror=merge
        )
        outcome = run_pass(
            ours,
            frames,
            phase,
            scan_source=snapshot,
            merge_mirror=merge,
            guard=True,
            scan_limit=limit,
        )
        expected = run_pass_reference(
            theirs,
            frames,
            phase,
            scan_source=snapshot.copy(),
            merge_mirror=merge,
            guard=True,
            scan_limit=limit,
        )
        return outcome, expected, ours, theirs

    @given(
        atom_arrays(sizes=PASS_EDGE_SIZES),
        st.sampled_from([Phase.ROW, Phase.COLUMN]),
        st.booleans(),
        scan_limits(),
    )
    @settings(max_examples=80, deadline=None)
    def test_guarded_pass_bit_identical(self, array, phase, merge, limit):
        outcome, expected, ours, theirs = self._run_both(array, phase, merge, limit)
        assert_pass_outcomes_identical(outcome, expected)
        assert np.array_equal(ours.grid, theirs.grid)

    @given(atom_arrays(sizes=(2,)), scan_limits(max_limit=1))
    @settings(max_examples=20, deadline=None)
    def test_single_position_quadrants(self, array, limit):
        # Size-2 geometries: every quadrant is one site, no line can ever
        # carry a command, and both drains must agree on the nothing they
        # emit.
        outcome, expected, ours, theirs = self._run_both(
            array, Phase.COLUMN, True, limit
        )
        assert_pass_outcomes_identical(outcome, expected)
        assert outcome.n_commands == 0
        assert outcome.moves == []
        assert np.array_equal(ours.grid, theirs.grid)

    def test_guard_can_empty_a_whole_round(self, rng):
        # A snapshot whose every scanned command is stale or empty by
        # execution time: the row pass fully compacts the live grid, so
        # a guarded re-run of the *same* row snapshot skips everything.
        geometry = ArrayGeometry.square(8, 4)
        for _ in range(20):
            grid = rng.random(geometry.shape) < 0.5
            snapshot = grid.copy()
            ours = AtomArray(geometry, grid.copy())
            theirs = AtomArray(geometry, grid.copy())
            run_pass(ours, _frames(geometry), Phase.ROW, scan_source=ours.grid)
            run_pass_reference(
                theirs, _frames(geometry), Phase.ROW, scan_source=theirs.grid
            )
            outcome = run_pass(
                ours,
                _frames(geometry),
                Phase.ROW,
                scan_source=snapshot,
                guard=True,
            )
            expected = run_pass_reference(
                theirs,
                _frames(geometry),
                Phase.ROW,
                scan_source=snapshot.copy(),
                guard=True,
            )
            assert_pass_outcomes_identical(outcome, expected)
            assert outcome.n_executed == 0
            skips = outcome.n_skipped_stale + outcome.n_skipped_empty
            assert skips == outcome.n_commands
            assert np.array_equal(ours.grid, theirs.grid)


class TestEndToEndScheduleIdentity:
    @pytest.mark.parametrize("oracle", sorted(PASS_RUNNERS))
    @pytest.mark.parametrize(
        "params",
        [
            QrmParameters(),
            QrmParameters(scan_mode=ScanMode.FRESH),
            QrmParameters(merge_mirror_quadrants=False),
            QrmParameters(scan_limit=3),
            QrmParameters(scan_mode=ScanMode.FRESH, merge_mirror_quadrants=False),
        ],
        ids=["pipelined", "fresh", "split", "s_en", "fresh-split"],
    )
    def test_schedules_bit_identical(self, oracle, params, rng):
        for size in (8, 12, 20):
            geometry = ArrayGeometry.square(size)
            array = load_uniform(
                geometry,
                float(rng.uniform(0.2, 0.8)),
                rng=int(rng.integers(1 << 31)),
            )
            ours = QrmScheduler(geometry, params).schedule(array)
            expected = QrmScheduler(
                geometry, params, pass_runner=PASS_RUNNERS[oracle]
            ).schedule(array)
            assert_moves_identical(list(ours.schedule), list(expected.schedule))
            assert np.array_equal(ours.final.grid, expected.final.grid)
            assert ours.iterations == expected.iterations
            assert ours.converged == expected.converged
            assert ours.analysis_ops == expected.analysis_ops


class TestBatchOrdering:
    """Regression tests for the explicit round-batch ordering."""

    def test_batch_order_key_holes_then_quadrant(self):
        keys = [
            batch_order_key(2, Quadrant.SW),
            batch_order_key(2, Quadrant.NE),
            batch_order_key(0, Quadrant.SE),
            batch_order_key(0, Quadrant.NW),
        ]
        assert sorted(keys) == [
            batch_order_key(0, Quadrant.NW),
            batch_order_key(0, Quadrant.SE),
            batch_order_key(2, Quadrant.NE),
            batch_order_key(2, Quadrant.SW),
        ]

    def test_merged_batch_unifies_mirror_quadrants(self):
        # The same local pattern in all four quadrants: with mirror
        # merging one move per direction per round; without, one move
        # per quadrant, ordered by the documented quadrant rank.
        geometry = ArrayGeometry.square(8, 4)
        grid = np.zeros(geometry.shape, dtype=bool)
        grid[[0, 0, 7, 7], [0, 7, 0, 7]] = True  # outermost corners
        merged = run_pass(
            AtomArray(geometry, grid.copy()),
            _frames(geometry),
            Phase.ROW,
            scan_source=grid.copy(),
            merge_mirror=True,
        )
        # Two moves per round — one per direction, each fusing the two
        # mirror quadrants of that side (EAST flushes before WEST).
        assert [m.tag for m in merged.moves] == [
            "row-k0-h0",
            "row-k0-h0",
            "row-k1-h0",
            "row-k1-h0",
            "row-k2-h0",
            "row-k2-h0",
        ]
        assert [m.direction for m in merged.moves] == [
            Direction.EAST,
            Direction.WEST,
        ] * 3
        assert all(len(move) == 2 for move in merged.moves)

    def test_unmerged_batches_follow_quadrant_rank(self):
        geometry = ArrayGeometry.square(8, 4)
        grid = np.zeros(geometry.shape, dtype=bool)
        grid[[0, 0, 7, 7], [0, 7, 0, 7]] = True
        split = run_pass(
            AtomArray(geometry, grid.copy()),
            _frames(geometry),
            Phase.ROW,
            scan_source=grid.copy(),
            merge_mirror=False,
        )
        assert all(len(move) == 1 for move in split.moves)
        # Per round: EAST batches (west quadrants) first, NW before SW,
        # then WEST batches with NE before SE — i.e. batch_order_key.
        assert [m.tag for m in split.moves[:4]] == [
            "row-k0-h0-NW",
            "row-k0-h0-SW",
            "row-k0-h0-NE",
            "row-k0-h0-SE",
        ]

    def test_merge_toggle_same_physical_outcome(self, geo20, rng):
        grid = rng.random(geo20.shape) < 0.5
        merged_array = AtomArray(geo20, grid.copy())
        split_array = AtomArray(geo20, grid.copy())
        merged = run_pass(
            merged_array,
            _frames(geo20),
            Phase.ROW,
            scan_source=merged_array.grid,
            merge_mirror=True,
        )
        split = run_pass(
            split_array,
            _frames(geo20),
            Phase.ROW,
            scan_source=split_array.grid,
            merge_mirror=False,
        )
        assert merged.n_executed == split.n_executed
        assert merged.n_batches <= split.n_batches
        assert np.array_equal(merged_array.grid, split_array.grid)


def test_quadrant_order_unchanged():
    assert QUADRANT_ORDER == (
        Quadrant.NW,
        Quadrant.NE,
        Quadrant.SW,
        Quadrant.SE,
    )
