"""Mask-generalisation equivalence and compatibility suite.

Three contracts of the arbitrary-target-mask refactor:

* **Rectangle bit-identity** — a geometry whose mask is the centred
  rectangle schedules bit-identically to the plain (mask-free)
  geometry, for every registered algorithm.  The rectangle special
  case must be a special case, not a fork.
* **Masked schedule invariants** — property-tested over the
  ring/triangular/sparse mask strategies: every schedule replays
  exactly onto its recorded final grid, every repair move fills a mask
  site, and ``defect_free`` agrees with the mask's own defect count.
* **Cache compatibility** — pinned pre-refactor hashes: instance keys,
  trial cache keys, seed streams, and campaign spec hashes of
  rectangle-target cells are byte-identical to what the pre-mask code
  produced, so no committed cache or journal is invalidated.
"""

from __future__ import annotations

import re

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aod.executor import apply_parallel_move
from repro.baselines.base import (
    get_algorithm,
    list_algorithms,
    resolve_algorithms,
    supports_geometry,
)
from repro.errors import GeometryError, UnsupportedGeometryError
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry
from repro.lattice.loading import load_uniform
from repro.lattice.mask import TargetMask

from oracles import assert_results_identical, masked_atom_arrays

#: Algorithms that accept non-rectangular masks (everything not
#: declared ``rect_only``), restricted to the fast paths the masked
#: invariants suite drives.
MASKED_ALGORITHMS = ("qrm", "qrm-repair", "psca")

_REPAIR_TAG = re.compile(r"^repair-\((\d+), (\d+)\)$")


# ---------------------------------------------------------------------------
# Rectangle bit-identity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(list_algorithms()))
def test_rect_mask_schedules_bit_identical(name):
    """mask=rect(T) and plain target=T produce identical schedules."""
    size, target = 8, 4
    plain = ArrayGeometry.square(size, target)
    masked = ArrayGeometry.with_mask(
        size, size, TargetMask.rect(size, size, target, target)
    )
    assert masked.is_rect_target
    assert supports_geometry(name, masked)
    for seed in (0, 1, 2):
        grid = load_uniform(plain, 0.5, rng=seed).grid
        ours = get_algorithm(name, masked).schedule(AtomArray(masked, grid))
        reference = get_algorithm(name, plain).schedule(AtomArray(plain, grid))
        assert_results_identical(ours, reference)


# ---------------------------------------------------------------------------
# Masked schedule invariants
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    array=masked_atom_arrays(),
    name=st.sampled_from(MASKED_ALGORITHMS),
)
def test_masked_schedule_invariants(array, name):
    """Replay identity, on-mask repair moves, defect-free consistency."""
    mask = array.geometry.target_mask
    result = get_algorithm(name, array.geometry).schedule(array)

    # The recorded schedule replays exactly onto the recorded final grid.
    replay = result.initial.grid.copy()
    for move in result.schedule:
        apply_parallel_move(replay, move)
        match = _REPAIR_TAG.match(move.tag or "")
        if match is not None:
            row, col = int(match.group(1)), int(match.group(2))
            # No repair move ever targets an off-mask site.
            assert mask.contains(row, col), (
                f"repair move targets off-mask site ({row}, {col})"
            )
    assert np.array_equal(replay, result.final.grid)

    # ``defect_free`` is the mask's own defect count, nothing else.
    defects = int((mask.mask & ~result.final.grid).sum())
    assert result.defect_free == (defects == 0)


@settings(max_examples=20, deadline=None)
@given(array=masked_atom_arrays())
def test_masked_repair_fills_mask_when_atoms_suffice(array):
    """With enough atoms and full scans, qrm-repair assembles the mask."""
    from repro.config import MASK_SCAN_LIMIT

    if array.n_atoms < array.geometry.target_mask.n_sites:
        return  # under-loaded draws cannot converge by construction
    result = get_algorithm(
        "qrm-repair", array.geometry, scan_limit=MASK_SCAN_LIMIT
    ).schedule(array)
    # Atom conservation: moves relocate, never create or destroy.
    assert result.final.n_atoms == array.n_atoms
    if result.defect_free:
        filled = int((array.geometry.target_mask.mask & result.final.grid).sum())
        assert filled == array.geometry.target_mask.n_sites


# ---------------------------------------------------------------------------
# Geometry guard rails
# ---------------------------------------------------------------------------


def test_square_below_minimum_raises_instead_of_clamping():
    with pytest.raises(GeometryError, match="too small"):
        ArrayGeometry.square(2)
    # An explicit target is still honoured at any legal size.
    geometry = ArrayGeometry.square(2, 2)
    assert geometry.target_width == 2


def test_rect_only_algorithms_reject_masked_geometries():
    geometry = ArrayGeometry.with_mask(
        8, 8, TargetMask.ring(8, 8, outer_radius=3.0)
    )
    assert not supports_geometry("tetris", geometry)
    assert not supports_geometry("mta1", geometry)
    assert supports_geometry("qrm", geometry)
    with pytest.raises(UnsupportedGeometryError, match="tetris"):
        resolve_algorithms(("qrm", "tetris"), geometry)
    # The rectangle leg keeps resolving everything.
    assert resolve_algorithms(("qrm", "tetris"), ArrayGeometry.square(8)) == (
        "qrm",
        "tetris",
    )


# ---------------------------------------------------------------------------
# Cache compatibility: pinned pre-refactor hashes
# ---------------------------------------------------------------------------

# Produced by the pre-mask code (TRIAL_SCHEMA_VERSION 3) and pinned
# verbatim: if any of these move, every committed trial cache, journal,
# and campaign results directory keyed before the mask refactor is
# silently invalidated.
PINNED_INSTANCE_HASHES = {
    (8, None, 0.5): "14e9412b8e8e11d42ab3222fe9894397c99bba4b70ba7e6835af255c0ac4e23f",
    (8, None, 0.7): "5d0a6c22060b24cd627e8603b49f008be7c8b5ec2dbf3e4a83dc8a739e06bfbf",
}
PINNED_TRIAL_KEY_PLAIN = (
    "61129f6550add429d88c80397d60eeb3b87ccba765497255bffe05799dfc6da9"
)
PINNED_TRIAL_KEY_FULL = (
    "794791b1bcfcc07d2ac0c290dc8fc6a61acf1fce71b4c626998fd966c50c6e16"
)
PINNED_TRIAL_STREAM_FULL = [1762682798, 2515118248, 3365019787, 3290816421]
PINNED_SPEC_HASH = "d2955d982295bfd0"


def test_rect_instance_keys_unchanged():
    from repro.campaign.spec import ScenarioCell, stable_hash

    for (size, target, fill), pinned in PINNED_INSTANCE_HASHES.items():
        cell = ScenarioCell(algorithm="qrm", size=size, target=target, fill=fill)
        assert "mask" not in cell.instance_key()
        assert "loading" not in cell.instance_key()
        assert stable_hash(cell.instance_key()) == pinned


def test_rect_trial_cache_keys_and_seed_streams_unchanged():
    from repro.campaign.spec import LossSpec, QrmSpec, ScenarioCell
    from repro.campaign.trial import TrialSpec

    plain = TrialSpec(
        ScenarioCell(algorithm="qrm", size=8, target=None, fill=0.5),
        seed_index=1,
        master_seed=1234,
    )
    assert plain.key() == PINNED_TRIAL_KEY_PLAIN

    full = TrialSpec(
        ScenarioCell(
            algorithm="qrm",
            size=16,
            target=4,
            fill=0.7,
            loss=LossSpec(vacuum_lifetime_s=1.0),
            qrm=QrmSpec(scan_limit=2),
            cycles=2,
        ),
        seed_index=0,
        master_seed=99,
    )
    assert full.key() == PINNED_TRIAL_KEY_FULL
    rng = np.random.default_rng(full.seed_sequence())
    assert rng.integers(0, 2**32, 4).tolist() == PINNED_TRIAL_STREAM_FULL


def test_rect_campaign_spec_hash_and_grid_unchanged():
    from repro.campaign.spec import CampaignSpec, LossSpec

    spec = CampaignSpec(
        name="pin",
        algorithms=("qrm", "tetris"),
        sizes=(8, 16),
        fills=(0.5, 0.7),
        targets=(None, 4),
        loss_models=(None, LossSpec(vacuum_lifetime_s=1.0)),
        n_seeds=2,
        master_seed=1234,
    )
    assert spec.spec_hash() == PINNED_SPEC_HASH
    cells = spec.expand()
    assert len(cells) == 32
    # Rectangle cells serialise without any mask-era key, so their
    # to_dict()/key() bytes are exactly the pre-refactor ones.
    for cell in cells:
        assert "mask" not in cell.to_dict()
        assert "loading" not in cell.to_dict()


def test_masked_cells_key_differently():
    from repro.campaign.spec import MaskSpec, ScenarioCell, stable_hash

    rect = ScenarioCell(algorithm="qrm", size=8, target=None, fill=0.5)
    ring = ScenarioCell(
        algorithm="qrm",
        size=8,
        target=None,
        fill=0.5,
        mask=MaskSpec.of("ring", outer=3.0),
    )
    poisson = ScenarioCell(
        algorithm="qrm", size=8, target=None, fill=0.5, loading="poisson"
    )
    keys = {
        stable_hash(cell.instance_key()) for cell in (rect, ring, poisson)
    }
    assert len(keys) == 3
    assert "mask" in ring.instance_key()
    assert "loading" in poisson.instance_key()


# ---------------------------------------------------------------------------
# Masked wire/serialisation round trips
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(array=masked_atom_arrays())
def test_masked_schedule_serialises_round_trip(array):
    from repro.aod import serialize

    result = get_algorithm("qrm", array.geometry).schedule(array)
    recovered = serialize.loads(serialize.dumps(result.schedule))
    assert recovered.geometry == result.schedule.geometry
    assert list(recovered) == list(result.schedule)


def test_rect_schedule_document_has_no_mask_key():
    from repro.aod.serialize import schedule_to_dict

    geometry = ArrayGeometry.square(8, 4)
    result = get_algorithm("qrm", geometry).schedule(
        load_uniform(geometry, 0.5, rng=7)
    )
    assert "mask" not in schedule_to_dict(result.schedule)["geometry"]
