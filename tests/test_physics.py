"""Tests for the atom-loss physics substrate."""

from __future__ import annotations

import pytest

from repro.aod.move import LineShift, ParallelMove
from repro.aod.schedule import MoveSchedule
from repro.aod.timing import MoveTimingModel
from repro.core.qrm import QrmScheduler
from repro.errors import ConfigurationError
from repro.lattice.geometry import Direction
from repro.lattice.loading import load_uniform
from repro.physics.loss import (
    LossModel,
    expected_atom_survival,
    simulate_losses,
)


class TestLossModel:
    def test_vacuum_survival_decays(self):
        loss = LossModel(vacuum_lifetime_s=1.0)
        assert loss.vacuum_survival(0.0) == 1.0
        one_s = loss.vacuum_survival(1e6)
        assert one_s == pytest.approx(0.3679, abs=1e-3)
        assert loss.vacuum_survival(2e6) < one_s

    def test_move_survival(self):
        loss = LossModel(loss_per_transfer=0.1, loss_per_site=0.01)
        expected = (0.9**2) * (0.99**3)
        assert loss.move_survival(3) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LossModel(vacuum_lifetime_s=0)
        with pytest.raises(ConfigurationError):
            LossModel(loss_per_transfer=1.0)
        with pytest.raises(ConfigurationError):
            LossModel(loss_per_site=-0.1)
        with pytest.raises(ConfigurationError):
            LossModel().vacuum_survival(-1.0)


class TestExpectedSurvival:
    def test_empty_schedule_is_lossless(self, geo8):
        schedule = MoveSchedule(geo8)
        assert expected_atom_survival(schedule, 0.0) == pytest.approx(1.0)

    def test_longer_schedules_lose_more(self, geo8):
        move = ParallelMove.of([LineShift(Direction.EAST, 0, 0, 2)])
        short = MoveSchedule(geo8)
        short.append(move)
        long = MoveSchedule(geo8)
        for _ in range(50):
            long.append(move)
        assert expected_atom_survival(long, 5.0) < expected_atom_survival(short, 1.0)


class TestSimulateLosses:
    def _schedule(self, array):
        return QrmScheduler(array.geometry).schedule(array).schedule

    def test_no_loss_channels_means_pure_replay(self, array20):
        schedule = self._schedule(array20)
        loss = LossModel(
            vacuum_lifetime_s=1e12, loss_per_transfer=0.0, loss_per_site=0.0
        )
        report = simulate_losses(array20, schedule, loss=loss, rng=1)
        assert report.atoms_final == array20.n_atoms
        assert report.lost_vacuum == 0
        assert report.lost_transfer == 0
        assert report.survival_fraction == 1.0

    def test_losses_reduce_atom_count(self, array20):
        schedule = self._schedule(array20)
        loss = LossModel(
            vacuum_lifetime_s=0.05, loss_per_transfer=0.05, loss_per_site=0.001
        )
        report = simulate_losses(array20, schedule, loss=loss, rng=2)
        assert report.atoms_final < array20.n_atoms
        assert (
            report.atoms_initial - report.atoms_final
            == report.lost_vacuum + report.lost_transfer
        )

    def test_duration_matches_timing_model(self, array20):
        schedule = self._schedule(array20)
        timing = MoveTimingModel(
            pickup_us=10, drop_us=10, transfer_us_per_site=1, settle_us=2
        )
        loss = LossModel(vacuum_lifetime_s=1e12)
        report = simulate_losses(array20, schedule, loss=loss, timing=timing, rng=3)
        expected = sum(timing.move_duration_us(m) + timing.settle_us for m in schedule)
        assert report.duration_us == pytest.approx(expected)

    def test_reproducible_with_seed(self, array20):
        schedule = self._schedule(array20)
        loss = LossModel(vacuum_lifetime_s=0.1, loss_per_transfer=0.01)
        a = simulate_losses(array20, schedule, loss=loss, rng=7)
        b = simulate_losses(array20, schedule, loss=loss, rng=7)
        assert a.final_array == b.final_array
        assert a.lost_vacuum == b.lost_vacuum

    def test_initial_array_untouched(self, array20):
        schedule = self._schedule(array20)
        before = array20.copy()
        simulate_losses(array20, schedule, rng=1)
        assert array20 == before

    def test_remaining_schedule_stays_executable(self, geo20):
        """Losing atoms mid-schedule never breaks later moves."""
        array = load_uniform(geo20, 0.5, rng=17)
        schedule = self._schedule(array)
        loss = LossModel(
            vacuum_lifetime_s=0.01, loss_per_transfer=0.1, loss_per_site=0.01
        )
        # simulate_losses raises if any move becomes invalid.
        report = simulate_losses(array, schedule, loss=loss, rng=4)
        assert report.atoms_final >= 0
