"""Tests for the fixed-width bit vectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.fpga.bitvec import BitVector


class TestConstruction:
    def test_from_bits_lsb_first(self):
        vec = BitVector.from_bits([True, False, True])
        assert vec.width == 3
        assert vec.value == 0b101

    def test_from_array(self):
        vec = BitVector.from_array(np.array([0, 1, 1], dtype=bool))
        assert vec.value == 0b110

    def test_value_masked_to_width(self):
        assert BitVector(2, 0b111).value == 0b11

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            BitVector(4, -1)

    def test_negative_width_rejected(self):
        with pytest.raises(SimulationError):
            BitVector(-1, 0)


class TestQueries:
    def test_get_and_lsb(self):
        vec = BitVector(4, 0b0110)
        assert not vec.get(0)
        assert vec.get(1)
        assert not vec.lsb

    def test_lsb_of_empty_raises(self):
        with pytest.raises(SimulationError):
            BitVector(0, 0).lsb

    def test_get_out_of_range(self):
        with pytest.raises(SimulationError):
            BitVector(4, 0).get(4)

    def test_popcount_any(self):
        assert BitVector(8, 0b1011).popcount() == 3
        assert BitVector(8, 0).any() is False
        assert BitVector(8, 1).any() is True

    def test_round_trips(self):
        bits = [True, False, False, True, True]
        vec = BitVector.from_bits(bits)
        assert vec.to_bools() == bits
        assert list(vec.to_array()) == bits
        assert list(vec) == bits
        assert len(vec) == 5


class TestTransforms:
    def test_set_bit(self):
        vec = BitVector(4, 0b0001).set(2, True)
        assert vec.value == 0b0101
        vec = vec.set(0, False)
        assert vec.value == 0b0100

    def test_shift_right_drops_lsb(self):
        assert BitVector(4, 0b1011).shift_right().value == 0b101

    def test_shift_left_masks(self):
        assert BitVector(3, 0b101).shift_left().value == 0b010

    def test_reversed(self):
        assert BitVector.from_bits([True, False, False]).reversed().value == 0b100

    def test_concat_other_high(self):
        low = BitVector(2, 0b01)
        high = BitVector(2, 0b11)
        combined = low.concat(high)
        assert combined.width == 4
        assert combined.value == 0b1101

    def test_slice(self):
        vec = BitVector(6, 0b110100)
        assert vec.slice(2, 5).value == 0b101

    def test_slice_bounds(self):
        with pytest.raises(SimulationError):
            BitVector(4, 0).slice(1, 6)

    def test_immutability(self):
        vec = BitVector(4, 0b0001)
        vec.set(3, True)
        assert vec.value == 0b0001


class TestDunders:
    def test_equality_and_hash(self):
        a = BitVector(4, 5)
        b = BitVector(4, 5)
        c = BitVector(5, 5)
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_repr_shows_bits(self):
        assert "101" in repr(BitVector(3, 0b101))
