"""Edge-case coverage across the core algorithm surfaces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aod.validator import validate_schedule
from repro.config import QrmParameters, ScanMode
from repro.core.passes import Phase, run_pass
from repro.core.qrm import QrmScheduler
from repro.fpga.accelerator import QrmAccelerator
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry, Quadrant


class TestDegenerateGeometries:
    def test_minimal_geometry(self):
        """2x2 array with a 2x2 target: each quadrant is a single site."""
        geometry = ArrayGeometry.square(2, 2)
        array = AtomArray.full(geometry)
        result = QrmScheduler(geometry).schedule(array)
        assert result.n_moves == 0
        assert result.defect_free

    def test_minimal_geometry_partial(self):
        geometry = ArrayGeometry.square(2, 2)
        array = AtomArray(geometry)
        array.set_site(0, 0, True)
        result = QrmScheduler(geometry).schedule(array)
        # A single-site quadrant has nowhere to move anything.
        assert result.n_moves == 0

    def test_target_equals_array(self):
        geometry = ArrayGeometry.square(8, 8)
        array = AtomArray(geometry)
        for c in range(8):
            array.set_site(0, c, True)
        result = QrmScheduler(geometry).schedule(array)
        report = validate_schedule(array, result.schedule)
        assert report.ok

    def test_tiny_target_in_large_array(self):
        geometry = ArrayGeometry.square(20, 2)
        from repro.lattice.loading import load_uniform

        array = load_uniform(geometry, 0.3, rng=1)
        result = QrmScheduler(geometry).schedule(array)
        assert validate_schedule(array, result.schedule).ok
        if array.n_atoms >= 4:
            assert result.target_fill_fraction == 1.0


class TestSingleAtomJourneys:
    @pytest.mark.parametrize(
        "site",
        [(0, 0), (0, 7), (7, 0), (7, 7)],
        ids=["nw-corner", "ne-corner", "sw-corner", "se-corner"],
    )
    def test_corner_atom_reaches_centre_block(self, geo8, site):
        array = AtomArray(geo8)
        array.set_site(*site, True)
        result = QrmScheduler(geo8).schedule(array)
        final_sites = result.final.occupied_sites()
        assert len(final_sites) == 1
        row, col = final_sites[0]
        # The atom ends at its quadrant's centre-adjacent corner.
        assert row in (3, 4) and col in (3, 4)

    def test_centre_atom_never_moves(self, geo8):
        array = AtomArray(geo8)
        array.set_site(3, 3, True)
        result = QrmScheduler(geo8).schedule(array)
        assert result.n_moves == 0
        assert result.final.is_occupied(3, 3)


class TestPassEdgeCases:
    def test_pass_on_full_grid_emits_nothing(self, geo8):
        array = AtomArray.full(geo8)
        frames = {q: geo8.quadrant_frame(q) for q in Quadrant}
        outcome = run_pass(array, frames, Phase.ROW, scan_source=array.grid)
        assert outcome.n_commands == 0

    def test_single_row_quadrants(self):
        """Height-2 arrays make one-row quadrants; column pass is trivial."""
        geometry = ArrayGeometry(width=8, height=2, target_width=4, target_height=2)
        from repro.lattice.loading import load_uniform

        array = load_uniform(geometry, 0.5, rng=2)
        result = QrmScheduler(geometry).schedule(array)
        assert validate_schedule(array, result.schedule).ok

    def test_lines_with_commands_accounting(self, geo8, rng):
        array = AtomArray(geo8, rng.random(geo8.shape) < 0.5)
        frames = {q: geo8.quadrant_frame(q) for q in Quadrant}
        outcome = run_pass(array, frames, Phase.ROW, scan_source=array.grid)
        for quadrant in Quadrant:
            counted = outcome.lines_with_commands(quadrant)
            raw = sum(1 for n in outcome.line_commands[quadrant] if n > 0)
            assert counted == raw


class TestIterationBudgets:
    def test_single_iteration_budget(self, array20):
        params = QrmParameters(n_iterations=1)
        result = QrmScheduler(array20.geometry, params).schedule(array20)
        assert result.iterations_used == 1
        assert validate_schedule(array20, result.schedule).ok

    def test_more_iterations_never_hurt_fill(self, array20):
        fills = []
        for n in (1, 2, 4, 8):
            params = QrmParameters(n_iterations=n)
            result = QrmScheduler(array20.geometry, params).schedule(array20)
            fills.append(result.target_fill_fraction)
        assert fills == sorted(fills)

    def test_accelerator_respects_custom_iteration_count(self, array20):
        params = QrmParameters(n_iterations=6)
        run = QrmAccelerator(array20.geometry, params=params).run(array20)
        assert len(run.report.iteration_cycles) == 6


class TestFreshVsPipelinedMoveCounts:
    def test_modes_do_comparable_physical_work(self, geo20):
        """The two scan modes may reach different Young diagrams (their
        interleavings differ), but the amount of physical work and the
        assembled quality track each other closely."""
        from repro.lattice.loading import load_uniform

        for seed in range(3):
            array = load_uniform(geo20, 0.5, rng=seed)
            pipelined = QrmScheduler(geo20, QrmParameters(n_iterations=16)).schedule(
                array
            )
            fresh = QrmScheduler(
                geo20,
                QrmParameters(n_iterations=16, scan_mode=ScanMode.FRESH),
            ).schedule(array)
            assert pipelined.converged and fresh.converged
            ratio = pipelined.schedule.n_line_shifts / max(
                1, fresh.schedule.n_line_shifts
            )
            assert 0.85 <= ratio <= 1.25
            assert abs(
                pipelined.target_fill_fraction - fresh.target_fill_fraction
            ) <= 0.05


class TestGridDtypeTolerance:
    def test_integer_grid_accepted(self, geo8):
        grid = np.zeros(geo8.shape, dtype=int)
        grid[0, 0] = 1
        array = AtomArray(geo8, grid)
        assert array.n_atoms == 1

    def test_float_grid_accepted(self, geo8):
        grid = np.zeros(geo8.shape, dtype=float)
        grid[1, 1] = 1.0
        assert AtomArray(geo8, grid).n_atoms == 1
