"""Differential-oracle and behaviour tests for the scheduling service.

The service's whole contract is that remote scheduling is *bit-identical*
to local scheduling: same moves, same tags, same final grids, same
statistics, regardless of how requests interleave into micro-batch waves.
This suite drives a real server (on a background thread, loopback TCP)
through geometry x fill x concurrency and holds every response to the
local :class:`~repro.core.qrm.QrmScheduler` / registry scheduler with
:func:`tests.oracles.assert_results_identical`, then covers the service
behaviours around that core: wave coalescing counters, the warm
scheduler LRU, the JSON front door, error isolation between wave
siblings, client retry/timeout semantics, and the campaign-level
``executor="service"`` leg.
"""

from __future__ import annotations

import json
import socket
import time

import numpy as np
import pytest

from repro.baselines.base import register_algorithm, unregister_algorithm
from repro.campaign.engine import ExperimentCampaign
from repro.campaign.executors import make_executor
from repro.campaign.spec import CampaignSpec
from repro.errors import ConfigurationError, ServiceError, ServiceTimeoutError
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry
from repro.lattice.loading import load_uniform
from repro.service import (
    SchedulerCache,
    SchedulerKey,
    ServiceClient,
    ServiceExecutor,
    resolve_scheduler,
    serve_in_thread,
)
from repro.service.executor import parse_address

from tests.oracles import assert_results_identical


def key_for(geometry: ArrayGeometry, algorithm: str = "qrm") -> SchedulerKey:
    return SchedulerKey(
        geometry=(
            geometry.width,
            geometry.height,
            geometry.target_width,
            geometry.target_height,
        ),
        algorithm=algorithm,
    )


@pytest.fixture(scope="module")
def server():
    with serve_in_thread(batch_window=0.05, max_batch_size=32) as thread:
        yield thread


@pytest.fixture(scope="module")
def client(server):
    with ServiceClient(server.address) as client:
        yield client


# ---------------------------------------------------------------------------
# The differential oracle: remote == local, bit for bit
# ---------------------------------------------------------------------------


GEOMETRIES = (
    ArrayGeometry.square(8),
    ArrayGeometry.square(10, 6),
    ArrayGeometry(12, 8, 6, 4),  # non-square array, non-square target
)


@pytest.mark.parametrize("geometry", GEOMETRIES, ids=lambda g: f"{g.width}x{g.height}")
@pytest.mark.parametrize("fill", (0.3, 0.6))
@pytest.mark.parametrize("algorithm", ("qrm", "tetris"))
def test_service_schedules_identical_to_local(client, geometry, fill, algorithm):
    key = key_for(geometry, algorithm)
    local = resolve_scheduler(key)
    for seed in range(3):
        array = load_uniform(geometry, fill, rng=seed)
        remote = client.schedule(key, array)
        assert_results_identical(remote, local.schedule(array))


@pytest.mark.parametrize("concurrency", (4, 16))
def test_concurrent_submissions_stay_identical(client, concurrency):
    # Whole stacks submitted at once coalesce into micro-batch waves
    # server-side; results must come back in submission order and match
    # fresh local scheduling exactly.
    geometry = ArrayGeometry.square(10)
    key = key_for(geometry)
    arrays = [
        load_uniform(geometry, 0.5, rng=seed) for seed in range(concurrency)
    ]
    remote_results = client.schedule_many(key, arrays)
    local = resolve_scheduler(key)
    for array, remote in zip(arrays, remote_results):
        assert_results_identical(remote, local.schedule(array))


def test_mixed_geometries_in_one_wave(client):
    # Interleaved submissions under two different scheduler keys ride the
    # same wave but are grouped per key — every response must match its
    # own geometry's local scheduler.
    keys = [key_for(g) for g in GEOMETRIES]
    futures = [
        (key, client.submit_schedule(key, array))
        for seed in range(4)
        for key, array in (
            (
                keys[seed % len(keys)],
                load_uniform(GEOMETRIES[seed % len(keys)], 0.5, rng=seed),
            ),
        )
    ]
    for key, future in futures:
        remote = future.result()
        local = resolve_scheduler(key)
        assert_results_identical(remote, local.schedule(remote.initial))


def test_results_arrive_without_pass_outcomes(client):
    # Pass outcomes are analysis-internal and dominate pickle size; the
    # server strips them before responding.
    geometry = ArrayGeometry.square(8)
    result = client.schedule(key_for(geometry), load_uniform(geometry, 0.5, rng=0))
    assert result.pass_outcomes == []


# ---------------------------------------------------------------------------
# Micro-batching and the warm scheduler cache
# ---------------------------------------------------------------------------


def test_waves_coalesce_concurrent_requests():
    with serve_in_thread(batch_window=0.2, max_batch_size=32) as thread:
        geometry = ArrayGeometry.square(8)
        key = key_for(geometry)
        arrays = [load_uniform(geometry, 0.5, rng=seed) for seed in range(8)]
        with ServiceClient(thread.address) as client:
            client.schedule_many(key, arrays)
            stats = client.stats()
    assert stats["requests"] == 8
    # The 0.2s window lets the whole stack pile into far fewer waves
    # than requests — concurrency actually amortises.
    assert stats["waves"] < 8
    assert stats["max_wave"] >= 2
    assert stats["batched_requests"] >= 2
    assert stats["native_batch_calls"] == stats["waves"]
    assert stats["fallback_calls"] == 0


def test_batching_off_schedules_alone():
    with serve_in_thread(max_batch_size=1) as thread:
        geometry = ArrayGeometry.square(8)
        key = key_for(geometry)
        arrays = [load_uniform(geometry, 0.5, rng=seed) for seed in range(5)]
        with ServiceClient(thread.address) as client:
            client.schedule_many(key, arrays)
            stats = client.stats()
    assert stats["waves"] == 5
    assert stats["max_wave"] == 1
    assert stats["batched_requests"] == 0


def test_scheduler_cache_stays_warm_and_evicts_lru():
    with serve_in_thread(cache_size=2) as thread:
        with ServiceClient(thread.address) as client:
            for geometry in (GEOMETRIES[0], GEOMETRIES[1], GEOMETRIES[0]):
                client.schedule(
                    key_for(geometry), load_uniform(geometry, 0.5, rng=0)
                )
            warm = client.stats()["cache"]
            # Third request reuses the first geometry's live scheduler.
            assert warm == {**warm, "misses": 2, "hits": 1, "evictions": 0}
            # A third distinct geometry overflows capacity 2 and evicts
            # the least recently used entry.
            geometry = GEOMETRIES[2]
            client.schedule(key_for(geometry), load_uniform(geometry, 0.5, rng=0))
            evicted = client.stats()["cache"]
            assert evicted["evictions"] == 1
            assert evicted["size"] == 2


def test_scheduler_cache_unit_counters():
    cache = SchedulerCache(capacity=1)
    key_a = key_for(ArrayGeometry.square(8))
    key_b = key_for(ArrayGeometry.square(10))
    first = cache.get(key_a)
    assert cache.get(key_a) is first
    cache.get(key_b)
    assert key_a not in cache
    assert cache.stats() == {
        "size": 1,
        "capacity": 1,
        "hits": 1,
        "misses": 2,
        "evictions": 1,
    }


# ---------------------------------------------------------------------------
# JSON front door
# ---------------------------------------------------------------------------


def json_roundtrip(address, *requests: dict) -> list[dict]:
    with socket.create_connection(address, timeout=10.0) as sock:
        with sock.makefile("rwb") as stream:
            for request in requests:
                stream.write(json.dumps(request).encode() + b"\n")
            stream.flush()
            return [json.loads(stream.readline()) for _ in requests]


def test_json_front_door_schedules(server):
    geometry = ArrayGeometry.square(8)
    array = load_uniform(geometry, 0.5, rng=0)
    (response,) = json_roundtrip(
        server.address,
        {
            "id": 7,
            "algorithm": "qrm",
            "size": 8,
            "grid": array.grid.astype(int).tolist(),
        },
    )
    local = resolve_scheduler(key_for(geometry)).schedule(array)
    assert response["id"] == 7
    assert response["ok"] is True
    assert response["algorithm"] == "qrm"
    assert response["moves"] == local.n_moves
    assert response["converged"] == local.converged
    assert len(response["schedule"]["moves"]) == local.n_moves


def test_json_front_door_stats_and_errors(server):
    ping, stats, bad = json_roundtrip(
        server.address,
        {"id": 1, "op": "ping"},
        {"id": 2, "op": "stats"},
        {"id": 3, "op": "schedule"},  # no grid
    )
    assert ping == {"id": 1, "ok": True, "value": "pong"}
    assert stats["ok"] is True and "waves" in stats["value"]
    assert bad["ok"] is False and "grid" in bad["error"]
    # Validation errors still echo the request id for correlation.
    assert bad["id"] == 3


# ---------------------------------------------------------------------------
# Error paths and sibling isolation
# ---------------------------------------------------------------------------


def test_unknown_algorithm_errors_only_that_request(client):
    geometry = ArrayGeometry.square(8)
    good = client.submit_schedule(
        key_for(geometry), load_uniform(geometry, 0.5, rng=0)
    )
    bad = client.submit_schedule(
        key_for(geometry, "no-such-scheduler"),
        load_uniform(geometry, 0.5, rng=1),
    )
    with pytest.raises(ServiceError, match="no-such-scheduler"):
        bad.result()
    assert good.result().algorithm == "qrm"


def test_unknown_op_is_rejected(client):
    with pytest.raises(ServiceError, match="unknown op"):
        client._submit("bogus", None).result()


def test_malformed_grid_is_rejected(client):
    geometry = ArrayGeometry.square(8)
    payload = key_for(geometry).to_payload()
    payload["grid"] = np.ones((3, 3), dtype=bool)  # wrong shape
    with pytest.raises(ServiceError):
        client._submit("schedule", payload).result()


class _PoisonScheduler:
    """Schedules via tetris but explodes on all-empty frames."""

    name = "poison-prone"

    def __init__(self, geometry):
        from repro.baselines.tetris import TetrisScheduler

        self._inner = TetrisScheduler(geometry)

    def schedule(self, array: AtomArray):
        if not array.grid.any():
            raise RuntimeError("mid-analysis explosion on an empty frame")
        return self._inner.schedule(array)


def test_wave_sibling_isolation_on_mid_batch_failure():
    register_algorithm("poison-prone", lambda geometry: _PoisonScheduler(geometry))
    try:
        with serve_in_thread(batch_window=0.2, max_batch_size=32) as thread:
            geometry = ArrayGeometry.square(8)
            key = key_for(geometry, "poison-prone")
            arrays = [load_uniform(geometry, 0.5, rng=seed) for seed in range(4)]
            poison = AtomArray(geometry, np.zeros(geometry.shape, dtype=bool))
            with ServiceClient(thread.address) as client:
                futures = [
                    client.submit_schedule(key, array)
                    for array in arrays[:2] + [poison] + arrays[2:]
                ]
                with pytest.raises(ServiceError, match="explosion"):
                    futures[2].result()
                local = _PoisonScheduler(geometry)
                for array, future in zip(
                    arrays, futures[:2] + futures[3:]
                ):
                    assert_results_identical(
                        future.result(), local.schedule(array)
                    )
                stats = client.stats()
    finally:
        unregister_algorithm("poison-prone")
    assert stats["fallback_calls"] >= 1
    assert stats["errors"] == 1


# ---------------------------------------------------------------------------
# Client reliability: timeout, retry, reconnect
# ---------------------------------------------------------------------------


def test_request_timeout_exhausts_retries_and_raises():
    # A listener that accepts but never answers: every attempt times
    # out, and the wait raises once the retry budget is spent.
    with socket.create_server(("127.0.0.1", 0)) as mute:
        client = ServiceClient(
            mute.getsockname(),
            request_timeout=0.05,
            max_retries=1,
            backoff_base=0.01,
        )
        try:
            start = time.perf_counter()
            with pytest.raises(ServiceTimeoutError, match="no response"):
                client.ping()
            assert time.perf_counter() - start < 5.0
        finally:
            client.close()


def test_unreachable_service_raises_service_error():
    with socket.create_server(("127.0.0.1", 0)) as placeholder:
        free_port = placeholder.getsockname()[1]
    with pytest.raises(ServiceError, match="cannot reach"):
        ServiceClient(
            ("127.0.0.1", free_port), max_retries=0, backoff_base=0.01
        )


def test_client_reconnects_after_server_restart():
    first = serve_in_thread()
    host, port = first.address
    client = ServiceClient(
        (host, port), max_retries=8, backoff_base=0.05
    )
    try:
        assert client.ping()
        first.stop()
        second = serve_in_thread(host=host, port=port)
        try:
            # The receiver thread sees EOF, reconnects with backoff, and
            # the next request flows through the fresh server.
            assert client.ping()
            geometry = ArrayGeometry.square(8)
            array = load_uniform(geometry, 0.5, rng=0)
            remote = client.schedule(key_for(geometry), array)
            local = resolve_scheduler(key_for(geometry))
            assert_results_identical(remote, local.schedule(array))
        finally:
            second.stop()
    finally:
        client.close()


def test_client_rejects_bad_configuration():
    with pytest.raises(ServiceError, match="max_in_flight"):
        ServiceClient(("127.0.0.1", 1), max_in_flight=0)


# ---------------------------------------------------------------------------
# Campaign integration: executor="service"
# ---------------------------------------------------------------------------


SPEC = CampaignSpec(
    name="service-oracle",
    algorithms=("qrm", "tetris"),
    sizes=(8, 10),
    fills=(0.4, 0.6),
    n_seeds=3,
    master_seed=11,
)


def test_service_executor_aggregates_byte_identical(server):
    serial = ExperimentCampaign(SPEC, cache=None).run()
    remote = ExperimentCampaign(
        SPEC, cache=None, executor=ServiceExecutor(server.address)
    ).run()
    assert remote.to_csv() == serial.to_csv()
    assert remote.to_csv(stats=True) == serial.to_csv(stats=True)


def test_service_executor_batched_trials_byte_identical(server):
    serial = ExperimentCampaign(SPEC, cache=None).run()
    remote = ExperimentCampaign(
        SPEC,
        cache=None,
        executor=ServiceExecutor(server.address),
        batch_size=8,
    ).run()
    assert remote.to_csv() == serial.to_csv()


def test_make_executor_service_kind():
    executor = make_executor(
        None, kind="service", service_addr="127.0.0.1:7421"
    )
    assert isinstance(executor, ServiceExecutor)
    assert executor.address == ("127.0.0.1", 7421)

    with pytest.raises(ConfigurationError, match="--service-addr"):
        make_executor(None, kind="service")
    with pytest.raises(ConfigurationError, match="only applies"):
        make_executor(None, kind="serial", service_addr="127.0.0.1:7421")


@pytest.mark.parametrize(
    "address", ("localhost", ":7421", "no-port:", "host:notaport")
)
def test_parse_address_rejects_malformed(address):
    with pytest.raises(ConfigurationError):
        parse_address(address)


def test_parse_address_accepts_both_forms():
    assert parse_address("0.0.0.0:80") == ("0.0.0.0", 80)
    assert parse_address(("::1", 443)) == ("::1", 443)
