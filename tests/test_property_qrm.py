"""Property tests for the QRM scheduler and quadrant transforms."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aod.validator import validate_schedule
from repro.config import QrmParameters, ScanMode
from repro.core.qrm import QrmScheduler
from repro.core.scan import is_young_diagram
from repro.core.typical import TypicalScheduler
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry, Quadrant

SIZES = st.sampled_from([4, 6, 8, 10, 12])


@st.composite
def random_arrays(draw):
    size = draw(SIZES)
    target = draw(st.sampled_from([t for t in (2, 4, 6) if t <= size]))
    geometry = ArrayGeometry.square(size, target)
    n_bits = geometry.n_sites
    bits = draw(st.lists(st.booleans(), min_size=n_bits, max_size=n_bits))
    grid = np.array(bits, dtype=bool).reshape(geometry.shape)
    return AtomArray(geometry, grid)


@given(random_arrays())
@settings(max_examples=60, deadline=None)
def test_qrm_schedule_always_validates(array):
    result = QrmScheduler(array.geometry).schedule(array)
    report = validate_schedule(array, result.schedule)
    assert report.ok
    assert report.final_array == result.final


@given(random_arrays())
@settings(max_examples=60, deadline=None)
def test_qrm_conserves_atoms_and_quadrant_populations(array):
    result = QrmScheduler(array.geometry).schedule(array)
    assert result.final.n_atoms == array.n_atoms
    for quadrant in Quadrant:
        assert (result.final.quadrant_count(quadrant) == array.quadrant_count(quadrant))


@given(random_arrays())
@settings(max_examples=40, deadline=None)
def test_fresh_mode_reaches_young_fixpoint(array):
    params = QrmParameters(n_iterations=4, scan_mode=ScanMode.FRESH)
    result = QrmScheduler(array.geometry, params).schedule(array)
    assert result.converged
    for frame in array.geometry.quadrant_frames():
        assert is_young_diagram(frame.extract(result.final.grid))


@given(random_arrays())
@settings(max_examples=40, deadline=None)
def test_pipelined_converges_to_young_fixpoint_with_headroom(array):
    params = QrmParameters(n_iterations=32, scan_mode=ScanMode.PIPELINED)
    result = QrmScheduler(array.geometry, params).schedule(array)
    assert result.converged
    for frame in array.geometry.quadrant_frames():
        assert is_young_diagram(frame.extract(result.final.grid))


@given(random_arrays())
@settings(max_examples=40, deadline=None)
def test_typical_matches_fresh_qrm(array):
    typical = TypicalScheduler(array.geometry).schedule(array)
    params = QrmParameters(n_iterations=8, scan_mode=ScanMode.FRESH)
    fresh = QrmScheduler(array.geometry, params).schedule(array)
    assert typical.final == fresh.final


@given(random_arrays())
@settings(max_examples=40, deadline=None)
def test_target_fill_never_decreases(array):
    result = QrmScheduler(array.geometry).schedule(array)
    assert result.final.target_count() >= array.target_count()


@st.composite
def frames_and_grids(draw):
    size = draw(SIZES)
    geometry = ArrayGeometry.square(size, 2)
    quadrant = draw(st.sampled_from(list(Quadrant)))
    n_bits = geometry.n_sites
    bits = draw(st.lists(st.booleans(), min_size=n_bits, max_size=n_bits))
    grid = np.array(bits, dtype=bool).reshape(geometry.shape)
    return geometry.quadrant_frame(quadrant), grid


@given(frames_and_grids())
@settings(max_examples=100)
def test_extract_insert_round_trip(frame_grid):
    frame, grid = frame_grid
    work = grid.copy()
    local = frame.extract(work)
    frame.insert(work, local)
    assert np.array_equal(work, grid)


@given(frames_and_grids())
@settings(max_examples=100)
def test_coordinate_transform_bijective(frame_grid):
    frame, _ = frame_grid
    seen = set()
    for u in range(frame.n_rows):
        for v in range(frame.n_cols):
            full = frame.to_full(u, v)
            assert full not in seen
            seen.add(full)
            assert frame.to_local(*full) == (u, v)


@given(frames_and_grids())
@settings(max_examples=100)
def test_extract_agrees_with_pointwise_transform(frame_grid):
    frame, grid = frame_grid
    local = frame.extract(grid)
    for u in range(frame.n_rows):
        for v in range(frame.n_cols):
            assert local[u, v] == grid[frame.to_full(u, v)]
