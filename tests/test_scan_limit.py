"""Tests for the s_en scan-limit feature (paper's manual control)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aod.validator import validate_schedule
from repro.baselines.base import get_algorithm
from repro.config import QrmParameters
from repro.core.qrm import QrmScheduler
from repro.core.scan import scan_line
from repro.errors import ConfigurationError
from repro.lattice.geometry import ArrayGeometry
from repro.lattice.loading import load_uniform


def bits(text: str) -> np.ndarray:
    return np.array([ch == "1" for ch in text], dtype=bool)


class TestScanLineLimit:
    def test_holes_beyond_limit_dropped(self):
        # holes at 0, 2, 4 — limit 3 keeps only 0 and 2.
        result = scan_line(bits("010101"), limit=3)
        assert result.hole_positions == (0, 2)

    def test_limit_none_is_full_scan(self):
        assert scan_line(bits("010101"), limit=None).hole_positions == (0, 2, 4)

    def test_limit_larger_than_line(self):
        assert scan_line(bits("0101"), limit=99).hole_positions == (0, 2)

    def test_limit_zero_blocks_everything(self):
        assert scan_line(bits("0101"), limit=0).hole_positions == ()


class TestQrmWithScanLimit:
    def test_parameter_validated(self):
        with pytest.raises(ConfigurationError):
            QrmParameters(scan_limit=0)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_limited_schedule_validates(self, geo50, seed):
        array = load_uniform(geo50, 0.5, rng=seed)
        params = QrmParameters(scan_limit=geo50.target_width // 2)
        result = QrmScheduler(geo50, params).schedule(array)
        report = validate_schedule(array, result.schedule)
        assert report.ok

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_saves_moves_without_hurting_fill(self, geo50, seed):
        array = load_uniform(geo50, 0.5, rng=seed)
        full = QrmScheduler(geo50).schedule(array)
        limited = QrmScheduler(
            geo50, QrmParameters(scan_limit=geo50.target_width // 2)
        ).schedule(array)
        assert limited.n_moves <= full.n_moves
        assert limited.target_fill_fraction >= full.target_fill_fraction - 0.01

    def test_no_moves_beyond_limit_in_row_phase(self, geo20):
        """With the s_en bound, no command fills a hole outside the band."""
        array = load_uniform(geo20, 0.5, rng=5)
        limit = geo20.target_width // 2
        params = QrmParameters(scan_limit=limit)
        result = QrmScheduler(geo20, params).schedule(array)
        half_w = geo20.half_width
        half_h = geo20.half_height
        for move in result.schedule:
            for shift in move.shifts:
                lead = shift.leading_sites()[0]
                if move.is_horizontal:
                    # the filled hole is within `limit` of the centre cols
                    distance = min(abs(lead[1] - (half_w - 1)), abs(lead[1] - half_w))
                else:
                    distance = min(abs(lead[0] - (half_h - 1)), abs(lead[0] - half_h))
                assert distance < limit

    def test_registered_variant(self, geo20):
        array = load_uniform(geo20, 0.5, rng=8)
        algo = get_algorithm("qrm-sen", geo20)
        result = algo.schedule(array)
        assert validate_schedule(array, result.schedule).ok


class TestRectangularGeometry:
    """QRM is not restricted to square arrays."""

    def test_rectangular_schedule_validates(self):
        geometry = ArrayGeometry(width=24, height=16, target_width=12, target_height=8)
        array = load_uniform(geometry, 0.5, rng=3)
        result = QrmScheduler(geometry).schedule(array)
        report = validate_schedule(array, result.schedule)
        assert report.ok
        assert result.final.n_atoms == array.n_atoms

    def test_rectangular_target_improves(self):
        geometry = ArrayGeometry(width=32, height=20, target_width=16, target_height=10)
        array = load_uniform(geometry, 0.55, rng=9)
        result = QrmScheduler(geometry).schedule(array)
        assert result.final.target_count() > array.target_count()

    def test_typical_handles_rectangles_too(self):
        from repro.core.typical import TypicalScheduler

        geometry = ArrayGeometry(width=20, height=12, target_width=10, target_height=6)
        array = load_uniform(geometry, 0.5, rng=4)
        result = TypicalScheduler(geometry).schedule(array)
        assert validate_schedule(array, result.schedule).ok
