"""Tests for the analytic compaction-feasibility model."""

from __future__ import annotations

import statistics

import pytest

from repro.analysis.feasibility import (
    minimum_fill_for_target,
    predict_compaction_fill,
)
from repro.config import QrmParameters, ScanMode
from repro.core.qrm import QrmScheduler
from repro.errors import ConfigurationError
from repro.lattice.geometry import ArrayGeometry
from repro.lattice.loading import load_uniform


class TestPrediction:
    def test_matches_empirical_fresh_fill_at_50(self):
        """The Young-diagram model predicts the measured fill closely."""
        geometry = ArrayGeometry.square(50, 30)
        estimate = predict_compaction_fill(geometry, 0.5)
        params = QrmParameters(scan_mode=ScanMode.FRESH)
        fills = []
        for seed in range(6):
            array = load_uniform(geometry, 0.5, rng=seed)
            result = QrmScheduler(geometry, params).schedule(array)
            fills.append(result.target_fill_fraction)
        empirical = statistics.mean(fills)
        assert estimate.expected_target_fill == pytest.approx(empirical, abs=0.02)

    def test_pipelined_mode_within_model_band(self):
        geometry = ArrayGeometry.square(30)
        estimate = predict_compaction_fill(geometry, 0.5)
        fills = []
        for seed in range(6):
            array = load_uniform(geometry, 0.5, rng=seed)
            result = QrmScheduler(geometry).schedule(array)
            fills.append(result.target_fill_fraction)
        assert statistics.mean(fills) == pytest.approx(
            estimate.expected_target_fill, abs=0.04
        )

    def test_monotone_in_fill(self):
        geometry = ArrayGeometry.square(50, 30)
        fills = [
            predict_compaction_fill(geometry, p).expected_target_fill
            for p in (0.3, 0.5, 0.7, 0.9)
        ]
        assert fills == sorted(fills)

    def test_saturates_at_full_loading(self):
        geometry = ArrayGeometry.square(20, 12)
        estimate = predict_compaction_fill(geometry, 1.0)
        assert estimate.expected_target_fill == pytest.approx(1.0)
        assert estimate.expected_defects == pytest.approx(0.0, abs=1e-9)

    def test_zero_loading_zero_fill(self):
        geometry = ArrayGeometry.square(20, 12)
        assert predict_compaction_fill(geometry, 0.0).expected_target_fill == 0.0

    def test_defect_accounting(self):
        geometry = ArrayGeometry.square(50, 30)
        estimate = predict_compaction_fill(geometry, 0.5)
        implied = 4 * ((geometry.target_height // 2) * (geometry.target_width // 2)) * (
            1 - estimate.expected_target_fill
        )
        assert estimate.expected_defects == pytest.approx(implied, rel=1e-6)

    def test_column_heights_decreasing(self):
        geometry = ArrayGeometry.square(50, 30)
        heights = predict_compaction_fill(geometry, 0.5).column_heights
        assert list(heights) == sorted(heights, reverse=True)

    def test_invalid_fill(self):
        geometry = ArrayGeometry.square(10)
        with pytest.raises(ConfigurationError):
            predict_compaction_fill(geometry, 1.5)

    def test_format(self):
        geometry = ArrayGeometry.square(10)
        assert "predicted target fill" in (
            predict_compaction_fill(geometry, 0.5).format()
        )


class TestMinimumFill:
    def test_threshold_in_sensible_band(self):
        geometry = ArrayGeometry.square(50, 30)
        threshold = minimum_fill_for_target(geometry, required_fill=0.999)
        assert 0.55 <= threshold <= 0.75
        # The threshold actually achieves the requirement.
        achieved = predict_compaction_fill(geometry, threshold)
        assert achieved.expected_target_fill >= 0.999

    def test_easier_targets_need_less(self):
        hard = ArrayGeometry.square(50, 30)
        easy = ArrayGeometry.square(50, 10)
        assert minimum_fill_for_target(easy) < minimum_fill_for_target(hard)

    def test_invalid_requirement(self):
        with pytest.raises(ConfigurationError):
            minimum_fill_for_target(ArrayGeometry.square(10), required_fill=0)
