"""Property tests: vectorised executor == site-by-site reference."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aod.executor import (
    apply_parallel_move,
    apply_parallel_move_reference,
)
from repro.aod.move import LineShift, ParallelMove
from repro.errors import MoveError
from repro.lattice.geometry import Direction

GRID_N = 8


@st.composite
def grids(draw):
    bits = draw(
        st.lists(st.booleans(), min_size=GRID_N * GRID_N, max_size=GRID_N * GRID_N)
    )
    return np.array(bits, dtype=bool).reshape(GRID_N, GRID_N)


@st.composite
def moves(draw):
    direction = draw(st.sampled_from(list(Direction)))
    steps = draw(st.integers(1, 3))
    n_lines = draw(st.integers(1, 3))
    lines = draw(
        st.lists(
            st.integers(0, GRID_N - 1),
            min_size=n_lines,
            max_size=n_lines,
            unique=True,
        )
    )
    shifts = []
    for line in lines:
        start = draw(st.integers(0, GRID_N - 2))
        stop = draw(st.integers(start + 1, GRID_N - 1))
        shifts.append(
            LineShift(direction, line, span_start=start, span_stop=stop, steps=steps)
        )
    return ParallelMove.of(shifts)


@given(grids(), moves())
@settings(max_examples=300)
def test_fast_executor_equals_reference(grid, move):
    fast = grid.copy()
    slow = grid.copy()
    fast_error = slow_error = False
    moved_fast = moved_slow = -1
    try:
        moved_fast = apply_parallel_move(fast, move)
    except MoveError:
        fast_error = True
    try:
        moved_slow = apply_parallel_move_reference(slow, move)
    except MoveError:
        slow_error = True

    assert fast_error == slow_error
    if not fast_error:
        assert moved_fast == moved_slow
        assert np.array_equal(fast, slow)
        # Conservation always holds on success.
        assert fast.sum() == grid.sum()


@given(grids(), moves())
@settings(max_examples=200)
def test_failed_moves_leave_grid_unchanged(grid, move):
    work = grid.copy()
    try:
        apply_parallel_move(work, move)
    except MoveError:
        assert np.array_equal(work, grid)


@given(grids(), moves())
@settings(max_examples=200)
def test_successful_moves_conserve_atoms(grid, move):
    work = grid.copy()
    try:
        apply_parallel_move(work, move)
    except MoveError:
        return
    assert work.sum() == grid.sum()
