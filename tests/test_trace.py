"""Tests for the simulation trace and the accelerator timeline."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.fpga.accelerator import QrmAccelerator
from repro.fpga.sim import (
    RateConsumerModule,
    SimulationTrace,
    Simulator,
    SourceModule,
)
from repro.lattice.loading import load_uniform


def _traced_run(n_tokens=5, every=1):
    sim = Simulator()
    trace = sim.attach_trace(every)
    inp = sim.new_fifo("in", 8)
    source = SourceModule("src", inp)
    source.load([(0, i) for i in range(n_tokens)])
    sink = RateConsumerModule("sink", inp, out=None)
    sink.set_upstream_done(lambda: source.done)
    sim.add_module(source)
    sim.add_module(sink)
    result = sim.run()
    return trace, result


class TestSimulationTrace:
    def test_samples_every_cycle(self):
        trace, result = _traced_run(n_tokens=5)
        assert len(trace.samples) == result.cycles
        assert trace.n_cycles == result.cycles

    def test_subsampling(self):
        trace, result = _traced_run(n_tokens=8, every=2)
        assert len(trace.samples) == -(-result.cycles // 2)

    def test_occupancy_series_bounded(self):
        trace, _ = _traced_run(n_tokens=5)
        series = trace.occupancy_series("in")
        assert all(0 <= v <= 8 for v in series)
        assert trace.peak_occupancy("in") == max(series)

    def test_unknown_fifo_gives_zeros(self):
        trace, _ = _traced_run()
        assert trace.peak_occupancy("nope") == 0

    def test_timeline_rendering(self):
        trace, _ = _traced_run(n_tokens=5)
        text = trace.render_timeline()
        assert "in" in text
        assert "cycle" in text

    def test_empty_trace_renders(self):
        assert "empty" in SimulationTrace().render_timeline()

    def test_module_busy_monotone(self):
        trace, _ = _traced_run(n_tokens=6)
        busy = [s.module_busy["src"] for s in trace.samples]
        assert busy == sorted(busy)


class TestAcceleratorTimeline:
    def test_trace_iteration(self, array20):
        accelerator = QrmAccelerator(array20.geometry)
        trace = accelerator.trace_iteration(array20, iteration=0)
        assert trace is not None
        assert trace.n_cycles > 0
        # The merged-record queue must actually see traffic.
        assert trace.peak_occupancy("merged") > 0
        text = trace.render_timeline()
        assert "merged" in text

    def test_trace_last_padded_iteration(self, geo8):
        from repro.lattice.array import AtomArray

        accelerator = QrmAccelerator(geo8)
        trace = accelerator.trace_iteration(AtomArray(geo8), iteration=3)
        assert trace.n_cycles > 0

    def test_iteration_out_of_range(self, array20):
        accelerator = QrmAccelerator(array20.geometry)
        with pytest.raises(SimulationError):
            accelerator.trace_iteration(array20, iteration=99)

    def test_trace_does_not_change_latency(self, geo20):
        array = load_uniform(geo20, 0.5, rng=3)
        base = QrmAccelerator(geo20).run(array).report.total_cycles
        accelerator = QrmAccelerator(geo20)
        accelerator.trace_iteration(array)
        again = accelerator.run(array).report.total_cycles
        assert base == again
