"""Unit tests for repro.aod.move."""

from __future__ import annotations

import pytest

from repro.aod.move import LineShift, ParallelMove
from repro.errors import MoveError
from repro.lattice.geometry import Direction


class TestLineShift:
    def test_sites_horizontal(self):
        shift = LineShift(Direction.EAST, line=2, span_start=1, span_stop=4)
        assert shift.sites() == [(2, 1), (2, 2), (2, 3)]

    def test_sites_vertical(self):
        shift = LineShift(Direction.SOUTH, line=3, span_start=0, span_stop=2)
        assert shift.sites() == [(0, 3), (1, 3)]

    def test_destination_east(self):
        shift = LineShift(Direction.EAST, 0, 0, 2, steps=3)
        assert shift.destination((0, 1)) == (0, 4)

    def test_destination_north(self):
        shift = LineShift(Direction.NORTH, 5, 4, 6, steps=2)
        assert shift.destination((4, 5)) == (2, 5)

    def test_leading_sites_east(self):
        shift = LineShift(Direction.EAST, 1, 2, 5, steps=2)
        assert shift.leading_sites() == [(1, 5), (1, 6)]

    def test_leading_sites_west(self):
        shift = LineShift(Direction.WEST, 1, 3, 6)
        assert shift.leading_sites() == [(1, 2)]

    def test_leading_sites_north(self):
        shift = LineShift(Direction.NORTH, 2, 4, 7)
        assert shift.leading_sites() == [(3, 2)]

    def test_leading_sites_south(self):
        shift = LineShift(Direction.SOUTH, 2, 4, 7)
        assert shift.leading_sites() == [(7, 2)]

    def test_vacated_sites_east(self):
        shift = LineShift(Direction.EAST, 0, 2, 6)
        assert shift.vacated_sites() == [(0, 2)]

    def test_vacated_sites_west(self):
        shift = LineShift(Direction.WEST, 0, 2, 6)
        assert shift.vacated_sites() == [(0, 5)]

    def test_span_length(self):
        assert LineShift(Direction.EAST, 0, 3, 8).span_length == 5

    def test_invalid_span_rejected(self):
        with pytest.raises(MoveError):
            LineShift(Direction.EAST, 0, 3, 3)
        with pytest.raises(MoveError):
            LineShift(Direction.EAST, 0, -1, 3)

    def test_invalid_steps_rejected(self):
        with pytest.raises(MoveError):
            LineShift(Direction.EAST, 0, 0, 2, steps=0)

    def test_negative_line_rejected(self):
        with pytest.raises(MoveError):
            LineShift(Direction.EAST, -1, 0, 2)


class TestParallelMove:
    def _shifts(self, lines, direction=Direction.EAST, steps=1):
        return [
            LineShift(direction, line, span_start=0, span_stop=3, steps=steps)
            for line in lines
        ]

    def test_of_infers_direction_and_steps(self):
        move = ParallelMove.of(self._shifts([0, 1]))
        assert move.direction is Direction.EAST
        assert move.steps == 1
        assert move.n_lines == 2

    def test_empty_rejected(self):
        with pytest.raises(MoveError):
            ParallelMove.of([])

    def test_mixed_direction_rejected(self):
        shifts = self._shifts([0]) + self._shifts([1], Direction.WEST)
        with pytest.raises(MoveError):
            ParallelMove.of(shifts)

    def test_mixed_steps_rejected(self):
        shifts = self._shifts([0]) + self._shifts([1], steps=2)
        with pytest.raises(MoveError):
            ParallelMove.of(shifts)

    def test_duplicate_line_rejected(self):
        with pytest.raises(MoveError):
            ParallelMove.of(self._shifts([2, 2]))

    def test_selected_lines_sorted(self):
        move = ParallelMove.of(self._shifts([4, 1, 3]))
        assert move.selected_lines() == [1, 3, 4]

    def test_selected_cross_union(self):
        shifts = [
            LineShift(Direction.EAST, 0, 0, 2),
            LineShift(Direction.EAST, 1, 4, 6),
        ]
        move = ParallelMove.of(shifts)
        assert move.selected_cross() == [0, 1, 4, 5]

    def test_cross_product_includes_unintended(self):
        shifts = [
            LineShift(Direction.EAST, 0, 0, 2),
            LineShift(Direction.EAST, 1, 4, 6),
        ]
        move = ParallelMove.of(shifts)
        cross = set(move.cross_product_sites())
        assert (0, 4) in cross  # row 0 never asked for column 4
        assert (1, 0) in cross

    def test_cross_product_vertical_orientation(self):
        shifts = [LineShift(Direction.SOUTH, 2, 0, 2)]
        move = ParallelMove.of(shifts)
        assert set(move.cross_product_sites()) == {(0, 2), (1, 2)}

    def test_sites_concatenates_shifts(self):
        move = ParallelMove.of(self._shifts([0, 1]))
        assert len(move.sites()) == 6

    def test_len(self):
        assert len(ParallelMove.of(self._shifts([0, 1, 2]))) == 3

    def test_tag_not_part_of_equality(self):
        a = ParallelMove.of(self._shifts([0]), tag="x")
        b = ParallelMove.of(self._shifts([0]), tag="y")
        assert a == b
