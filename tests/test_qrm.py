"""Unit and behavioural tests for the QRM scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aod.validator import validate_schedule
from repro.config import QrmParameters, ScanMode
from repro.core.qrm import QrmScheduler, rearrange
from repro.core.scan import is_young_diagram
from repro.errors import ConfigurationError
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry, Quadrant
from repro.lattice.loading import load_uniform


class TestParameters:
    def test_defaults_match_paper(self):
        params = QrmParameters()
        assert params.n_iterations == 4
        assert params.scan_mode is ScanMode.PIPELINED
        assert params.merge_mirror_quadrants
        assert not params.enable_repair

    def test_invalid_iterations(self):
        with pytest.raises(ConfigurationError):
            QrmParameters(n_iterations=0)

    def test_invalid_repair_budget(self):
        with pytest.raises(ConfigurationError):
            QrmParameters(max_repair_moves=-1)


class TestScheduleBasics:
    def test_geometry_mismatch_rejected(self, geo8, geo20):
        scheduler = QrmScheduler(geo20)
        with pytest.raises(ValueError):
            scheduler.schedule(AtomArray(geo8))

    def test_empty_array_converges_immediately(self, geo8):
        result = QrmScheduler(geo8).schedule(AtomArray(geo8))
        assert result.converged
        assert result.n_moves == 0
        assert result.iterations_used == 1

    def test_full_array_needs_no_moves(self, geo8):
        result = QrmScheduler(geo8).schedule(AtomArray.full(geo8))
        assert result.n_moves == 0
        assert result.defect_free

    def test_schedule_replays_cleanly(self, array20):
        result = QrmScheduler(array20.geometry).schedule(array20)
        report = validate_schedule(array20, result.schedule)
        assert report.ok
        assert report.final_array == result.final

    def test_atoms_conserved(self, array20):
        result = QrmScheduler(array20.geometry).schedule(array20)
        assert result.final.n_atoms == array20.n_atoms

    def test_initial_array_not_mutated(self, array20):
        snapshot = array20.copy()
        QrmScheduler(array20.geometry).schedule(array20)
        assert array20 == snapshot

    def test_result_metadata(self, array20):
        result = QrmScheduler(array20.geometry).schedule(array20)
        assert result.algorithm == "qrm"
        assert result.wall_time_s > 0
        assert result.analysis_ops > 0
        assert 1 <= result.iterations_used <= 4
        assert len(result.pass_outcomes) == 2 * result.iterations_used

    def test_rearrange_convenience(self, array20):
        result = rearrange(array20)
        assert result.algorithm == "qrm"


class TestConvergence:
    def test_quadrants_reach_young_fixpoint_fresh(self, geo20):
        array = load_uniform(geo20, 0.5, rng=3)
        params = QrmParameters(n_iterations=4, scan_mode=ScanMode.FRESH)
        result = QrmScheduler(geo20, params).schedule(array)
        assert result.converged
        for frame in geo20.quadrant_frames():
            assert is_young_diagram(frame.extract(result.final.grid))

    def test_fresh_converges_after_one_working_iteration(self, geo20):
        array = load_uniform(geo20, 0.5, rng=3)
        params = QrmParameters(n_iterations=8, scan_mode=ScanMode.FRESH)
        result = QrmScheduler(geo20, params).schedule(array)
        # One compaction round plus one empty verification round.
        assert result.iterations_used == 2

    def test_pipelined_reaches_young_fixpoint_given_headroom(self, geo20):
        array = load_uniform(geo20, 0.5, rng=5)
        params = QrmParameters(n_iterations=16, scan_mode=ScanMode.PIPELINED)
        result = QrmScheduler(geo20, params).schedule(array)
        assert result.converged
        for frame in geo20.quadrant_frames():
            assert is_young_diagram(frame.extract(result.final.grid))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_paper_iteration_budget_suffices_at_50(self, seed):
        # "In our experiment, four iterations were used to complete the
        # entire process."  By the fourth iteration the remaining work
        # must be negligible compared to the first.
        geo = ArrayGeometry.square(50, 30)
        array = load_uniform(geo, 0.5, rng=seed)
        result = QrmScheduler(geo).schedule(array)
        first = result.iterations[0]
        last = result.iterations[-1]
        assert last.n_commands <= max(10, 0.01 * first.n_commands)

    def test_pipelined_skips_stale_commands(self, geo50):
        array = load_uniform(geo50, 0.5, rng=7)
        result = QrmScheduler(geo50).schedule(array)
        assert sum(i.n_skipped_stale for i in result.iterations) > 0

    def test_fresh_never_skips_stale(self, geo50):
        array = load_uniform(geo50, 0.5, rng=7)
        params = QrmParameters(scan_mode=ScanMode.FRESH)
        result = QrmScheduler(geo50, params).schedule(array)
        assert sum(i.n_skipped_stale for i in result.iterations) == 0


class TestMovementStructure:
    def test_moves_are_centre_ward(self, array20):
        """Every move must decrease the summed distance to the centre."""
        result = QrmScheduler(array20.geometry).schedule(array20)
        geo = array20.geometry
        cr = (geo.height - 1) / 2.0
        cc = (geo.width - 1) / 2.0
        grid = array20.grid.copy()

        def cost(g):
            rows, cols = np.nonzero(g)
            return float(np.abs(rows - cr).sum() + np.abs(cols - cc).sum())

        from repro.aod.executor import apply_parallel_move

        previous = cost(grid)
        for move in result.schedule:
            apply_parallel_move(grid, move)
            current = cost(grid)
            assert current < previous
            previous = current

    def test_quadrant_populations_invariant(self, array20):
        """QRM never moves atoms across the quadrant boundary."""
        result = QrmScheduler(array20.geometry).schedule(array20)
        for quadrant in Quadrant:
            assert (
                result.final.quadrant_count(quadrant)
                == array20.quadrant_count(quadrant)
            )

    def test_all_moves_single_step(self, array20):
        result = QrmScheduler(array20.geometry).schedule(array20)
        assert all(move.steps == 1 for move in result.schedule)

    def test_merged_moves_have_multiple_lines(self, geo50):
        array = load_uniform(geo50, 0.5, rng=11)
        result = QrmScheduler(geo50).schedule(array)
        assert any(len(move) > 1 for move in result.schedule)


class TestRepairMode:
    def test_repair_reaches_defect_free(self, geo20):
        array = load_uniform(geo20, 0.55, rng=21)
        params = QrmParameters(enable_repair=True)
        result = QrmScheduler(geo20, params).schedule(array)
        assert result.defect_free
        assert result.repair_moves > 0

    def test_repair_schedule_still_valid(self, geo20):
        array = load_uniform(geo20, 0.55, rng=21)
        params = QrmParameters(enable_repair=True)
        result = QrmScheduler(geo20, params).schedule(array)
        report = validate_schedule(array, result.schedule)
        assert report.ok
        assert report.final_array == result.final

    def test_repair_disabled_leaves_defects(self, geo20):
        array = load_uniform(geo20, 0.5, rng=22)
        baseline = QrmScheduler(geo20).schedule(array)
        if baseline.defects == 0:
            pytest.skip("seed happened to assemble perfectly")
        assert baseline.repair_moves == 0
