"""Tests for the distributed dispatch fabric and its worker protocol."""

from __future__ import annotations

import contextlib
import io
import os
import queue
import re
import struct
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import dispatch_sleeper

import repro
from repro.campaign import (
    CampaignSpec,
    DistributedExecutor,
    ExperimentCampaign,
    RunJournal,
    ScenarioCell,
    SubprocessWorkerTransport,
    TcpWorkerTransport,
    TrialSpec,
    WorkerSpec,
    parse_workers,
    read_journal,
    run_trial,
)
from repro.campaign.protocol import (
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    function_path,
    parse_hostport,
    read_frame,
    read_handshake,
    resolve_function,
    write_frame,
    write_handshake,
)
from repro.campaign.worker import serve
from repro.errors import ConfigurationError, ExecutionError

TESTS_DIR = str(Path(__file__).resolve().parent)


# Module-level work functions: they cross the transport as import paths
# ("test_dispatch:name"), so worker processes must be launched with this
# directory on PYTHONPATH (see `child_pythonpath` / `worker_daemon`).


def square(value: int) -> int:
    return value * value


def crash_once(item):
    """Kill this worker process the first time the marked item runs."""
    flag_path, value, victim = item
    if value == victim and not Path(flag_path).exists():
        Path(flag_path).touch()
        os._exit(1)
    return value * value


def child_pythonpath() -> str:
    """PYTHONPATH putting both the package and this test module in reach."""
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    return os.pathsep.join([package_root, TESTS_DIR])


@contextlib.contextmanager
def worker_daemon(max_connections: int | None = None):
    """A real ``repro worker --listen`` daemon on a free port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = child_pythonpath()
    command = [
        sys.executable,
        "-m",
        "repro.campaign.worker",
        "--listen",
        "127.0.0.1:0",
    ]
    if max_connections is not None:
        command += ["--max-connections", str(max_connections)]
    process = subprocess.Popen(
        command, stderr=subprocess.PIPE, text=True, env=env
    )
    try:
        banner = process.stderr.readline()
        match = re.search(r"listening on ([\d.]+):(\d+)", banner)
        assert match, f"no listen banner in {banner!r}"
        yield process, WorkerSpec(host=match.group(1), port=int(match.group(2)))
    finally:
        if process.poll() is None:
            process.kill()
        process.stderr.close()
        process.wait()


class TestProtocol:
    def test_frame_round_trip(self):
        stream = io.BytesIO()
        write_frame(stream, (3, {"metrics": [1.0, 2.0]}))
        write_frame(stream, "second")
        stream.seek(0)
        assert read_frame(stream) == (3, {"metrics": [1.0, 2.0]})
        assert read_frame(stream) == "second"
        assert read_frame(stream) is None

    def test_truncated_frame_raises(self):
        stream = io.BytesIO()
        write_frame(stream, "payload")
        data = stream.getvalue()
        with pytest.raises(EOFError):
            read_frame(io.BytesIO(data[:-2]))
        with pytest.raises(EOFError):
            read_frame(io.BytesIO(data[:2]))

    def test_function_path_round_trip(self):
        path = function_path(run_trial)
        assert path == "repro.campaign.trial:run_trial"
        assert resolve_function(path) is run_trial

    def test_function_path_rejects_non_module_level(self):
        with pytest.raises(ConfigurationError):
            function_path(lambda x: x)

        def local(x):
            return x

        with pytest.raises(ConfigurationError):
            function_path(local)

    def test_resolve_rejects_malformed(self):
        with pytest.raises(ConfigurationError):
            resolve_function("no-colon")
        with pytest.raises(ConfigurationError):
            resolve_function("math:pi")  # not callable

    def test_oversized_frame_header_rejected_before_allocation(self):
        # A forged 2 GiB length must raise, not attempt the allocation.
        stream = io.BytesIO(struct.pack(">I", 1 << 31))
        with pytest.raises(ConfigurationError, match="limit"):
            read_frame(stream)
        # The guard is tunable: the same frame passes a larger budget...
        payload = io.BytesIO()
        write_frame(payload, b"x" * 64)
        with pytest.raises(ConfigurationError, match="limit"):
            read_frame(io.BytesIO(payload.getvalue()), max_bytes=16)
        assert read_frame(io.BytesIO(payload.getvalue())) == b"x" * 64

    def test_handshake_round_trip(self):
        stream = io.BytesIO()
        write_handshake(stream, {"fn": "builtins:abs"})
        write_frame(stream, (0, -3))
        stream.seek(0)
        assert read_handshake(stream) == {"fn": "builtins:abs"}
        assert read_frame(stream) == (0, -3)

    def test_handshake_rejects_wrong_magic(self):
        # A text-protocol peer (e.g. HTTP) can never start with the
        # magic byte; the failure must be a clear ConfigurationError.
        stream = io.BytesIO(b"GET / HTTP/1.1\r\n")
        with pytest.raises(ConfigurationError, match="magic"):
            read_handshake(stream)

    def test_handshake_rejects_unknown_version(self):
        stream = io.BytesIO()
        write_handshake(stream, {"fn": "builtins:abs"})
        forged = bytearray(stream.getvalue())
        assert forged[1] == PROTOCOL_VERSION
        forged[1] = PROTOCOL_VERSION + 1
        with pytest.raises(ConfigurationError, match="version"):
            read_handshake(io.BytesIO(bytes(forged)))
        assert forged[0] == PROTOCOL_MAGIC

    def test_handshake_clean_eof_and_truncation(self):
        assert read_handshake(io.BytesIO()) is None
        with pytest.raises(EOFError):
            read_handshake(io.BytesIO(bytes([PROTOCOL_MAGIC])))

    def test_parse_hostport(self):
        assert parse_hostport("gpu-01:7501") == ("gpu-01", 7501)
        assert parse_hostport(" 127.0.0.1:80 ") == ("127.0.0.1", 80)
        assert parse_hostport("::1:7500") == ("::1", 7500)
        for bad in ("nohost", ":7501", "host:", "host:abc", "host:70000"):
            with pytest.raises(ConfigurationError):
                parse_hostport(bad)


class TestWorkerLoop:
    def _serve(self, handshake, *frames):
        stdin = io.BytesIO()
        if handshake is not None:
            write_handshake(stdin, handshake)
        for frame in frames:
            write_frame(stdin, frame)
        stdin.seek(0)
        stdout = io.BytesIO()
        served = serve(stdin, stdout)
        stdout.seek(0)
        results = []
        while (frame := read_frame(stdout)) is not None:
            results.append(frame)
        return served, results

    def test_serves_and_tags_results(self):
        served, results = self._serve({"fn": "builtins:abs"}, (0, -3), (1, 4))
        assert served == 2
        assert results == [("ok", 0, 3), ("ok", 1, 4)]

    def test_error_frames_do_not_kill_the_worker(self):
        served, results = self._serve({"fn": "builtins:len"}, (0, 123), (1, "ok"))
        assert served == 2
        assert results[0][0] == "error"
        assert results[0][1] == 0
        assert "TypeError" in results[0][2]
        assert results[1] == ("ok", 1, 2)

    def test_error_frames_carry_a_traceback_tail(self):
        _, results = self._serve({"fn": "builtins:len"}, (0, 123))
        status, _, message = results[0]
        assert status == "error"
        assert message.startswith("TypeError: ")
        assert "Traceback (most recent call last)" in message

    def test_pings_answered_and_not_counted_as_work(self):
        served, results = self._serve(
            {"fn": "builtins:abs"}, ("ping", 7), (0, -3), ("ping", 8)
        )
        assert served == 1
        assert ("ok", 0, 3) in results
        assert ("pong", 7, None) in results
        assert ("pong", 8, None) in results

    def test_empty_session(self):
        served, results = self._serve(None)
        assert served == 0
        assert results == []

    def test_garbage_handshake_raises(self):
        with pytest.raises(ConfigurationError, match="magic"):
            serve(io.BytesIO(b"\x00garbage"), io.BytesIO())


def trial_items(n_seeds: int = 4) -> list[TrialSpec]:
    cell = ScenarioCell(algorithm="qrm", size=8, fill=0.5)
    return [
        TrialSpec(cell=cell, seed_index=index, master_seed=7)
        for index in range(n_seeds)
    ]


class TestWorkerSpec:
    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            WorkerSpec(slots=0)
        with pytest.raises(ConfigurationError):
            WorkerSpec(port=0)
        with pytest.raises(ConfigurationError):
            SubprocessWorkerTransport(WorkerSpec(host="gpu-farm-01"))
        with pytest.raises(ConfigurationError, match="port"):
            TcpWorkerTransport(WorkerSpec(host="gpu-farm-01"))
        assert not WorkerSpec(host="gpu-farm-01").local

    def test_parse(self):
        spec = WorkerSpec.parse("gpu-01:7501")
        assert (spec.host, spec.port, spec.slots) == ("gpu-01", 7501, 1)

    def test_parse_workers(self):
        assert parse_workers(None) == (WorkerSpec(),)
        assert parse_workers(3) == (WorkerSpec(slots=3),)
        assert parse_workers("2") == (WorkerSpec(slots=2),)
        specs = parse_workers("a:1, b:2,")
        assert [(spec.host, spec.port) for spec in specs] == [("a", 1), ("b", 2)]
        with pytest.raises(ConfigurationError):
            parse_workers("  ")
        with pytest.raises(ConfigurationError):
            parse_workers("host:bad")


class TestSubprocessTransportClose:
    class _Stream:
        def __init__(self, fail: bool = False):
            self.fail = fail
            self.closed = False

        def close(self):
            if self.fail:
                raise OSError("already gone")
            self.closed = True

    class _Process:
        def __init__(self, stdin, stdout):
            self.stdin = stdin
            self.stdout = stdout

        def wait(self, timeout=None):
            return 0

    def test_close_is_idempotent_without_start(self):
        transport = SubprocessWorkerTransport(WorkerSpec())
        transport.close()
        transport.close()

    def test_stdin_close_error_does_not_leak_stdout(self):
        stdin = self._Stream(fail=True)
        stdout = self._Stream()
        transport = SubprocessWorkerTransport(WorkerSpec())
        transport._process = self._Process(stdin, stdout)
        transport.close()
        assert stdout.closed, "stdout leaked after stdin.close() raised"
        assert transport._process is None


class TestDistributedExecutor:
    def test_matches_in_process_results(self):
        items = trial_items(4)
        expected = {index: run_trial(item) for index, item in enumerate(items)}
        executor = DistributedExecutor(workers=[WorkerSpec(slots=2)])
        assert dict(executor.run(run_trial, items)) == expected

    def test_campaign_aggregates_match_serial(self):
        spec = CampaignSpec(
            name="dispatch-unit",
            algorithms=("qrm",),
            sizes=(8,),
            fills=(0.5,),
            n_seeds=4,
        )
        serial = ExperimentCampaign(spec).run()
        distributed = ExperimentCampaign(
            spec, executor=DistributedExecutor(workers=[WorkerSpec(slots=2)])
        ).run()
        assert serial.to_csv() == distributed.to_csv()

    def test_empty_items(self):
        executor = DistributedExecutor(workers=[WorkerSpec()])
        assert list(executor.run(run_trial, [])) == []

    def test_remote_error_surfaces_with_traceback(self):
        bad = TrialSpec(
            cell=ScenarioCell(algorithm="no-such-algorithm", size=8),
            seed_index=0,
            master_seed=0,
        )
        executor = DistributedExecutor(workers=[WorkerSpec()])
        with pytest.raises(ExecutionError, match="remotely") as excinfo:
            list(executor.run(run_trial, [bad]))
        assert "Traceback (most recent call last)" in str(excinfo.value)

    def test_executor_validation(self):
        with pytest.raises(ConfigurationError):
            DistributedExecutor(ping_interval=0)
        with pytest.raises(ConfigurationError):
            DistributedExecutor(ping_timeout=-1)
        with pytest.raises(ConfigurationError):
            DistributedExecutor(straggler_factor=1.0)
        with pytest.raises(ConfigurationError):
            DistributedExecutor(max_attempts=0)

    def test_no_slots_rejected(self):
        executor = DistributedExecutor(workers=[])
        with pytest.raises(ConfigurationError, match="slot"):
            list(executor.run(run_trial, trial_items(1)))

    def test_worker_killed_mid_run_redispatches(self, tmp_path):
        # Two local subprocess workers; one self-destructs the first
        # time it executes the marked unit.  The in-flight unit must be
        # re-dispatched to the survivor and every result arrive exactly
        # once, with the correct value.
        flag = tmp_path / "crashed"
        spec = WorkerSpec(slots=2, env={"PYTHONPATH": TESTS_DIR})
        executor = DistributedExecutor(workers=[spec])
        items = [(str(flag), value, 5) for value in range(12)]
        results = list(executor.run(crash_once, items))
        assert flag.exists(), "the crash path never ran"
        assert sorted(index for index, _ in results) == list(range(12))
        assert dict(results) == {index: index * index for index in range(12)}

    def test_long_unit_survives_on_pings(self):
        # The unit takes ~2 s but the silence deadline is 0.8 s: only
        # the worker's concurrent pong replies keep it alive.  A TCP
        # daemon (already booted) keeps interpreter start-up out of the
        # deadline window; the work function lives in an import-light
        # module so per-connection resolution is instant too.
        with worker_daemon() as (_, spec):
            executor = DistributedExecutor(
                workers=[spec], ping_interval=0.1, ping_timeout=0.8
            )
            results = dict(executor.run(dispatch_sleeper.sleepy_square, [7]))
        assert results == {0: 49}


class TestTcpTransport:
    def test_round_trip_with_pings(self):
        with worker_daemon(max_connections=1) as (_, spec):
            transport = TcpWorkerTransport(spec)
            transport.start("builtins:abs")
            transport.submit(0, -5)
            assert transport.next_result() == ("ok", 0, 5)
            transport.ping(3)
            assert transport.next_result() == ("pong", 3, None)
            transport.submit(1, 4)
            assert transport.next_result() == ("ok", 1, 4)
            transport.close()
            transport.close()  # idempotent

    def test_sequential_connections_resolve_functions_independently(self):
        with worker_daemon(max_connections=2) as (process, spec):
            first = TcpWorkerTransport(spec)
            first.start("builtins:abs")
            first.submit(0, -9)
            assert first.next_result() == ("ok", 0, 9)
            first.close()
            second = TcpWorkerTransport(spec)
            second.start("test_dispatch:square")
            second.submit(0, 9)
            assert second.next_result() == ("ok", 0, 81)
            second.close()
            assert process.wait(timeout=10) == 0

    def test_unreachable_worker_fails_clearly(self):
        transport = TcpWorkerTransport(
            WorkerSpec(host="127.0.0.1", port=1), connect_timeout=0.5
        )
        with pytest.raises(ExecutionError, match="cannot reach"):
            transport.start("builtins:abs")

    def test_executor_over_two_daemons_matches_serial(self):
        items = trial_items(6)
        expected = {index: run_trial(item) for index, item in enumerate(items)}
        with worker_daemon() as (_, spec_a), worker_daemon() as (_, spec_b):
            executor = DistributedExecutor(workers=[spec_a, spec_b])
            assert dict(executor.run(run_trial, items)) == expected

    def test_kill_one_daemon_mid_run_redispatches(self):
        items = [(None, value, None) for value in range(20)]
        expected = {index: index * index for index in range(20)}
        with worker_daemon() as (victim, spec_a), worker_daemon() as (_, spec_b):
            executor = DistributedExecutor(workers=[spec_a, spec_b])
            results = {}
            for count, (index, value) in enumerate(
                executor.run(crash_once, items)
            ):
                results[index] = value
                if count == 2:
                    victim.kill()
            assert results == expected

    def test_campaign_with_journal_shards_into_one_resumable_journal(
        self, tmp_path
    ):
        spec = CampaignSpec(
            name="dispatch-journal",
            algorithms=("qrm",),
            sizes=(8,),
            fills=(0.5,),
            n_seeds=6,
        )
        serial = ExperimentCampaign(spec).run()
        journal_path = tmp_path / "distributed.jsonl"
        with worker_daemon() as (_, spec_a), worker_daemon() as (_, spec_b):
            journal = RunJournal.fresh(journal_path)
            distributed = ExperimentCampaign(
                spec,
                executor=DistributedExecutor(workers=[spec_a, spec_b]),
                journal=journal,
            ).run()
            journal.close()
        assert serial.to_csv() == distributed.to_csv()
        replay = read_journal(journal_path)
        assert replay.completed
        assert len(replay.results) == 6
        # The single coordinator journal is resumable: a re-run replays
        # every sharded trial without touching an executor.
        resumed = ExperimentCampaign(
            spec, journal=RunJournal.resume(journal_path)
        ).run()
        assert resumed.journal_replays == 6
        assert resumed.to_csv() == serial.to_csv()


class _ScriptedTransport:
    """In-memory transport running ``fn`` inline, with scripted failures.

    ``trip(index)`` returning True simulates a worker crash mid-unit:
    the submit is swallowed and the receiver sees EOF.  ``deaf`` makes
    the worker accept work but never answer (result or pong) — the
    ping-deadline path.  ``black_hole`` swallows those unit indices
    while still answering pings — the straggler path.
    """

    _DEAD = object()

    def __init__(self, fn, trip=None, deaf=False, black_hole=()):
        self.fn = fn
        self.trip = trip or (lambda index: False)
        self.deaf = deaf
        self.black_hole = set(black_hole)
        self.frames: queue.SimpleQueue = queue.SimpleQueue()
        self.alive = True
        self.submitted: list[int] = []

    def start(self, fn_path: str) -> None:
        pass

    def submit(self, index: int, item) -> None:
        if not self.alive:
            raise ExecutionError("worker gone")
        self.submitted.append(index)
        if self.trip(index):
            self.alive = False
            self.frames.put(self._DEAD)
            return
        if self.deaf or index in self.black_hole:
            return
        self.frames.put(("ok", index, self.fn(item)))

    def ping(self, token: int) -> None:
        if not self.alive:
            raise ExecutionError("worker gone")
        if not self.deaf:
            self.frames.put(("pong", token, None))

    def next_result(self):
        frame = self.frames.get()
        if frame is self._DEAD:
            raise ExecutionError("worker crashed")
        return frame

    def close(self) -> None:
        self.alive = False
        self.frames.put(self._DEAD)


class TestFaultInjection:
    def test_deaf_worker_hits_ping_deadline_and_unit_redispatches(self):
        transports = []

        def factory(spec):
            transport = _ScriptedTransport(square, deaf=not transports)
            transports.append(transport)
            return transport

        executor = DistributedExecutor(
            workers=[WorkerSpec(slots=2)],
            transport_factory=factory,
            ping_interval=0.02,
            ping_timeout=0.1,
        )
        items = list(range(6))
        results = dict(executor.run(square, items))
        assert results == {index: index * index for index in items}
        assert all(not transport.alive for transport in transports)

    def test_single_deaf_worker_fails_with_ping_reason(self):
        executor = DistributedExecutor(
            workers=[WorkerSpec()],
            transport_factory=lambda spec: _ScriptedTransport(square, deaf=True),
            ping_interval=0.02,
            ping_timeout=0.1,
        )
        with pytest.raises(ExecutionError, match="no result or pong"):
            dict(executor.run(square, [1, 2]))

    def test_repeatedly_fatal_unit_exhausts_attempts(self):
        # Every worker the poisoned unit lands on dies; after
        # max_attempts the run must fail rather than spin forever.
        def factory(spec):
            return _ScriptedTransport(square, trip=lambda index: index == 1)

        executor = DistributedExecutor(
            workers=[WorkerSpec(slots=4)],
            transport_factory=factory,
            max_attempts=2,
        )
        with pytest.raises(ExecutionError, match="giving up|workers died"):
            dict(executor.run(square, list(range(4))))

    def test_straggler_respawns_to_an_idle_worker(self):
        transports = []

        def factory(spec):
            transport = _ScriptedTransport(
                square, black_hole=() if transports else (0,)
            )
            transports.append(transport)
            return transport

        executor = DistributedExecutor(
            workers=[WorkerSpec(slots=2)],
            transport_factory=factory,
            ping_interval=0.02,
            straggler_factor=2.0,
            min_straggler_s=0.05,
        )
        items = list(range(8))
        results = dict(executor.run(square, items))
        assert results == {index: index * index for index in items}
        # The swallowed unit 0 was speculatively re-dispatched to the
        # healthy worker after the median-based threshold expired.
        assert 0 in transports[1].submitted

    @settings(max_examples=20, deadline=None)
    @given(
        worker_slots=st.lists(st.integers(1, 2), min_size=1, max_size=3),
        n_items=st.integers(1, 12),
        data=st.data(),
    )
    def test_kill_one_worker_property(self, worker_slots, n_items, data):
        """At-most-once completion over worker count × slots × failure index.

        One worker crashes mid-unit at a Hypothesis-chosen index.  With
        surviving workers the run must complete every unit exactly once
        with correct values; with none it must fail loudly.
        """
        fail_at = data.draw(
            st.integers(0, n_items - 1), label="failure index"
        )
        state = {"tripped": False}

        def trip(index):
            if index == fail_at and not state["tripped"]:
                state["tripped"] = True
                return True
            return False

        executor = DistributedExecutor(
            workers=[WorkerSpec(slots=slots) for slots in worker_slots],
            transport_factory=lambda spec: _ScriptedTransport(square, trip=trip),
            ping_interval=0.02,
            ping_timeout=0.5,
        )
        items = list(range(n_items))
        total_slots = min(sum(worker_slots), n_items)
        if total_slots == 1:
            with pytest.raises(ExecutionError, match="workers died"):
                dict(executor.run(square, items))
            return
        yielded = list(executor.run(square, items))
        indices = [index for index, _ in yielded]
        assert sorted(indices) == items, "lost or duplicated units"
        assert len(set(indices)) == len(indices)
        assert dict(yielded) == {index: index * index for index in items}
        assert state["tripped"], "the scripted crash never fired"
