"""Tests for the multi-host dispatch skeleton and its worker protocol."""

from __future__ import annotations

import io
import struct

import pytest

from repro.campaign import (
    CampaignSpec,
    DistributedExecutor,
    ExperimentCampaign,
    ScenarioCell,
    SubprocessWorkerTransport,
    TrialSpec,
    WorkerSpec,
    run_trial,
)
from repro.campaign.protocol import (
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    function_path,
    read_frame,
    read_handshake,
    resolve_function,
    write_frame,
    write_handshake,
)
from repro.campaign.worker import serve
from repro.errors import ConfigurationError, ExecutionError


class TestProtocol:
    def test_frame_round_trip(self):
        stream = io.BytesIO()
        write_frame(stream, (3, {"metrics": [1.0, 2.0]}))
        write_frame(stream, "second")
        stream.seek(0)
        assert read_frame(stream) == (3, {"metrics": [1.0, 2.0]})
        assert read_frame(stream) == "second"
        assert read_frame(stream) is None

    def test_truncated_frame_raises(self):
        stream = io.BytesIO()
        write_frame(stream, "payload")
        data = stream.getvalue()
        with pytest.raises(EOFError):
            read_frame(io.BytesIO(data[:-2]))
        with pytest.raises(EOFError):
            read_frame(io.BytesIO(data[:2]))

    def test_function_path_round_trip(self):
        path = function_path(run_trial)
        assert path == "repro.campaign.trial:run_trial"
        assert resolve_function(path) is run_trial

    def test_function_path_rejects_non_module_level(self):
        with pytest.raises(ConfigurationError):
            function_path(lambda x: x)

        def local(x):
            return x

        with pytest.raises(ConfigurationError):
            function_path(local)

    def test_resolve_rejects_malformed(self):
        with pytest.raises(ConfigurationError):
            resolve_function("no-colon")
        with pytest.raises(ConfigurationError):
            resolve_function("math:pi")  # not callable

    def test_oversized_frame_header_rejected_before_allocation(self):
        # A forged 2 GiB length must raise, not attempt the allocation.
        stream = io.BytesIO(struct.pack(">I", 1 << 31))
        with pytest.raises(ConfigurationError, match="limit"):
            read_frame(stream)
        # The guard is tunable: the same frame passes a larger budget...
        payload = io.BytesIO()
        write_frame(payload, b"x" * 64)
        with pytest.raises(ConfigurationError, match="limit"):
            read_frame(io.BytesIO(payload.getvalue()), max_bytes=16)
        assert read_frame(io.BytesIO(payload.getvalue())) == b"x" * 64

    def test_handshake_round_trip(self):
        stream = io.BytesIO()
        write_handshake(stream, {"fn": "builtins:abs"})
        write_frame(stream, (0, -3))
        stream.seek(0)
        assert read_handshake(stream) == {"fn": "builtins:abs"}
        assert read_frame(stream) == (0, -3)

    def test_handshake_rejects_wrong_magic(self):
        # A text-protocol peer (e.g. HTTP) can never start with the
        # magic byte; the failure must be a clear ConfigurationError.
        stream = io.BytesIO(b"GET / HTTP/1.1\r\n")
        with pytest.raises(ConfigurationError, match="magic"):
            read_handshake(stream)

    def test_handshake_rejects_unknown_version(self):
        stream = io.BytesIO()
        write_handshake(stream, {"fn": "builtins:abs"})
        forged = bytearray(stream.getvalue())
        assert forged[1] == PROTOCOL_VERSION
        forged[1] = PROTOCOL_VERSION + 1
        with pytest.raises(ConfigurationError, match="version"):
            read_handshake(io.BytesIO(bytes(forged)))
        assert forged[0] == PROTOCOL_MAGIC

    def test_handshake_clean_eof_and_truncation(self):
        assert read_handshake(io.BytesIO()) is None
        with pytest.raises(EOFError):
            read_handshake(io.BytesIO(bytes([PROTOCOL_MAGIC])))


class TestWorkerLoop:
    def _serve(self, handshake, *frames):
        stdin = io.BytesIO()
        if handshake is not None:
            write_handshake(stdin, handshake)
        for frame in frames:
            write_frame(stdin, frame)
        stdin.seek(0)
        stdout = io.BytesIO()
        served = serve(stdin, stdout)
        stdout.seek(0)
        results = []
        while (frame := read_frame(stdout)) is not None:
            results.append(frame)
        return served, results

    def test_serves_and_tags_results(self):
        served, results = self._serve({"fn": "builtins:abs"}, (0, -3), (1, 4))
        assert served == 2
        assert results == [("ok", 0, 3), ("ok", 1, 4)]

    def test_error_frames_do_not_kill_the_worker(self):
        served, results = self._serve({"fn": "builtins:len"}, (0, 123), (1, "ok"))
        assert served == 2
        assert results[0][0] == "error"
        assert results[0][1] == 0
        assert "TypeError" in results[0][2]
        assert results[1] == ("ok", 1, 2)

    def test_empty_session(self):
        served, results = self._serve(None)
        assert served == 0
        assert results == []

    def test_garbage_handshake_raises(self):
        with pytest.raises(ConfigurationError, match="magic"):
            serve(io.BytesIO(b"\x00garbage"), io.BytesIO())


def trial_items(n_seeds: int = 4) -> list[TrialSpec]:
    cell = ScenarioCell(algorithm="qrm", size=8, fill=0.5)
    return [
        TrialSpec(cell=cell, seed_index=index, master_seed=7)
        for index in range(n_seeds)
    ]


class TestDistributedExecutor:
    def test_matches_in_process_results(self):
        items = trial_items(4)
        expected = {index: run_trial(item) for index, item in enumerate(items)}
        executor = DistributedExecutor(workers=[WorkerSpec(slots=2)])
        assert dict(executor.run(run_trial, items)) == expected

    def test_campaign_aggregates_match_serial(self):
        spec = CampaignSpec(
            name="dispatch-unit",
            algorithms=("qrm",),
            sizes=(8,),
            fills=(0.5,),
            n_seeds=4,
        )
        serial = ExperimentCampaign(spec).run()
        distributed = ExperimentCampaign(
            spec, executor=DistributedExecutor(workers=[WorkerSpec(slots=2)])
        ).run()
        assert serial.to_csv() == distributed.to_csv()

    def test_empty_items(self):
        executor = DistributedExecutor(workers=[WorkerSpec()])
        assert list(executor.run(run_trial, [])) == []

    def test_remote_error_surfaces(self):
        bad = TrialSpec(
            cell=ScenarioCell(algorithm="no-such-algorithm", size=8),
            seed_index=0,
            master_seed=0,
        )
        executor = DistributedExecutor(workers=[WorkerSpec()])
        with pytest.raises(ExecutionError, match="remotely"):
            list(executor.run(run_trial, [bad]))

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            WorkerSpec(slots=0)
        with pytest.raises(ConfigurationError):
            SubprocessWorkerTransport(WorkerSpec(host="gpu-farm-01"))
        assert not WorkerSpec(host="gpu-farm-01").local
