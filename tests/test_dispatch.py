"""Tests for the multi-host dispatch skeleton and its worker protocol."""

from __future__ import annotations

import io

import pytest

from repro.campaign import (
    CampaignSpec,
    DistributedExecutor,
    ExperimentCampaign,
    ScenarioCell,
    SubprocessWorkerTransport,
    TrialSpec,
    WorkerSpec,
    run_trial,
)
from repro.campaign.protocol import (
    function_path,
    read_frame,
    resolve_function,
    write_frame,
)
from repro.campaign.worker import serve
from repro.errors import ConfigurationError, ExecutionError


class TestProtocol:
    def test_frame_round_trip(self):
        stream = io.BytesIO()
        write_frame(stream, (3, {"metrics": [1.0, 2.0]}))
        write_frame(stream, "second")
        stream.seek(0)
        assert read_frame(stream) == (3, {"metrics": [1.0, 2.0]})
        assert read_frame(stream) == "second"
        assert read_frame(stream) is None

    def test_truncated_frame_raises(self):
        stream = io.BytesIO()
        write_frame(stream, "payload")
        data = stream.getvalue()
        with pytest.raises(EOFError):
            read_frame(io.BytesIO(data[:-2]))
        with pytest.raises(EOFError):
            read_frame(io.BytesIO(data[:2]))

    def test_function_path_round_trip(self):
        path = function_path(run_trial)
        assert path == "repro.campaign.trial:run_trial"
        assert resolve_function(path) is run_trial

    def test_function_path_rejects_non_module_level(self):
        with pytest.raises(ConfigurationError):
            function_path(lambda x: x)

        def local(x):
            return x

        with pytest.raises(ConfigurationError):
            function_path(local)

    def test_resolve_rejects_malformed(self):
        with pytest.raises(ConfigurationError):
            resolve_function("no-colon")
        with pytest.raises(ConfigurationError):
            resolve_function("math:pi")  # not callable


class TestWorkerLoop:
    def _serve(self, *frames):
        stdin = io.BytesIO()
        for frame in frames:
            write_frame(stdin, frame)
        stdin.seek(0)
        stdout = io.BytesIO()
        served = serve(stdin, stdout)
        stdout.seek(0)
        results = []
        while (frame := read_frame(stdout)) is not None:
            results.append(frame)
        return served, results

    def test_serves_and_tags_results(self):
        served, results = self._serve({"fn": "builtins:abs"}, (0, -3), (1, 4))
        assert served == 2
        assert results == [("ok", 0, 3), ("ok", 1, 4)]

    def test_error_frames_do_not_kill_the_worker(self):
        served, results = self._serve({"fn": "builtins:len"}, (0, 123), (1, "ok"))
        assert served == 2
        assert results[0][0] == "error"
        assert results[0][1] == 0
        assert "TypeError" in results[0][2]
        assert results[1] == ("ok", 1, 2)

    def test_empty_session(self):
        served, results = self._serve()
        assert served == 0
        assert results == []


def trial_items(n_seeds: int = 4) -> list[TrialSpec]:
    cell = ScenarioCell(algorithm="qrm", size=8, fill=0.5)
    return [
        TrialSpec(cell=cell, seed_index=index, master_seed=7)
        for index in range(n_seeds)
    ]


class TestDistributedExecutor:
    def test_matches_in_process_results(self):
        items = trial_items(4)
        expected = {index: run_trial(item) for index, item in enumerate(items)}
        executor = DistributedExecutor(workers=[WorkerSpec(slots=2)])
        assert dict(executor.run(run_trial, items)) == expected

    def test_campaign_aggregates_match_serial(self):
        spec = CampaignSpec(
            name="dispatch-unit",
            algorithms=("qrm",),
            sizes=(8,),
            fills=(0.5,),
            n_seeds=4,
        )
        serial = ExperimentCampaign(spec).run()
        distributed = ExperimentCampaign(
            spec, executor=DistributedExecutor(workers=[WorkerSpec(slots=2)])
        ).run()
        assert serial.to_csv() == distributed.to_csv()

    def test_empty_items(self):
        executor = DistributedExecutor(workers=[WorkerSpec()])
        assert list(executor.run(run_trial, [])) == []

    def test_remote_error_surfaces(self):
        bad = TrialSpec(
            cell=ScenarioCell(algorithm="no-such-algorithm", size=8),
            seed_index=0,
            master_seed=0,
        )
        executor = DistributedExecutor(workers=[WorkerSpec()])
        with pytest.raises(ExecutionError, match="remotely"):
            list(executor.run(run_trial, [bad]))

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            WorkerSpec(slots=0)
        with pytest.raises(ConfigurationError):
            SubprocessWorkerTransport(WorkerSpec(host="gpu-farm-01"))
        assert not WorkerSpec(host="gpu-farm-01").local
