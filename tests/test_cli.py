"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["rearrange", "--algorithm", "bogus"])

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9"])


class TestCommands:
    def test_rearrange_default(self, capsys):
        assert main(["rearrange", "--size", "12", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "qrm" in out
        assert "moves" in out

    def test_rearrange_render_and_fpga(self, capsys):
        code = main(["rearrange", "--size", "12", "--seed", "3", "--render", "--fpga"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "●" in out

    def test_rearrange_baseline(self, capsys):
        assert main(
            ["rearrange", "--size", "12", "--seed", "3", "--algorithm", "tetris"]
        ) == 0
        assert "tetris" in capsys.readouterr().out

    def test_figure_8(self, capsys):
        assert main(["figure", "8"]) == 0
        assert "Fig 8" in capsys.readouterr().out

    def test_figure_headline(self, capsys):
        assert main(["figure", "headline"]) == 0
        assert "claim" in capsys.readouterr().out

    def test_figure_workflow(self, capsys):
        assert main(["figure", "workflow"]) == 0
        assert "architecture" in capsys.readouterr().out

    def test_resources(self, capsys):
        assert main(["resources", "--size", "30"]) == 0
        assert "utilisation" in capsys.readouterr().out

    def test_trace(self, capsys):
        assert main(["trace", "--size", "10", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "cycle 3" in out

    def test_algorithms(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "qrm" in out
        assert "tetris" in out

    def test_feasibility(self, capsys):
        assert main(["feasibility", "--size", "20", "--fill", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "predicted target fill" in out
        assert "99.9%" in out

    def test_timeline(self, capsys):
        assert main(["timeline", "--size", "12", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "merged" in out

    def test_figure_loss(self, capsys):
        assert main(["figure", "loss", "--trials", "1"]) == 0
        assert "atom loss" in capsys.readouterr().out

    def test_sweep(self, capsys, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        assert main(
            [
                "sweep",
                "--sizes",
                "10",
                "--fills",
                "0.5",
                "--trials",
                "1",
                "--csv",
                str(csv_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "target_fill" in out
        assert csv_path.exists()

    def test_campaign(self, capsys, tmp_path):
        csv_path = tmp_path / "campaign.csv"
        assert main(
            [
                "campaign",
                "--name",
                "clitest",
                "--algorithms",
                "qrm",
                "tetris",
                "--sizes",
                "10",
                "--fills",
                "0.5",
                "--seeds",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--csv",
                str(csv_path),
                "--quiet",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Campaign 'clitest'" in out
        assert "[0/4 trials from cache" in out
        assert csv_path.exists()
        # Second invocation is served entirely from the cache.
        assert main(
            [
                "campaign",
                "--name",
                "clitest",
                "--algorithms",
                "qrm",
                "tetris",
                "--sizes",
                "10",
                "--fills",
                "0.5",
                "--seeds",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--quiet",
            ]
        ) == 0
        assert "[4/4 trials from cache" in capsys.readouterr().out

    def test_campaign_async_executor_matches_serial(self, capsys, tmp_path):
        base = [
            "campaign",
            "--name",
            "async-cli",
            "--algorithms",
            "qrm",
            "--sizes",
            "10",
            "--fills",
            "0.5",
            "--seeds",
            "4",
            "--no-cache",
            "--quiet",
        ]
        serial_csv = tmp_path / "serial.csv"
        fanned_csv = tmp_path / "async.csv"
        assert main(base + ["--csv", str(serial_csv)]) == 0
        assert main(
            base + ["--executor", "async", "--workers", "2", "--csv", str(fanned_csv)]
        ) == 0
        capsys.readouterr()
        assert serial_csv.read_bytes() == fanned_csv.read_bytes()

    def test_campaign_distributed_executor_matches_serial(self, capsys, tmp_path):
        base = [
            "campaign",
            "--name",
            "dist-cli",
            "--algorithms",
            "qrm",
            "--sizes",
            "10",
            "--fills",
            "0.5",
            "--seeds",
            "3",
            "--no-cache",
            "--quiet",
        ]
        serial_csv = tmp_path / "serial.csv"
        fanned_csv = tmp_path / "distributed.csv"
        assert main(base + ["--csv", str(serial_csv)]) == 0
        assert (
            main(
                base
                + [
                    "--executor",
                    "distributed",
                    "--workers",
                    "2",
                    "--csv",
                    str(fanned_csv),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert serial_csv.read_bytes() == fanned_csv.read_bytes()

    def test_campaign_worker_endpoints_need_distributed_executor(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "--algorithms",
                    "qrm",
                    "--sizes",
                    "10",
                    "--workers",
                    "gpu-01:7501",
                    "--no-cache",
                    "--quiet",
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "distributed" in err

    def test_worker_listen_banner_and_exit(self, capsys):
        argv = ["worker", "--listen", "127.0.0.1:0", "--max-connections", "0"]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "listening on 127.0.0.1:" in err

    def test_campaign_interrupt_then_resume(self, capsys, tmp_path):
        base = [
            "campaign",
            "--name",
            "resume-cli",
            "--algorithms",
            "qrm",
            "--sizes",
            "8",
            "--fills",
            "0.5",
            "--seeds",
            "6",
            "--no-cache",
            "--quiet",
        ]
        clean_csv = tmp_path / "clean.csv"
        assert main(base + ["--csv", str(clean_csv)]) == 0

        journal = tmp_path / "run.jsonl"
        code = main(base + ["--journal", str(journal), "--interrupt-after", "2"])
        assert code == 130
        err = capsys.readouterr().err
        assert f"--resume {journal}" in err

        resumed_csv = tmp_path / "resumed.csv"
        assert main(
            [
                "campaign",
                "--resume",
                str(journal),
                "--no-cache",
                "--csv",
                str(resumed_csv),
                "--quiet",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "2 replayed from journal" in out
        assert clean_csv.read_bytes() == resumed_csv.read_bytes()

    def test_campaign_interrupt_without_journal(self, capsys):
        # No --journal: the interrupt still exits with the conventional
        # SIGINT code 130, and the message says explicitly that nothing
        # was recorded to resume from.
        code = main(
            [
                "campaign",
                "--name",
                "no-journal",
                "--algorithms",
                "qrm",
                "--sizes",
                "8",
                "--fills",
                "0.5",
                "--seeds",
                "6",
                "--no-cache",
                "--quiet",
                "--interrupt-after",
                "2",
            ]
        )
        assert code == 130
        err = capsys.readouterr().err
        assert "no journal was recorded" in err
        assert "partial progress is discarded" in err
        assert "--journal" in err

    def test_campaign_resume_flag_conflicts(self, capsys, tmp_path):
        journal = tmp_path / "run.jsonl"
        assert main(["campaign", "--resume", str(journal), "--spec", "x.json"]) == 2
        assert main(
            ["campaign", "--resume", str(journal), "--journal", str(journal)]
        ) == 2
        # Missing journal file is a clean usage error, not a traceback.
        assert main(["campaign", "--resume", str(journal)]) == 2
        capsys.readouterr()

    def test_campaign_spec_file_round_trip(self, capsys, tmp_path):
        assert main(
            [
                "campaign",
                "--name",
                "fromfile",
                "--sizes",
                "10",
                "--seeds",
                "1",
                "--dump-spec",
            ]
        ) == 0
        spec_json = capsys.readouterr().out
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec_json)
        assert main(
            ["campaign", "--spec", str(spec_path), "--no-cache", "--quiet"]
        ) == 0
        assert "Campaign 'fromfile'" in capsys.readouterr().out
