"""Property tests for detection thresholds, AWG segments and constraints."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aod.constraints import check_parallel_move
from repro.aod.executor import apply_parallel_move
from repro.aod.move import LineShift, ParallelMove
from repro.awg.waveform import Segment, Tone
from repro.detection.threshold import bimodal_threshold, otsu_threshold
from repro.errors import MoveError
from repro.lattice.geometry import Direction


# -- detection thresholds -----------------------------------------------------


@st.composite
def bimodal_samples(draw):
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    low_mean = draw(st.floats(0.0, 20.0))
    gap = draw(st.floats(15.0, 100.0))
    n_low = draw(st.integers(20, 200))
    n_high = draw(st.integers(20, 200))
    low = rng.normal(low_mean, 1.0, n_low)
    high = rng.normal(low_mean + gap, 1.0, n_high)
    return low, high


@given(bimodal_samples())
@settings(max_examples=60)
def test_otsu_lands_between_cluster_means(sample):
    low, high = sample
    threshold = otsu_threshold(np.concatenate([low, high]))
    assert low.mean() < threshold < high.mean()


@given(bimodal_samples())
@settings(max_examples=60)
def test_bimodal_threshold_classifies_well(sample):
    low, high = sample
    threshold = bimodal_threshold(np.concatenate([low, high]))
    errors = int((low > threshold).sum() + (high <= threshold).sum())
    assert errors <= max(2, (low.size + high.size) // 50)


@given(st.lists(st.floats(-100, 100), min_size=1, max_size=50))
def test_otsu_within_data_range(values):
    data = np.array(values)
    threshold = otsu_threshold(data)
    assert data.min() <= threshold <= data.max()


# -- AWG segments -------------------------------------------------------------


@st.composite
def segments(draw):
    n_tones = draw(st.integers(0, 4))
    tones = tuple(
        Tone(
            start_mhz=draw(st.floats(1.0, 200.0)),
            end_mhz=draw(st.floats(1.0, 200.0)),
        )
        for _ in range(n_tones)
    )
    return Segment(
        label="prop",
        duration_us=draw(st.floats(0.1, 20.0)),
        tones=tones,
        amplitude_start=draw(st.floats(0.0, 1.0)),
        amplitude_end=draw(st.floats(0.0, 1.0)),
    )


@given(segments(), st.floats(10.0, 1000.0))
@settings(max_examples=60)
def test_segment_sample_count_matches_duration(segment, rate):
    samples = segment.synthesize(sample_rate_msps=rate)
    assert samples.size == segment.n_samples(rate)
    assert samples.size >= 1


@given(segments())
@settings(max_examples=60)
def test_segment_amplitude_bounded(segment):
    samples = segment.synthesize(sample_rate_msps=200.0)
    limit = max(segment.amplitude_start, segment.amplitude_end)
    assert np.abs(samples).max() <= limit + 1e-9


# -- constraint checker vs executor coherence ---------------------------------


@st.composite
def grids_and_moves(draw):
    n = 8
    bits = draw(st.lists(st.booleans(), min_size=n * n, max_size=n * n))
    grid = np.array(bits, dtype=bool).reshape(n, n)
    direction = draw(st.sampled_from(list(Direction)))
    line = draw(st.integers(0, n - 1))
    start = draw(st.integers(0, n - 2))
    stop = draw(st.integers(start + 1, n - 1))
    steps = draw(st.integers(1, 2))
    move = ParallelMove.of([LineShift(direction, line, start, stop, steps)])
    return grid, move


@given(grids_and_moves())
@settings(max_examples=200)
def test_clean_checker_implies_clean_executor(case):
    """A move the constraint checker passes never raises in the executor."""
    grid, move = case
    violations = check_parallel_move(grid, move)
    if violations:
        return
    work = grid.copy()
    apply_parallel_move(work, move)  # must not raise
    assert work.sum() == grid.sum()


@given(grids_and_moves())
@settings(max_examples=200)
def test_executor_failure_implies_checker_violation(case):
    """If the executor rejects a move, the checker must flag it too."""
    grid, move = case
    work = grid.copy()
    try:
        apply_parallel_move(work, move)
    except MoveError:
        assert check_parallel_move(grid, move)
