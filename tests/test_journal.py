"""Tests for resumable run journals, including crash consistency.

The crash-consistency property is differential: a journal truncated at
*any* byte offset must still resume to aggregates byte-identical to an
uninterrupted run of the same spec.  The clean run is the oracle, the
truncation offset is the adversary, and the tiny campaign grids come
from the shared :mod:`tests.oracles` strategies.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from oracles import campaign_specs
from repro.campaign import (
    CampaignSpec,
    ExperimentCampaign,
    InterruptingObserver,
    RunJournal,
    ScenarioCell,
    TrialCache,
    TrialSpec,
    read_journal,
)
from repro.errors import ConfigurationError, ExecutionError


def small_spec(**overrides) -> CampaignSpec:
    fields = dict(
        name="journal-unit",
        algorithms=("qrm",),
        sizes=(8,),
        fills=(0.5,),
        n_seeds=3,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


def run_with_journal(spec, path, **campaign_kwargs):
    journal = (
        RunJournal.resume(path) if Path(path).exists() else RunJournal.fresh(path)
    )
    try:
        result = ExperimentCampaign(spec, journal=journal, **campaign_kwargs).run()
    finally:
        journal.close()
    return result


class TestWriterReader:
    def test_round_trip(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "run.jsonl"
        result = run_with_journal(spec, path)

        replay = read_journal(path)
        assert replay.spec == spec
        assert replay.spec_hash == spec.spec_hash()
        assert replay.completed
        assert not replay.truncated
        assert replay.n_runs == 1
        assert len(replay.results) == spec.n_trials
        assert replay.in_flight_keys == set()
        assert result.journal_replays == 0

    def test_events_in_order(self, tmp_path):
        path = tmp_path / "run.jsonl"
        run_with_journal(small_spec(n_seeds=2), path)
        events = [
            json.loads(line)["event"] for line in path.read_text().splitlines() if line
        ]
        assert events[0] == "campaign_started"
        assert events[-1] == "campaign_completed"
        assert events.count("trial_started") == 2
        assert events.count("trial_finished") == 2
        assert events.count("cell_checkpoint") == 1
        # Every started trial finished before the checkpoint.
        assert events.index("cell_checkpoint") > max(
            i for i, e in enumerate(events) if e == "trial_finished"
        )

    def test_checkpoint_carries_summaries(self, tmp_path):
        path = tmp_path / "run.jsonl"
        result = run_with_journal(small_spec(n_seeds=3), path)
        checkpoints = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line and json.loads(line)["event"] == "cell_checkpoint"
        ]
        (checkpoint,) = checkpoints
        (aggregate,) = result.aggregates
        moves = checkpoint["metrics"]["moves"]
        assert moves["mean"] == aggregate.metrics["moves"].mean
        assert moves["min"] == aggregate.metrics["moves"].minimum
        assert moves["n"] == 3

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_journal(tmp_path / "nope.jsonl")

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        run_with_journal(small_spec(n_seeds=1), path)
        path.write_text(path.read_text().replace("\n", "\n\n"))
        replay = read_journal(path)
        assert not replay.truncated
        assert len(replay.results) == 1

    def test_mixed_campaigns_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        run_with_journal(small_spec(), path)
        other = small_spec(master_seed=99)
        journal = RunJournal.resume(path)
        with pytest.raises(ConfigurationError):
            ExperimentCampaign(other, journal=journal).run()
        journal.close()

    def test_fresh_truncates_existing(self, tmp_path):
        path = tmp_path / "run.jsonl"
        run_with_journal(small_spec(), path)
        journal = RunJournal.fresh(path)
        journal.close()
        assert path.read_text() == ""


class TestResume:
    def test_interrupted_run_resumes_to_identical_aggregates(self, tmp_path):
        spec = small_spec(algorithms=("qrm", "tetris"), n_seeds=4)
        clean = ExperimentCampaign(spec).run()

        path = tmp_path / "run.jsonl"
        journal = RunJournal.fresh(path)
        campaign = ExperimentCampaign(
            spec, journal=journal, observer=InterruptingObserver(after=3)
        )
        with pytest.raises(KeyboardInterrupt):
            campaign.run()
        journal.close()

        replay = read_journal(path)
        assert len(replay.results) == 3
        assert not replay.completed

        resumed = run_with_journal(spec, path)
        assert resumed.journal_replays == 3
        assert resumed.cache_misses == spec.n_trials - 3
        assert resumed.to_csv() == clean.to_csv()
        assert read_journal(path).completed

    def test_resume_executes_only_remainder(self, tmp_path):
        spec = small_spec(n_seeds=3)
        path = tmp_path / "run.jsonl"
        journal = RunJournal.fresh(path)
        with pytest.raises(KeyboardInterrupt):
            ExperimentCampaign(
                spec, journal=journal, observer=InterruptingObserver(after=1)
            ).run()
        journal.close()

        run_with_journal(spec, path)
        segments = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line and json.loads(line)["event"] == "campaign_started"
        ]
        assert len(segments) == 2
        assert segments[0]["n_replayed"] == 0
        assert segments[1]["n_replayed"] == 1

    def test_started_events_not_reannounced_on_resume(self, tmp_path):
        # Each trial is announced once across all run segments, so
        # repeated interrupt/resume cycles can't bloat the journal.
        spec = small_spec(n_seeds=4)
        path = tmp_path / "run.jsonl"
        journal = RunJournal.fresh(path)
        with pytest.raises(KeyboardInterrupt):
            ExperimentCampaign(
                spec, journal=journal, observer=InterruptingObserver(after=1)
            ).run()
        journal.close()
        run_with_journal(spec, path)
        events = [
            json.loads(line)["event"] for line in path.read_text().splitlines() if line
        ]
        assert events.count("trial_started") == spec.n_trials

    def test_journal_records_cache_hits(self, tmp_path):
        spec = small_spec(n_seeds=2)
        cache = TrialCache(tmp_path / "cache")
        ExperimentCampaign(spec, cache=cache).run()

        path = tmp_path / "run.jsonl"
        result = run_with_journal(spec, path, cache=TrialCache(tmp_path / "cache"))
        assert result.cache_hits == spec.n_trials
        replay = read_journal(path)
        assert len(replay.results) == spec.n_trials

    def test_timing_cells_never_replay(self, tmp_path):
        spec = small_spec(n_seeds=2, timing=True)
        path = tmp_path / "run.jsonl"
        run_with_journal(spec, path)
        resumed = run_with_journal(spec, path)
        assert resumed.journal_replays == 0
        assert resumed.cache_misses == spec.n_trials


class TestErrorEvents:
    def test_trial_error_recorded_before_abort(self, tmp_path):
        spec = CampaignSpec(
            name="boom",
            algorithms=("no-such-algorithm",),
            sizes=(8,),
            n_seeds=1,
        )
        path = tmp_path / "run.jsonl"
        journal = RunJournal.fresh(path)
        with pytest.raises(ExecutionError, match="no-such-algorithm"):
            ExperimentCampaign(spec, journal=journal).run()
        journal.close()

        replay = read_journal(path)
        assert len(replay.errors) == 1
        key, message = replay.errors[0]
        trial = TrialSpec(
            cell=ScenarioCell(algorithm="no-such-algorithm", size=8),
            seed_index=0,
            master_seed=0,
        )
        assert key == trial.key()
        assert "no-such-algorithm" in message


# ---------------------------------------------------------------------------
# Crash consistency: truncation at any byte offset.
# ---------------------------------------------------------------------------

#: Clean-run oracle cache: spec hash -> (csv, journal bytes).  Module
#: scoped so Hypothesis examples that redraw the same spec reuse it.
_CLEAN_RUNS: dict[str, tuple[str, bytes]] = {}


def _clean_run(spec: CampaignSpec) -> tuple[str, bytes]:
    key = spec.spec_hash()
    if key not in _CLEAN_RUNS:
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "clean.jsonl"
            result = run_with_journal(spec, path)
            _CLEAN_RUNS[key] = (result.to_csv(), path.read_bytes())
    return _CLEAN_RUNS[key]


class TestCrashConsistency:
    @given(
        spec=campaign_specs(),
        fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_truncating_anywhere_still_resumes_identically(self, spec, fraction):
        clean_csv, journal_bytes = _clean_run(spec)
        offset = int(len(journal_bytes) * fraction)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "torn.jsonl"
            path.write_bytes(journal_bytes[:offset])
            journal = RunJournal.resume(path)
            replays = len(journal.replay.results)
            result = ExperimentCampaign(spec, journal=journal).run()
            journal.close()
            assert read_journal(path).completed
        assert result.to_csv() == clean_csv
        assert result.journal_replays == replays
        assert result.journal_replays + result.cache_misses == spec.n_trials

    @given(spec=campaign_specs(), cut=st.integers(min_value=0, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_torn_tail_never_loses_finished_prefix(self, spec, cut):
        _, journal_bytes = _clean_run(spec)
        offset = max(0, len(journal_bytes) - cut)
        kept = journal_bytes[:offset]
        finished_whole_lines = sum(
            1 for line in kept.split(b"\n")[:-1] if b'"trial_finished"' in line
        )
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "torn.jsonl"
            path.write_bytes(kept)
            replay = read_journal(path)
        assert len(replay.results) == finished_whole_lines
