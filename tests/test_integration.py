"""Integration tests across subsystems.

These walk the paper's Fig. 1 workflow end to end (image -> detection ->
rearrangement analysis -> validated schedule -> AWG program) and pin the
cross-model equivalences the reproduction rests on.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_fig7a
from repro.aod.timing import MoveTimingModel
from repro.aod.validator import validate_schedule
from repro.awg.compiler import compile_schedule
from repro.baselines.base import get_algorithm, list_algorithms
from repro.config import QrmParameters, ScanMode
from repro.core.qrm import QrmScheduler
from repro.detection.detect import detect_occupancy, detection_fidelity
from repro.detection.imaging import render_image
from repro.fpga.accelerator import QrmAccelerator
from repro.fpga.load_data import LoadDataModule
from repro.lattice.geometry import ArrayGeometry, Quadrant
from repro.lattice.loading import load_uniform


class TestFig1Workflow:
    """Camera image -> detection -> schedule -> waveforms, end to end."""

    def test_full_pipeline(self, geo20):
        truth = load_uniform(geo20, 0.5, rng=77)

        # 1. Fluorescence imaging and atom detection.
        image = render_image(truth, rng=78)
        detection = detect_occupancy(image, geo20)
        assert detection_fidelity(truth, detection.array) >= 0.99

        # 2. Rearrangement analysis on the detected occupancy.
        result = QrmScheduler(geo20).schedule(detection.array)
        report = validate_schedule(detection.array, result.schedule)
        assert report.ok

        # 3. The schedule compiles to a playable AWG program.
        timing = MoveTimingModel(
            pickup_us=10.0,
            drop_us=10.0,
            transfer_us_per_site=5.0,
            settle_us=1.0,
        )
        program = compile_schedule(result.schedule, timing=timing)
        assert len(program) >= 3 * result.n_moves
        assert program.total_duration_us == pytest.approx(
            timing.schedule_motion_us(result.schedule)
        )

    def test_detection_errors_only_flip_isolated_sites(self, geo20):
        """Even with detection noise the schedule stays executable."""
        truth = load_uniform(geo20, 0.5, rng=80)
        image = render_image(truth, rng=81)
        detected = detect_occupancy(image, geo20).array
        result = QrmScheduler(geo20).schedule(detected)
        assert validate_schedule(detected, result.schedule).ok


class TestGoldenEquivalences:
    @pytest.mark.parametrize("size", [10, 20, 30])
    def test_accelerator_matches_scheduler_across_sizes(self, size):
        geometry = ArrayGeometry.square(size)
        array = load_uniform(geometry, 0.5, rng=size)
        run = QrmAccelerator(geometry).run(array)
        golden = QrmScheduler(geometry).schedule(array)
        assert run.result.schedule.moves == golden.schedule.moves
        assert run.result.final == golden.final

    def test_ldm_flip_matches_scheduler_frames(self, geo20):
        """The packet->flip hardware path sees the scheduler's quadrants."""
        array = load_uniform(geo20, 0.5, rng=5)
        frames = {q: geo20.quadrant_frame(q) for q in Quadrant}
        ldm = LoadDataModule(frames)
        loaded = ldm.load_all(array)
        for quadrant, frame in frames.items():
            expected = frame.extract(array.grid)
            rows = loaded[quadrant].rows
            for u in range(frame.n_rows):
                assert rows[u].to_bools() == list(expected[u])

    @pytest.mark.parametrize("seed", [0, 1])
    def test_all_algorithms_validate_on_same_input(self, geo20, seed):
        array = load_uniform(geo20, 0.5, rng=seed)
        for name in list_algorithms():
            result = get_algorithm(name, geo20).schedule(array)
            report = validate_schedule(array, result.schedule)
            assert report.ok, (name, report.violations[:3])
            assert report.final_array == result.final


class TestScanModesAgreeOnQuality:
    def test_pipelined_and_fresh_reach_same_fill_level(self, geo50):
        array = load_uniform(geo50, 0.5, rng=13)
        pipelined = QrmScheduler(
            geo50, QrmParameters(n_iterations=16, scan_mode=ScanMode.PIPELINED)
        ).schedule(array)
        fresh = QrmScheduler(
            geo50, QrmParameters(n_iterations=4, scan_mode=ScanMode.FRESH)
        ).schedule(array)
        # Different interleavings may reach different Young diagrams, but
        # the assembled fill levels agree closely.
        assert pipelined.target_fill_fraction == pytest.approx(
            fresh.target_fill_fraction, abs=0.02
        )


class TestExperimentCoherence:
    def test_fig7a_speedup_direction_matches_paper(self):
        result = run_fig7a(sizes=(50,), trials=1)
        row = result.rows[0]
        # The paper reports 54x at 50; our honest cycle model lands in
        # the same decade.
        assert 10 <= row.speedup_model <= 200

    def test_measured_python_slower_than_model(self):
        """Python measurement is orders above the C++-equivalent model —
        documenting why both columns exist."""
        result = run_fig7a(sizes=(30,), trials=1)
        row = result.rows[0]
        assert row.cpu_measured_us > row.cpu_model_us
