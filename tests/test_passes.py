"""Unit tests for repro.core.passes — batching and pass execution."""

from __future__ import annotations

import numpy as np

from repro.core.passes import Phase, run_pass
from repro.core.scan import is_prefix_line
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry, Direction, Quadrant


def _frames(geo):
    return {q: geo.quadrant_frame(q) for q in Quadrant}


def _run_row_pass(array, merge=True):
    return run_pass(
        array,
        _frames(array.geometry),
        Phase.ROW,
        scan_source=array.grid,
        merge_mirror=merge,
    )


class TestRowPass:
    def test_compacts_every_half_row(self, geo8, rng):
        array = AtomArray(geo8, rng.random(geo8.shape) < 0.5)
        outcome = _run_row_pass(array)
        for frame in array.geometry.quadrant_frames():
            local = frame.extract(array.grid)
            for u in range(local.shape[0]):
                assert is_prefix_line(local[u]), outcome.phase

    def test_preserves_atom_count(self, geo8, rng):
        array = AtomArray(geo8, rng.random(geo8.shape) < 0.5)
        before = array.n_atoms
        _run_row_pass(array)
        assert array.n_atoms == before

    def test_preserves_row_membership(self, geo8, rng):
        # Horizontal moves never change which row an atom is in.
        array = AtomArray(geo8, rng.random(geo8.shape) < 0.5)
        before = array.row_counts().copy()
        _run_row_pass(array)
        assert np.array_equal(array.row_counts(), before)

    def test_no_commands_on_compact_input(self, geo8):
        # Atoms already packed against the centre columns.
        grid = np.zeros(geo8.shape, dtype=bool)
        grid[:, 3:5] = True
        array = AtomArray(geo8, grid)
        outcome = _run_row_pass(array)
        assert outcome.n_commands == 0
        assert outcome.n_batches == 0

    def test_empty_array_no_commands(self, geo8):
        outcome = _run_row_pass(AtomArray(geo8))
        assert outcome.n_commands == 0

    def test_scanned_bits_counted(self, geo8):
        outcome = _run_row_pass(AtomArray(geo8))
        # 4 quadrants x 4 rows x 4 bits
        assert outcome.n_scanned_bits == 64

    def test_line_commands_recorded_per_quadrant(self, geo8, rng):
        array = AtomArray(geo8, rng.random(geo8.shape) < 0.5)
        outcome = _run_row_pass(array)
        assert set(outcome.line_commands) == set(Quadrant)
        for counts in outcome.line_commands.values():
            assert len(counts) == geo8.half_height
        total = sum(sum(c) for c in outcome.line_commands.values())
        assert total == outcome.n_commands


class TestMirrorMerging:
    def test_mirror_rows_share_one_move(self):
        geo = ArrayGeometry.square(8, 4)
        # One identical west-half pattern in a NW row and its SW mirror.
        grid = np.zeros(geo.shape, dtype=bool)
        grid[0, 0] = True  # NW row u=3 (full row 0), hole at local 0..2
        grid[7, 0] = True  # SW mirror row
        array = AtomArray(geo, grid)
        outcome = _run_row_pass(array, merge=True)
        east_moves = [m for m in outcome.moves if m.direction is Direction.EAST]
        assert east_moves
        assert all(len(m) == 2 for m in east_moves)

    def test_unmerged_mode_splits_quadrants(self):
        geo = ArrayGeometry.square(8, 4)
        grid = np.zeros(geo.shape, dtype=bool)
        grid[0, 0] = True
        grid[7, 0] = True
        array = AtomArray(geo, grid)
        outcome = _run_row_pass(array, merge=False)
        east_moves = [m for m in outcome.moves if m.direction is Direction.EAST]
        assert all(len(m) == 1 for m in east_moves)

    def test_merge_reduces_move_count(self, geo20, rng):
        grid = rng.random(geo20.shape) < 0.5
        merged = _run_row_pass(AtomArray(geo20, grid), merge=True)
        split = _run_row_pass(AtomArray(geo20, grid), merge=False)
        assert merged.n_batches <= split.n_batches
        # Same physical outcome either way.
        assert merged.n_executed == split.n_executed


class TestColumnPassGuard:
    def test_stale_commands_skipped(self, geo8):
        # Scan a stale snapshot claiming holes that the live grid has
        # already filled: every command must be skipped, nothing moves.
        snapshot = np.zeros(geo8.shape, dtype=bool)
        snapshot[0, 3] = True  # NW local column 0 has an atom outboard
        live_grid = np.zeros(geo8.shape, dtype=bool)
        live_grid[0:4, 3] = True  # the hole is already filled
        array = AtomArray(geo8, live_grid)
        before = array.grid.copy()
        outcome = run_pass(
            array,
            _frames(geo8),
            Phase.COLUMN,
            scan_source=snapshot,
            guard=True,
        )
        assert outcome.n_skipped_stale + outcome.n_skipped_empty > 0
        assert outcome.n_executed == 0
        assert np.array_equal(array.grid, before)

    def test_fresh_column_pass_compacts(self, geo8, rng):
        array = AtomArray(geo8, rng.random(geo8.shape) < 0.5)
        run_pass(
            array,
            _frames(geo8),
            Phase.COLUMN,
            scan_source=array.grid,
            guard=False,
        )
        for frame in geo8.quadrant_frames():
            local = frame.extract(array.grid)
            for v in range(local.shape[1]):
                assert is_prefix_line(local[:, v])

    def test_column_pass_preserves_column_membership(self, geo8, rng):
        array = AtomArray(geo8, rng.random(geo8.shape) < 0.5)
        before = array.col_counts().copy()
        run_pass(
            array,
            _frames(geo8),
            Phase.COLUMN,
            scan_source=array.grid,
            guard=False,
        )
        assert np.array_equal(array.col_counts(), before)


class TestDeterminism:
    def test_same_input_same_moves(self, geo20, rng):
        grid = rng.random(geo20.shape) < 0.5
        a = _run_row_pass(AtomArray(geo20, grid))
        b = _run_row_pass(AtomArray(geo20, grid))
        assert a.moves == b.moves
