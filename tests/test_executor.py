"""Unit tests for repro.aod.executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aod.executor import (
    apply_parallel_move,
    apply_parallel_move_reference,
    execute_schedule,
)
from repro.aod.move import LineShift, ParallelMove
from repro.aod.schedule import MoveSchedule
from repro.errors import MoveError
from repro.lattice.array import AtomArray
from repro.lattice.geometry import Direction


def _east(line, start, stop, steps=1):
    return ParallelMove.of([LineShift(Direction.EAST, line, start, stop, steps)])


def _south(line, start, stop, steps=1):
    return ParallelMove.of([LineShift(Direction.SOUTH, line, start, stop, steps)])


class TestApplyParallelMove:
    def test_suffix_shift_fills_hole(self):
        grid = np.zeros((4, 4), dtype=bool)
        grid[0, 0] = True
        grid[0, 1] = True
        moved = apply_parallel_move(grid, _east(0, 0, 2))
        assert moved == 2
        assert list(grid[0]) == [False, True, True, False]

    def test_vertical_shift(self):
        grid = np.zeros((4, 4), dtype=bool)
        grid[0, 2] = True
        moved = apply_parallel_move(grid, _south(2, 0, 1, steps=3))
        assert moved == 1
        assert grid[3, 2] and not grid[0, 2]

    def test_empty_span_moves_nothing(self):
        grid = np.zeros((4, 4), dtype=bool)
        assert apply_parallel_move(grid, _east(0, 0, 2)) == 0

    def test_collision_raises_and_preserves_grid(self):
        grid = np.zeros((4, 4), dtype=bool)
        grid[0, 1] = True
        grid[0, 2] = True  # static blocker just past the span
        before = grid.copy()
        with pytest.raises(MoveError):
            apply_parallel_move(grid, _east(0, 0, 2))
        assert np.array_equal(grid, before)

    def test_off_grid_raises(self):
        grid = np.zeros((4, 4), dtype=bool)
        grid[0, 3] = True
        with pytest.raises(MoveError):
            apply_parallel_move(grid, _east(0, 3, 4))

    def test_multi_line_failure_leaves_grid_untouched(self):
        grid = np.zeros((4, 4), dtype=bool)
        grid[0, 0] = True  # line 0 is fine
        grid[1, 1] = True
        grid[1, 2] = True  # line 1 collides
        move = ParallelMove.of(
            [
                LineShift(Direction.EAST, 0, 0, 2),
                LineShift(Direction.EAST, 1, 0, 2),
            ]
        )
        before = grid.copy()
        with pytest.raises(MoveError):
            apply_parallel_move(grid, move)
        assert np.array_equal(grid, before)

    def test_row_outside_grid(self):
        grid = np.zeros((4, 4), dtype=bool)
        with pytest.raises(MoveError):
            apply_parallel_move(grid, _east(9, 0, 2))

    def test_matches_reference_on_examples(self, rng):
        for _ in range(50):
            grid = rng.random((6, 6)) < 0.4
            start = int(rng.integers(0, 4))
            stop = int(rng.integers(start + 1, 6))
            line = int(rng.integers(0, 6))
            move = _east(line, start, stop)
            fast = grid.copy()
            slow = grid.copy()
            try:
                moved_fast = apply_parallel_move(fast, move)
                failed_fast = False
            except MoveError:
                failed_fast = True
            try:
                moved_slow = apply_parallel_move_reference(slow, move)
                failed_slow = False
            except MoveError:
                failed_slow = True
            assert failed_fast == failed_slow
            if not failed_fast:
                assert moved_fast == moved_slow
                assert np.array_equal(fast, slow)


class TestExecuteSchedule:
    def _schedule(self, geo, moves):
        schedule = MoveSchedule(geo, algorithm="test")
        schedule.extend(moves)
        return schedule

    def test_conserves_atoms(self, geo8):
        array = AtomArray(geo8)
        array.set_site(0, 0, True)
        schedule = self._schedule(geo8, [_east(0, 0, 2), _east(0, 1, 3)])
        final, report = execute_schedule(array, schedule)
        assert final.n_atoms == 1
        assert report.n_moves == 2
        assert report.n_atom_displacements == 2
        assert report.ok

    def test_initial_array_untouched(self, geo8):
        array = AtomArray(geo8)
        array.set_site(0, 0, True)
        schedule = self._schedule(geo8, [_east(0, 0, 2)])
        execute_schedule(array, schedule)
        assert array.is_occupied(0, 0)

    def test_strict_raises_on_violation(self, geo8):
        array = AtomArray(geo8)
        array.set_site(0, 0, True)
        array.set_site(0, 2, True)
        schedule = self._schedule(geo8, [_east(0, 0, 2)])
        with pytest.raises(MoveError):
            execute_schedule(array, schedule, strict=True)

    def test_lenient_records_and_skips(self, geo8):
        array = AtomArray(geo8)
        array.set_site(0, 0, True)
        array.set_site(0, 2, True)
        schedule = self._schedule(geo8, [_east(0, 0, 2)])
        final, report = execute_schedule(array, schedule, strict=False)
        assert not report.ok
        assert report.n_failed_moves + len(report.violations) >= 1
        assert final.n_atoms == 2  # nothing lost

    def test_empty_move_counted(self, geo8):
        array = AtomArray(geo8)
        schedule = self._schedule(geo8, [_east(0, 0, 2)])
        _, report = execute_schedule(array, schedule)
        assert report.n_empty_moves == 1

    def test_no_constraint_checking_when_disabled(self, geo8):
        array = AtomArray(geo8)
        array.set_site(0, 0, True)
        schedule = self._schedule(geo8, [_east(0, 0, 2)])
        _, report = execute_schedule(array, schedule, constraints=None)
        assert report.ok
