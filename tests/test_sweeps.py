"""Tests for the sweep tooling."""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import SweepResult, qrm_quality_sweep, run_sweep
from repro.errors import ConfigurationError


class TestRunSweep:
    def test_cartesian_grid(self):
        result = run_sweep(
            {"a": [1, 2], "b": [10, 20, 30]},
            {"sum": lambda a, b: a + b},
        )
        assert len(result.rows) == 6
        assert result.headers == ["a", "b", "sum"]
        assert result.rows[0] == [1, 10, 11]
        assert result.rows[-1] == [2, 30, 32]

    def test_multiple_metrics(self):
        result = run_sweep(
            {"x": [2, 3]},
            {"square": lambda x: x * x, "double": lambda x: 2 * x},
        )
        assert result.rows == [[2, 4, 4], [3, 9, 6]]

    def test_column_extraction(self):
        result = run_sweep({"x": [1, 2]}, {"y": lambda x: x + 1})
        assert result.column("y") == [2, 3]
        assert result.column("x") == [1, 2]

    def test_unknown_column(self):
        result = run_sweep({"x": [1]}, {"y": lambda x: x})
        with pytest.raises(ConfigurationError):
            result.column("z")

    def test_empty_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sweep({}, {"y": lambda: 0})
        with pytest.raises(ConfigurationError):
            run_sweep({"x": [1]}, {})

    def test_csv_and_table(self, tmp_path):
        result = run_sweep({"x": [1]}, {"y": lambda x: x * 1.5})
        csv = result.to_csv()
        assert csv.splitlines()[0] == "x,y"
        path = result.write_csv(tmp_path / "sub" / "out.csv")
        assert path.exists()
        assert "1.5" in path.read_text()
        assert "x" in result.format_table(title="t")


class TestQrmQualitySweep:
    def test_small_sweep(self):
        result = qrm_quality_sweep(sizes=(10,), fills=(0.5, 0.7), trials=2)
        assert len(result.rows) == 2
        fills = result.column("target_fill")
        assert fills[1] >= fills[0]  # higher loading helps
        assert all(0 <= f <= 1 for f in fills)

    def test_headers(self):
        result = qrm_quality_sweep(sizes=(10,), fills=(0.5,), trials=1)
        assert result.headers == [
            "size",
            "fill",
            "target_fill",
            "p_success",
            "moves",
        ]


class TestSweepResultContainer:
    def test_direct_construction(self):
        result = SweepResult(["p"], ["m"], [[1, 2]])
        assert result.headers == ["p", "m"]
        assert result.column("m") == [2]
