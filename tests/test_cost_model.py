"""Tests for the calibrated cost models."""

from __future__ import annotations

import pytest

from repro.baselines.cost_model import (
    COST_MODELS,
    MTA1_COST,
    PSCA_COST,
    PowerLawCost,
    QRM_CPU_COST,
    TETRIS_COST,
    model_cpu_time_us,
)
from repro.errors import ConfigurationError


class TestAnchors:
    def test_qrm_cpu_anchor_at_50(self):
        assert QRM_CPU_COST.time_us(50) == pytest.approx(54.0, rel=1e-6)

    def test_qrm_cpu_anchor_at_90(self):
        assert QRM_CPU_COST.time_us(90) == pytest.approx(255.0, rel=1e-6)

    def test_tetris_anchor_at_20(self):
        assert TETRIS_COST.time_us(20) == pytest.approx(108.0, rel=1e-6)

    def test_tetris_anchor_at_50(self):
        assert TETRIS_COST.time_us(50) == pytest.approx(300.0, rel=1e-6)

    def test_psca_ratio_at_20(self):
        ratio = PSCA_COST.time_us(20) / QRM_CPU_COST.time_us(20)
        assert ratio == pytest.approx(246.0, rel=1e-6)

    def test_mta1_ratio_at_20(self):
        ratio = MTA1_COST.time_us(20) / QRM_CPU_COST.time_us(20)
        assert ratio == pytest.approx(1000.0, rel=1e-6)


class TestOrdering:
    @pytest.mark.parametrize("size", [10, 20, 50, 90])
    def test_paper_ordering_holds(self, size):
        qrm = model_cpu_time_us("qrm", size)
        tetris = model_cpu_time_us("tetris", size)
        psca = model_cpu_time_us("psca", size)
        mta1 = model_cpu_time_us("mta1", size)
        assert qrm < tetris < psca < mta1

    def test_monotone_in_size(self):
        for model in COST_MODELS.values():
            times = [model.time_us(s) for s in (10, 30, 50, 70, 90)]
            assert times == sorted(times)


class TestValidation:
    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            model_cpu_time_us("unknown", 20)

    def test_typical_aliases_qrm(self):
        assert model_cpu_time_us("typical", 30) == model_cpu_time_us("qrm", 30)

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            QRM_CPU_COST.time_us(0)

    def test_invalid_coefficients(self):
        with pytest.raises(ConfigurationError):
            PowerLawCost("bad", coeff_us=-1.0, exponent=2.0)
        with pytest.raises(ConfigurationError):
            PowerLawCost("bad", coeff_us=1.0, exponent=0.0)
