"""Tests for schedule JSON serialisation."""

from __future__ import annotations

import json

import pytest

from repro.aod.serialize import (
    FORMAT_VERSION,
    dumps,
    load,
    loads,
    save,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.core.qrm import QrmScheduler
from repro.errors import ScheduleValidationError
from repro.lattice.loading import load_uniform


@pytest.fixture
def schedule(array20):
    return QrmScheduler(array20.geometry).schedule(array20).schedule


class TestRoundTrip:
    def test_dict_round_trip(self, schedule):
        recovered = schedule_from_dict(schedule_to_dict(schedule))
        assert recovered.geometry == schedule.geometry
        assert recovered.algorithm == schedule.algorithm
        assert recovered.moves == schedule.moves

    def test_json_round_trip(self, schedule):
        recovered = loads(dumps(schedule))
        assert recovered.moves == schedule.moves

    def test_file_round_trip(self, schedule, tmp_path):
        path = tmp_path / "schedule.json"
        save(schedule, path)
        recovered = load(path)
        assert recovered.moves == schedule.moves

    def test_tags_preserved(self, schedule):
        recovered = loads(dumps(schedule))
        assert [m.tag for m in recovered] == [m.tag for m in schedule]

    def test_round_trip_replays_identically(self, array20, schedule):
        from repro.aod.executor import execute_schedule

        recovered = loads(dumps(schedule))
        original_final, _ = execute_schedule(array20, schedule)
        recovered_final, _ = execute_schedule(array20, recovered)
        assert original_final == recovered_final

    def test_empty_schedule(self, geo8):
        from repro.aod.schedule import MoveSchedule

        empty = MoveSchedule(geo8, algorithm="none")
        recovered = loads(dumps(empty))
        assert len(recovered) == 0
        assert recovered.algorithm == "none"


class TestFormat:
    def test_version_embedded(self, schedule):
        data = schedule_to_dict(schedule)
        assert data["version"] == FORMAT_VERSION

    def test_wrong_version_rejected(self, schedule):
        data = schedule_to_dict(schedule)
        data["version"] = 999
        with pytest.raises(ScheduleValidationError):
            schedule_from_dict(data)

    def test_invalid_json_rejected(self):
        with pytest.raises(ScheduleValidationError):
            loads("{not json")

    def test_missing_geometry_rejected(self, schedule):
        data = schedule_to_dict(schedule)
        del data["geometry"]
        with pytest.raises(ScheduleValidationError):
            schedule_from_dict(data)

    def test_malformed_shift_rejected(self, schedule):
        data = schedule_to_dict(schedule)
        data["moves"][0]["shifts"][0] = {"dir": "X"}
        with pytest.raises(ScheduleValidationError):
            schedule_from_dict(data)

    def test_default_steps(self, schedule):
        data = schedule_to_dict(schedule)
        for move in data["moves"]:
            for shift in move["shifts"]:
                del shift["steps"]
        recovered = schedule_from_dict(data)
        assert all(m.steps == 1 for m in recovered)

    def test_output_is_plain_json(self, schedule):
        parsed = json.loads(dumps(schedule))
        assert isinstance(parsed, dict)
        assert isinstance(parsed["moves"], list)


class TestCrossAlgorithm:
    @pytest.mark.parametrize("name", ["tetris", "psca", "mta1"])
    def test_baseline_schedules_serialise(self, name, geo20):
        from repro.baselines.base import get_algorithm

        array = load_uniform(geo20, 0.5, rng=2)
        result = get_algorithm(name, geo20).schedule(array)
        recovered = loads(dumps(result.schedule))
        assert recovered.moves == result.schedule.moves
