"""Tests for the device catalogue and resource model (Fig. 8)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.fpga.device import DEVICES, ZU49DR, ZU7EV, FpgaDevice, get_device
from repro.fpga.resources import ResourceModel


class TestDeviceCatalogue:
    def test_zu49dr_budget(self):
        assert ZU49DR.luts == 425_280
        assert ZU49DR.flip_flops == 850_560
        assert ZU49DR.bram_36k == 1080

    def test_lookup(self):
        assert get_device("xczu49dr") is ZU49DR
        with pytest.raises(KeyError):
            get_device("xc7z020")

    def test_catalogue_consistent(self):
        for name, device in DEVICES.items():
            assert device.name == name

    def test_utilisation_percentages(self):
        util = ZU49DR.utilisation(42528, 85056, 108)
        assert util["LUT"] == pytest.approx(10.0)
        assert util["FF"] == pytest.approx(10.0)
        assert util["BRAM"] == pytest.approx(10.0)

    def test_invalid_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            FpgaDevice("bad", luts=0, flip_flops=1, bram_36k=1, dsp_slices=1)


class TestResourceModel:
    def test_paper_anchor_at_90(self):
        """Fig. 8: 6.31 % LUT and 6.19 % FF at 90x90."""
        util = ResourceModel().estimate(90).utilisation()
        assert util["LUT"] == pytest.approx(6.31, abs=0.02)
        assert util["FF"] == pytest.approx(6.19, abs=0.02)

    def test_lut_ff_linear_growth(self):
        model = ResourceModel()
        reports = model.sweep([10, 30, 50, 70, 90])
        luts = [r.total_luts for r in reports]
        diffs = [b - a for a, b in zip(luts, luts[1:])]
        assert max(diffs) - min(diffs) <= 2  # constant slope (rounding)

    def test_ff_grows_faster_than_lut(self):
        """Fig. 8: 'FF increasing slightly faster than LUT' (absolute)."""
        model = ResourceModel()
        r10, r90 = model.estimate(10), model.estimate(90)
        assert (r90.total_ffs - r10.total_ffs) > (r90.total_luts - r10.total_luts)

    def test_bram_flat_over_paper_range(self):
        model = ResourceModel()
        brams = {r.total_brams for r in model.sweep([10, 30, 50, 70, 90])}
        assert len(brams) == 1

    def test_bram_steps_up_for_huge_arrays(self):
        model = ResourceModel()
        assert model.estimate(500).total_brams > model.estimate(90).total_brams

    def test_qpm_share_about_half(self):
        """Sec. V-C: about half the resources sit in the four QPMs."""
        report = ResourceModel().estimate(50)
        qpm = next(m for m in report.modules if m.name == "quadrant_processors")
        assert qpm.luts / report.total_luts == pytest.approx(0.5, abs=0.02)

    def test_fits_on_default_device(self):
        assert ResourceModel().estimate(90).fits()

    def test_fits_even_small_device(self):
        assert ResourceModel(device=ZU7EV).estimate(90).fits()

    def test_invalid_sizes_rejected(self):
        model = ResourceModel()
        with pytest.raises(ConfigurationError):
            model.estimate(0)
        with pytest.raises(ConfigurationError):
            model.estimate(15)

    def test_format_table(self):
        text = ResourceModel().estimate(50).format_table()
        assert "quadrant_processors" in text
        assert "utilisation %" in text
