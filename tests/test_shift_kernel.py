"""Tests for the register-level shift-kernel model (paper Fig. 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scan import scan_line
from repro.errors import SimulationError
from repro.fpga.bitvec import BitVector
from repro.fpga.shift_kernel import PipelinedShiftKernel, ShiftKernelLane


def vec(text: str) -> BitVector:
    return BitVector.from_bits(ch == "1" for ch in text)


class TestSingleRowScan:
    def test_matches_functional_scan_random(self, rng):
        for _ in range(300):
            qw = int(rng.integers(1, 40))
            bits = rng.random(qw) < rng.uniform(0.2, 0.8)
            lane = ShiftKernelLane(qw)
            trace = lane.scan_row(BitVector.from_array(bits))
            assert trace.hole_positions() == scan_line(bits).hole_positions

    def test_register_shifts_every_stage(self):
        lane = ShiftKernelLane(4)
        trace = lane.scan_row(vec("1010"))
        for stage, state in enumerate(trace.stages):
            assert state.register_before.value == (0b0101 >> stage)
            assert state.register_after.value == (0b0101 >> (stage + 1))

    def test_command_bits_vector(self):
        lane = ShiftKernelLane(4)
        trace = lane.scan_row(vec("1011"))  # hole at index 1
        assert trace.command_bits.to_bools() == [False, True, False, False]

    def test_no_commands_without_outboard_atoms(self):
        lane = ShiftKernelLane(4)
        trace = lane.scan_row(vec("1100"))
        assert trace.hole_positions() == ()

    def test_width_mismatch_rejected(self):
        lane = ShiftKernelLane(4)
        with pytest.raises(SimulationError):
            lane.scan_row(vec("101"))

    def test_invalid_width_rejected(self):
        with pytest.raises(SimulationError):
            ShiftKernelLane(0)


class TestSenGating:
    def test_masked_stage_issues_no_command(self):
        # s_en = 0 on stage 1 blocks the shift the hole would trigger.
        mask = BitVector.from_bits([True, False, True, True])
        lane = ShiftKernelLane(4, s_en_mask=mask)
        trace = lane.scan_row(vec("1011"))
        assert trace.hole_positions() == ()

    def test_unmasked_stages_unaffected(self):
        mask = BitVector.from_bits([False, True, True, True])
        lane = ShiftKernelLane(4, s_en_mask=mask)
        trace = lane.scan_row(vec("0101"))  # holes at 0 (masked) and 2
        assert trace.hole_positions() == (2,)

    def test_mask_width_checked(self):
        with pytest.raises(SimulationError):
            ShiftKernelLane(4, s_en_mask=BitVector(3, 0))


class TestColumnStream:
    def test_transpose_of_pre_shift_bits(self, rng):
        qw = 6
        rows = [(rng.random(qw) < 0.5) for _ in range(qw)]
        lane = ShiftKernelLane(qw)
        for r in rows:
            lane.scan_row(BitVector.from_array(r))
        columns = lane.column_stream()
        matrix = np.array(rows)
        for v in range(qw):
            assert columns[v].to_bools() == list(matrix[:, v])

    def test_fig6_column0_example(self):
        """Fig. 6(b): Column-0 is the original right-most bit of each row."""
        qw = 5
        rows = ["11101", "10011", "01110", "11111", "00001"]
        lane = ShiftKernelLane(qw)
        for r in rows:
            lane.scan_row(vec(r))
        column0 = lane.column_stream()[0]
        expected = [r[0] == "1" for r in rows]
        assert column0.to_bools() == expected

    def test_reset_buffers(self):
        lane = ShiftKernelLane(3)
        lane.scan_row(vec("111"))
        lane.reset_buffers()
        assert all(len(buf) == 0 for buf in lane.column_buffers)


class TestPipelinedKernel:
    def test_latency_formula(self):
        kernel = PipelinedShiftKernel(qw=25)
        assert kernel.latency_cycles(25) == 24 + 25
        assert kernel.latency_cycles(25, extra_depth=3) == 24 + 25 + 3
        assert kernel.latency_cycles(0) == 0

    def test_snapshot_after_three_cycles(self):
        """Fig. 6(a): after 3 cycles, three rows are in flight."""
        kernel = PipelinedShiftKernel(qw=5)
        rows = [vec("10110"), vec("01011"), vec("11100"), vec("00110"), vec("10101")]
        kernel.process(rows)
        snap = kernel.snapshot(3)
        assert len(snap.occupancy) == 4  # rows 0..3 at stages 3,2,1,0
        assert (0, 3) in snap.occupancy
        assert (3, 0) in snap.occupancy
        assert snap.completed_rows == ()

    def test_snapshot_after_qw_plus_one(self):
        """Fig. 6(b): after Qw+1 cycles the first rows have completed."""
        kernel = PipelinedShiftKernel(qw=5)
        rows = [vec("10110")] * 5
        kernel.process(rows)
        snap = kernel.snapshot(6)
        assert 0 in snap.completed_rows
        assert 1 in snap.completed_rows

    def test_render_snapshot_text(self):
        kernel = PipelinedShiftKernel(qw=5)
        kernel.process([vec("10110")] * 5)
        text = kernel.render_snapshot(3)
        assert "cycle 3" in text
        assert "row 0" in text

    def test_process_returns_traces_matching_scan(self, rng):
        qw = 8
        rows_np = [(rng.random(qw) < 0.5) for _ in range(qw)]
        kernel = PipelinedShiftKernel(qw)
        traces = kernel.process([BitVector.from_array(r) for r in rows_np])
        for trace, bits in zip(traces, rows_np):
            assert trace.hole_positions() == scan_line(bits).hole_positions
