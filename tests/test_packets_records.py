"""Tests for packet packing and movement-record encoding."""

from __future__ import annotations

import pytest

from repro.aod.move import LineShift, ParallelMove
from repro.errors import SimulationError
from repro.fpga.bitvec import BitVector
from repro.fpga.movement_record import (
    RECORD_BITS,
    decode_shift,
    encode_move,
    encode_schedule,
    encode_shift,
)
from repro.fpga.packets import (
    pack_occupancy,
    pack_words,
    packets_needed,
    unpack_occupancy,
    unpack_words,
)
from repro.lattice.geometry import Direction
from repro.lattice.loading import load_uniform


class TestPacketsNeeded:
    def test_exact_fit(self):
        assert packets_needed(1024) == 1
        assert packets_needed(2048) == 2

    def test_partial_packet(self):
        assert packets_needed(1025) == 2
        assert packets_needed(1) == 1

    def test_zero_bits(self):
        assert packets_needed(0) == 0

    def test_paper_sizes(self):
        assert packets_needed(50 * 50) == 3
        assert packets_needed(90 * 90) == 8
        assert packets_needed(10 * 10) == 1

    def test_invalid_packet_width(self):
        with pytest.raises(SimulationError):
            packets_needed(10, packet_bits=0)


class TestOccupancyRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_round_trip(self, geo20, seed):
        array = load_uniform(geo20, 0.5, rng=seed)
        packets = pack_occupancy(array)
        assert len(packets) == packets_needed(geo20.n_sites)
        recovered = unpack_occupancy(packets, geo20)
        assert recovered == array

    def test_bit_order_row_major(self, geo8):
        from repro.lattice.array import AtomArray

        array = AtomArray(geo8)
        array.set_site(0, 1, True)  # flat index 1
        packets = pack_occupancy(array)
        assert packets[0].get(1)
        assert not packets[0].get(0)

    def test_truncated_packets_rejected(self, geo50):
        # 50x50 needs 2500 bits; a single 1024-bit packet cannot fill it.
        with pytest.raises(SimulationError):
            unpack_occupancy([BitVector(1024, 0)], geo50)


class TestWordPacking:
    def test_round_trip(self):
        words = list(range(100))
        packets = pack_words(words, word_bits=32)
        assert len(packets) == 4  # 32 words per 1024-bit packet
        assert unpack_words(packets, 32, 100) == words

    def test_word_too_wide_rejected(self):
        with pytest.raises(SimulationError):
            pack_words([1 << 32], word_bits=32)

    def test_invalid_word_bits(self):
        with pytest.raises(SimulationError):
            pack_words([1], word_bits=0)

    def test_not_enough_words(self):
        packets = pack_words([1, 2], word_bits=32)
        with pytest.raises(SimulationError):
            unpack_words(packets, 32, 64)


class TestMovementRecords:
    def _shift(self, **kw):
        defaults = dict(
            direction=Direction.EAST, line=5, span_start=2, span_stop=9, steps=1
        )
        defaults.update(kw)
        return LineShift(**defaults)

    @pytest.mark.parametrize("direction", list(Direction))
    def test_round_trip_all_directions(self, direction):
        shift = self._shift(direction=direction)
        assert decode_shift(encode_shift(shift)) == shift

    def test_round_trip_multi_step(self):
        shift = self._shift(steps=63)
        assert decode_shift(encode_shift(shift)) == shift

    def test_word_fits_32_bits(self):
        word = encode_shift(self._shift(line=255, span_start=254, span_stop=255))
        assert 0 <= word < (1 << RECORD_BITS)

    def test_field_overflow_rejected(self):
        with pytest.raises(SimulationError):
            encode_shift(self._shift(steps=64))
        with pytest.raises(SimulationError):
            encode_shift(self._shift(line=256))

    def test_decode_range_check(self):
        with pytest.raises(SimulationError):
            decode_shift(1 << 32)

    def test_encode_move_and_schedule(self, geo8):
        from repro.aod.schedule import MoveSchedule

        move = ParallelMove.of(
            [
                LineShift(Direction.EAST, 0, 0, 3),
                LineShift(Direction.EAST, 1, 0, 3),
            ]
        )
        assert len(encode_move(move)) == 2
        schedule = MoveSchedule(geo8)
        schedule.append(move)
        schedule.append(move)
        words = encode_schedule(schedule)
        assert len(words) == 4
        assert all(decode_shift(w).direction is Direction.EAST for w in words)
