"""Unit tests for repro.aod.constraints."""

from __future__ import annotations

import numpy as np

from repro.aod.constraints import (
    AodConstraints,
    CROSS_PICKUP,
    EMPTY_MOVE,
    LEAD_COLLISION,
    OUT_OF_BOUNDS,
    TONE_BUDGET,
    check_parallel_move,
    is_move_safe,
)
from repro.aod.move import LineShift, ParallelMove
from repro.lattice.geometry import Direction


def _grid(n=8):
    return np.zeros((n, n), dtype=bool)


def _east(line, start, stop, steps=1):
    return ParallelMove.of([LineShift(Direction.EAST, line, start, stop, steps)])


class TestBounds:
    def test_selected_site_outside(self):
        grid = _grid(4)
        move = _east(0, 2, 6)
        codes = [v.code for v in check_parallel_move(grid, move)]
        assert OUT_OF_BOUNDS in codes

    def test_destination_outside(self):
        grid = _grid(4)
        grid[0, 3] = True
        move = _east(0, 2, 4)
        codes = [v.code for v in check_parallel_move(grid, move)]
        assert OUT_OF_BOUNDS in codes

    def test_leading_site_outside(self):
        grid = _grid(4)
        grid[0, 2] = True
        move = _east(0, 0, 4)  # leading site would be column 4
        codes = [v.code for v in check_parallel_move(grid, move)]
        assert OUT_OF_BOUNDS in codes


class TestLeadCollision:
    def test_blocked_segment_flagged(self):
        grid = _grid()
        grid[0, 1] = True
        grid[0, 3] = True  # static atom in the leading site
        move = _east(0, 0, 3)
        codes = [v.code for v in check_parallel_move(grid, move)]
        assert LEAD_COLLISION in codes

    def test_empty_span_not_flagged(self):
        grid = _grid()
        grid[0, 3] = True  # leading site occupied, but nothing moves
        move = _east(0, 0, 3)
        codes = [v.code for v in check_parallel_move(grid, move)]
        assert LEAD_COLLISION not in codes

    def test_clean_shift_passes(self):
        grid = _grid()
        grid[0, 1] = True
        assert is_move_safe(grid, _east(0, 0, 3))


class TestCrossProduct:
    def _two_row_move(self):
        return ParallelMove.of(
            [
                LineShift(Direction.EAST, 0, 0, 2),
                LineShift(Direction.EAST, 1, 4, 6),
            ]
        )

    def test_unintended_pickup_flagged(self):
        grid = _grid()
        grid[0, 0] = True
        grid[1, 4] = True
        grid[0, 5] = True  # bystander at an unintended crossing
        codes = [v.code for v in check_parallel_move(grid, self._two_row_move())]
        assert CROSS_PICKUP in codes

    def test_empty_crossings_pass(self):
        grid = _grid()
        grid[0, 0] = True
        grid[1, 4] = True
        assert is_move_safe(grid, self._two_row_move())

    def test_check_disabled(self):
        grid = _grid()
        grid[0, 0] = True
        grid[1, 4] = True
        grid[0, 5] = True
        constraints = AodConstraints(enforce_cross_product=False)
        codes = [
            v.code for v in check_parallel_move(grid, self._two_row_move(), constraints)
        ]
        assert CROSS_PICKUP not in codes


class TestToneBudget:
    def test_line_budget(self):
        grid = _grid()
        move = ParallelMove.of([LineShift(Direction.EAST, r, 0, 2) for r in range(5)])
        constraints = AodConstraints(max_line_tones=4)
        codes = [v.code for v in check_parallel_move(grid, move, constraints)]
        assert TONE_BUDGET in codes

    def test_cross_budget(self):
        grid = _grid()
        move = _east(0, 0, 6)
        constraints = AodConstraints(max_cross_tones=3)
        codes = [v.code for v in check_parallel_move(grid, move, constraints)]
        assert TONE_BUDGET in codes

    def test_unlimited_by_default(self):
        grid = _grid()
        move = ParallelMove.of([LineShift(Direction.EAST, r, 0, 7) for r in range(8)])
        assert is_move_safe(grid, move)


class TestEmptyMove:
    def test_flagged_when_forbidden(self):
        grid = _grid()
        constraints = AodConstraints(forbid_empty_moves=True)
        codes = [v.code for v in check_parallel_move(grid, _east(0, 0, 3), constraints)]
        assert EMPTY_MOVE in codes

    def test_allowed_by_default(self):
        grid = _grid()
        assert is_move_safe(grid, _east(0, 0, 3))


class TestViolationFormatting:
    def test_str_mentions_code(self):
        grid = _grid()
        grid[0, 1] = True
        grid[0, 3] = True
        violations = check_parallel_move(grid, _east(0, 0, 3))
        assert violations
        assert LEAD_COLLISION in str(violations[0])
