"""Tests for the dataflow simulation substrate."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.fpga.sim import (
    Fifo,
    PipelineModule,
    RateConsumerModule,
    Simulator,
    SourceModule,
)


class TestFifo:
    def test_push_pop_order(self):
        fifo = Fifo("f", 4)
        for i in range(3):
            assert fifo.push(i)
        assert [fifo.pop(), fifo.pop(), fifo.pop()] == [0, 1, 2]

    def test_capacity_and_stall_stats(self):
        fifo = Fifo("f", 2)
        assert fifo.push(1) and fifo.push(2)
        assert not fifo.push(3)
        assert fifo.stats.stall_cycles == 1
        assert fifo.full

    def test_pop_empty_returns_none(self):
        assert Fifo("f", 1).pop() is None

    def test_peek(self):
        fifo = Fifo("f", 2)
        fifo.push("a")
        assert fifo.peek() == "a"
        assert len(fifo) == 1

    def test_occupancy_stats(self):
        fifo = Fifo("f", 8)
        for i in range(5):
            fifo.push(i)
        fifo.pop()
        assert fifo.stats.max_occupancy == 5
        assert fifo.stats.total_popped == 1

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Fifo("f", 0)


class TestSourceModule:
    def test_respects_ready_times(self):
        out = Fifo("out", 8)
        source = SourceModule("src", out)
        source.load([(0, "a"), (3, "b")])
        sim = Simulator()
        sim.add_module(source)
        sim.add_fifo(out)
        result = sim.run()
        # 'b' cannot be emitted before cycle 3; run ends after cycle 3.
        assert result.cycles == 4
        assert out.pop() == "a"
        assert out.pop() == "b"

    def test_one_token_per_cycle(self):
        out = Fifo("out", 8)
        source = SourceModule("src", out)
        source.load([(0, i) for i in range(5)])
        sim = Simulator()
        sim.add_module(source)
        result = sim.run()
        assert result.cycles == 5


class TestPipelineModule:
    def _build(self, n_tokens, depth):
        sim = Simulator()
        inp = sim.new_fifo("in", 64)
        out = sim.new_fifo("out", 64)
        source = SourceModule("src", inp)
        source.load([(0, i) for i in range(n_tokens)])
        pipe = PipelineModule("pipe", inp, out, depth)
        pipe.set_upstream_done(lambda: source.done)
        sim.add_module(source)
        sim.add_module(pipe)
        return sim, out, pipe

    def test_latency_is_depth_plus_stream(self):
        sim, out, _ = self._build(n_tokens=10, depth=5)
        result = sim.run()
        # Last token enters at ~cycle 10, leaves depth cycles later.
        assert 14 <= result.cycles <= 17
        assert len(out) == 10

    def test_single_token_latency(self):
        sim, out, _ = self._build(n_tokens=1, depth=7)
        result = sim.run()
        assert 7 <= result.cycles <= 9

    def test_transform_applied(self):
        sim = Simulator()
        inp = sim.new_fifo("in", 8)
        out = sim.new_fifo("out", 8)
        source = SourceModule("src", inp)
        source.load([(0, 2), (0, 3)])
        pipe = PipelineModule("pipe", inp, out, 2, transform=lambda x: x * 10)
        pipe.set_upstream_done(lambda: source.done)
        sim.add_module(source)
        sim.add_module(pipe)
        sim.run()
        assert out.pop() == 20
        assert out.pop() == 30


class TestRateConsumer:
    def test_consumes_everything(self):
        sim = Simulator()
        inp = sim.new_fifo("in", 64)
        source = SourceModule("src", inp)
        source.load([(0, i) for i in range(6)])
        consumer = RateConsumerModule("sink", inp, out=None)
        consumer.set_upstream_done(lambda: source.done)
        sim.add_module(source)
        sim.add_module(consumer)
        sim.run()
        assert consumer.consumed == 6

    def test_forwards_downstream(self):
        sim = Simulator()
        inp = sim.new_fifo("in", 8)
        out = sim.new_fifo("out", 8)
        source = SourceModule("src", inp)
        source.load([(0, "x")])
        consumer = RateConsumerModule("mid", inp, out, latency=2)
        consumer.set_upstream_done(lambda: source.done)
        sim.add_module(source)
        sim.add_module(consumer)
        sim.run()
        assert out.pop() == "x"


class TestSimulator:
    def test_empty_simulation_finishes(self):
        assert Simulator().run().cycles == 0

    def test_deadlock_detection(self):
        sim = Simulator(max_cycles=100)
        inp = sim.new_fifo("in", 1)
        consumer = RateConsumerModule("sink", inp, out=None)
        consumer.set_upstream_done(lambda: False)  # never done
        sim.add_module(consumer)
        with pytest.raises(DeadlockError):
            sim.run()

    def test_module_busy_stats(self):
        sim = Simulator()
        inp = sim.new_fifo("in", 8)
        source = SourceModule("src", inp)
        source.load([(0, 1), (0, 2)])
        consumer = RateConsumerModule("sink", inp, out=None)
        consumer.set_upstream_done(lambda: source.done)
        sim.add_module(source)
        sim.add_module(consumer)
        result = sim.run()
        assert result.module_busy["src"] == 2
        assert "in" in result.fifo_stats
