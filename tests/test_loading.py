"""Unit tests for repro.lattice.loading."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LoadingError
from repro.lattice.geometry import ArrayGeometry
from repro.lattice.loading import (
    as_rng,
    load_checkerboard,
    load_exact,
    load_feasible,
    load_gradient,
    load_uniform,
)


class TestUniform:
    def test_seed_reproducible(self, geo20):
        a = load_uniform(geo20, 0.5, rng=7)
        b = load_uniform(geo20, 0.5, rng=7)
        assert a == b

    def test_different_seeds_differ(self, geo20):
        assert load_uniform(geo20, 0.5, rng=1) != load_uniform(geo20, 0.5, rng=2)

    def test_fill_statistics(self):
        geo = ArrayGeometry.square(50, 30)
        array = load_uniform(geo, 0.5, rng=3)
        # Binomial(2500, 0.5): five sigma is +-125.
        assert 1125 <= array.n_atoms <= 1375

    def test_extreme_fills(self, geo20):
        assert load_uniform(geo20, 0.0, rng=0).n_atoms == 0
        assert load_uniform(geo20, 1.0, rng=0).n_atoms == geo20.n_sites

    def test_invalid_fill_rejected(self, geo20):
        with pytest.raises(LoadingError):
            load_uniform(geo20, 1.5)
        with pytest.raises(LoadingError):
            load_uniform(geo20, -0.1)


class TestExact:
    def test_exact_count(self, geo20):
        array = load_exact(geo20, 123, rng=5)
        assert array.n_atoms == 123

    def test_bounds(self, geo20):
        assert load_exact(geo20, 0, rng=0).n_atoms == 0
        assert load_exact(geo20, geo20.n_sites, rng=0).n_atoms == geo20.n_sites

    def test_out_of_range_rejected(self, geo20):
        with pytest.raises(LoadingError):
            load_exact(geo20, geo20.n_sites + 1)
        with pytest.raises(LoadingError):
            load_exact(geo20, -1)


class TestGradient:
    def test_centre_denser_than_edge(self):
        geo = ArrayGeometry.square(40, 20)
        array = load_gradient(geo, centre_fill=0.9, edge_fill=0.1, rng=11)
        centre = array.region_count(geo.target_region) / geo.n_target_sites
        edge_mask = np.ones(geo.shape, dtype=bool)
        tr = geo.target_region
        edge_mask[tr.row_slice, tr.col_slice] = False
        edge = array.grid[edge_mask].mean()
        assert centre > edge

    def test_invalid_fill_rejected(self, geo20):
        with pytest.raises(LoadingError):
            load_gradient(geo20, centre_fill=1.2)


class TestFeasible:
    def test_guarantees_enough_atoms(self, geo20):
        array = load_feasible(geo20, 0.5, rng=2)
        assert array.n_atoms >= geo20.n_target_sites

    def test_impossible_fill_raises(self, geo20):
        with pytest.raises(LoadingError):
            load_feasible(geo20, 0.01, rng=0, max_attempts=3)


class TestCheckerboard:
    def test_half_fill(self, geo20):
        assert load_checkerboard(geo20).n_atoms == geo20.n_sites // 2

    def test_phases_complement(self, geo20):
        a = load_checkerboard(geo20, phase=0)
        b = load_checkerboard(geo20, phase=1)
        assert not np.any(a.grid & b.grid)
        assert np.all(a.grid | b.grid)


class TestAsRng:
    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_int_seed(self):
        assert isinstance(as_rng(5), np.random.Generator)

    def test_none(self):
        assert isinstance(as_rng(None), np.random.Generator)
