"""Unit tests for repro.core.scan — the shift-kernel scan semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scan import (
    compact_line,
    current_hole_position,
    is_prefix_line,
    is_young_diagram,
    scan_axis,
    scan_line,
)


def bits(text: str) -> np.ndarray:
    """'1011' -> array([True, False, True, True]), index 0 first."""
    return np.array([ch == "1" for ch in text], dtype=bool)


class TestScanLine:
    def test_full_line_has_no_commands(self):
        assert scan_line(bits("1111")).hole_positions == ()

    def test_empty_line_has_no_commands(self):
        assert scan_line(bits("0000")).hole_positions == ()

    def test_single_hole_with_atom_outboard(self):
        assert scan_line(bits("1011")).hole_positions == (1,)

    def test_hole_at_lsb(self):
        assert scan_line(bits("0111")).hole_positions == (0,)

    def test_trailing_holes_never_commands(self):
        # Holes with nothing outboard are "empty shifts" — removed.
        assert scan_line(bits("1100")).hole_positions == ()

    def test_interleaved(self):
        assert scan_line(bits("010101")).hole_positions == (0, 2, 4)

    def test_run_of_holes(self):
        assert scan_line(bits("10011")).hole_positions == (1, 2)

    def test_counts_and_snapshot(self):
        result = scan_line(bits("0110"), line=5)
        assert result.line == 5
        assert result.n_atoms == 2
        assert result.n_commands == 1
        assert result.bits_before == (False, True, True, False)

    def test_empty_input(self):
        result = scan_line(np.zeros(0, dtype=bool))
        assert result.hole_positions == ()
        assert result.n_atoms == 0

    def test_single_site(self):
        assert scan_line(bits("1")).hole_positions == ()
        assert scan_line(bits("0")).hole_positions == ()


class TestCompactLine:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1011", "1110"),
            ("0101", "1100"),
            ("0000", "0000"),
            ("1111", "1111"),
            ("0001", "1000"),
        ],
    )
    def test_examples(self, text, expected):
        assert list(compact_line(bits(text))) == list(bits(expected))

    def test_compaction_equals_executing_all_commands(self, rng):
        for _ in range(100):
            line = rng.random(12) < 0.5
            result = scan_line(line)
            state = line.copy()
            for k, hole in enumerate(result.hole_positions):
                cur = current_hole_position(hole, k)
                # suffix shift: everything above cur moves one inboard
                state[cur:-1] = state[cur + 1 :]
                state[-1] = False
            assert np.array_equal(state, compact_line(line))


class TestPredicates:
    def test_is_prefix_line(self):
        assert is_prefix_line(bits("1110"))
        assert is_prefix_line(bits("0000"))
        assert not is_prefix_line(bits("1011"))

    def test_is_young_diagram_true(self):
        grid = np.array(
            [
                [1, 1, 1],
                [1, 1, 0],
                [1, 0, 0],
            ],
            dtype=bool,
        )
        assert is_young_diagram(grid)

    def test_is_young_diagram_false_rows(self):
        grid = np.array([[1, 0, 1], [0, 0, 0]], dtype=bool)
        assert not is_young_diagram(grid)

    def test_is_young_diagram_false_cols(self):
        grid = np.array([[0, 0], [1, 1]], dtype=bool)
        assert not is_young_diagram(grid)


class TestScanAxis:
    def test_row_scan_lines(self):
        grid = np.array([[1, 0, 1], [0, 0, 0]], dtype=bool)
        scans = scan_axis(grid, axis=0)
        assert len(scans) == 2
        assert scans[0].hole_positions == (1,)
        assert scans[1].hole_positions == ()

    def test_column_scan_lines(self):
        grid = np.array([[1, 0], [0, 0], [1, 1]], dtype=bool)
        scans = scan_axis(grid, axis=1)
        assert len(scans) == 2
        assert scans[0].hole_positions == (1,)
        assert scans[1].hole_positions == (0, 1)

    def test_invalid_axis(self):
        with pytest.raises(ValueError):
            scan_axis(np.zeros((2, 2), dtype=bool), axis=2)
