"""Tests for the experiment runners and table formatting."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    PAPER_FIG7B_US,
    run_ablation,
    run_fig7a,
    run_fig7b,
    run_fig8,
    run_headline,
    run_success_sweep,
    run_workflow_comparison,
)
from repro.analysis.stats import Summary, assembly_statistics, run_trials
from repro.analysis.tables import format_table, to_csv


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 22.25]], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "name" in lines[1]
        assert "-" in lines[2]
        assert len(lines) == 5

    def test_format_table_bool_and_float(self):
        text = format_table(["x"], [[True], [1.23456]])
        assert "yes" in text
        assert "1.23" in text

    def test_to_csv(self):
        csv = to_csv(["a", "b"], [[1, 2.5], [3, 4.0]])
        lines = csv.splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"


class TestSummary:
    def test_of_values(self):
        summary = Summary.of([1.0, 2.0, 3.0])
        assert summary.mean == 2.0
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.n == 3

    def test_empty(self):
        import math

        assert math.isnan(Summary.of([]).mean)

    def test_run_trials(self):
        summary = run_trials(lambda seed: float(seed), [1, 2, 3])
        assert summary.mean == 2.0


class TestAssemblyStatistics:
    def test_repair_beats_plain_qrm(self):
        seeds = [0, 1, 2]
        plain = assembly_statistics("qrm", 20, 0.5, seeds)
        repaired = assembly_statistics("qrm-repair", 20, 0.5, seeds)
        assert repaired.mean_target_fill >= plain.mean_target_fill
        assert repaired.success_probability >= plain.success_probability

    def test_higher_fill_helps(self):
        seeds = [0, 1]
        low = assembly_statistics("qrm", 20, 0.5, seeds)
        high = assembly_statistics("qrm", 20, 0.8, seeds)
        assert high.mean_target_fill >= low.mean_target_fill


class TestRunners:
    def test_fig7a_small(self):
        result = run_fig7a(sizes=(10, 20), trials=1)
        assert [r.size for r in result.rows] == [10, 20]
        for row in result.rows:
            assert row.fpga_us > 0
            assert row.cpu_model_us > 0
            assert row.speedup_model > 1
        assert "Fig 7(a)" in result.format_table()
        assert "10" in result.to_csv()

    def test_fig7a_fpga_flatter_than_cpu(self):
        result = run_fig7a(sizes=(10, 50), trials=1)
        fpga_growth = result.rows[1].fpga_us / result.rows[0].fpga_us
        cpu_growth = result.rows[1].cpu_model_us / result.rows[0].cpu_model_us
        assert fpga_growth < cpu_growth

    def test_fig7b_ordering(self):
        result = run_fig7b(size=20, trials=1)
        by_label = {r.label: r for r in result.rows}
        assert set(by_label) == set(PAPER_FIG7B_US)
        assert (
            by_label["qrm-fpga"].model_us
            < by_label["qrm-cpu"].model_us
            < by_label["tetris"].model_us
            < by_label["psca"].model_us
            < by_label["mta1"].model_us
        )
        assert "Fig 7(b)" in result.format_table()

    def test_fig8_rows(self):
        result = run_fig8(sizes=(10, 90))
        assert result.rows[0].lut_pct < result.rows[1].lut_pct
        assert result.rows[0].bram_pct == result.rows[1].bram_pct
        assert result.rows[1].lut_pct == pytest.approx(6.31, abs=0.02)
        assert "Fig 8" in result.format_table()

    def test_headline(self):
        result = run_headline(seed=0)
        assert result.speedup_vs_cpu > 10
        assert result.speedup_vs_tetris > 50
        assert result.iterations_used <= 4
        assert "claim" in result.format_table()

    def test_ablation_rows(self):
        result = run_ablation(size=20, trials=1)
        assert len(result.rows) == 4
        pipelined, fresh, unmerged, sen = result.rows
        assert pipelined.mode == "pipelined"
        assert fresh.mode == "fresh"
        assert fresh.iterations <= pipelined.iterations
        assert fresh.skipped_stale == 0
        assert not unmerged.merge
        assert unmerged.moves >= pipelined.moves
        assert sen.mode == "pipelined+s_en"
        assert sen.moves <= pipelined.moves

    def test_success_sweep(self):
        result = run_success_sweep(
            fills=(0.5, 0.7), size=20, trials=2, algorithms=("qrm",)
        )
        assert len(result.rows) == 2
        assert result.rows[1].mean_target_fill >= result.rows[0].mean_target_fill
        assert "P(success)" in result.format_table()

    def test_workflow_comparison(self):
        result = run_workflow_comparison(size=20)
        assert result.budget_b.total_us < result.budget_a.total_us
        assert "faster end to end" in result.format_table()
