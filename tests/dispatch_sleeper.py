"""Import-light work functions for dispatch keep-alive tests.

Lives apart from test_dispatch so a worker resolving these does not pay
for importing pytest/hypothesis — the ping-deadline tests need function
resolution to be fast relative to the liveness timeout.
"""

import time


def sleepy_square(value: int) -> int:
    time.sleep(2.0)
    return value * value
