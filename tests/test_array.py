"""Unit tests for repro.lattice.array."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.lattice.array import AtomArray
from repro.lattice.geometry import Quadrant, Region


class TestConstruction:
    def test_default_is_empty(self, geo8):
        array = AtomArray(geo8)
        assert array.n_atoms == 0

    def test_full(self, geo8):
        assert AtomArray.full(geo8).n_atoms == geo8.n_sites

    def test_grid_is_copied(self, geo8):
        grid = np.zeros(geo8.shape, dtype=bool)
        array = AtomArray(geo8, grid)
        grid[0, 0] = True
        assert not array.is_occupied(0, 0)

    def test_shape_mismatch_raises(self, geo8):
        with pytest.raises(GeometryError):
            AtomArray(geo8, np.zeros((4, 4), dtype=bool))

    def test_from_rows_and_back(self, geo8):
        rows = [
            "#.......",
            ".#......",
            "..#.....",
            "...#....",
            "....#...",
            ".....#..",
            "......#.",
            ".......#",
        ]
        array = AtomArray.from_rows(geo8, rows)
        assert array.n_atoms == 8
        assert array.to_rows() == rows

    def test_from_rows_wrong_count(self, geo8):
        with pytest.raises(GeometryError):
            AtomArray.from_rows(geo8, ["#" * 8] * 7)

    def test_from_rows_wrong_length(self, geo8):
        with pytest.raises(GeometryError):
            AtomArray.from_rows(geo8, ["#" * 7] + ["#" * 8] * 7)

    def test_from_rows_accepts_ones(self, geo8):
        array = AtomArray.from_rows(geo8, ["1" * 8] + ["." * 8] * 7)
        assert array.n_atoms == 8


class TestQueries:
    def test_set_and_get(self, geo8):
        array = AtomArray(geo8)
        array.set_site(3, 4, True)
        assert array.is_occupied(3, 4)
        array.set_site(3, 4, False)
        assert not array.is_occupied(3, 4)

    def test_occupied_sites_row_major(self, geo8):
        array = AtomArray(geo8)
        array.set_site(2, 5, True)
        array.set_site(1, 3, True)
        assert array.occupied_sites() == [(1, 3), (2, 5)]

    def test_row_col_counts(self, geo8):
        array = AtomArray(geo8)
        array.set_site(0, 0, True)
        array.set_site(0, 5, True)
        array.set_site(4, 0, True)
        assert array.row_counts()[0] == 2
        assert array.col_counts()[0] == 2

    def test_region_count_and_defects(self, geo8):
        array = AtomArray(geo8)
        region = Region(0, 0, 2, 2)
        array.set_site(0, 0, True)
        assert array.region_count(region) == 1
        assert set(array.region_defects(region)) == {(0, 1), (1, 0), (1, 1)}

    def test_target_queries(self, geo8):
        array = AtomArray.full(geo8)
        assert array.target_count() == geo8.n_target_sites
        assert array.target_defects() == []

    def test_quadrant_count(self, geo8):
        array = AtomArray(geo8)
        array.set_site(0, 0, True)  # NW
        array.set_site(7, 7, True)  # SE
        assert array.quadrant_count(Quadrant.NW) == 1
        assert array.quadrant_count(Quadrant.SE) == 1
        assert array.quadrant_count(Quadrant.NE) == 0


class TestDunders:
    def test_copy_is_independent(self, array20):
        clone = array20.copy()
        clone.set_site(0, 0, not clone.is_occupied(0, 0))
        assert clone != array20

    def test_equality(self, geo8):
        a = AtomArray(geo8)
        b = AtomArray(geo8)
        assert a == b
        b.set_site(1, 1, True)
        assert a != b

    def test_equality_other_type(self, geo8):
        assert AtomArray(geo8) != "not an array"

    def test_repr_mentions_sizes(self, geo8):
        text = repr(AtomArray(geo8))
        assert "8x8" in text
        assert "4x4" in text
