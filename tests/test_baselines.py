"""Tests for the baseline algorithms and the registry."""

from __future__ import annotations

import pytest

from repro.aod.constraints import AodConstraints
from repro.aod.validator import validate_schedule
from repro.baselines.base import (
    get_algorithm,
    list_algorithms,
    register_algorithm,
    unregister_algorithm,
)
from repro.baselines.mta1 import Mta1Scheduler, Mta1SchedulerReference
from repro.baselines.psca import PscaScheduler
from repro.baselines.tetris import TetrisScheduler
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry
from repro.lattice.loading import load_uniform

ALL_BASELINES = ["tetris", "psca", "mta1"]


class TestRegistry:
    def test_builtins_present(self):
        names = list_algorithms()
        for expected in [
            "qrm", "qrm-fresh", "qrm-repair", "typical", "tetris", "psca", "mta1"
        ]:
            assert expected in names

    def test_unknown_name_raises(self, geo8):
        with pytest.raises(KeyError):
            get_algorithm("nope", geo8)

    def test_factory_receives_geometry(self, geo20):
        algo = get_algorithm("tetris", geo20)
        assert algo.geometry == geo20

    def test_custom_registration(self, geo8):
        class Dummy:
            name = "dummy"

            def __init__(self, geometry):
                self.geometry = geometry

            def schedule(self, array):
                raise NotImplementedError

        register_algorithm("dummy-test", Dummy)
        try:
            assert "dummy-test" in list_algorithms()
            assert isinstance(get_algorithm("dummy-test", geo8), Dummy)
        finally:
            unregister_algorithm("dummy-test")
        assert "dummy-test" not in list_algorithms()


@pytest.mark.parametrize("name", ALL_BASELINES)
class TestBaselineContracts:
    def test_schedule_replays_cleanly(self, name, array20):
        algo = get_algorithm(name, array20.geometry)
        result = algo.schedule(array20)
        report = validate_schedule(array20, result.schedule)
        assert report.ok, report.violations[:3]
        assert report.final_array == result.final

    def test_atoms_conserved(self, name, array20):
        result = get_algorithm(name, array20.geometry).schedule(array20)
        assert result.final.n_atoms == array20.n_atoms

    def test_improves_target_fill(self, name, array20):
        result = get_algorithm(name, array20.geometry).schedule(array20)
        assert result.target_fill_fraction > array20.target_count() / (
            array20.geometry.n_target_sites
        )

    def test_empty_array_no_moves(self, name, geo8):
        result = get_algorithm(name, geo8).schedule(AtomArray(geo8))
        assert result.n_moves == 0

    def test_full_array_no_defects(self, name, geo8):
        result = get_algorithm(name, geo8).schedule(AtomArray.full(geo8))
        assert result.defect_free

    def test_geometry_mismatch_rejected(self, name, geo8, array20):
        with pytest.raises(ValueError):
            get_algorithm(name, geo8).schedule(array20)

    def test_wall_time_recorded(self, name, array20):
        result = get_algorithm(name, array20.geometry).schedule(array20)
        assert result.wall_time_s > 0
        assert result.analysis_ops > 0


class TestWallTimeConvention:
    """Every registered algorithm times the same span via timed_schedule."""

    def test_every_registered_algorithm_populates_wall_time(self, geo8):
        array = load_uniform(geo8, 0.5, rng=7)
        for name in list_algorithms():
            result = get_algorithm(name, geo8).schedule(array)
            assert result.wall_time_s > 0, name

    def test_wall_time_covers_qrm_repair_stage(self, geo20):
        # The helper stamps the result *after* post-passes, so the QRM
        # repair stage is inside the measured span, not bolted on after.
        array = load_uniform(geo20, 0.5, rng=11)
        result = get_algorithm("qrm-repair", geo20).schedule(array)
        assert result.repair_moves >= 0
        assert result.wall_time_s > 0


class TestMta1Accounting:
    """Regression tests pinning the fixed analysis_ops accounting.

    The published profile is O(defects x reservoir): every defect ranks
    the whole reservoir (one op per candidate examined) and each probed
    candidate charges exactly the path cells its short-circuiting
    L-clearance tests touch — not a flat per-candidate constant, and not
    ``n_sites`` per defect as the old accounting over-charged.
    """

    def test_analysis_ops_pinned_on_fixed_grid(self):
        geometry = ArrayGeometry.square(4, 2)
        array = AtomArray.from_rows(geometry, ["#...", "..#.", ".#..", "...#"])
        result = Mta1Scheduler(geometry).schedule(array)
        reference = Mta1SchedulerReference(geometry).schedule(array)
        # Two defects, served centre-outward: (1,1) ranks a 2-atom
        # reservoir and routes (0,0) over a clear row-then-column L-path
        # probing 1+1 cells; (2,2) ranks the remaining 1-atom reservoir
        # and routes (3,3) the same way: (2 + 2) + (1 + 2) = 7.
        assert result.analysis_ops == reference.analysis_ops == 7
        assert result.unresolved_defects == 0
        assert result.n_moves == 4

    def test_short_circuit_probe_charges_pinned(self):
        geometry = ArrayGeometry.square(4, 2)
        array = AtomArray.from_rows(geometry, [".#..", ".##.", "....", "...."])
        result = Mta1Scheduler(geometry).schedule(array)
        reference = Mta1SchedulerReference(geometry).schedule(array)
        # Both defects are unroutable from the single reservoir atom at
        # (0,1).  Defect (2,1): zero-cell row leg, then the 2-cell
        # column window fails both attempts -> 1 + (0+2) + 2.  Defect
        # (2,2): 1-cell row leg clears, 2-cell column window fails, then
        # the column-first 2-cell window fails before its row leg is
        # probed -> 1 + (1+2) + 2.  Total 11.
        assert result.analysis_ops == reference.analysis_ops == 11
        assert result.unresolved_defects == 2
        assert result.n_moves == 0


class TestMta1Specifics:
    def test_moves_are_single_atom(self, array20):
        result = Mta1Scheduler(array20.geometry).schedule(array20)
        assert all(len(move) == 1 for move in result.schedule)
        assert all(move.shifts[0].span_length == 1 for move in result.schedule)

    def test_at_most_two_legs_per_defect(self, array20):
        result = Mta1Scheduler(array20.geometry).schedule(array20)
        initial_defects = array20.geometry.n_target_sites - array20.target_count()
        assert len(result.schedule) <= 2 * initial_defects


class TestPscaSpecifics:
    def test_tweezer_budget_respected(self, array20):
        scheduler = PscaScheduler(array20.geometry, max_tweezers=4)
        result = scheduler.schedule(array20)
        assert all(len(move) <= 4 for move in result.schedule)
        report = validate_schedule(array20, result.schedule)
        assert report.ok

    def test_budget_respects_tone_constraint(self, array20):
        scheduler = PscaScheduler(array20.geometry, max_tweezers=4)
        result = scheduler.schedule(array20)
        constraints = AodConstraints(max_line_tones=4)
        report = validate_schedule(array20, result.schedule, constraints)
        assert report.ok

    def test_smaller_budget_means_more_moves(self, array20):
        small = PscaScheduler(array20.geometry, max_tweezers=2).schedule(array20)
        large = PscaScheduler(array20.geometry, max_tweezers=16).schedule(array20)
        assert small.n_moves >= large.n_moves


class TestTetrisSpecifics:
    def test_decent_fill_at_half_loading(self, geo20):
        array = load_uniform(geo20, 0.5, rng=31)
        result = TetrisScheduler(geo20).schedule(array)
        assert result.target_fill_fraction >= 0.85

    def test_pull_moves_share_source_row(self, array20):
        result = TetrisScheduler(array20.geometry).schedule(array20)
        for move in result.schedule:
            if not move.is_horizontal and len(move) > 1:
                starts = {s.span_start for s in move.shifts}
                assert len(starts) == 1  # one source row per pull batch
