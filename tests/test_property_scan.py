"""Property-based tests for the scan kernel semantics."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scan import (
    compact_line,
    current_hole_position,
    is_prefix_line,
    scan_line,
)
from repro.fpga.bitvec import BitVector
from repro.fpga.shift_kernel import ShiftKernelLane

lines = st.lists(st.booleans(), min_size=1, max_size=64).map(
    lambda bits: np.array(bits, dtype=bool)
)


@given(lines)
def test_scan_commands_are_holes_with_outboard_atoms(line):
    result = scan_line(line)
    for hole in result.hole_positions:
        assert not line[hole]
        assert line[hole + 1 :].any()


@given(lines)
def test_scan_commands_strictly_ascending(line):
    holes = scan_line(line).hole_positions
    assert list(holes) == sorted(set(holes))


@given(lines)
def test_command_count_bounded_by_holes(line):
    result = scan_line(line)
    n_holes = int((~line).sum())
    assert result.n_commands <= n_holes


@given(lines)
def test_compaction_preserves_popcount(line):
    compacted = compact_line(line)
    assert compacted.sum() == line.sum()
    assert is_prefix_line(compacted)


@given(lines)
def test_compaction_idempotent(line):
    once = compact_line(line)
    twice = compact_line(once)
    assert np.array_equal(once, twice)


@given(lines)
def test_compacted_lines_scan_to_zero_commands(line):
    assert scan_line(compact_line(line)).n_commands == 0


@given(lines)
def test_executing_commands_reaches_compaction(line):
    state = line.copy()
    for k, hole in enumerate(scan_line(line).hole_positions):
        cur = current_hole_position(hole, k)
        assert not state[cur]  # the tracked hole is still a hole
        state[cur:-1] = state[cur + 1 :]
        state[-1] = False
    assert np.array_equal(state, compact_line(line))


@given(lines)
@settings(max_examples=200)
def test_register_model_matches_functional_scan(line):
    lane = ShiftKernelLane(line.size)
    trace = lane.scan_row(BitVector.from_array(line))
    assert trace.hole_positions() == scan_line(line).hole_positions


@given(lines)
def test_register_model_transpose_is_input(line):
    lane = ShiftKernelLane(line.size)
    lane.scan_row(BitVector.from_array(line))
    streamed = [buf[0] for buf in lane.column_buffers]
    assert streamed == list(line)
