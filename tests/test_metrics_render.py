"""Unit tests for repro.lattice.metrics and repro.lattice.render."""

from __future__ import annotations

from repro.lattice.array import AtomArray
from repro.lattice.geometry import Region
from repro.lattice.metrics import (
    defect_count,
    fill_fraction,
    is_defect_free,
    summarize,
    surplus_atoms,
    target_fill_fraction,
)
from repro.lattice.render import render_array, render_side_by_side


class TestMetrics:
    def test_fill_fraction_whole_array(self, geo8):
        array = AtomArray(geo8)
        array.set_site(0, 0, True)
        assert fill_fraction(array) == 1 / 64

    def test_fill_fraction_empty_region(self, geo8):
        assert fill_fraction(AtomArray(geo8), Region(0, 0, 0, 0)) == 1.0

    def test_target_fill_fraction(self, geo8):
        array = AtomArray.full(geo8)
        assert target_fill_fraction(array) == 1.0

    def test_defect_count_default_target(self, geo8):
        array = AtomArray(geo8)
        assert defect_count(array) == geo8.n_target_sites
        assert not is_defect_free(array)

    def test_defect_free(self, geo8):
        assert is_defect_free(AtomArray.full(geo8))

    def test_surplus(self, geo8):
        array = AtomArray.full(geo8)
        assert surplus_atoms(array) == geo8.n_sites - geo8.n_target_sites

    def test_summarize_consistency(self, array20):
        stats = summarize(array20)
        assert stats.n_atoms == array20.n_atoms
        assert stats.defects == defect_count(array20)
        assert abs(stats.target_fill_fraction - target_fill_fraction(array20)) < 1e-12
        assert sum(stats.quadrant_counts.values()) == stats.n_atoms

    def test_summarize_format_mentions_key_numbers(self, array20):
        text = summarize(array20).format()
        assert str(array20.n_atoms) in text
        assert "quadrants" in text


class TestRender:
    def test_render_line_count(self, geo8):
        text = render_array(AtomArray(geo8))
        assert len(text.splitlines()) == geo8.height

    def test_render_marks_target_defects(self, geo8):
        text = render_array(AtomArray(geo8))
        assert "○" in text

    def test_render_occupied_symbol(self, geo8):
        array = AtomArray(geo8)
        array.set_site(0, 0, True)
        assert render_array(array).splitlines()[0].startswith("●")

    def test_render_without_target_marker(self, geo8):
        text = render_array(AtomArray(geo8), show_target=False)
        assert "○" not in text

    def test_side_by_side_header_and_width(self, geo8):
        a = AtomArray(geo8)
        b = AtomArray.full(geo8)
        text = render_side_by_side(a, b, labels=("left", "right"))
        lines = text.splitlines()
        assert lines[0].startswith("left")
        assert "right" in lines[0]
        assert len(lines) == geo8.height + 1
