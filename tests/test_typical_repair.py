"""Tests for the typical algorithm and the repair stage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aod.validator import validate_schedule
from repro.config import QrmParameters, ScanMode
from repro.core.qrm import QrmScheduler
from repro.core.repair import repair_defects
from repro.core.typical import TypicalScheduler
from repro.lattice.array import AtomArray
from repro.lattice.loading import load_uniform


class TestTypical:
    def test_schedule_replays_cleanly(self, array20):
        result = TypicalScheduler(array20.geometry).schedule(array20)
        report = validate_schedule(array20, result.schedule)
        assert report.ok
        assert report.final_array == result.final

    def test_geometry_mismatch_rejected(self, geo8, array20):
        with pytest.raises(ValueError):
            TypicalScheduler(geo8).schedule(array20)

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_matches_qrm_fresh_fixpoint(self, geo20, seed):
        """Sec. III-A's procedure and QRM reach the same final state.

        QRM is the typical procedure reorganised for parallel hardware;
        in fresh scan mode both must land on the identical per-quadrant
        compaction fixpoint.
        """
        array = load_uniform(geo20, 0.5, rng=seed)
        typical = TypicalScheduler(geo20).schedule(array)
        fresh = QrmScheduler(
            geo20, QrmParameters(n_iterations=4, scan_mode=ScanMode.FRESH)
        ).schedule(array)
        assert typical.final == fresh.final

    def test_fig3_demo_scenario(self, geo8):
        """An 8x8 / 4x4 target with ample atoms assembles defect-free."""
        array = load_uniform(geo8, 0.7, rng=3)
        result = TypicalScheduler(geo8).schedule(array)
        assert result.converged
        assert result.target_fill_fraction >= 0.9

    def test_empty_and_full_arrays(self, geo8):
        assert TypicalScheduler(geo8).schedule(AtomArray(geo8)).n_moves == 0
        assert TypicalScheduler(geo8).schedule(AtomArray.full(geo8)).n_moves == 0

    def test_move_blocks_shift_whole_prefix(self, geo8):
        # One atom in the NW corner: the horizontal phase walks it to
        # the centre column (3 one-step blocks), the vertical phase then
        # walks it to the centre row (3 more).
        array = AtomArray(geo8)
        array.set_site(0, 0, True)
        result = TypicalScheduler(geo8).schedule(array)
        assert result.final.is_occupied(3, 3)
        assert result.n_moves == 6


class TestRepair:
    def test_fills_single_defect(self, geo8):
        # Target full except one defect; a lone reservoir atom with a
        # clear L-path must be routed into it.
        array = AtomArray(geo8)
        target = geo8.target_region
        for site in target.sites():
            array.set_site(*site, True)
        array.set_site(3, 3, False)  # the defect
        array.set_site(0, 3, True)  # reservoir atom straight above it...
        array.set_site(2, 3, False)  # keep the column path clear
        array.set_site(1, 3, False)
        outcome = repair_defects(array)
        assert array.is_occupied(3, 3)
        assert outcome.filled == 1
        assert outcome.unresolved >= 0

    def test_unresolvable_counts(self, geo8):
        array = AtomArray(geo8)  # no reservoir at all
        outcome = repair_defects(array)
        assert outcome.unresolved == geo8.n_target_sites
        assert outcome.moves == []

    def test_budget_respected(self, geo20):
        array = load_uniform(geo20, 0.5, rng=5)
        QrmScheduler(geo20).schedule(array)
        work = array.copy()
        outcome = repair_defects(work, max_moves=1)
        assert len(outcome.moves) <= 1

    def test_repair_moves_replay(self, geo20):
        array = load_uniform(geo20, 0.5, rng=9)
        base = QrmScheduler(geo20).schedule(array)
        work = base.final.copy()
        outcome = repair_defects(work)
        # Replay repair moves from the pre-repair state.
        from repro.aod.executor import apply_parallel_move

        replay = base.final.copy()
        for move in outcome.moves:
            apply_parallel_move(replay.grid, move)
        assert replay == work

    def test_blocked_paths_leave_unresolved(self, geo8):
        # A defect interior to the target, walled off by target atoms:
        # every L-path from any reservoir atom crosses an occupied site.
        grid = np.ones(geo8.shape, dtype=bool)
        grid[3, 3] = False  # interior target defect
        array = AtomArray(geo8, grid)
        outcome = repair_defects(array)
        assert outcome.unresolved == 1
        assert not array.is_occupied(3, 3)
