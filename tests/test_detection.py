"""Tests for the imaging and detection substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection.camera import CameraConfig, DEFAULT_CAMERA
from repro.detection.detect import (
    detect_occupancy,
    detection_fidelity,
    site_signals,
)
from repro.detection.imaging import expected_image, render_image
from repro.detection.psf import convolve2d_same, gaussian_kernel
from repro.detection.threshold import (
    bimodal_threshold,
    otsu_threshold,
    refine_threshold_midpoint,
)
from repro.errors import ConfigurationError, DetectionError
from repro.lattice.array import AtomArray
from repro.lattice.loading import load_uniform


class TestCameraConfig:
    def test_image_shape(self):
        camera = CameraConfig(pixels_per_site=4)
        assert camera.image_shape(10, 20) == (40, 80)

    def test_mean_signal(self):
        camera = CameraConfig(photons_per_atom=100, quantum_efficiency=0.5)
        assert camera.mean_signal_e == 50.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pixels_per_site": 0},
            {"photons_per_atom": 0},
            {"psf_sigma_px": 0},
            {"background_per_px": -1},
            {"quantum_efficiency": 0},
            {"quantum_efficiency": 1.5},
            {"read_noise_e": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            CameraConfig(**kwargs)


class TestPsf:
    def test_kernel_normalised(self):
        kernel = gaussian_kernel(1.5)
        assert kernel.sum() == pytest.approx(1.0)

    def test_kernel_symmetric(self):
        kernel = gaussian_kernel(2.0)
        assert np.allclose(kernel, kernel.T)
        assert np.allclose(kernel, kernel[::-1, ::-1])

    def test_kernel_radius_default(self):
        kernel = gaussian_kernel(1.0)
        assert kernel.shape == (7, 7)  # radius ceil(3*sigma) = 3

    def test_invalid_sigma(self):
        with pytest.raises(ConfigurationError):
            gaussian_kernel(0.0)

    def test_convolution_conserves_mass(self):
        image = np.zeros((16, 16))
        image[8, 8] = 100.0
        out = convolve2d_same(image, gaussian_kernel(1.0))
        assert out.shape == image.shape
        assert out.sum() == pytest.approx(100.0, rel=1e-6)
        assert out[8, 8] == out.max()


class TestImaging:
    def test_expected_image_shape(self, geo8):
        image = expected_image(AtomArray.full(geo8))
        assert image.shape == DEFAULT_CAMERA.image_shape(8, 8)

    def test_signal_above_background(self, geo8):
        array = AtomArray(geo8)
        array.set_site(4, 4, True)
        image = expected_image(array)
        pps = DEFAULT_CAMERA.pixels_per_site
        atom_px = image[4 * pps + pps // 2, 4 * pps + pps // 2]
        corner_px = image[0, 0]
        assert atom_px > 5 * corner_px

    def test_render_reproducible_with_seed(self, geo8):
        array = load_uniform(geo8, 0.5, rng=1)
        a = render_image(array, rng=42)
        b = render_image(array, rng=42)
        assert np.array_equal(a, b)

    def test_render_noisy(self, geo8):
        array = load_uniform(geo8, 0.5, rng=1)
        a = render_image(array, rng=1)
        b = render_image(array, rng=2)
        assert not np.array_equal(a, b)


class TestThresholds:
    def test_otsu_separates_two_clusters(self, rng):
        low = rng.normal(10, 1, 500)
        high = rng.normal(50, 2, 500)
        threshold = otsu_threshold(np.concatenate([low, high]))
        # Otsu's criterion is flat across the inter-cluster gap, so any
        # split that classifies almost everything correctly is valid.
        misclassified = int((low > threshold).sum() + (high <= threshold).sum())
        assert misclassified <= 5

    def test_otsu_degenerate_constant(self):
        assert otsu_threshold(np.full(10, 7.0)) == 7.0

    def test_otsu_empty_rejected(self):
        with pytest.raises(DetectionError):
            otsu_threshold(np.zeros(0))

    def test_midpoint_refinement_centres(self, rng):
        values = np.concatenate([rng.normal(0, 1, 500), rng.normal(100, 1, 500)])
        refined = refine_threshold_midpoint(values, 20.0)
        assert 45 < refined < 55

    def test_bimodal_threshold_combined(self, rng):
        values = np.concatenate([rng.normal(5, 1, 300), rng.normal(60, 3, 300)])
        threshold = bimodal_threshold(values)
        assert 20 < threshold < 45


class TestDetection:
    def test_perfect_on_noise_free_image(self, geo20):
        truth = load_uniform(geo20, 0.5, rng=9)
        camera = CameraConfig(read_noise_e=0.0)
        image = expected_image(truth, camera)
        result = detect_occupancy(image, geo20, camera)
        assert result.array == truth
        assert detection_fidelity(truth, result.array) == 1.0

    def test_high_fidelity_on_noisy_image(self, geo20):
        truth = load_uniform(geo20, 0.5, rng=10)
        image = render_image(truth, rng=11)
        result = detect_occupancy(image, geo20)
        assert detection_fidelity(truth, result.array) >= 0.995
        assert result.separation_snr > 3.0

    def test_all_empty_array(self, geo8):
        truth = AtomArray(geo8)
        image = render_image(truth, rng=1)
        result = detect_occupancy(image, geo8)
        assert result.array.n_atoms == 0

    def test_all_full_array(self, geo8):
        truth = AtomArray.full(geo8)
        image = render_image(truth, rng=1)
        result = detect_occupancy(image, geo8)
        assert result.array.n_atoms == geo8.n_sites

    def test_site_signals_shape(self, geo8):
        image = render_image(AtomArray(geo8), rng=0)
        signals = site_signals(image, geo8, DEFAULT_CAMERA)
        assert signals.shape == geo8.shape

    def test_image_shape_mismatch_rejected(self, geo8):
        with pytest.raises(DetectionError):
            site_signals(np.zeros((5, 5)), geo8, DEFAULT_CAMERA)

    def test_fidelity_geometry_mismatch(self, geo8, geo20):
        with pytest.raises(DetectionError):
            detection_fidelity(AtomArray(geo8), AtomArray(geo20))
