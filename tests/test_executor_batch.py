"""Batched move application: identical to the per-shift executor.

:func:`repro.aod.executor.apply_parallel_move_batch` plans every shift
of one move with flat array arithmetic.  It must agree with
:func:`apply_parallel_move` (and therefore with the site-by-site
reference) on the resulting grid, the displaced-atom count, and —
because failures delegate to the per-shift path on the untouched grid —
on the exact :class:`~repro.errors.MoveError` raised.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from oracles import atom_arrays

from repro.aod.executor import (
    apply_parallel_move,
    apply_parallel_move_batch,
    execute_schedule,
)
from repro.aod.move import LineShift, ParallelMove
from repro.baselines.tetris import TetrisScheduler
from repro.core.qrm import QrmScheduler
from repro.errors import MoveError
from repro.lattice.geometry import Direction

GRID_N = 10


@st.composite
def grids(draw):
    bits = draw(
        st.lists(st.booleans(), min_size=GRID_N * GRID_N, max_size=GRID_N * GRID_N)
    )
    return np.array(bits, dtype=bool).reshape(GRID_N, GRID_N)


@st.composite
def moves(draw):
    """Wide moves (up to 8 lines) so the batched path actually engages."""
    direction = draw(st.sampled_from(list(Direction)))
    steps = draw(st.integers(1, 3))
    n_lines = draw(st.integers(1, 8))
    lines = draw(
        st.lists(
            st.integers(0, GRID_N - 1),
            min_size=n_lines,
            max_size=n_lines,
            unique=True,
        )
    )
    shifts = []
    for line in lines:
        start = draw(st.integers(0, GRID_N - 2))
        stop = draw(st.integers(start + 1, GRID_N - 1))
        shifts.append(
            LineShift(direction, line, span_start=start, span_stop=stop, steps=steps)
        )
    return ParallelMove.of(shifts)


@given(grids(), moves())
@settings(max_examples=300)
def test_batched_executor_equals_per_shift(grid, move):
    batched = grid.copy()
    per_shift = grid.copy()
    batched_error = per_shift_error = None
    moved_batched = moved_per_shift = -1
    try:
        moved_batched = apply_parallel_move_batch(batched, move)
    except MoveError as exc:
        batched_error = str(exc)
    try:
        moved_per_shift = apply_parallel_move(per_shift, move)
    except MoveError as exc:
        per_shift_error = str(exc)

    assert batched_error == per_shift_error
    if batched_error is None:
        assert moved_batched == moved_per_shift
        assert np.array_equal(batched, per_shift)
    else:
        # Delegation happens before any mutation.
        assert np.array_equal(batched, grid)


def test_nonuniform_trusted_bundle_keeps_per_shift_semantics():
    # ParallelMove.trusted skips the uniform-steps validation; a buggy
    # bulk producer could bundle a shift whose own steps differ from
    # the move's.  The batch path must fall back to the per-shift
    # executor (which honours each shift's fields) instead of silently
    # applying the move-level displacement everywhere.
    grid = np.zeros((8, 8), dtype=bool)
    grid[[0, 1, 2, 3], 0] = True
    rogue = ParallelMove.trusted(
        Direction.EAST,
        steps=1,
        shifts=tuple(
            LineShift(Direction.EAST, line, 0, 1, steps=2 if line == 3 else 1)
            for line in range(4)
        ),
    )
    batched = grid.copy()
    per_shift = grid.copy()
    assert apply_parallel_move_batch(batched, rogue) == apply_parallel_move(
        per_shift, rogue
    )
    assert np.array_equal(batched, per_shift)
    assert batched[3, 2] and not batched[3, 1]  # the rogue shift moved 2


@given(atom_arrays())
@settings(max_examples=20, deadline=None)
def test_schedule_replay_matches_scheduler_final(array):
    """End-to-end: batched replay reproduces each scheduler's final grid."""
    for scheduler in (
        QrmScheduler(array.geometry),
        TetrisScheduler(array.geometry),
    ):
        result = scheduler.schedule(array)
        final, report = execute_schedule(array, result.schedule, constraints=None)
        assert report.ok
        assert final == result.final
        assert report.n_moves == len(result.schedule)
