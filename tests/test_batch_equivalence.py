"""Bit-identity of the cross-trial batched engine and the batch-first API.

The batched QRM engine (:class:`repro.core.batch.BatchQrmScheduler`)
stacks N same-geometry trials into one ``(trial, row, col)`` analysis;
its differential oracle is N independent single-trial
:class:`~repro.core.qrm.QrmScheduler` calls — same schedules, same tags,
same iteration statistics, same convergence, same repair.  The suite
also pins the API redesign around it: the registry's uniform factory
signature and ``-reference`` keys, the loop fallback of
:func:`repro.baselines.base.schedule_batch`, the campaign engine's
batched execution (byte-identical aggregates, shared cache entries),
and the deprecation shim on :func:`repro.core.qrm.rearrange`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from oracles import (
    assert_results_identical,
    atom_arrays,
    campaign_specs,
    geometries,
    occupancy_grids,
    scan_limits,
)

from repro.baselines.base import (
    DEFAULT_ALGORITHMS,
    get_algorithm,
    register_algorithm,
    resolve_algorithms,
    schedule_batch,
    supports_batch,
    unregister_algorithm,
)
from repro.config import QrmParameters, ScanMode
from repro.core.batch import BatchQrmScheduler
from repro.core.qrm import QrmScheduler, rearrange
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry
from repro.lattice.loading import load_uniform

#: Batch sizes the equivalence property sweeps: the singleton batch, a
#: small odd group, and one larger than any strategy-drawn trial pool.
BATCH_SIZES = (1, 3, 17)


def _batch_of(draw_grid, geometry, count):
    return [AtomArray(geometry, draw_grid(geometry)) for _ in range(count)]


def _assert_batch_matches_serial(geometry, arrays, params):
    serial = QrmScheduler(geometry, params)
    batched = BatchQrmScheduler(geometry, params)
    expected = [serial.schedule(array) for array in arrays]
    actual = batched.schedule_batch(arrays)
    assert len(actual) == len(expected)
    for ours, reference in zip(actual, expected):
        assert_results_identical(ours, reference)
        assert ours.iterations == reference.iterations
        assert ours.repair_moves == reference.repair_moves


class TestBatchedEngineEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), geometry=geometries())
    def test_batched_schedule_is_bit_identical(self, data, geometry):
        count = data.draw(st.sampled_from(BATCH_SIZES))
        arrays = [
            AtomArray(geometry, data.draw(occupancy_grids(geometry)))
            for _ in range(count)
        ]
        params = QrmParameters(
            scan_mode=data.draw(
                st.sampled_from((ScanMode.PIPELINED, ScanMode.FRESH))
            ),
            merge_mirror_quadrants=data.draw(st.booleans()),
            enable_repair=data.draw(st.booleans()),
            scan_limit=data.draw(scan_limits()),
        )
        _assert_batch_matches_serial(geometry, arrays, params)

    @pytest.mark.parametrize("fill", [0.3, 0.5, 0.7])
    def test_mixed_fill_stack_at_fixed_geometry(self, fill, rng):
        geometry = ArrayGeometry.square(16, 10)
        arrays = [
            load_uniform(geometry, fill, rng=np.random.default_rng(seed))
            for seed in range(8)
        ]
        _assert_batch_matches_serial(geometry, arrays, QrmParameters())

    def test_interner_reuse_across_calls_changes_nothing(self):
        geometry = ArrayGeometry.square(12, 6)
        params = QrmParameters()
        batched = BatchQrmScheduler(geometry, params)
        serial = QrmScheduler(geometry, params)
        for seed in range(4):  # same engine, four successive batches
            arrays = [
                load_uniform(geometry, 0.5, rng=np.random.default_rng(10 * seed + k))
                for k in range(3)
            ]
            expected = [serial.schedule(array) for array in arrays]
            for ours, reference in zip(batched.schedule_batch(arrays), expected):
                assert_results_identical(ours, reference)

    def test_empty_batch(self):
        assert BatchQrmScheduler(ArrayGeometry.square(8)).schedule_batch([]) == []

    def test_geometry_mismatch_rejected(self):
        batched = BatchQrmScheduler(ArrayGeometry.square(8))
        stray = load_uniform(ArrayGeometry.square(10), 0.5, rng=0)
        with pytest.raises(ValueError, match="geometry"):
            batched.schedule_batch([stray])

    def test_amortised_wall_time_convention(self):
        geometry = ArrayGeometry.square(12, 6)
        arrays = [load_uniform(geometry, 0.5, rng=seed) for seed in range(4)]
        results = BatchQrmScheduler(geometry).schedule_batch(arrays)
        times = {result.wall_time_s for result in results}
        assert len(times) == 1  # every trial carries batch time / N
        assert times.pop() > 0


class TestScheduleBatchDispatch:
    @settings(max_examples=25, deadline=None)
    @given(array=atom_arrays(), count=st.integers(min_value=1, max_value=4))
    def test_fallback_loops_schedule(self, array, count):
        algorithm = get_algorithm("tetris", array.geometry)
        assert not supports_batch(algorithm)
        expected = [algorithm.schedule(array) for _ in range(count)]
        actual = schedule_batch(algorithm, [array] * count)
        for ours, reference in zip(actual, expected):
            assert_results_identical(ours, reference)

    def test_qrm_scheduler_dispatches_to_batched_engine(self):
        geometry = ArrayGeometry.square(12, 6)
        scheduler = get_algorithm("qrm", geometry)
        assert supports_batch(scheduler)
        arrays = [load_uniform(geometry, 0.5, rng=seed) for seed in range(3)]
        expected = [scheduler.schedule(array) for array in arrays]
        for ours, reference in zip(schedule_batch(scheduler, arrays), expected):
            assert_results_identical(ours, reference)

    def test_reference_qrm_falls_back_to_serial(self):
        geometry = ArrayGeometry.square(8, 4)
        reference = get_algorithm("qrm-reference", geometry)
        arrays = [load_uniform(geometry, 0.5, rng=seed) for seed in range(2)]
        expected = [reference.schedule(array) for array in arrays]
        for ours, want in zip(reference.schedule_batch(arrays), expected):
            assert_results_identical(ours, want)


class _FlakyScheduler:
    """Loop-fallback algorithm that detonates on one call (by position).

    No ``schedule_batch`` attribute, so :func:`schedule_batch` takes the
    fallback loop; the inner Tetris scheduler does real work for the
    non-poisoned calls so sibling results can be checked bit-for-bit.
    """

    name = "flaky"

    def __init__(self, geometry, poison_index):
        self.inner = get_algorithm("tetris", geometry)
        self.poison_index = poison_index
        self.calls = 0

    def schedule(self, array):
        index = self.calls
        self.calls += 1
        if index == self.poison_index:
            raise RuntimeError("mid-analysis explosion")
        return self.inner.schedule(array)


class TestFallbackFailureIsolation:
    """One poisoned trial in a fallback batch must not take down the rest."""

    def _arrays(self, geometry, count=5):
        return [load_uniform(geometry, 0.5, rng=seed) for seed in range(count)]

    def test_error_names_the_failing_trial(self):
        geometry = ArrayGeometry.square(10, 6)
        from repro.errors import ExecutionError

        algorithm = _FlakyScheduler(geometry, poison_index=2)
        with pytest.raises(
            ExecutionError, match=r"trial 2 of 5.*'flaky'.*RuntimeError"
        ) as excinfo:
            schedule_batch(algorithm, self._arrays(geometry))
        # The original exception stays chained for debuggers.
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_siblings_before_the_failure_are_not_corrupted(self):
        geometry = ArrayGeometry.square(10, 6)
        from repro.errors import ExecutionError

        arrays = self._arrays(geometry)
        algorithm = _FlakyScheduler(geometry, poison_index=3)
        with pytest.raises(ExecutionError):
            schedule_batch(algorithm, arrays)
        # The failure poisoned exactly one call: rerunning the surviving
        # arrays through the same instance yields results bit-identical
        # to a fresh scheduler — no state was corrupted mid-batch.
        survivors = arrays[:3] + arrays[4:]
        rerun = schedule_batch(algorithm, survivors)
        fresh = get_algorithm("tetris", geometry)
        for ours, array in zip(rerun, survivors):
            assert_results_identical(ours, fresh.schedule(array))

    def test_clean_batch_is_unaffected_by_the_wrapping(self):
        geometry = ArrayGeometry.square(10, 6)
        arrays = self._arrays(geometry, count=3)
        algorithm = _FlakyScheduler(geometry, poison_index=99)
        fresh = get_algorithm("tetris", geometry)
        for ours, array in zip(schedule_batch(algorithm, arrays), arrays):
            assert_results_identical(ours, fresh.schedule(array))


class TestRegistryRedesign:
    def test_defaults_resolve(self):
        assert resolve_algorithms() == DEFAULT_ALGORITHMS
        for name in DEFAULT_ALGORITHMS:
            assert get_algorithm(name, ArrayGeometry.square(8)) is not None

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            resolve_algorithms(["qrm", "nope"])
        with pytest.raises(KeyError, match="known:"):
            get_algorithm("nope", ArrayGeometry.square(8))

    @pytest.mark.parametrize("name", DEFAULT_ALGORITHMS)
    def test_every_default_has_a_reference_twin(self, name):
        geometry = ArrayGeometry.square(8, 4)
        fast = get_algorithm(name, geometry)
        slow = get_algorithm(f"{name}-reference", geometry)
        array = load_uniform(geometry, 0.5, rng=1)
        assert_results_identical(slow.schedule(array), fast.schedule(array))

    def test_uniform_factory_signature(self):
        geometry = ArrayGeometry.square(8, 4)
        # Every built-in accepts (geometry, *, rng=None, **params).
        for name in DEFAULT_ALGORITHMS:
            get_algorithm(name, geometry, rng=np.random.default_rng(0))
        tuned = get_algorithm("qrm", geometry, n_iterations=2)
        assert tuned.params.n_iterations == 2

    def test_legacy_single_argument_factory_still_resolves(self):
        register_algorithm("legacy-test", lambda geometry: object())
        try:
            assert get_algorithm("legacy-test", ArrayGeometry.square(8)) is not None
        finally:
            unregister_algorithm("legacy-test")

    def test_rearrange_is_deprecated(self):
        array = load_uniform(ArrayGeometry.square(8, 4), 0.5, rng=0)
        with pytest.deprecated_call():
            result = rearrange(array)
        assert result.schedule is not None


class TestBatchedCampaign:
    @settings(max_examples=15, deadline=None)
    @given(
        spec=campaign_specs(),
        batch_size=st.sampled_from((2, 3, 32)),
    )
    def test_batched_aggregates_match_serial(self, spec, batch_size):
        from repro.campaign.engine import run_campaign

        serial = run_campaign(spec)
        batched = run_campaign(spec, batch_size=batch_size)
        assert batched.to_csv(stats=True) == serial.to_csv(stats=True)

    def test_batch_grouping_never_crosses_cells(self):
        from repro.campaign.engine import batch_trials
        from repro.campaign.spec import CampaignSpec

        spec = CampaignSpec(
            name="grouping",
            algorithms=("qrm", "tetris"),
            sizes=(8,),
            fills=(0.4, 0.6),
            n_seeds=5,
            master_seed=0,
        )
        from repro.campaign.trial import TrialSpec

        trials = [
            TrialSpec(cell=cell, seed_index=seed, master_seed=spec.master_seed)
            for cell in spec.expand()
            for seed in range(spec.n_seeds)
        ]
        batches = batch_trials(trials, batch_size=3)
        assert [trial for batch in batches for trial in batch] == trials
        for batch in batches:
            assert len(batch) <= 3
            assert all(trial.cell == batch[0].cell for trial in batch)
        # 5 seeds per cell at batch_size 3 -> groups of 3+2 per cell.
        assert [len(batch) for batch in batches] == [3, 2] * 4

    def test_batched_and_serial_runs_share_cache(self, tmp_path):
        from repro.campaign.cache import TrialCache
        from repro.campaign.engine import run_campaign
        from repro.campaign.spec import CampaignSpec

        spec = CampaignSpec(
            name="cache-sharing",
            algorithms=("qrm",),
            sizes=(8,),
            fills=(0.5,),
            n_seeds=6,
            master_seed=5,
        )
        cache = TrialCache(tmp_path)
        warm = run_campaign(spec, cache=cache, batch_size=4)
        assert (warm.cache_hits, warm.cache_misses) == (0, 6)
        serial = run_campaign(spec, cache=cache)
        assert (serial.cache_hits, serial.cache_misses) == (6, 0)
        assert serial.to_csv(stats=True) == warm.to_csv(stats=True)

    def test_batched_failure_names_the_trial(self):
        from repro.campaign.engine import run_campaign
        from repro.campaign.spec import CampaignSpec
        from repro.errors import ExecutionError

        spec = CampaignSpec(
            name="boom",
            algorithms=("qrm",),
            sizes=(7,),  # odd width -> GeometryError inside the batch
            fills=(0.5,),
            n_seeds=2,
            master_seed=0,
        )
        with pytest.raises(ExecutionError, match="seed 0"):
            run_campaign(spec, batch_size=2)

    def test_batch_size_validation(self):
        from repro.campaign.engine import ExperimentCampaign
        from repro.campaign.spec import CampaignSpec
        from repro.errors import ConfigurationError

        spec = CampaignSpec(
            name="bad", algorithms=("qrm",), sizes=(8,), fills=(0.5,), n_seeds=1
        )
        with pytest.raises(ConfigurationError, match="batch_size"):
            ExperimentCampaign(spec, batch_size=0)


class TestBatchedCampaignExecutors:
    @pytest.mark.parametrize("kind", ["process", "async"])
    def test_aggregates_identical_across_executors(self, kind):
        from repro.campaign.engine import run_campaign
        from repro.campaign.executors import make_executor
        from repro.campaign.spec import CampaignSpec

        spec = CampaignSpec(
            name="executors",
            algorithms=("qrm", "tetris"),
            sizes=(8,),
            fills=(0.5,),
            n_seeds=5,
            master_seed=2,
        )
        serial = run_campaign(spec, batch_size=3)
        parallel = run_campaign(
            spec, executor=make_executor(2, kind=kind), batch_size=3
        )
        assert parallel.to_csv(stats=True) == serial.to_csv(stats=True)
