"""Schema contract for the ``BENCH_qrm.json`` perf artefact.

``repro bench`` output is a committed, machine-readable artefact; this
suite pins its layout with :func:`repro.analysis.perf.validate_bench_report`
so a refactor cannot silently change the schema (or drop the speedup
provenance blocks) without failing the tier-1 run.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.perf import (
    BENCH_SCHEMA_VERSION,
    COMPONENT_NAMES,
    run_perf_suite,
    validate_bench_report,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
COMMITTED_BENCH = REPO_ROOT / "BENCH_qrm.json"


@pytest.fixture(scope="module")
def committed_payload() -> dict:
    return json.loads(COMMITTED_BENCH.read_text())


def test_committed_bench_artifact_validates(committed_payload):
    validate_bench_report(committed_payload)


def test_committed_bench_has_all_component_speedups(committed_payload):
    components = committed_payload["component_speedups"]
    assert set(components) == set(COMPONENT_NAMES)
    assert {"mta1", "guarded_drain", "batched_qrm"} <= set(components)
    for name, block in components.items():
        if name in ("batched_qrm", "service_latency", "pipeline_latency"):
            continue  # pinned separately below — different block shapes
        assert block["speedup_vs_reference"] > 1.0


def test_committed_bench_pipeline_latency_block(committed_payload):
    # The closed-loop pipeline's acceptance bar: the sequential and the
    # pipelined driver were digest-verified identical during the
    # measurement, and the overlap ratio is recorded (near 1x on a
    # single-CPU box — Python threads interleave, they don't
    # parallelise — so only validity is pinned here; the downward slip
    # is gated against the committed ratio by `repro bench --gate`).
    block = committed_payload["component_speedups"]["pipeline_latency"]
    assert block["size"] == 64
    assert block["overlap_speedup"] > 0
    assert len(block["trace_digest"]) == 64
    assert block["sequential_ms"]["min"] > 0
    assert block["pipelined_ms"]["min"] > 0
    stages = {entry["stage"] for entry in block["stages"]}
    assert {"camera", "detect", "schedule", "awg", "replay"} <= stages


def test_committed_bench_service_latency_wins_at_high_concurrency(
    committed_payload,
):
    # The service's acceptance bar: micro-batching beats batching-off on
    # amortised per-request latency at concurrency 16 on the 64x64
    # headline case (pooled best-of minima on both sides).
    block = committed_payload["component_speedups"]["service_latency"]
    assert block["size"] == 64
    by_clients = {entry["clients"]: entry for entry in block["concurrency"]}
    assert 16 in by_clients
    assert by_clients[16]["speedup_batched"] > 1.0
    for entry in block["concurrency"]:
        for mode in ("unbatched", "batched"):
            assert entry[mode]["p50_ms"] <= entry[mode]["p99_ms"]
            assert entry[mode]["amortized_ms"] > 0


def test_committed_bench_batched_qrm_hits_the_speedup_bar(committed_payload):
    # The cross-trial batched engine's acceptance bar: >= 2x amortised
    # per-trial speedup at batch size 32 on the 64x64 headline case.
    block = committed_payload["component_speedups"]["batched_qrm"]
    assert block["size"] == 64
    by_batch = {entry["batch_size"]: entry for entry in block["batches"]}
    assert 32 in by_batch
    assert by_batch[32]["speedup_vs_single"] >= 2.0
    for entry in block["batches"]:
        assert entry["speedup_vs_single"] > 0
        assert entry["amortized_ms"]["mean"] > 0


def test_committed_bench_covers_mta1_on_the_full_grid(committed_payload):
    # The headline QRM-vs-MTA1 comparison must be regenerable at scale:
    # mta1 rides the whole default grid and is never in the skip list.
    from repro.analysis.perf import DEFAULT_SIZES

    mta1_sizes = {
        entry["size"]
        for entry in committed_payload["entries"]
        if entry["algorithm"] == "mta1"
    }
    assert mta1_sizes == set(DEFAULT_SIZES)
    assert all(skip["algorithm"] != "mta1" for skip in committed_payload["skipped"])


def test_fresh_report_validates_end_to_end():
    report = run_perf_suite(
        sizes=(8,),
        fills=(0.5,),
        algorithms=("qrm",),
        trials=1,
        master_seed=0,
        speedup_size=8,
    )
    payload = report.to_dict()
    assert payload["schema_version"] == BENCH_SCHEMA_VERSION
    validate_bench_report(payload)
    assert set(payload["component_speedups"]) == set(COMPONENT_NAMES)


def test_validator_rejects_schema_drift():
    report = run_perf_suite(
        sizes=(8,),
        fills=(0.5,),
        algorithms=("qrm",),
        trials=1,
        master_seed=0,
        speedup_size=None,
    )
    good = report.to_dict()
    validate_bench_report(good)

    stale = dict(good, schema_version=BENCH_SCHEMA_VERSION - 1)
    with pytest.raises(ValueError, match="schema_version"):
        validate_bench_report(stale)

    drifted = json.loads(json.dumps(good))
    drifted["entries"][0]["trials"] += 1
    with pytest.raises(ValueError, match="drifted"):
        validate_bench_report(drifted)

    broken = json.loads(json.dumps(good))
    del broken["entries"][0]["wall_ms"]["std"]
    with pytest.raises(ValueError, match="wall_ms"):
        validate_bench_report(broken)
