"""Tests for the experiment-campaign engine."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaign import (
    CampaignSpec,
    ExperimentCampaign,
    LossSpec,
    MultiprocessingExecutor,
    QrmSpec,
    RecordingObserver,
    ScenarioCell,
    SerialExecutor,
    TrialCache,
    TrialSpec,
    cell_sequence,
    make_executor,
    run_campaign,
    run_trial,
)
from repro.errors import ConfigurationError


def small_spec(**overrides) -> CampaignSpec:
    fields = dict(
        name="unit",
        algorithms=("qrm", "tetris"),
        sizes=(10,),
        fills=(0.5,),
        n_seeds=3,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


class TestSpec:
    def test_grid_expansion_order(self):
        spec = small_spec(sizes=(10, 12), fills=(0.4, 0.6))
        cells = spec.expand()
        assert len(cells) == 8
        # Algorithms outermost, then sizes, then fills.
        assert [cell.algorithm for cell in cells[:4]] == ["qrm"] * 4
        assert [cell.size for cell in cells[:4]] == [10, 10, 12, 12]
        assert [cell.fill for cell in cells[:2]] == [0.4, 0.6]

    def test_empty_grid(self):
        spec = small_spec(algorithms=())
        assert spec.expand() == []
        assert spec.n_trials == 0
        result = ExperimentCampaign(spec).run()
        assert result.aggregates == []
        assert result.n_trials == 0

    def test_single_cell(self):
        spec = small_spec(algorithms=("qrm",), n_seeds=1)
        assert spec.n_cells == 1
        result = ExperimentCampaign(spec).run()
        assert len(result.aggregates) == 1
        assert result.aggregates[0].trials == 1

    def test_zero_seeds(self):
        spec = small_spec(n_seeds=0)
        result = ExperimentCampaign(spec).run()
        assert result.n_trials == 0
        assert all(agg.trials == 0 for agg in result.aggregates)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="")
        with pytest.raises(ConfigurationError):
            small_spec(n_seeds=-1)
        with pytest.raises(ConfigurationError):
            ScenarioCell(fill=1.5)
        with pytest.raises(ConfigurationError):
            ScenarioCell(algorithm="tetris", fpga=True)

    def test_json_round_trip(self):
        spec = small_spec(
            loss_models=(LossSpec(), None),
            fpga=False,
            master_seed=7,
        )
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_spec_hash_stability_and_invalidation(self):
        spec = small_spec()
        assert spec.spec_hash() == small_spec().spec_hash()
        assert spec.spec_hash() != small_spec(fills=(0.6,)).spec_hash()
        assert spec.spec_hash() != small_spec(master_seed=1).spec_hash()
        # The hash is content-addressed, not identity-addressed.
        assert json.loads(spec.to_json())["name"] == "unit"


class TestSeeding:
    def test_trial_seed_matches_seedsequence_spawn(self):
        cell = ScenarioCell(size=10)
        children = cell_sequence(cell, master_seed=3).spawn(4)
        for index, child in enumerate(children):
            trial = TrialSpec(cell=cell, seed_index=index, master_seed=3)
            assert list(trial.seed_sequence().generate_state(4)) == list(
                child.generate_state(4)
            )

    def test_algorithms_share_instances(self):
        # The instance entropy excludes the algorithm: paired design.
        qrm = ScenarioCell(algorithm="qrm", size=10)
        tetris = ScenarioCell(algorithm="tetris", size=10)
        t1 = TrialSpec(cell=qrm, seed_index=0, master_seed=0)
        t2 = TrialSpec(cell=tetris, seed_index=0, master_seed=0)
        assert list(t1.seed_sequence().generate_state(4)) == list(
            t2.seed_sequence().generate_state(4)
        )

    def test_seeds_differ_across_indices_and_masters(self):
        cell = ScenarioCell(size=10)

        def state(seed_index, master_seed):
            trial = TrialSpec(cell=cell, seed_index=seed_index, master_seed=master_seed)
            return tuple(trial.seed_sequence().generate_state(4))

        assert state(0, 0) != state(1, 0)
        assert state(0, 0) != state(0, 1)

    def test_trial_is_deterministic(self):
        trial = TrialSpec(cell=ScenarioCell(size=10), seed_index=1, master_seed=5)
        assert run_trial(trial).metrics == run_trial(trial).metrics


class TestDeterminismAcrossExecutors:
    def test_serial_equals_parallel(self):
        spec = small_spec(sizes=(10, 12))
        serial = ExperimentCampaign(spec, executor=SerialExecutor()).run()
        parallel = ExperimentCampaign(
            spec, executor=MultiprocessingExecutor(workers=2)
        ).run()
        assert serial.to_csv() == parallel.to_csv()
        for a, b in zip(serial.aggregates, parallel.aggregates):
            assert a.cell == b.cell
            assert a.metrics == b.metrics

    def test_serial_equals_async(self):
        from repro.campaign import AsyncExecutor

        spec = small_spec(sizes=(10,))
        serial = ExperimentCampaign(spec, executor=SerialExecutor()).run()
        fanned = ExperimentCampaign(spec, executor=AsyncExecutor(workers=2)).run()
        assert serial.to_csv() == fanned.to_csv()

    def test_make_executor(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        pool = make_executor(4, chunksize=2)
        assert isinstance(pool, MultiprocessingExecutor)
        assert pool.workers == 4
        assert pool.chunksize == 2

    def test_executor_validation(self):
        with pytest.raises(ConfigurationError):
            MultiprocessingExecutor(workers=0)
        with pytest.raises(ConfigurationError):
            MultiprocessingExecutor(chunksize=0)


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        spec = small_spec()
        first = ExperimentCampaign(spec, cache=TrialCache(tmp_path)).run()
        assert first.cache_hits == 0
        assert first.cache_misses == spec.n_trials

        second = ExperimentCampaign(spec, cache=TrialCache(tmp_path)).run()
        assert second.cache_hits == spec.n_trials
        assert second.cache_misses == 0
        assert second.cache_hit_fraction == 1.0
        assert second.to_csv() == first.to_csv()

    def test_spec_change_invalidates(self, tmp_path):
        cache = TrialCache(tmp_path)
        ExperimentCampaign(small_spec(), cache=cache).run()
        changed = small_spec(fills=(0.6,))
        result = ExperimentCampaign(changed, cache=TrialCache(tmp_path)).run()
        assert result.cache_hits == 0
        assert result.cache_misses == changed.n_trials

    def test_grid_extension_is_incremental(self, tmp_path):
        ExperimentCampaign(small_spec(), cache=TrialCache(tmp_path)).run()
        # More seeds and another size: only the new trials execute.
        extended = small_spec(sizes=(10, 12), n_seeds=5)
        result = ExperimentCampaign(extended, cache=TrialCache(tmp_path)).run()
        assert result.cache_hits == small_spec().n_trials
        assert result.cache_misses == extended.n_trials - small_spec().n_trials

    def test_timing_cells_bypass_cache(self, tmp_path):
        # Wall-clock metrics are measurements of *this* run: a timing
        # campaign must never serve them stale from disk.
        spec = small_spec(algorithms=("qrm",), n_seeds=2, timing=True)
        ExperimentCampaign(spec, cache=TrialCache(tmp_path)).run()
        assert len(TrialCache(tmp_path)) == 0
        second = ExperimentCampaign(spec, cache=TrialCache(tmp_path)).run()
        assert second.cache_hits == 0
        assert second.cache_misses == spec.n_trials

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = small_spec(algorithms=("qrm",), n_seeds=1)
        cache = TrialCache(tmp_path)
        ExperimentCampaign(spec, cache=cache).run()
        (victim,) = list(tmp_path.glob("*/*.json"))
        victim.write_text("{not json")
        result = ExperimentCampaign(spec, cache=TrialCache(tmp_path)).run()
        assert result.cache_misses == 1

    def test_len(self, tmp_path):
        cache = TrialCache(tmp_path)
        assert len(cache) == 0
        ExperimentCampaign(small_spec(), cache=cache).run()
        assert len(cache) == small_spec().n_trials


class TestObserver:
    def test_event_ordering(self):
        observer = RecordingObserver()
        spec = small_spec(n_seeds=2)
        result = ExperimentCampaign(spec, observer=observer).run()

        names = observer.event_names
        assert names[0] == "campaign_started"
        assert names[-1] == "campaign_completed"
        assert names.count("trial_completed") == spec.n_trials
        assert names.count("cell_completed") == spec.n_cells
        # Every trial completes before any cell aggregate is emitted.
        last_trial = max(i for i, n in enumerate(names) if n == "trial_completed")
        first_cell = min(i for i, n in enumerate(names) if n == "cell_completed")
        assert last_trial < first_cell

        started = observer.events[0][1]
        assert started["n_trials"] == spec.n_trials
        assert started["n_cached"] == 0
        assert observer.events[-1][1]["result"] is result

    def test_cached_trials_flagged(self, tmp_path):
        spec = small_spec(algorithms=("qrm",), n_seeds=2)
        ExperimentCampaign(spec, cache=TrialCache(tmp_path)).run()
        observer = RecordingObserver()
        ExperimentCampaign(spec, cache=TrialCache(tmp_path), observer=observer).run()
        flags = [
            payload["from_cache"]
            for name, payload in observer.events
            if name == "trial_completed"
        ]
        assert flags == [True, True]


class TestAggregation:
    def test_metrics_and_fill_stats(self):
        spec = small_spec(algorithms=("qrm",), n_seeds=4)
        result = run_campaign(spec)
        (aggregate,) = result.aggregates
        assert aggregate.trials == 4
        assert 0.0 <= aggregate.mean("target_fill") <= 1.0
        assert 0.0 <= aggregate.success_probability <= 1.0
        (stats,) = result.fill_stats()
        assert stats.algorithm == "qrm"
        assert stats.trials == 4
        assert stats.mean_target_fill == aggregate.mean("target_fill")

    def test_unknown_metric_raises(self):
        result = run_campaign(small_spec(algorithms=("qrm",), n_seeds=1))
        with pytest.raises(ConfigurationError):
            result.aggregates[0].mean("nonexistent")

    def test_aggregate_for(self):
        result = run_campaign(small_spec())
        aggregate = result.aggregate_for(algorithm="tetris")
        assert aggregate.cell.algorithm == "tetris"
        with pytest.raises(ConfigurationError):
            result.aggregate_for(algorithm="nope")
        with pytest.raises(ConfigurationError):
            result.aggregate_for(size=10)  # ambiguous: two algorithms

    def test_loss_metrics_present(self):
        spec = small_spec(algorithms=("qrm",), n_seeds=2, loss_models=(LossSpec(),))
        result = run_campaign(spec)
        metrics = result.aggregates[0].metrics
        assert "survival" in metrics
        assert "fill_after_loss" in metrics
        assert "motion_ms" in metrics
        assert 0.0 <= metrics["survival"].mean <= 1.0

    def test_fpga_metrics_present(self):
        spec = small_spec(algorithms=("qrm",), n_seeds=1, fpga=True)
        result = run_campaign(spec)
        assert result.aggregates[0].mean("fpga_us") > 0

    def test_table_and_csv(self):
        result = run_campaign(small_spec(n_seeds=1))
        table = result.format_table()
        assert "Campaign 'unit'" in table
        assert "p_success" in table
        csv = result.to_csv()
        assert csv.splitlines()[0].startswith("algorithm,size,fill")
        assert len(csv.splitlines()) == 1 + len(result.aggregates)

    def test_write_csv(self, tmp_path):
        result = run_campaign(small_spec(algorithms=("qrm",), n_seeds=1))
        path = result.write_csv(tmp_path / "sub" / "out.csv")
        assert path.exists()
        assert "qrm" in path.read_text()

    def test_stats_columns_expand_summaries(self):
        result = run_campaign(small_spec(algorithms=("qrm",), n_seeds=3))
        table = result.format_table(stats=True)
        assert "moves_std" in table
        assert "moves_min" in table
        assert "moves_max" in table
        headers = result.to_csv(stats=True).splitlines()[0].split(",")
        aggregate = result.aggregates[0]
        row = result.to_csv(stats=True).splitlines()[1].split(",")
        summary = aggregate.metrics["moves"]
        index = headers.index("moves_min")
        assert float(row[index]) == summary.minimum
        assert headers.index("moves_max") == index + 1


class TestQrmSpecCells:
    def test_round_trip_and_label(self):
        qrm = QrmSpec(scan_mode="fresh", merge_mirror_quadrants=False, scan_limit=4)
        cell = ScenarioCell(size=10, qrm=qrm)
        restored = ScenarioCell.from_dict(json.loads(json.dumps(cell.to_dict())))
        assert restored == cell
        assert "fresh+split+s_en=4" in cell.label()

    def test_qrm_override_requires_qrm_algorithm(self):
        with pytest.raises(ConfigurationError):
            ScenarioCell(algorithm="tetris", size=10, qrm=QrmSpec())

    def test_parameter_override_changes_results(self):
        base = ScenarioCell(algorithm="qrm", size=10, fill=0.5)
        fresh = ScenarioCell(
            algorithm="qrm",
            size=10,
            fill=0.5,
            qrm=QrmSpec(scan_mode="fresh", n_iterations=2),
        )
        spec = CampaignSpec(
            name="qrm-variants",
            algorithms=(),
            sizes=(),
            n_seeds=2,
            extra_cells=(base, fresh),
        )
        result = run_campaign(spec)
        pipelined = result.aggregate_for(qrm=None)
        override = result.aggregate_for(qrm=fresh.qrm)
        # The fresh column pass reaches the fixpoint in fewer iterations
        # and produces no stale skips.
        assert override.mean("iterations") <= pipelined.mean("iterations")
        assert override.mean("skipped_stale") == 0.0
        assert pipelined.mean("skipped_stale") > 0.0

    def test_skipped_stale_metric_present(self):
        result = run_campaign(small_spec(algorithms=("qrm",), n_seeds=1))
        assert "skipped_stale" in result.aggregates[0].metrics


class TestSeedSequenceContract:
    def test_generator_streams_are_independent(self):
        trial = TrialSpec(cell=ScenarioCell(size=10), seed_index=0, master_seed=0)
        load_ss, loss_ss = trial.seed_sequence().spawn(2)
        a = np.random.default_rng(load_ss).random(8)
        b = np.random.default_rng(loss_ss).random(8)
        assert not np.allclose(a, b)
