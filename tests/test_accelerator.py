"""Tests for the top-level accelerator model."""

from __future__ import annotations

import pytest

from repro.aod.validator import validate_schedule
from repro.config import QrmParameters, ScanMode
from repro.core.qrm import QrmScheduler
from repro.errors import SimulationError
from repro.fpga.accelerator import QrmAccelerator
from repro.fpga.config import FpgaConfig
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry
from repro.lattice.loading import load_uniform


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_schedule_identical_to_golden_scheduler(self, geo20, seed):
        array = load_uniform(geo20, 0.5, rng=seed)
        run = QrmAccelerator(geo20).run(array)
        golden = QrmScheduler(geo20).schedule(array)
        assert run.result.schedule.moves == golden.schedule.moves
        assert run.result.final == golden.final

    def test_schedule_replays_cleanly(self, array20):
        run = QrmAccelerator(array20.geometry).run(array20)
        report = validate_schedule(array20, run.schedule)
        assert report.ok

    def test_geometry_mismatch_rejected(self, geo8, array20):
        with pytest.raises(SimulationError):
            QrmAccelerator(geo8).run(array20)

    def test_non_square_rejected(self):
        geometry = ArrayGeometry(width=10, height=8, target_width=4, target_height=4)
        with pytest.raises(SimulationError):
            QrmAccelerator(geometry)


class TestCycleReport:
    def test_report_structure(self, array20):
        report = QrmAccelerator(array20.geometry).run(array20).report
        assert report.size == 20
        assert report.clock_mhz == 250.0
        assert len(report.iteration_cycles) == 4
        assert report.total_cycles == (
            report.control_cycles
            + report.load_cycles
            + sum(report.iteration_cycles)
            + report.writeback_cycles
        )
        assert report.time_us == pytest.approx(report.total_cycles / 250.0)

    def test_converged_runs_still_pay_static_iterations(self, geo8):
        # An empty array converges after one iteration, but the PL
        # schedule is static: four iterations of cycles are charged.
        run = QrmAccelerator(geo8).run(AtomArray(geo8))
        assert run.result.iterations_used == 1
        assert len(run.report.iteration_cycles) == 4

    def test_latency_grows_with_size(self):
        times = []
        for size in (10, 30, 50, 90):
            geometry = ArrayGeometry.square(size)
            array = load_uniform(geometry, 0.5, rng=1)
            times.append(QrmAccelerator(geometry).latency_us(array))
        assert times == sorted(times)

    def test_latency_microsecond_scale_at_50(self, geo50):
        """Fig. 7(a) territory: a couple of microseconds at 50x50."""
        array = load_uniform(geo50, 0.5, rng=1)
        time_us = QrmAccelerator(geo50).latency_us(array)
        assert 0.5 <= time_us <= 3.0

    def test_iteration_cycles_scale_with_qw(self):
        """Per-iteration cost tracks the paper's ~2*Qw + row latency."""
        for size in (20, 40, 80):
            geometry = ArrayGeometry.square(size)
            array = load_uniform(geometry, 0.5, rng=2)
            report = QrmAccelerator(geometry).run(array).report
            qw = size // 2
            per_iter = report.iteration_cycles[0]
            assert 3 * qw <= per_iter <= 3 * qw + 40

    def test_packet_accounting(self, geo50):
        array = load_uniform(geo50, 0.5, rng=3)
        report = QrmAccelerator(geo50).run(array).report
        assert report.n_input_packets == 3
        assert report.n_output_packets >= 1
        assert report.n_records > 0

    def test_module_stats_collected(self, array20):
        report = QrmAccelerator(array20.geometry).run(array20).report
        assert any("shift_kernel" in name for name in report.module_busy)
        assert any("row_combination" in name for name in report.module_busy)

    def test_summary_text(self, array20):
        text = QrmAccelerator(array20.geometry).run(array20).report.summary()
        assert "20x20" in text
        assert "cycles" in text


class TestConfigSensitivity:
    def test_faster_clock_lower_latency(self, array20):
        base = QrmAccelerator(array20.geometry).run(array20).report
        fast = QrmAccelerator(array20.geometry, config=FpgaConfig(clock_mhz=500.0)).run(
            array20
        ).report
        assert fast.time_us < base.time_us
        assert fast.total_cycles == base.total_cycles

    def test_deeper_pipeline_more_cycles(self, array20):
        base = QrmAccelerator(array20.geometry).run(array20).report
        deep = QrmAccelerator(
            array20.geometry,
            config=FpgaConfig(kernel_pipeline_depth_extra=20),
        ).run(array20).report
        assert deep.total_cycles > base.total_cycles

    def test_fresh_mode_supported(self, array20):
        params = QrmParameters(n_iterations=2, scan_mode=ScanMode.FRESH)
        run = QrmAccelerator(array20.geometry, params=params).run(array20)
        assert len(run.report.iteration_cycles) == 2
        report = validate_schedule(array20, run.schedule)
        assert report.ok
