"""Closed-loop pipeline: the pipelined driver == the sequential one.

The determinism contract of :mod:`repro.pipeline` is differential: for
any :class:`PipelineConfig`, the thread-pipelined driver must emit
byte-identical per-cycle traces to the run-to-completion sequential
driver — same detected occupancy, same schedules, same post-loss truth,
in the same (shot, cycle) order — because every frame's RNG streams are
pre-spawned and the stage functions are pure.  The sequential run is
the oracle; configs come from the shared :func:`oracles.pipeline_configs`
strategy.

Also covered here: rerun determinism, stage-latency bookkeeping
(:class:`StageReport`), config validation, the multi-cycle campaign
axis (trial determinism and journal resume), and the ``repro pipeline``
CLI surface.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings

from oracles import campaign_specs, pipeline_configs
from repro.campaign import (
    CampaignSpec,
    ExperimentCampaign,
    InterruptingObserver,
    LossSpec,
    RunJournal,
    ScenarioCell,
    TrialSpec,
    read_journal,
    run_trial,
)
from repro.cli import main
from repro.errors import ConfigurationError
from repro.physics.loss import LossModel
from repro.pipeline import PIPELINE_MODES, PipelineConfig, run_pipeline
from repro.timing.latency import (
    BUDGETED_STAGES,
    PIPELINE_STAGES,
    STAGE_SCHEDULE,
    StageReport,
)

#: Aggressive loss model: short vacuum lifetime so multi-cycle repair
#: loops actually have defects to repair on every cycle.
LOSS = LossModel(vacuum_lifetime_s=0.05)


# ---------------------------------------------------------------------------
# Differential property: pipelined == sequential, byte for byte
# ---------------------------------------------------------------------------


class TestModeEquivalence:
    @given(config=pipeline_configs())
    @settings(max_examples=20, deadline=None)
    def test_pipelined_trace_matches_sequential(self, config):
        sequential = run_pipeline(config, "sequential")
        pipelined = run_pipeline(config, "pipelined")
        assert pipelined.trace_lines() == sequential.trace_lines()
        assert pipelined.trace_digest() == sequential.trace_digest()
        assert pipelined.n_frames == sequential.n_frames
        assert pipelined.converged_fraction == sequential.converged_fraction
        assert pipelined.mean_final_fill == sequential.mean_final_fill

    @given(config=pipeline_configs())
    @settings(max_examples=8, deadline=None)
    def test_rerun_is_deterministic(self, config):
        first = run_pipeline(config, "pipelined")
        second = run_pipeline(config, "pipelined")
        assert first.trace_lines() == second.trace_lines()

    def test_stage_call_counts_match_across_modes(self):
        config = PipelineConfig(
            size=8, fill=0.5, shots=3, cycles=3, master_seed=5, loss=LOSS
        )
        sequential = run_pipeline(config, "sequential")
        pipelined = run_pipeline(config, "pipelined")
        seq_calls = {
            key: timing.n_calls
            for key, timing in sequential.report.stages.items()
        }
        pipe_calls = {
            key: timing.n_calls
            for key, timing in pipelined.report.stages.items()
        }
        assert seq_calls == pipe_calls
        # Every frame is imaged and detected exactly once.
        assert seq_calls["camera"] == sequential.n_frames
        assert seq_calls["detect"] == sequential.n_frames

    def test_trace_lines_are_canonical_json(self):
        config = PipelineConfig(size=6, fill=0.4, shots=2, cycles=2, loss=LOSS)
        result = run_pipeline(config, "sequential")
        for line in result.trace_lines():
            payload = json.loads(line)
            assert set(payload) == {
                "shot",
                "cycle",
                "occupancy",
                "threshold",
                "moves",
                "truth_after",
                "fill_after",
                "lost",
                "fallback",
            }
            assert all(set(row) <= {"#", "."} for row in payload["occupancy"])

    def test_frames_ordered_by_shot_then_cycle(self):
        config = PipelineConfig(size=6, fill=0.4, shots=3, cycles=3, loss=LOSS)
        result = run_pipeline(config, "pipelined")
        order = [
            (json.loads(line)["shot"], json.loads(line)["cycle"])
            for line in result.trace_lines()
        ]
        assert order == sorted(order)


# ---------------------------------------------------------------------------
# Multi-cycle closed-loop behaviour
# ---------------------------------------------------------------------------


class TestClosedLoop:
    def test_lossless_run_converges_and_stops_early(self):
        # Without loss, one repair cycle fills the target and the next
        # detection retires the shot — extra cycle budget is untouched.
        config = PipelineConfig(size=8, fill=0.6, shots=1, cycles=4, master_seed=3)
        result = run_pipeline(config, "sequential")
        (shot,) = result.shots
        assert shot.converged
        assert len(shot.records) <= 2
        assert shot.records[-1].converged_at_detect or (
            shot.records[-1].defect_free_after
        )

    def test_lossy_run_uses_extra_cycles(self):
        config = PipelineConfig(
            size=8, fill=0.6, shots=2, cycles=3, master_seed=1, loss=LOSS
        )
        result = run_pipeline(config, "sequential")
        assert result.n_frames > len(result.shots)
        for shot in result.shots:
            cycles = [record.cycle for record in shot.records]
            assert cycles == list(range(len(cycles)))

    def test_fpga_timing_attaches_model_and_budget(self):
        config = PipelineConfig(
            size=8, fill=0.4, shots=1, cycles=1, master_seed=2, fpga_timing=True
        )
        result = run_pipeline(config, "sequential")
        assert result.modelled_fpga_us() is not None
        assert result.modelled_fpga_us() > 0
        comparison = result.hardware_comparison()
        assert comparison is not None
        assert "hardware budget" in comparison
        assert result.hardware_comparison() in result.format_summary()

    def test_no_fpga_timing_no_comparison(self):
        config = PipelineConfig(size=6, fill=0.4, shots=1, master_seed=2)
        result = run_pipeline(config, "sequential")
        assert result.modelled_fpga_us() is None
        assert result.hardware_comparison() is None

    def test_to_dict_round_trips_through_json(self):
        config = PipelineConfig(size=6, fill=0.5, shots=2, cycles=2, loss=LOSS)
        payload = json.loads(json.dumps(run_pipeline(config, "pipelined").to_dict()))
        assert payload["mode"] == "pipelined"
        assert payload["shots"] == 2
        assert payload["frames"] >= 2
        assert len(payload["trace_digest"]) == 64
        stages = {s["stage"] for s in payload["stage_report"]["stages"]}
        assert stages <= set(PIPELINE_STAGES)


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size": 1},
            {"fill": 1.5},
            {"fill": -0.1},
            {"shots": 0},
            {"cycles": 0},
            {"queue_depth": 0},
            {"fpga_timing": True, "algorithm": "tetris"},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PipelineConfig(**kwargs)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown pipeline mode"):
            run_pipeline(PipelineConfig(size=4), "warp")

    def test_modes_tuple(self):
        assert PIPELINE_MODES == ("sequential", "pipelined")


# ---------------------------------------------------------------------------
# Stage-latency bookkeeping
# ---------------------------------------------------------------------------


class TestStageReport:
    def test_unknown_stage_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown pipeline stage"):
            StageReport().record("teleport", 1.0)

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ConfigurationError):
            StageReport().record(STAGE_SCHEDULE, -1.0)

    def test_timed_accumulates(self):
        report = StageReport()
        with report.timed("camera"):
            pass
        with report.timed("camera"):
            pass
        timing = report.stages["camera"]
        assert timing.n_calls == 2
        assert timing.total_us >= timing.best_us * 2 >= 0
        assert timing.mean_us == timing.total_us / 2

    def test_ordered_follows_stage_vocabulary(self):
        report = StageReport()
        for stage in reversed(PIPELINE_STAGES):
            report.record(stage, 1.0)
        assert [t.stage for t in report.ordered()] == list(PIPELINE_STAGES)

    def test_overlap_is_busy_over_wall(self):
        report = StageReport(mode="pipelined")
        report.record("camera", 30.0)
        report.record("detect", 30.0)
        report.wall_us = 40.0
        assert report.overlap == pytest.approx(1.5)
        assert "overlap 1.50x" in report.format()

    def test_compare_to_budget_covers_budgeted_stages(self):
        report = StageReport()
        for stage in PIPELINE_STAGES:
            report.record(stage, 10.0)
        table = report.compare_to_budget(
            {stage: 1.0 for stage in BUDGETED_STAGES}, "unit budget"
        )
        for stage in BUDGETED_STAGES:
            assert stage in table
        assert "replay" not in table

    def test_pipeline_report_covers_all_stages(self):
        config = PipelineConfig(size=6, fill=0.4, shots=2, cycles=2, loss=LOSS)
        result = run_pipeline(config, "pipelined")
        assert result.report.mode == "pipelined"
        assert result.report.wall_us > 0
        assert set(result.report.stages) <= set(PIPELINE_STAGES)
        assert "camera" in result.report.stages


# ---------------------------------------------------------------------------
# Campaign integration: the --cycles axis
# ---------------------------------------------------------------------------

CYCLES_CELL = ScenarioCell(
    algorithm="qrm",
    size=8,
    fill=0.5,
    loss=LossSpec(vacuum_lifetime_s=0.05),
    cycles=3,
)


class TestCampaignCycles:
    def test_trial_is_deterministic(self):
        trial = TrialSpec(cell=CYCLES_CELL, seed_index=0, master_seed=7)
        first = run_trial(trial)
        second = run_trial(trial)
        assert first.key == second.key
        assert dict(first.metrics) == dict(second.metrics)

    def test_trial_reports_cycles_used(self):
        trial = TrialSpec(cell=CYCLES_CELL, seed_index=0, master_seed=7)
        metrics = run_trial(trial).metrics
        assert 1 <= metrics["cycles_used"] <= CYCLES_CELL.cycles
        assert "survival" in metrics
        assert 0.0 <= metrics["survival"] <= 1.0

    def test_single_cycle_cell_unchanged_by_axis(self):
        # cycles=1 must keep the original (non-pipeline) trial path and
        # its instance key, so existing caches and journals stay valid.
        flat = ScenarioCell(algorithm="qrm", size=8, fill=0.5)
        looped = ScenarioCell(algorithm="qrm", size=8, fill=0.5, cycles=1)
        assert flat.instance_key() == looped.instance_key()
        assert "cycles" not in flat.label()

    def test_multi_cycle_label_and_dict(self):
        assert "cycles=3" in CYCLES_CELL.label()
        assert CYCLES_CELL.to_dict()["cycles"] == 3

    @given(spec=campaign_specs(max_seeds=2, cycles=(2, 3)))
    @settings(max_examples=5, deadline=None)
    def test_campaign_runs_deterministically(self, spec):
        first = ExperimentCampaign(spec).run()
        second = ExperimentCampaign(spec).run()
        assert first.to_csv() == second.to_csv()
        for aggregate in first.aggregates:
            assert "cycles_used" in aggregate.metrics

    def test_interrupted_cycles_campaign_resumes_identically(self, tmp_path):
        spec = CampaignSpec(
            name="cycles-resume",
            algorithms=("qrm",),
            sizes=(8,),
            fills=(0.5,),
            loss_models=(LossSpec(vacuum_lifetime_s=0.05),),
            n_seeds=4,
            cycles=2,
        )
        clean = ExperimentCampaign(spec).run()

        path = tmp_path / "run.jsonl"
        journal = RunJournal.fresh(path)
        with pytest.raises(KeyboardInterrupt):
            ExperimentCampaign(
                spec, journal=journal, observer=InterruptingObserver(after=2)
            ).run()
        journal.close()

        journal = RunJournal.resume(path)
        resumed = ExperimentCampaign(spec, journal=journal).run()
        journal.close()
        assert resumed.journal_replays == 2
        assert resumed.to_csv() == clean.to_csv()
        assert read_journal(path).completed


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestPipelineCli:
    ARGS = ["pipeline", "--size", "6", "--fill", "0.4", "--shots", "2", "--seed", "3"]

    def test_both_modes_agree(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "pipelined == sequential" in out
        assert "stage latency" in out

    def test_single_mode_trace_and_json(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        payload = tmp_path / "out.json"
        args = self.ARGS + [
            "--mode",
            "sequential",
            "--cycles",
            "2",
            "--loss",
            "--trace",
            str(trace),
            "--json",
            str(payload),
        ]
        assert main(args) == 0
        lines = trace.read_text().splitlines()
        assert lines
        assert all(json.loads(line)["shot"] in (0, 1) for line in lines)
        data = json.loads(payload.read_text())
        assert set(data) == {"sequential"}
        assert data["sequential"]["cycles"] == 2

    def test_cli_traces_identical_across_modes(self, tmp_path):
        traces = {}
        for mode in PIPELINE_MODES:
            path = tmp_path / f"{mode}.txt"
            args = self.ARGS + ["--mode", mode, "--cycles", "2", "--loss"]
            assert main(args + ["--trace", str(path), "--quiet"]) == 0
            traces[mode] = path.read_bytes()
        assert traces["sequential"] == traces["pipelined"]

    def test_campaign_cycles_flag(self, capsys):
        code = main(
            [
                "campaign",
                "--sizes",
                "6",
                "--fills",
                "0.5",
                "--seeds",
                "2",
                "--loss",
                "--cycles",
                "2",
                "--algorithms",
                "qrm",
            ]
        )
        assert code == 0
        assert "cycles" in capsys.readouterr().out
