"""Shared differential-oracle test harness.

Every vectorised hot path in this repository keeps its per-command
predecessor alive as a ``*_reference`` oracle and must emit bit-identical
output — same moves, same tags, same order, same statistics, same final
grid.  This module is the reusable layer those equivalence suites build
on:

* Hypothesis strategies over geometry x fill x loss seeds
  (:func:`atom_arrays`, :func:`occupancy_grids`, :func:`geometries`),
  generating the scheduler inputs all differential tests share;
* schedule-identity assertion helpers
  (:func:`assert_moves_identical`, :func:`assert_results_identical`,
  :func:`assert_pass_outcomes_identical`,
  :func:`assert_repair_outcomes_identical`) that spell out exactly what
  "bit-identical" means for each artefact.

Used by ``test_pass_equivalence.py`` (QRM pass, guarded drain x
``s_en``), ``test_repair_equivalence.py`` (repair stage),
``test_baseline_equivalence.py`` (Tetris/PSCA/MTA1),
``test_executor_batch.py`` (batched replay), ``test_pipeline.py``
(pipelined vs sequential closed-loop drivers, via
:func:`pipeline_configs`), and — via the :func:`campaign_specs` grids —
``test_journal.py`` (journal crash-consistency against the clean-run
oracle).
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry

#: Default size/target pools: small enough to shrink well, large enough
#: to exercise uneven quadrants and off-centre targets.
SIZES = (4, 6, 8, 10, 12)
TARGETS = (2, 4, 6)

#: Size pool for pass-drain edge cases: includes the degenerate size-2
#: geometry whose quadrants are single positions (every scanned line has
#: at most zero commands, and any guard skip empties its round).
PASS_EDGE_SIZES = (2,) + SIZES


def scan_limits(max_limit: int = 3):
    """``s_en`` bounds for pass strategies, ``None`` plus tight limits.

    A limit of 1 is always smaller than the deepest command list of any
    line with two or more holes, so drains that mix limited and
    exhausted states are exercised alongside the unlimited case.
    """
    return st.one_of(st.none(), st.integers(min_value=1, max_value=max_limit))


@st.composite
def geometries(draw, sizes=SIZES, targets=TARGETS) -> ArrayGeometry:
    """Square geometries with even extents and a centred even target."""
    size = draw(st.sampled_from(sizes))
    target = draw(st.sampled_from([t for t in targets if t <= size]))
    return ArrayGeometry.square(size, target)


@st.composite
def occupancy_grids(draw, geometry: ArrayGeometry) -> np.ndarray:
    """A random occupancy grid for ``geometry``: fill x seed x loss seed.

    The grid is seeded uniform loading at a drawn fill fraction, with an
    optional independent per-atom loss draw on top — the same composition
    the campaign engine's loss trials produce, so differential tests see
    post-loss occupancy patterns too.
    """
    fill = draw(st.floats(min_value=0.05, max_value=0.95))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    grid = np.random.default_rng(seed).random(geometry.shape) < fill
    if draw(st.booleans()):
        loss_rate = draw(st.floats(min_value=0.0, max_value=0.3))
        loss_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
        survives = (
            np.random.default_rng(loss_seed).random(geometry.shape) >= loss_rate
        )
        grid &= survives
    return grid


@st.composite
def atom_arrays(draw, sizes=SIZES, targets=TARGETS) -> AtomArray:
    """Random :class:`AtomArray` over geometry x fill x loss seeds."""
    geometry = draw(geometries(sizes=sizes, targets=targets))
    return AtomArray(geometry, draw(occupancy_grids(geometry)))


#: Mask size pool: even extents only (the quadrant split needs them);
#: starts at 6 so every drawn ring keeps at least one site per quadrant.
MASK_SIZES = (6, 8, 10, 12)

#: Non-rectangular mask families the geometry layer supports.
MASK_KINDS = ("ring", "triangular", "sparse")


@st.composite
def mask_strategies(draw, sizes=MASK_SIZES, kinds=MASK_KINDS):
    """Non-rectangular :class:`TargetMask` draws over ring/triangular/sparse.

    Parameter ranges are constrained so every draw is constructible
    (non-empty): a ring band at least 1.0 wide always crosses a
    half-integer site distance, a triangular lattice with ``margin <=
    1`` on a size >= 6 array keeps its first row, and sparse site sets
    are non-empty by construction.  Returns ``(size, mask)``.
    """
    from repro.lattice.mask import TargetMask

    size = draw(st.sampled_from(sizes))
    kind = draw(st.sampled_from(kinds))
    if kind == "ring":
        outer = draw(
            st.floats(min_value=1.5, max_value=size / 2, allow_nan=False)
        )
        inner = draw(st.floats(min_value=0.0, max_value=outer - 1.0))
        return size, TargetMask.ring(size, size, outer, inner)
    if kind == "triangular":
        pitch = draw(st.integers(min_value=1, max_value=3))
        margin = draw(st.integers(min_value=0, max_value=1))
        return size, TargetMask.triangular_lattice(
            size, size, pitch=pitch, margin=margin
        )
    sites = draw(
        st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=size - 1),
                st.integers(min_value=0, max_value=size - 1),
            ),
            min_size=1,
            max_size=max(2, size // 2),
        )
    )
    return size, TargetMask.sparse_sites(size, size, sorted(sites))


@st.composite
def masked_geometries(draw, sizes=MASK_SIZES, kinds=MASK_KINDS) -> ArrayGeometry:
    """Square geometries carrying a drawn non-rectangular target mask."""
    size, mask = draw(mask_strategies(sizes=sizes, kinds=kinds))
    return ArrayGeometry.with_mask(size, size, mask)


@st.composite
def masked_atom_arrays(draw, sizes=MASK_SIZES, kinds=MASK_KINDS) -> AtomArray:
    """Random :class:`AtomArray` over masked geometry x fill x loss seeds."""
    geometry = draw(masked_geometries(sizes=sizes, kinds=kinds))
    return AtomArray(geometry, draw(occupancy_grids(geometry)))


@st.composite
def campaign_specs(draw, max_seeds: int = 3, cycles=(1,)):
    """Tiny campaign grids for engine/journal differential tests.

    Small enough that one full campaign runs in milliseconds, varied
    enough to cover multi-algorithm grids, so crash-consistency and
    executor-equivalence properties can afford one clean run plus one
    perturbed run per example.  Pass ``cycles`` with values > 1 to draw
    closed-loop (multi-cycle) campaigns.
    """
    from repro.campaign.spec import CampaignSpec, LossSpec

    algorithms = draw(st.sampled_from([("qrm",), ("tetris",), ("qrm", "tetris")]))
    size = draw(st.sampled_from((4, 6, 8)))
    fill = draw(st.sampled_from((0.3, 0.5, 0.7)))
    n_seeds = draw(st.integers(min_value=1, max_value=max_seeds))
    master_seed = draw(st.integers(min_value=0, max_value=2**16))
    n_cycles = draw(st.sampled_from(cycles))
    # Multi-cycle runs only differ from single-cycle ones when replay is
    # stochastic, so closed-loop grids always carry an aggressive loss
    # model (otherwise a converged shot would stay converged forever).
    loss_models = (LossSpec(vacuum_lifetime_s=0.05),) if n_cycles > 1 else (None,)
    return CampaignSpec(
        name="oracle",
        algorithms=algorithms,
        sizes=(size,),
        fills=(fill,),
        loss_models=loss_models,
        n_seeds=n_seeds,
        master_seed=master_seed,
        cycles=n_cycles,
    )


@st.composite
def pipeline_configs(draw, max_shots: int = 3, max_cycles: int = 3):
    """Closed-loop :class:`~repro.pipeline.PipelineConfig` inputs.

    Drawn over geometry x fill x stream shape x loss so the pipelined
    and the sequential driver are compared across single-frame runs,
    deep repair loops, lossless no-op cycles, and queue depths down to
    the fully serialised ``1``.
    """
    from repro.physics.loss import LossModel
    from repro.pipeline import PipelineConfig

    size = draw(st.sampled_from((4, 6, 8)))
    fill = draw(st.sampled_from((0.3, 0.5, 0.7)))
    shots = draw(st.integers(min_value=1, max_value=max_shots))
    cycles = draw(st.integers(min_value=1, max_value=max_cycles))
    lossy = draw(st.booleans())
    return PipelineConfig(
        size=size,
        fill=fill,
        algorithm=draw(st.sampled_from(("qrm", "tetris"))),
        shots=shots,
        cycles=cycles,
        master_seed=draw(st.integers(min_value=0, max_value=2**16)),
        loss=LossModel(vacuum_lifetime_s=0.05) if lossy else None,
        queue_depth=draw(st.sampled_from((1, 2, 4))),
    )


# ---------------------------------------------------------------------------
# Identity assertions
# ---------------------------------------------------------------------------


def assert_moves_identical(ours, reference) -> None:
    """Same move count, and per index: equal move and equal tag."""
    __tracebackhide__ = True
    ours = list(ours)
    reference = list(reference)
    assert len(ours) == len(reference), (
        f"{len(ours)} moves vs {len(reference)} expected"
    )
    for index, (move, expected) in enumerate(zip(ours, reference)):
        assert move == expected, f"move {index} differs"
        assert move.tag == expected.tag, f"move {index} tag differs"


def assert_pass_outcomes_identical(ours, reference) -> None:
    """Bit-identity of two :class:`~repro.core.passes.PassOutcome`."""
    assert_moves_identical(ours.moves, reference.moves)
    assert ours.n_commands == reference.n_commands
    assert ours.n_executed == reference.n_executed
    assert ours.n_skipped_stale == reference.n_skipped_stale
    assert ours.n_skipped_empty == reference.n_skipped_empty
    assert ours.n_scanned_bits == reference.n_scanned_bits
    assert ours.line_commands == reference.line_commands


def assert_results_identical(ours, reference) -> None:
    """Bit-identity of two :class:`RearrangementResult` schedules.

    Wall-clock time is measured, not derived, so it is the one field
    deliberately left out.
    """
    assert ours.algorithm == reference.algorithm
    assert_moves_identical(ours.schedule, reference.schedule)
    assert np.array_equal(ours.initial.grid, reference.initial.grid)
    assert np.array_equal(ours.final.grid, reference.final.grid)
    assert ours.converged == reference.converged
    assert ours.analysis_ops == reference.analysis_ops
    assert ours.unresolved_defects == reference.unresolved_defects


def assert_repair_outcomes_identical(ours, reference) -> None:
    """Bit-identity of two :class:`~repro.core.repair.RepairOutcome`."""
    assert_moves_identical(ours.moves, reference.moves)
    assert ours.filled == reference.filled
    assert ours.unresolved == reference.unresolved
