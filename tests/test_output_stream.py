"""Tests for the accelerator's PS-readback output stream."""

from __future__ import annotations

from repro.fpga.accelerator import QrmAccelerator
from repro.lattice.loading import load_uniform


class TestOutputStream:
    def test_record_words_cover_all_shifts(self, array20):
        run = QrmAccelerator(array20.geometry).run(array20)
        assert len(run.record_words()) == run.schedule.n_line_shifts

    def test_packets_round_trip_to_shifts(self, array20):
        """PS writes occupancy, PL answers packets; PS decodes the exact
        line shifts the golden scheduler emitted."""
        run = QrmAccelerator(array20.geometry).run(array20)
        packets = run.output_packets()
        decoded = run.decode_output(packets)
        expected = [shift for move in run.schedule for shift in move.shifts]
        assert decoded == expected

    def test_packet_count_matches_width(self, geo20):
        array = load_uniform(geo20, 0.5, rng=6)
        run = QrmAccelerator(geo20).run(array)
        n_words = len(run.record_words())
        per_packet = 1024 // 32
        expected_packets = -(-n_words // per_packet) if n_words else 0
        assert len(run.output_packets()) == expected_packets

    def test_empty_schedule_empty_stream(self, geo8):
        from repro.lattice.array import AtomArray

        run = QrmAccelerator(geo8).run(AtomArray.full(geo8))
        assert run.record_words() == []
        assert run.output_packets() == []
