"""Property tests: batched ``scan_quadrant`` == per-line ``scan_line``."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scan import scan_axis, scan_line, scan_quadrant

grids = st.tuples(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.floats(min_value=0.0, max_value=1.0),
).map(
    lambda args: (
        np.random.default_rng(args[2]).random((args[0], args[1])) < args[3]
    )
)

limits = st.one_of(st.none(), st.integers(min_value=0, max_value=14))


@given(grids, st.integers(min_value=0, max_value=1), limits)
@settings(max_examples=300)
def test_scan_quadrant_matches_per_line_scan(grid, axis, limit):
    scan = scan_quadrant(grid, axis, limit=limit)
    n_lines = grid.shape[axis]
    assert scan.n_lines == n_lines
    assert scan.n_positions == grid.shape[1 - axis]
    total = 0
    for line in range(n_lines):
        vector = grid[line, :] if axis == 0 else grid[:, line]
        expected = scan_line(vector, line=line, limit=limit)
        assert scan.line_counts[line] == expected.n_commands
        assert tuple(scan.holes_of_line(line)) == expected.hole_positions
        total += expected.n_commands
    assert scan.n_commands == total
    # Flat arrays are line-major with ascending positions per line.
    pairs = list(zip(scan.hole_lines.tolist(), scan.hole_positions.tolist()))
    assert pairs == sorted(pairs)


@given(grids, st.integers(min_value=0, max_value=1), limits)
@settings(max_examples=150)
def test_results_bridge_matches_scan_line(grid, axis, limit):
    results = scan_quadrant(grid, axis, limit=limit).results()
    assert [r.line for r in results] == list(range(grid.shape[axis]))
    for result in results:
        vector = grid[result.line, :] if axis == 0 else grid[:, result.line]
        expected = scan_line(vector, line=result.line, limit=limit)
        assert result.hole_positions == expected.hole_positions
        assert result.bits_before == expected.bits_before
        assert result.n_atoms == expected.n_atoms
        assert result.n_commands == expected.n_commands


class TestEdges:
    def test_empty_lines_are_represented(self):
        grid = np.zeros((3, 4), dtype=bool)
        scan = scan_quadrant(grid, axis=0)
        assert scan.n_commands == 0
        assert list(scan.line_counts) == [0, 0, 0]
        assert len(scan.results()) == 3

    def test_zero_width_grid(self):
        scan = scan_quadrant(np.zeros((3, 0), dtype=bool), axis=0)
        assert scan.n_lines == 3
        assert scan.n_positions == 0
        assert scan.n_commands == 0

    def test_zero_lines_grid(self):
        scan = scan_quadrant(np.zeros((0, 5), dtype=bool), axis=0)
        assert scan.n_lines == 0
        assert scan.results() == []

    def test_limit_zero_blocks_all_commands(self):
        grid = np.array([[0, 1, 0, 1]], dtype=bool)
        assert scan_quadrant(grid, axis=0, limit=0).n_commands == 0

    def test_limit_beyond_width_is_noop(self):
        grid = np.array([[0, 1, 0, 1]], dtype=bool)
        full = scan_quadrant(grid, axis=0)
        capped = scan_quadrant(grid, axis=0, limit=99)
        assert np.array_equal(full.hole_positions, capped.hole_positions)

    def test_invalid_axis(self):
        with pytest.raises(ValueError):
            scan_quadrant(np.zeros((2, 2), dtype=bool), axis=2)

    def test_scan_axis_delegates_to_quadrant_scan(self):
        grid = np.array([[1, 0, 1], [0, 0, 0]], dtype=bool)
        assert [r.hole_positions for r in scan_axis(grid, axis=0)] == [(1,), ()]
