"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry
from repro.lattice.loading import load_uniform


@pytest.fixture
def geo8() -> ArrayGeometry:
    """The paper's Fig. 3 demo geometry: 8x8 with a 4x4 target."""
    return ArrayGeometry.square(8, 4)


@pytest.fixture
def geo20() -> ArrayGeometry:
    """The Fig. 7(b) benchmark geometry: 20x20 with a 12x12 target."""
    return ArrayGeometry.square(20, 12)


@pytest.fixture
def geo50() -> ArrayGeometry:
    """The headline geometry: 50x50 with a 30x30 target."""
    return ArrayGeometry.square(50, 30)


@pytest.fixture
def array20(geo20: ArrayGeometry) -> AtomArray:
    """A reproducible 50 %-filled 20x20 array."""
    return load_uniform(geo20, 0.5, rng=1234)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(99)
