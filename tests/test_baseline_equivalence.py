"""Tetris/PSCA/MTA1 baselines: vectorised planners == references.

The vectorised :class:`TetrisScheduler`, :class:`PscaScheduler`, and
:class:`Mta1Scheduler` must emit exactly the schedules of their
re-scanning references — same moves, tags, order, analysis-op counts,
convergence flags, and final grids — across random geometry x fill x
loss inputs, and those schedules must replay cleanly through the
independent validator.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from oracles import assert_results_identical, atom_arrays

from repro.aod.validator import validate_schedule
from repro.baselines.mta1 import Mta1Scheduler, Mta1SchedulerReference
from repro.baselines.psca import PscaScheduler, PscaSchedulerReference
from repro.baselines.tetris import TetrisScheduler, TetrisSchedulerReference


@given(atom_arrays())
@settings(max_examples=60, deadline=None)
def test_tetris_bit_identical_to_reference(array):
    ours = TetrisScheduler(array.geometry).schedule(array)
    expected = TetrisSchedulerReference(array.geometry).schedule(array)
    assert_results_identical(ours, expected)


@given(atom_arrays())
@settings(max_examples=30, deadline=None)
def test_tetris_schedule_replays_cleanly(array):
    result = TetrisScheduler(array.geometry).schedule(array)
    report = validate_schedule(array, result.schedule)
    assert report.ok
    assert report.final_array == result.final


@given(atom_arrays(), st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_psca_bit_identical_to_reference(array, max_tweezers):
    ours = PscaScheduler(array.geometry, max_tweezers=max_tweezers).schedule(array)
    expected = PscaSchedulerReference(
        array.geometry, max_tweezers=max_tweezers
    ).schedule(array)
    assert_results_identical(ours, expected)


@given(atom_arrays())
@settings(max_examples=30, deadline=None)
def test_psca_schedule_replays_cleanly(array):
    result = PscaScheduler(array.geometry).schedule(array)
    report = validate_schedule(array, result.schedule)
    assert report.ok
    assert report.final_array == result.final


@given(atom_arrays())
@settings(max_examples=60, deadline=None)
def test_mta1_bit_identical_to_reference(array):
    ours = Mta1Scheduler(array.geometry).schedule(array)
    expected = Mta1SchedulerReference(array.geometry).schedule(array)
    assert_results_identical(ours, expected)


@given(atom_arrays())
@settings(max_examples=30, deadline=None)
def test_mta1_schedule_replays_cleanly(array):
    result = Mta1Scheduler(array.geometry).schedule(array)
    report = validate_schedule(array, result.schedule)
    assert report.ok
    assert report.final_array == result.final


@given(atom_arrays())
@settings(max_examples=30, deadline=None)
def test_mta1_moves_are_single_site_legs(array):
    # MTA1's defining property: one tweezer, one atom — every emitted
    # move is a single LineShift spanning exactly one site.
    result = Mta1Scheduler(array.geometry).schedule(array)
    for move in result.schedule:
        assert len(move) == 1
        (shift,) = move.shifts
        assert shift.span_stop - shift.span_start == 1


@given(atom_arrays())
@settings(max_examples=30, deadline=None)
def test_tetris_conserves_atoms(array):
    result = TetrisScheduler(array.geometry).schedule(array)
    assert result.final.n_atoms == array.n_atoms
    assert np.array_equal(result.initial.grid, array.grid)


@given(atom_arrays())
@settings(max_examples=30, deadline=None)
def test_psca_conserves_atoms(array):
    result = PscaScheduler(array.geometry).schedule(array)
    assert result.final.n_atoms == array.n_atoms
    assert np.array_equal(result.initial.grid, array.grid)
