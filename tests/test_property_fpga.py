"""Property tests for bit vectors, packets and record encoding."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aod.move import LineShift
from repro.fpga.bitvec import BitVector
from repro.fpga.movement_record import decode_shift, encode_shift
from repro.fpga.packets import (
    pack_occupancy,
    pack_words,
    unpack_occupancy,
    unpack_words,
)
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry, Direction

bit_lists = st.lists(st.booleans(), min_size=1, max_size=80)


@given(bit_lists)
def test_bitvector_round_trip(bits):
    vec = BitVector.from_bits(bits)
    assert vec.to_bools() == bits
    assert vec.popcount() == sum(bits)


@given(bit_lists)
def test_bitvector_reverse_involution(bits):
    vec = BitVector.from_bits(bits)
    assert vec.reversed().reversed() == vec


@given(bit_lists, st.integers(0, 10))
def test_shift_right_drops_low_bits(bits, n):
    vec = BitVector.from_bits(bits)
    shifted = vec.shift_right(n)
    expected = bits[n:] + [False] * min(n, len(bits))
    assert shifted.to_bools() == expected


@given(bit_lists, bit_lists)
def test_concat_width_and_content(low_bits, high_bits):
    low = BitVector.from_bits(low_bits)
    high = BitVector.from_bits(high_bits)
    combined = low.concat(high)
    assert combined.width == low.width + high.width
    assert combined.to_bools() == low_bits + high_bits


@st.composite
def geometries_and_grids(draw):
    size = draw(st.sampled_from([4, 6, 10, 16]))
    geometry = ArrayGeometry.square(size, 2)
    bits = draw(
        st.lists(
            st.booleans(),
            min_size=geometry.n_sites,
            max_size=geometry.n_sites,
        )
    )
    grid = np.array(bits, dtype=bool).reshape(geometry.shape)
    return AtomArray(geometry, grid)


@given(geometries_and_grids())
@settings(max_examples=50)
def test_occupancy_packets_round_trip(array):
    packets = pack_occupancy(array)
    assert unpack_occupancy(packets, array.geometry) == array


@given(
    st.lists(st.integers(0, (1 << 32) - 1), min_size=0, max_size=200),
)
def test_word_packing_round_trip(words):
    packets = pack_words(words, word_bits=32)
    assert unpack_words(packets, 32, len(words)) == words


@st.composite
def shifts(draw):
    direction = draw(st.sampled_from(list(Direction)))
    line = draw(st.integers(0, 255))
    start = draw(st.integers(0, 254))
    stop = draw(st.integers(start + 1, 255))
    steps = draw(st.integers(1, 63))
    return LineShift(direction, line, start, stop, steps)


@given(shifts())
@settings(max_examples=200)
def test_record_encoding_round_trip(shift):
    assert decode_shift(encode_shift(shift)) == shift


@given(shifts())
def test_record_fits_32_bits(shift):
    word = encode_shift(shift)
    assert 0 <= word < (1 << 32)
