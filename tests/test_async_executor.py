"""Tests for the asyncio-driven campaign executor."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.campaign import (
    AsyncExecutor,
    CampaignSpec,
    ExperimentCampaign,
    MultiprocessingExecutor,
    SerialExecutor,
    make_executor,
)
from repro.errors import ConfigurationError


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"boom on {x}")


def _slow_square(x: int) -> int:
    time.sleep(0.05)
    return x * x


def small_spec(**overrides) -> CampaignSpec:
    fields = dict(
        name="async-unit",
        algorithms=("qrm", "tetris"),
        sizes=(8,),
        fills=(0.5,),
        n_seeds=3,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


class TestAsyncExecutor:
    def test_yields_every_index_exactly_once(self):
        results = dict(AsyncExecutor(workers=2).run(_square, list(range(10))))
        assert results == {i: i * i for i in range(10)}

    def test_empty_items(self):
        assert list(AsyncExecutor(workers=2).run(_square, [])) == []

    def test_single_worker_degrades_to_serial(self):
        pairs = list(AsyncExecutor(workers=1).run(_square, [3, 4]))
        assert pairs == [(0, 9), (1, 16)]

    def test_campaign_aggregates_match_serial(self):
        spec = small_spec()
        serial = ExperimentCampaign(spec, executor=SerialExecutor()).run()
        fanned = ExperimentCampaign(spec, executor=AsyncExecutor(workers=2)).run()
        assert serial.to_csv() == fanned.to_csv()
        for a, b in zip(serial.aggregates, fanned.aggregates):
            assert a.cell == b.cell
            assert a.metrics == b.metrics

    def test_error_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            dict(AsyncExecutor(workers=2).run(_boom, [1, 2, 3]))

    def test_early_close_cancels_cleanly(self):
        executor = AsyncExecutor(workers=2, max_in_flight=2)
        stream = executor.run(_slow_square, list(range(12)))
        first = next(stream)
        assert first[1] == first[0] ** 2
        started = time.perf_counter()
        stream.close()
        # Closing cancels the outstanding fan-out rather than draining
        # all 12 sleeps through 2 workers (~0.3 s).
        assert time.perf_counter() - started < 2.0

    def test_arun_for_async_callers(self):
        async def collect():
            results = {}
            async for index, value in AsyncExecutor(workers=2).arun(_square, [2, 3, 4]):
                results[index] = value
            return results

        assert asyncio.run(collect()) == {0: 4, 1: 9, 2: 16}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AsyncExecutor(workers=0)
        with pytest.raises(ConfigurationError):
            AsyncExecutor(max_in_flight=0)

    def test_backpressure_bound_defaults_to_twice_workers(self):
        executor = AsyncExecutor(workers=3)
        assert executor.max_in_flight is None  # resolved at run time
        assert executor._pool_size(100) == 3


class TestMakeExecutor:
    def test_kinds(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(4), MultiprocessingExecutor)
        assert isinstance(make_executor(4, kind="serial"), SerialExecutor)
        fanned = make_executor(4, kind="async")
        assert isinstance(fanned, AsyncExecutor)
        assert fanned.workers == 4
        assert isinstance(make_executor(None, kind="async"), AsyncExecutor)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_executor(2, kind="quantum")
