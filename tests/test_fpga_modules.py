"""Tests for LDM, AXI model, and the dataflow pipeline blocks."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.fpga.axi import AxiTransferModel
from repro.fpga.config import DEFAULT_FPGA_CONFIG, FpgaConfig
from repro.fpga.load_data import LoadDataModule, LoadVectorUnit
from repro.fpga.quadrant_processor import LineToken, build_lane, iteration_tokens
from repro.fpga.output_concat import AxiWriteSink, OutputConcatUnit
from repro.fpga.row_combination import RowCombinationUnit
from repro.fpga.sim import Simulator, SourceModule
from repro.lattice.geometry import Quadrant
from repro.lattice.loading import load_uniform


class TestAxiModel:
    def test_zero_packets_free(self):
        assert AxiTransferModel().transfer_cycles(0) == 0

    def test_setup_plus_stream(self):
        model = AxiTransferModel(setup_cycles=10)
        assert model.transfer_cycles(5) == 15

    def test_multiple_bursts(self):
        model = AxiTransferModel(setup_cycles=10, max_burst_packets=4)
        assert model.n_bursts(9) == 3
        assert model.transfer_cycles(9) == 39

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AxiTransferModel(setup_cycles=-1)
        with pytest.raises(ConfigurationError):
            AxiTransferModel(packets_per_cycle=0)


class TestLoadVectorUnit:
    @pytest.mark.parametrize("quadrant", list(Quadrant))
    def test_flip_matches_frame_extract(self, geo20, quadrant, rng):
        """The bit-level flip path agrees with the numpy frame transform."""
        array = load_uniform(geo20, 0.5, rng=rng)
        frame = geo20.quadrant_frame(quadrant)
        loaded = LoadVectorUnit(frame).load(array)
        expected = frame.extract(array.grid)
        assert loaded.n_rows == frame.n_rows
        for u in range(frame.n_rows):
            assert loaded.rows[u].to_bools() == list(expected[u])

    def test_atom_count_preserved(self, geo20):
        array = load_uniform(geo20, 0.5, rng=4)
        ldm = LoadDataModule({q: geo20.quadrant_frame(q) for q in Quadrant})
        loaded = ldm.load_all(array)
        assert sum(lq.n_atoms for lq in loaded.values()) == array.n_atoms

    def test_packet_count(self, geo50):
        array = load_uniform(geo50, 0.5, rng=4)
        ldm = LoadDataModule({q: geo50.quadrant_frame(q) for q in Quadrant})
        assert ldm.n_input_packets(array) == 3  # 2500 bits / 1024


class TestIterationTokens:
    def _outcome(self, geo, counts):
        from repro.core.passes import PassOutcome, Phase

        outcome = PassOutcome(phase=Phase.ROW)
        outcome.line_commands = counts
        return outcome

    def test_row_then_column_schedule(self, geo8):
        qw = geo8.half_width
        counts = {q: [1] * qw for q in Quadrant}
        row = self._outcome(geo8, counts)
        col = self._outcome(geo8, counts)
        tokens = iteration_tokens(Quadrant.NW, row, col, qw)
        assert len(tokens) == 2 * qw
        # Rows ready back-to-back from cycle 0.
        assert tokens[0][0] == 0
        assert tokens[qw - 1][0] == qw - 1
        # Columns ready only after the transpose completes.
        assert tokens[qw][0] == qw
        assert tokens[2 * qw - 1][0] == 2 * qw - 1

    def test_missing_quadrant_defaults_to_zero(self, geo8):
        from repro.core.passes import PassOutcome, Phase

        row = PassOutcome(phase=Phase.ROW)
        col = PassOutcome(phase=Phase.COLUMN)
        tokens = iteration_tokens(Quadrant.SE, row, col, geo8.half_width)
        assert len(tokens) == 2 * geo8.half_width
        assert all(tok.n_commands == 0 for _, tok in tokens)


class TestRowCombination:
    def test_merges_four_lanes(self):
        sim = Simulator()
        lanes = [sim.new_fifo(f"lane{i}", 16) for i in range(4)]
        sources = []
        for i, lane in enumerate(lanes):
            src = SourceModule(f"src{i}", lane)
            src.load([(0, LineToken(Quadrant.NW, "row", u, 1)) for u in range(3)])
            sources.append(src)
            sim.add_module(src)
        merged = sim.new_fifo("merged", 16)
        unit = RowCombinationUnit("rc", lanes, merged)
        unit.set_upstream_done(lambda: all(s.done for s in sources))
        sim.add_module(unit)
        sink_tokens = []
        # Drain merged manually after run: capacity is enough.
        sim.run()
        while not merged.empty:
            sink_tokens.append(merged.pop())
        assert unit.merged_tokens == 3  # three rounds of four lanes
        assert sum(n for _, n in sink_tokens) == 12

    def test_counts_only_command_bearing_lines(self):
        sim = Simulator()
        lane = sim.new_fifo("lane", 8)
        src = SourceModule("src", lane)
        src.load([(0, LineToken(Quadrant.NW, "row", 0, 0))])
        sim.add_module(src)
        merged = sim.new_fifo("merged", 8)
        unit = RowCombinationUnit("rc", [lane], merged)
        unit.set_upstream_done(lambda: src.done)
        sim.add_module(unit)
        sim.run()
        assert merged.pop() == ("merged", 0)


class TestOutputConcat:
    def test_packs_records_into_packets(self):
        sim = Simulator()
        inp = sim.new_fifo("in", 64)
        out = sim.new_fifo("out", 64)
        src = SourceModule("src", inp)
        # 40 records x 32 bits = 1280 bits -> 2 packets (one partial).
        src.load([(0, ("merged", 4)) for _ in range(10)])
        sim.add_module(src)
        packer = OutputConcatUnit("ocm", inp, out, record_bits=32, packet_bits=1024)
        packer.set_upstream_done(lambda: src.done)
        sink = AxiWriteSink("axi", out)
        sink.set_upstream_done(lambda: packer.done)
        sim.add_module(packer)
        sim.add_module(sink)
        sim.run()
        assert packer.records_packed == 40
        assert packer.packets_emitted == 2
        assert sink.packets == 2

    def test_no_records_no_packets(self):
        sim = Simulator()
        inp = sim.new_fifo("in", 8)
        out = sim.new_fifo("out", 8)
        src = SourceModule("src", inp)
        sim.add_module(src)
        packer = OutputConcatUnit("ocm", inp, out, 32, 1024)
        packer.set_upstream_done(lambda: src.done)
        sink = AxiWriteSink("axi", out)
        sink.set_upstream_done(lambda: packer.done)
        sim.add_module(packer)
        sim.add_module(sink)
        sim.run()
        assert packer.packets_emitted == 0


class TestFpgaConfig:
    def test_cycle_conversions(self):
        config = FpgaConfig()
        assert config.cycles_to_us(250) == pytest.approx(1.0)
        assert config.us_to_cycles(1.0) == 250

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FpgaConfig(clock_mhz=0)
        with pytest.raises(ConfigurationError):
            FpgaConfig(packet_bits=0)
        with pytest.raises(ConfigurationError):
            FpgaConfig(axi_setup_cycles=-1)

    def test_default_matches_paper_clock(self):
        assert DEFAULT_FPGA_CONFIG.clock_mhz == 250.0
        assert DEFAULT_FPGA_CONFIG.packet_bits == 1024


def test_build_lane_structure(geo8):
    from repro.core.passes import PassOutcome, Phase

    sim = Simulator()
    row = PassOutcome(phase=Phase.ROW)
    col = PassOutcome(phase=Phase.COLUMN)
    tokens = iteration_tokens(Quadrant.NW, row, col, geo8.half_width)
    lane = build_lane(sim, Quadrant.NW, tokens, geo8.half_width, DEFAULT_FPGA_CONFIG)
    assert lane.quadrant is Quadrant.NW
    assert lane.kernel.depth == geo8.half_width + (
        DEFAULT_FPGA_CONFIG.kernel_pipeline_depth_extra
    )
    result = sim.run()
    assert result.cycles > 0
    assert lane.recorder.consumed == 2 * geo8.half_width
