"""The complete Fig. 1 control loop on synthetic hardware.

Walks every stage of the paper's workflow:

1. stochastic atom loading into the optical lattice;
2. fluorescence imaging with a noisy camera model;
3. atom detection (ROI integration + bimodal threshold);
4. QRM rearrangement analysis (plus the FPGA cycle cost);
5. AWG waveform compilation of the move schedule;
6. replay of the moves and a final defect report.

Run with::

    python examples/full_workflow.py [--size 20] [--seed 3]
"""

from __future__ import annotations

import argparse

from repro import ArrayGeometry, get_algorithm, load_uniform, validate_schedule
from repro.aod.timing import MoveTimingModel
from repro.awg import compile_schedule
from repro.detection import detect_occupancy, detection_fidelity, render_image
from repro.fpga import QrmAccelerator
from repro.lattice.metrics import summarize
from repro.workflow import compare_architectures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=20)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    geometry = ArrayGeometry.square(args.size)

    # -- 1. loading ------------------------------------------------------
    truth = load_uniform(geometry, fill=0.5, rng=args.seed)
    print(f"[load]      {truth}")

    # -- 2. imaging -------------------------------------------------------
    image = render_image(truth, rng=args.seed + 1)
    print(
        f"[camera]    {image.shape[0]}x{image.shape[1]} px exposure, "
        f"mean {image.mean():.1f} e-, max {image.max():.0f} e-"
    )

    # -- 3. detection ------------------------------------------------------
    detection = detect_occupancy(image, geometry)
    fidelity = detection_fidelity(truth, detection.array)
    print(
        f"[detect]    {detection.n_atoms} atoms at threshold "
        f"{detection.threshold:.1f} e- (fidelity {fidelity:.2%}, "
        f"separation {detection.separation_snr:.1f} sigma)"
    )

    # -- 4. rearrangement analysis ---------------------------------------
    result = get_algorithm("qrm", geometry).schedule(detection.array)
    report = validate_schedule(detection.array, result.schedule)
    assert report.ok
    print(f"[analyse]   {result.summary()}")

    fpga = QrmAccelerator(geometry).run(detection.array)
    print(f"[fpga]      {fpga.report.summary()}")

    # -- 5. waveform compilation -------------------------------------------
    timing = MoveTimingModel()
    program = compile_schedule(result.schedule, timing=timing)
    print(
        f"[awg]       {len(program)} segments, "
        f"{program.total_duration_us / 1000.0:.2f} ms of atom motion "
        f"({result.n_moves} parallel moves)"
    )

    # -- 6. final state ------------------------------------------------------
    print(
        "[final]    ", summarize(result.final).format().replace("\n", "\n            ")
    )

    # -- bonus: why the paper wants all of this on the FPGA ----------------
    budgets = compare_architectures(args.size, fpga.report.time_us)
    print()
    print(budgets["a"].format())
    print(budgets["b"].format())
    ratio = budgets["a"].total_us / budgets["b"].total_us
    print(f"=> the fully-on-FPGA loop (Fig 2b) is {ratio:.1f}x faster")


if __name__ == "__main__":
    main()
