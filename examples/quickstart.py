"""Quickstart: load an array, run QRM, inspect and validate the schedule.

Run with::

    python examples/quickstart.py [--size 20] [--seed 7]
"""

from __future__ import annotations

import argparse

from repro import (
    ArrayGeometry,
    get_algorithm,
    load_uniform,
    render_side_by_side,
    validate_schedule,
)
from repro.fpga import QrmAccelerator
from repro.lattice.metrics import summarize


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=20)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    # 1. A stochastically loaded trap array (the paper's 50 % fill) with
    #    a centred target region of 0.6x the array side.
    geometry = ArrayGeometry.square(args.size)
    array = load_uniform(geometry, fill=0.5, rng=args.seed)
    print(f"loaded {array}")
    print(summarize(array).format())
    print()

    # 2. Run the quadrant-based rearrangement method (QRM), resolved
    #    through the algorithm registry (swap the name to compare
    #    baselines: "tetris", "psca", "mta1", ...).
    scheduler = get_algorithm("qrm", geometry)
    result = scheduler.schedule(array)
    print(result.summary())
    print(result.schedule.summary())
    print()

    # 3. Independently validate the schedule: replay every move under
    #    the crossed-AOD constraints and check conservation.
    report = validate_schedule(array, result.schedule)
    print(report.format())
    assert report.ok, "schedule failed validation!"
    print()

    # 4. Ask the cycle-level FPGA model what this analysis costs on the
    #    paper's RFSoC at 250 MHz.
    accelerator = QrmAccelerator(geometry)
    run = accelerator.run(array)
    print(run.report.summary())
    print()

    # 5. Show the before/after occupancy (defect target sites are "o").
    print(render_side_by_side(array, result.final))


if __name__ == "__main__":
    main()
