"""Shift-kernel pipeline walkthrough — the paper's Fig. 6, animated.

Feeds one quadrant of a loaded array through the register-level shift
kernel and prints the pipeline state at the two instants the paper
illustrates: after 3 cycles (three rows in flight at different bit
stages) and after Qw+1 cycles (the first rows completed, the column
buffers filling).  Then shows the per-row shift command vectors and the
row-to-column transpose.

Run with::

    python examples/fpga_cycle_trace.py [--size 10] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro import ArrayGeometry, Quadrant, load_uniform
from repro.fpga import BitVector, PipelinedShiftKernel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    geometry = ArrayGeometry.square(args.size)
    array = load_uniform(geometry, fill=0.5, rng=args.seed)
    frame = geometry.quadrant_frame(Quadrant.NW)
    local = frame.extract(array.grid)
    qw = geometry.half_width

    print(
        f"NW quadrant of a {args.size}x{args.size} array in local "
        f"orientation (bit 0 = closest to the array centre):"
    )
    rows = []
    for u in range(qw):
        bits = BitVector.from_array(local[u])
        rows.append(bits)
        printable = "".join("1" if b else "." for b in bits.to_bools())
        print(f"  row {u}: {printable}")
    print()

    kernel = PipelinedShiftKernel(qw=qw)
    traces = kernel.process(rows)

    print("--- pipeline state, Fig 6(a): after 3 cycles ---")
    print(kernel.render_snapshot(3))
    print()
    print(f"--- pipeline state, Fig 6(b): after Qw+1 = {qw + 1} cycles ---")
    print(kernel.render_snapshot(qw + 1))
    print()

    print("per-row shift command vectors (1 = atom-backed hole):")
    for trace in traces:
        cmds = "".join("1" if s.command else "." for s in trace.stages)
        print(f"  row {trace.row}: {cmds}   holes at {trace.hole_positions()}")
    print()

    print("column stream (the row->column transpose feeding the column pass):")
    for v, column in enumerate(kernel.lane.column_stream()):
        printable = "".join("1" if b else "." for b in column.to_bools())
        print(f"  col {v}: {printable}")
    print()
    print(
        f"pipeline latency for {qw} rows: "
        f"{kernel.latency_cycles(qw)} cycles "
        f"(= (rows-1) + {qw} bit stages)"
    )


if __name__ == "__main__":
    main()
