"""Compare QRM against the published baselines on identical inputs.

Reproduces the Fig. 7(b) story interactively: run every registered
algorithm on the same 20x20 arrays, validate all schedules, and print
measured analysis time, modelled C++-equivalent time, move counts and
assembly quality side by side.

Run with::

    python examples/algorithm_comparison.py [--size 20] [--trials 3]
"""

from __future__ import annotations

import argparse

from repro import ArrayGeometry, load_uniform, validate_schedule
from repro.analysis.tables import format_table
from repro.baselines import get_algorithm, model_cpu_time_us
from repro.timing import measure_wall

ALGORITHMS = ["qrm", "qrm-fresh", "qrm-repair", "typical", "tetris", "psca", "mta1"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=20)
    parser.add_argument("--trials", type=int, default=3)
    args = parser.parse_args()

    geometry = ArrayGeometry.square(args.size)
    arrays = [load_uniform(geometry, fill=0.5, rng=seed) for seed in range(args.trials)]

    rows = []
    for name in ALGORITHMS:
        algorithm = get_algorithm(name, geometry)
        measured_us = 0.0
        moves = 0
        fill = 0.0
        for array in arrays:
            result, elapsed = measure_wall(lambda a=array: algorithm.schedule(a))
            report = validate_schedule(array, result.schedule)
            assert report.ok, f"{name} produced an invalid schedule!"
            measured_us += elapsed * 1e6
            moves += result.n_moves
            fill += result.target_fill_fraction
        n = len(arrays)
        try:
            model_us = model_cpu_time_us(name.split("-")[0], args.size)
        except KeyError:
            model_us = float("nan")
        rows.append(
            [
                name,
                measured_us / n,
                model_us,
                moves / n,
                fill / n,
            ]
        )

    print(
        format_table(
            ["algorithm", "python_us", "model_us(C++ eq.)", "moves", "target fill"],
            rows,
            title=(
                f"Rearrangement algorithms on {args.size}x{args.size} arrays "
                f"(50% fill, {args.trials} trials)"
            ),
        )
    )
    print()
    print(
        "model_us reproduces the paper's Fig 7(b) ratios; python_us is the\n"
        "honest wall-clock of this reproduction's implementations."
    )


if __name__ == "__main__":
    main()
