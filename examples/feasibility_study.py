"""Feasibility study: when does compaction alone assemble the target?

DESIGN.md derives that QRM-style centre-ward compaction converges to a
Young-diagram staircase per quadrant, which caps the achievable target
fill as a function of the loading probability.  This example:

1. computes the closed-form prediction across loading probabilities;
2. measures the actual QRM fill on seeded random loads;
3. finds the minimum loading at which compaction alone suffices;
4. simulates physical atom loss on top, closing the loop to hardware.

Run with::

    python examples/feasibility_study.py [--size 50] [--target 30]
"""

from __future__ import annotations

import argparse
import statistics

from repro import ArrayGeometry, get_algorithm, load_uniform, schedule_batch
from repro.analysis.feasibility import (
    minimum_fill_for_target,
    predict_compaction_fill,
)
from repro.analysis.tables import format_table
from repro.physics import simulate_losses


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=50)
    parser.add_argument("--target", type=int, default=None)
    parser.add_argument("--trials", type=int, default=4)
    args = parser.parse_args()

    geometry = ArrayGeometry.square(args.size, args.target)
    scheduler = get_algorithm("qrm", geometry)

    rows = []
    for fill in (0.45, 0.50, 0.55, 0.60, 0.65, 0.70):
        predicted = predict_compaction_fill(geometry, fill)
        # All of one fill's seeded trials go through a single batched
        # analysis — same results as scheduling them one by one, one
        # NumPy dispatch sequence instead of ``trials``.
        arrays = [load_uniform(geometry, fill, rng=seed) for seed in range(args.trials)]
        measured = [
            result.target_fill_fraction
            for result in schedule_batch(scheduler, arrays)
        ]
        rows.append(
            [
                fill,
                predicted.expected_target_fill,
                statistics.mean(measured),
                predicted.expected_defects,
            ]
        )

    print(
        format_table(
            ["loading p", "predicted fill", "measured fill", "predicted defects"],
            rows,
            float_format=".3f",
            title=(
                f"Compaction-only assembly, {geometry.width}x"
                f"{geometry.height} array, "
                f"{geometry.target_width}x{geometry.target_height} target"
            ),
        )
    )
    print()

    threshold = minimum_fill_for_target(geometry, required_fill=0.999)
    print(
        f"minimum loading for >=99.9 % fill without the repair stage: "
        f"p = {threshold:.3f}"
    )
    print()

    # Physical loss on top of the analysis-side fill.
    array = load_uniform(geometry, 0.6, rng=99)
    result = scheduler.schedule(array)
    loss_report = simulate_losses(array, result.schedule, rng=100)
    print(
        f"with the default loss model, executing the {result.n_moves}-move "
        f"schedule keeps {loss_report.survival_fraction:.1%} of atoms "
        f"({loss_report.lost_vacuum} vacuum, "
        f"{loss_report.lost_transfer} hand-off losses over "
        f"{loss_report.duration_us / 1000.0:.1f} ms of motion)"
    )


if __name__ == "__main__":
    main()
