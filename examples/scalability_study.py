"""Scalability study: Fig. 7(a) and Fig. 8 in one run.

Sweeps the initial array size, reporting for each size the simulated
FPGA analysis latency (with its cycle breakdown), the calibrated CPU
model, and the estimated resource utilisation — the full scaling story
of the paper's evaluation.

Run with::

    python examples/scalability_study.py [--sizes 10 30 50 70 90]
"""

from __future__ import annotations

import argparse

from repro import ArrayGeometry, load_uniform
from repro.analysis.tables import format_table
from repro.baselines import model_cpu_time_us
from repro.fpga import QrmAccelerator, ResourceModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[10, 30, 50, 70, 90]
    )
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    resource_model = ResourceModel()
    latency_rows = []
    resource_rows = []
    for size in args.sizes:
        geometry = ArrayGeometry.square(size)
        array = load_uniform(geometry, fill=0.5, rng=args.seed)
        run = QrmAccelerator(geometry).run(array)
        report = run.report

        cpu_us = model_cpu_time_us("qrm", size)
        latency_rows.append(
            [
                size,
                report.total_cycles,
                report.time_us,
                cpu_us,
                cpu_us / report.time_us,
                run.result.iterations_used,
                run.result.target_fill_fraction,
            ]
        )

        utilisation = resource_model.estimate(size).utilisation()
        resource_rows.append(
            [
                size,
                utilisation["LUT"],
                utilisation["FF"],
                utilisation["BRAM"],
            ]
        )

    print(
        format_table(
            [
                "size", "fpga_cycles", "fpga_us", "cpu_model_us",
                "speedup", "iters", "target fill",
            ],
            latency_rows,
            title="Analysis latency vs array size (Fig 7a)",
        )
    )
    print()
    print(
        format_table(
            ["size", "LUT %", "FF %", "BRAM %"],
            resource_rows,
            title=(
                f"Resource utilisation on {resource_model.device.name} (Fig 8)"
            ),
        )
    )
    print()
    print(
        "Note how the FPGA latency grows by only ~4x across a 9x size\n"
        "sweep while the CPU model grows by ~300x — the scalability\n"
        "argument of the paper's conclusion."
    )


if __name__ == "__main__":
    main()
