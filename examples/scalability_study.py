"""Scalability study: Fig. 7(a) and Fig. 8 in one run.

Sweeps the initial array size as one campaign on the experiment
engine, reporting for each size the simulated FPGA analysis latency,
the calibrated CPU model, and the estimated resource utilisation — the
full scaling story of the paper's evaluation.  With ``--workers N``
the seeded trials fan out over a process pool (``--executor async``
switches to the asyncio executor with bounded in-flight trials); with
a cache directory re-runs are incremental; with ``--journal`` the run
records a resumable JSONL journal, and an interrupted study picks up
where it left off on the next invocation with the same flag.

Run with::

    python examples/scalability_study.py [--sizes 10 30 50 70 90]
        [--trials 3] [--seed 1] [--workers 4] [--executor async]
        [--cache-dir .repro-cache] [--journal scalability.jsonl]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.analysis.tables import format_table
from repro.baselines import model_cpu_time_us
from repro.campaign import (
    CampaignSpec,
    ExperimentCampaign,
    RunJournal,
    TrialCache,
    make_executor,
)
from repro.fpga import ResourceModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[10, 30, 50, 70, 90])
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--executor", choices=["serial", "process", "async"], default="process"
    )
    parser.add_argument("--cache-dir", type=str, default=None)
    parser.add_argument(
        "--journal",
        type=str,
        default=None,
        help="resumable run journal; rerun with the same path to resume",
    )
    args = parser.parse_args()

    spec = CampaignSpec(
        name="scalability-study",
        algorithms=("qrm",),
        sizes=tuple(args.sizes),
        fills=(0.5,),
        n_seeds=args.trials,
        master_seed=args.seed,
        fpga=True,
    )
    journal = None
    if args.journal:
        journal = (
            RunJournal.resume(args.journal)
            if Path(args.journal).exists()
            else RunJournal.fresh(args.journal)
        )
    campaign = ExperimentCampaign(
        spec,
        executor=make_executor(args.workers, kind=args.executor),
        cache=TrialCache(args.cache_dir) if args.cache_dir else None,
        journal=journal,
    ).run()
    if journal is not None:
        journal.close()

    resource_model = ResourceModel()
    latency_rows = []
    resource_rows = []
    for size in args.sizes:
        aggregate = campaign.aggregate_for(size=size)
        cpu_us = model_cpu_time_us("qrm", size)
        fpga_us = aggregate.mean("fpga_us")
        latency_rows.append(
            [
                size,
                aggregate.mean("fpga_cycles"),
                fpga_us,
                cpu_us,
                cpu_us / fpga_us,
                aggregate.mean("iterations"),
                aggregate.mean("target_fill"),
            ]
        )

        utilisation = resource_model.estimate(size).utilisation()
        resource_rows.append(
            [
                size,
                utilisation["LUT"],
                utilisation["FF"],
                utilisation["BRAM"],
            ]
        )

    print(
        format_table(
            [
                "size",
                "fpga_cycles",
                "fpga_us",
                "cpu_model_us",
                "speedup",
                "iters",
                "target fill",
            ],
            latency_rows,
            title="Analysis latency vs array size (Fig 7a)",
        )
    )
    print()
    print(
        format_table(
            ["size", "LUT %", "FF %", "BRAM %"],
            resource_rows,
            title=(f"Resource utilisation on {resource_model.device.name} (Fig 8)"),
        )
    )
    print()
    print(
        "Note how the FPGA latency grows by only ~4x across a 9x size\n"
        "sweep while the CPU model grows by ~300x — the scalability\n"
        "argument of the paper's conclusion."
    )


if __name__ == "__main__":
    main()
