"""Synthetic fluorescence imaging and atom detection (Fig. 1 front end).

The camera-facing half of the paper's workflow: a modelled sCMOS
exposure of the atom array (:mod:`repro.detection.imaging`) is reduced
to the binary occupancy matrix the rearrangement accelerator consumes
(:mod:`repro.detection.detect`), the same image -> occupancy step the
atom-detection FPGA literature (Winklmann et al., arXiv:2604.00816)
implements in hardware.  Conventions throughout: images are 2-D float
arrays of *electron counts* (row-major, one block of
``pixels_per_site`` x ``pixels_per_site`` pixels per lattice site),
occupancy grids are ``uint8`` row-major matrices, and all times are
microseconds.  The closed-loop pipeline (:mod:`repro.pipeline`) drives
this package as its ``camera`` and ``detect`` stages.
"""

from repro.detection.camera import CameraConfig, DEFAULT_CAMERA
from repro.detection.detect import (
    DetectionResult,
    detect_occupancy,
    detection_fidelity,
    site_signals,
)
from repro.detection.imaging import expected_image, render_image
from repro.detection.psf import convolve2d_same, gaussian_kernel
from repro.detection.threshold import (
    bimodal_threshold,
    otsu_threshold,
    refine_threshold_midpoint,
)

__all__ = [
    "CameraConfig",
    "DEFAULT_CAMERA",
    "DetectionResult",
    "bimodal_threshold",
    "convolve2d_same",
    "detect_occupancy",
    "detection_fidelity",
    "expected_image",
    "gaussian_kernel",
    "otsu_threshold",
    "refine_threshold_midpoint",
    "render_image",
    "site_signals",
]
