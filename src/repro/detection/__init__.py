"""Synthetic fluorescence imaging and atom detection (Fig. 1 front end)."""

from repro.detection.camera import CameraConfig, DEFAULT_CAMERA
from repro.detection.detect import (
    DetectionResult,
    detect_occupancy,
    detection_fidelity,
    site_signals,
)
from repro.detection.imaging import expected_image, render_image
from repro.detection.psf import convolve2d_same, gaussian_kernel
from repro.detection.threshold import (
    bimodal_threshold,
    otsu_threshold,
    refine_threshold_midpoint,
)

__all__ = [
    "CameraConfig",
    "DEFAULT_CAMERA",
    "DetectionResult",
    "bimodal_threshold",
    "convolve2d_same",
    "detect_occupancy",
    "detection_fidelity",
    "expected_image",
    "gaussian_kernel",
    "otsu_threshold",
    "refine_threshold_midpoint",
    "render_image",
    "site_signals",
]
