"""Gaussian point-spread function utilities.

The imaging model approximates the microscope's PSF as an isotropic
Gaussian; ``sigma`` and kernel radii are in *pixels* (the camera model
converts from physical units), and kernels are normalised to unit sum
so convolution conserves photon counts.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def gaussian_kernel(sigma: float, radius: int | None = None) -> np.ndarray:
    """Normalised 2-D Gaussian kernel.

    ``radius`` defaults to ``ceil(3 * sigma)``, which captures > 99.7 %
    of the energy; the kernel is renormalised to sum to exactly 1 so
    photon counts are conserved by the convolution.
    """
    if sigma <= 0:
        raise ConfigurationError(f"sigma must be positive, got {sigma}")
    if radius is None:
        radius = int(np.ceil(3.0 * sigma))
    if radius < 1:
        radius = 1
    coords = np.arange(-radius, radius + 1, dtype=float)
    one_d = np.exp(-0.5 * (coords / sigma) ** 2)
    kernel = np.outer(one_d, one_d)
    return kernel / kernel.sum()


def convolve2d_same(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Same-size 2-D convolution via FFT (kernel centred)."""
    kh, kw = kernel.shape
    ih, iw = image.shape
    padded = np.zeros((ih + kh - 1, iw + kw - 1), dtype=float)
    padded[:ih, :iw] = image
    spec = np.fft.rfft2(padded) * np.fft.rfft2(kernel, s=padded.shape)
    full = np.fft.irfft2(spec, s=padded.shape)
    r0 = (kh - 1) // 2
    c0 = (kw - 1) // 2
    return full[r0 : r0 + ih, c0 : c0 + iw]
