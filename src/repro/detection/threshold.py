"""Threshold selection for per-site photon sums.

Per-site integrated signals are bimodal (empty traps vs single atoms).
Otsu's method finds the split without assuming the class shapes; a
Gaussian-mixture refinement sharpens it when both modes are present.
All thresholds and signals are in summed electron counts per site ROI —
the same quantity an FPGA detector compares against its calibrated
per-site constant.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DetectionError


def otsu_threshold(values: np.ndarray, n_bins: int = 128) -> float:
    """Otsu's between-class-variance-maximising threshold."""
    data = np.asarray(values, dtype=float).ravel()
    if data.size == 0:
        raise DetectionError("cannot threshold an empty value set")
    lo, hi = float(data.min()), float(data.max())
    if hi <= lo:
        return lo  # degenerate: all values identical
    hist, edges = np.histogram(data, bins=n_bins, range=(lo, hi))
    centres = (edges[:-1] + edges[1:]) / 2.0
    weights = hist.astype(float) / hist.sum()

    omega = np.cumsum(weights)
    mu = np.cumsum(weights * centres)
    mu_total = mu[-1]
    with np.errstate(divide="ignore", invalid="ignore"):
        sigma_b = (mu_total * omega - mu) ** 2 / (omega * (1.0 - omega))
    sigma_b[~np.isfinite(sigma_b)] = 0.0
    best = int(np.argmax(sigma_b))
    return float(centres[best])


def refine_threshold_midpoint(values: np.ndarray, initial: float) -> float:
    """One fixed-point step: midpoint of the two class means.

    Converges toward the equal-distance threshold of a two-Gaussian
    mixture with similar widths; cheap and robust for the strongly
    separated atom/no-atom case.
    """
    data = np.asarray(values, dtype=float).ravel()
    low = data[data <= initial]
    high = data[data > initial]
    if low.size == 0 or high.size == 0:
        return initial
    return float((low.mean() + high.mean()) / 2.0)


def bimodal_threshold(values: np.ndarray, refine_steps: int = 3) -> float:
    """Otsu followed by midpoint refinement."""
    threshold = otsu_threshold(values)
    for _ in range(refine_steps):
        threshold = refine_threshold_midpoint(values, threshold)
    return threshold
