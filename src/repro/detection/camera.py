"""Camera model for synthetic fluorescence imaging.

The paper's workflow (Fig. 1) starts with a CMOS camera imaging the atom
array; the binary occupancy matrix fed to the rearrangement algorithm
comes from an atom-detection step on that image.  The paper itself
evaluates on random matrices, but we provide the full imaging path so
the end-to-end workflow is executable.  Defaults are typical for sCMOS
fluorescence imaging of single atoms (hundreds of detected photons per
atom against a weak background).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CameraConfig:
    """Imaging parameters.

    Attributes
    ----------
    pixels_per_site:
        Square pixels imaged per lattice site (site pitch in pixels).
    photons_per_atom:
        Mean fluorescence photons collected from one atom per exposure.
    psf_sigma_px:
        Gaussian point-spread-function sigma, in pixels.
    background_per_px:
        Mean background photons per pixel per exposure (scattered light,
        dark counts).
    quantum_efficiency:
        Photon-to-electron conversion efficiency.
    read_noise_e:
        RMS Gaussian read noise, electrons per pixel.
    """

    pixels_per_site: int = 4
    photons_per_atom: float = 400.0
    psf_sigma_px: float = 1.1
    background_per_px: float = 4.0
    quantum_efficiency: float = 0.8
    read_noise_e: float = 2.0

    def __post_init__(self) -> None:
        if self.pixels_per_site < 1:
            raise ConfigurationError("pixels_per_site must be >= 1")
        if self.photons_per_atom <= 0:
            raise ConfigurationError("photons_per_atom must be positive")
        if self.psf_sigma_px <= 0:
            raise ConfigurationError("psf_sigma_px must be positive")
        if self.background_per_px < 0:
            raise ConfigurationError("background_per_px must be >= 0")
        if not 0 < self.quantum_efficiency <= 1:
            raise ConfigurationError("quantum_efficiency must be in (0, 1]")
        if self.read_noise_e < 0:
            raise ConfigurationError("read_noise_e must be >= 0")

    def image_shape(self, n_rows: int, n_cols: int) -> tuple[int, int]:
        return (n_rows * self.pixels_per_site, n_cols * self.pixels_per_site)

    @property
    def mean_signal_e(self) -> float:
        """Expected signal electrons from one atom (whole PSF)."""
        return self.photons_per_atom * self.quantum_efficiency


DEFAULT_CAMERA = CameraConfig()
