"""Atom detection: image -> binary occupancy matrix.

Each trap site owns a square pixel ROI; the summed electron counts per
ROI form a bimodal distribution split by a data-driven threshold.  When
the image is effectively unimodal (all-empty or all-full arrays), the
expected single-atom signal disambiguates which mode we are seeing.

This is the software counterpart of the streaming per-site
threshold detectors in the FPGA literature (Winklmann et al.,
arXiv:2604.00816, Sec. III): same ROI-sum-and-threshold structure, but
with the threshold fitted per image rather than calibrated offline.
Inputs are electron-count images from :mod:`repro.detection.imaging`;
the output :class:`DetectionResult` carries the occupancy
:class:`~repro.lattice.array.AtomArray`, the threshold (electrons), and
the empty/occupied separation SNR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.camera import CameraConfig, DEFAULT_CAMERA
from repro.detection.threshold import bimodal_threshold
from repro.errors import DetectionError
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry


@dataclass(frozen=True)
class DetectionResult:
    """Occupancy decision plus diagnostics."""

    array: AtomArray
    threshold: float
    site_signals: np.ndarray
    separation_snr: float

    @property
    def n_atoms(self) -> int:
        return self.array.n_atoms


def site_signals(
    image: np.ndarray, geometry: ArrayGeometry, camera: CameraConfig
) -> np.ndarray:
    """Integrated electron counts per trap-site ROI."""
    pps = camera.pixels_per_site
    expected = camera.image_shape(geometry.height, geometry.width)
    if image.shape != expected:
        raise DetectionError(
            f"image shape {image.shape} does not match geometry/camera "
            f"expectation {expected}"
        )
    view = image.reshape(geometry.height, pps, geometry.width, pps)
    return view.sum(axis=(1, 3))


def detect_occupancy(
    image: np.ndarray,
    geometry: ArrayGeometry,
    camera: CameraConfig = DEFAULT_CAMERA,
) -> DetectionResult:
    """Detect atoms in one exposure."""
    signals = site_signals(image, geometry, camera)
    flat = signals.ravel()

    threshold = bimodal_threshold(flat)
    # Guard against unimodal degeneracy: a valid atom/no-atom split lies
    # well above the pure-background level and below background + signal.
    pps2 = camera.pixels_per_site**2
    background = camera.background_per_px * camera.quantum_efficiency * pps2
    signal = camera.mean_signal_e
    lo_guard = background + 0.2 * signal
    hi_guard = background + 0.8 * signal
    if not lo_guard <= threshold <= hi_guard:
        threshold = background + 0.5 * signal

    grid = signals > threshold
    occupied = flat[flat > threshold]
    empty = flat[flat <= threshold]
    if occupied.size and empty.size:
        spread = np.sqrt(occupied.var() + empty.var())
        separation = (
            float((occupied.mean() - empty.mean()) / spread)
            if spread > 0
            else float("inf")
        )
    else:
        separation = float("inf")

    return DetectionResult(
        array=AtomArray(geometry, grid),
        threshold=float(threshold),
        site_signals=signals,
        separation_snr=separation,
    )


def detection_fidelity(truth: AtomArray, detected: AtomArray) -> float:
    """Fraction of sites classified correctly."""
    if truth.geometry != detected.geometry:
        raise DetectionError("geometries differ between truth and detection")
    agree = int((truth.grid == detected.grid).sum())
    return agree / truth.geometry.n_sites
