"""Synthetic fluorescence image generation.

Atoms are point emitters at site centres; their light spreads with the
camera PSF, photon arrival is Poisson, and the sensor adds a uniform
Poisson background plus Gaussian read noise.  The output is an
electron-count image on which :mod:`repro.detection.detect` runs.

Units: photon/electron counts per pixel (floats after quantum
efficiency and read noise), PSF width in pixels, geometry in lattice
sites.  Randomness comes only from the caller-supplied generator, so
the closed-loop pipeline can pre-spawn one camera stream per frame and
stay bit-reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.detection.camera import CameraConfig, DEFAULT_CAMERA
from repro.detection.psf import convolve2d_same, gaussian_kernel
from repro.lattice.array import AtomArray
from repro.lattice.loading import as_rng


def expected_image(
    array: AtomArray, camera: CameraConfig = DEFAULT_CAMERA
) -> np.ndarray:
    """Noise-free expected electron counts per pixel."""
    pps = camera.pixels_per_site
    shape = camera.image_shape(array.geometry.height, array.geometry.width)
    impulses = np.zeros(shape, dtype=float)
    centre = pps // 2
    rows, cols = np.nonzero(array.grid)
    impulses[rows * pps + centre, cols * pps + centre] = (camera.photons_per_atom)
    kernel = gaussian_kernel(camera.psf_sigma_px)
    photons = convolve2d_same(impulses, kernel) + camera.background_per_px
    return photons * camera.quantum_efficiency


def render_image(
    array: AtomArray,
    camera: CameraConfig = DEFAULT_CAMERA,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """One noisy exposure of ``array`` (electron counts per pixel)."""
    gen = as_rng(rng)
    mean = expected_image(array, camera)
    image = gen.poisson(np.clip(mean, 0.0, None)).astype(float)
    if camera.read_noise_e > 0:
        image += gen.normal(0.0, camera.read_noise_e, size=image.shape)
    return image
