"""Cross-cutting configuration objects for the QRM reproduction.

Subsystem-specific configuration (camera, AWG, FPGA device budgets...)
lives next to the subsystem; this module holds the parameters of the
rearrangement *algorithm* itself, which are shared by the pure-Python
scheduler (:mod:`repro.core`) and the FPGA accelerator model
(:mod:`repro.fpga`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


#: Sentinel ``scan_limit`` value selecting mask-derived per-line bounds.
MASK_SCAN_LIMIT = "mask"


class ScanMode(enum.Enum):
    """How the column pass of an iteration sees the matrix.

    ``PIPELINED`` is the paper-faithful mode: the dataflow hardware streams
    the row-pass transpose into the column pass, so the column pass
    analyses the matrix *before* the row moves of the same iteration were
    applied (Fig. 6 of the paper shows the column buffers holding the
    original, pre-shift bits).  Stale commands are skipped at execution
    time when their hole has already been filled, and the outer iteration
    loop cleans up the residue — this is why the paper needs about four
    iterations.

    ``FRESH`` is the idealised software mode: the column pass reads the
    matrix after the row moves were applied, so a single iteration reaches
    the compaction fixpoint.  Used as a baseline in the ablation study.
    """

    PIPELINED = "pipelined"
    FRESH = "fresh"


@dataclass(frozen=True)
class QrmParameters:
    """Tunable parameters of the quadrant-based rearrangement method.

    Attributes
    ----------
    n_iterations:
        Maximum number of row-pass + column-pass rounds.  The paper uses
        four; the scheduler stops early once a round emits no commands.
    scan_mode:
        Staleness model for the column pass, see :class:`ScanMode`.
    merge_mirror_quadrants:
        When true (paper behaviour), commands of mirror quadrants that
        share a scan ordinal and hole position are merged into one
        parallel move (NW+SW for west-side shifts, NE+SE for east-side
        shifts, and the analogous north/south pairs for the column phase).
    enable_repair:
        Run the optional repair stage (individual atom moves) after the
        quadrant compaction to fix residual target defects.  Off by
        default: the paper's QRM does not include it.
    max_repair_moves:
        Safety bound on the number of individual repair moves.
    scan_limit:
        The ``s_en`` manual-control bound (paper Sec. IV-C): scan stages
        at quadrant-local positions >= this value never issue shift
        commands, preventing unnecessary shifts far from the centre.
        ``None`` (default) scans the full quadrant width.  The string
        ``"mask"`` derives *per-line* bounds from the geometry's target
        mask instead (each line scans just deep enough to cover its own
        mask sites — see
        :meth:`~repro.lattice.geometry.ArrayGeometry.quadrant_mask_limits`).
    """

    n_iterations: int = 4
    scan_mode: ScanMode = ScanMode.PIPELINED
    merge_mirror_quadrants: bool = True
    enable_repair: bool = False
    max_repair_moves: int = 4096
    scan_limit: int | str | None = None

    def __post_init__(self) -> None:
        if self.n_iterations < 1:
            raise ConfigurationError(
                f"n_iterations must be >= 1, got {self.n_iterations}"
            )
        if self.max_repair_moves < 0:
            raise ConfigurationError(
                f"max_repair_moves must be >= 0, got {self.max_repair_moves}"
            )
        if isinstance(self.scan_limit, str):
            if self.scan_limit != MASK_SCAN_LIMIT:
                raise ConfigurationError(
                    f"scan_limit must be an int >= 1, None, or "
                    f"{MASK_SCAN_LIMIT!r}, got {self.scan_limit!r}"
                )
        elif self.scan_limit is not None and self.scan_limit < 1:
            raise ConfigurationError(
                f"scan_limit must be >= 1 or None, got {self.scan_limit}"
            )


DEFAULT_QRM_PARAMETERS = QrmParameters()
