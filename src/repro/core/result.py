"""Result containers shared by every rearrangement algorithm."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.aod.schedule import MoveSchedule
from repro.lattice.array import AtomArray
from repro.lattice.metrics import defect_count, target_fill_fraction


@dataclass(frozen=True)
class IterationStats:
    """Per-iteration accounting of a QRM run."""

    index: int
    n_row_commands: int
    n_col_commands: int
    n_row_batches: int
    n_col_batches: int
    n_skipped_stale: int
    n_skipped_empty: int

    @property
    def n_commands(self) -> int:
        return self.n_row_commands + self.n_col_commands

    @property
    def n_batches(self) -> int:
        return self.n_row_batches + self.n_col_batches


@dataclass
class RearrangementResult:
    """Everything an algorithm run produced.

    ``analysis_ops`` is an abstract operation count (scanned bits plus
    emitted commands) used by the calibrated CPU cost model;
    ``wall_time_s`` is the measured Python wall-clock of the analysis.
    """

    algorithm: str
    initial: AtomArray
    final: AtomArray
    schedule: MoveSchedule
    iterations: list[IterationStats] = field(default_factory=list)
    converged: bool = True
    analysis_ops: int = 0
    wall_time_s: float = 0.0
    repair_moves: int = 0
    unresolved_defects: int = 0
    pass_outcomes: list = field(default_factory=list, repr=False)

    @property
    def iterations_used(self) -> int:
        return len(self.iterations)

    @property
    def n_moves(self) -> int:
        return len(self.schedule)

    @property
    def target_fill_fraction(self) -> float:
        return target_fill_fraction(self.final)

    @property
    def defects(self) -> int:
        return defect_count(self.final)

    @property
    def defect_free(self) -> bool:
        return self.defects == 0

    def summary(self) -> str:
        return (
            f"{self.algorithm}: {self.n_moves} moves in "
            f"{self.iterations_used or 1} iteration(s), target fill "
            f"{self.target_fill_fraction:.1%} ({self.defects} defects), "
            f"analysis {self.wall_time_s * 1e6:.1f} us"
        )


def timed_schedule(
    analyse: Callable[[], RearrangementResult],
) -> RearrangementResult:
    """Run one scheduler analysis and stamp its wall-clock on the result.

    Every registered algorithm measures ``wall_time_s`` through this one
    helper, so the field always covers the same span: the full analysis,
    from the first scan to the completely built result (post-passes such
    as QRM's repair stage included).  Schedulers previously hand-rolled
    their own ``perf_counter`` scopes, which drifted subtly — QRM stamped
    the field post-hoc after repair while the baselines stamped it inside
    result construction.
    """
    start = time.perf_counter()
    result = analyse()
    result.wall_time_s = time.perf_counter() - start
    return result
