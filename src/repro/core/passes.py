"""Building and executing the per-pass move batches of QRM.

A *pass* turns the scan results of all four quadrants into an ordered
list of :class:`~repro.aod.move.ParallelMove` batches and executes them
on the live grid as it goes (the scheduler must track the true occupancy
to emit a schedule that replays cleanly).

Batching implements the paper's Row Combination Unit (Sec. IV-C):

* commands are drained round by round — round ``k`` holds every line's
  k-th pending command, mirroring the statically-known drain order of the
  four shift-command FIFOs;
* inside a round, commands sharing the *current* hole position are merged
  into one parallel move per direction, which merges the mirror quadrants
  exactly as the paper describes (NW+SW for the west-side shift, NE+SE
  for the east-side shift, and the N/S pairs in the column phase);
* a command whose hole was filled in the meantime (stale column commands
  in the pipelined scan mode) is skipped, as is a command whose span no
  longer holds any atom ("empty shifts are removed").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.aod.executor import apply_parallel_move
from repro.aod.move import LineShift, ParallelMove
from repro.core.scan import LineScanResult, scan_axis
from repro.lattice.array import AtomArray
from repro.lattice.geometry import Direction, Quadrant, QuadrantFrame


class Phase(enum.Enum):
    """Which axis a pass compresses."""

    ROW = "row"
    COLUMN = "column"


#: Deterministic quadrant order used everywhere.
QUADRANT_ORDER = (Quadrant.NW, Quadrant.NE, Quadrant.SW, Quadrant.SE)


@dataclass
class PassOutcome:
    """Statistics and moves produced by one pass.

    ``line_commands`` holds, per quadrant, the command count of every
    scanned line in scan order (zeros included) — the FPGA cycle model
    uses it to size the recorder/combiner token streams.
    """

    phase: Phase
    moves: list[ParallelMove] = field(default_factory=list)
    n_commands: int = 0
    n_executed: int = 0
    n_skipped_stale: int = 0
    n_skipped_empty: int = 0
    n_scanned_bits: int = 0
    line_commands: dict[Quadrant, list[int]] = field(default_factory=dict)

    @property
    def n_batches(self) -> int:
        return len(self.moves)

    def lines_with_commands(self, quadrant: Quadrant) -> int:
        return sum(1 for n in self.line_commands.get(quadrant, []) if n)


@dataclass
class _LineState:
    """Drain state of one line's pending command list."""

    frame: QuadrantFrame
    line: int
    holes: tuple[int, ...]
    n_positions: int
    next_index: int = 0
    executed: int = 0

    @property
    def exhausted(self) -> bool:
        return self.next_index >= len(self.holes)

    @property
    def current_hole(self) -> int:
        """Scanned hole adjusted for the shifts already executed here."""
        return self.holes[self.next_index] - self.executed


def _span_to_shift(
    frame: QuadrantFrame,
    phase: Phase,
    line: int,
    cur_hole: int,
    executed: int,
    n_positions: int,
) -> LineShift:
    """Full-array line shift for one command in local coordinates.

    The moved span covers every local position outboard of the current
    hole, excluding the top ``executed`` positions which earlier shifts
    of this line are guaranteed to have vacated.
    """
    local_lo = cur_hole + 1
    local_hi = n_positions - executed  # exclusive
    if phase is Phase.ROW:
        full_line = frame.to_full(line, 0)[0]
        a = frame.to_full(line, local_lo)[1]
        b = frame.to_full(line, local_hi - 1)[1]
        direction = frame.horizontal_inward
    else:
        full_line = frame.to_full(0, line)[1]
        a = frame.to_full(local_lo, line)[0]
        b = frame.to_full(local_hi - 1, line)[0]
        direction = frame.vertical_inward
    span_start, span_stop = (a, b + 1) if a <= b else (b, a + 1)
    return LineShift(
        direction=direction,
        line=full_line,
        span_start=span_start,
        span_stop=span_stop,
        steps=1,
    )


def _hole_site(
    frame: QuadrantFrame, phase: Phase, line: int, cur_hole: int
) -> tuple[int, int]:
    """Full-array site of a command's current hole."""
    if phase is Phase.ROW:
        return frame.to_full(line, cur_hole)
    return frame.to_full(cur_hole, line)


def _span_has_atom(
    grid: np.ndarray,
    frame: QuadrantFrame,
    phase: Phase,
    line: int,
    cur_hole: int,
    executed: int,
    n_positions: int,
) -> bool:
    """Does the command's span currently hold at least one atom?"""
    local_lo = cur_hole + 1
    local_hi = n_positions - executed
    if local_lo >= local_hi:
        return False
    if phase is Phase.ROW:
        r = frame.to_full(line, 0)[0]
        c1 = frame.to_full(line, local_lo)[1]
        c2 = frame.to_full(line, local_hi - 1)[1]
        lo, hi = (c1, c2) if c1 <= c2 else (c2, c1)
        return bool(grid[r, lo : hi + 1].any())
    c = frame.to_full(0, line)[1]
    r1 = frame.to_full(local_lo, line)[0]
    r2 = frame.to_full(local_hi - 1, line)[0]
    lo, hi = (r1, r2) if r1 <= r2 else (r2, r1)
    return bool(grid[lo : hi + 1, c].any())


def _direction_order(phase: Phase) -> tuple[Direction, Direction]:
    if phase is Phase.ROW:
        return (Direction.EAST, Direction.WEST)
    return (Direction.SOUTH, Direction.NORTH)


def run_pass(
    array: AtomArray,
    frames: dict[Quadrant, QuadrantFrame],
    phase: Phase,
    scan_source: np.ndarray,
    merge_mirror: bool = True,
    guard: bool = False,
    scan_limit: int | None = None,
) -> PassOutcome:
    """Scan ``scan_source``, batch the commands, execute them on ``array``.

    ``scan_source`` is the grid the scan reads — the live grid for a
    fresh pass, or the iteration-start snapshot for the paper's pipelined
    column pass.  ``guard=True`` enables the stale-command checks (hole
    still empty, span still populated) against the live grid.
    ``scan_limit`` forwards the ``s_en`` bound to the scans.
    """
    outcome = PassOutcome(phase=phase)
    axis = 0 if phase is Phase.ROW else 1

    states: list[_LineState] = []
    for quadrant in QUADRANT_ORDER:
        frame = frames[quadrant]
        local = frame.extract(scan_source)
        scans: list[LineScanResult] = scan_axis(local, axis, limit=scan_limit)
        n_positions = local.shape[1] if phase is Phase.ROW else local.shape[0]
        outcome.line_commands[quadrant] = [scan.n_commands for scan in scans]
        for scan in scans:
            outcome.n_scanned_bits += n_positions
            outcome.n_commands += scan.n_commands
            if scan.n_commands:
                states.append(
                    _LineState(
                        frame=frame,
                        line=scan.line,
                        holes=scan.hole_positions,
                        n_positions=n_positions,
                    )
                )

    grid = array.grid
    round_index = 0
    while True:
        # Candidates for this round: every line's next pending command.
        groups: dict[tuple, list[tuple[_LineState, int]]] = {}
        pending = False
        for state in states:
            if state.exhausted:
                continue
            pending = True
            cur = state.current_hole
            if guard:
                hole_site = _hole_site(state.frame, phase, state.line, cur)
                if grid[hole_site]:
                    # A row move already filled this hole: stale command.
                    state.next_index += 1
                    outcome.n_skipped_stale += 1
                    continue
                if not _span_has_atom(
                    grid, state.frame, phase, state.line, cur,
                    state.executed, state.n_positions,
                ):
                    state.next_index += 1
                    outcome.n_skipped_empty += 1
                    continue
            direction = (
                state.frame.horizontal_inward
                if phase is Phase.ROW
                else state.frame.vertical_inward
            )
            if merge_mirror:
                key = (cur, direction)
            else:
                key = (cur, direction, state.frame.quadrant)
            groups.setdefault(key, []).append((state, cur))

        if not pending:
            break
        if groups:
            for direction in _direction_order(phase):
                for key in sorted(
                    (k for k in groups if k[1] is direction),
                    key=lambda k: (k[0], k[2].value if len(k) > 2 else ""),
                ):
                    members = groups[key]
                    shifts = []
                    for state, cur in members:
                        shifts.append(
                            _span_to_shift(
                                state.frame, phase, state.line, cur,
                                state.executed, state.n_positions,
                            )
                        )
                        state.next_index += 1
                        state.executed += 1
                    shifts.sort(key=lambda s: s.line)
                    tag = f"{phase.value}-k{round_index}-h{key[0]}"
                    if not merge_mirror:
                        tag += f"-{key[2].value}"
                    move = ParallelMove.of(shifts, tag=tag)
                    apply_parallel_move(grid, move)
                    outcome.moves.append(move)
                    outcome.n_executed += len(shifts)
        round_index += 1
        if round_index > array.geometry.width + array.geometry.height:
            # Safety net: each line has at most n_positions commands.
            raise RuntimeError("pass failed to drain its command lists")

    return outcome
