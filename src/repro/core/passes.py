"""Building and executing the per-pass move batches of QRM.

A *pass* turns the scan results of all four quadrants into an ordered
list of :class:`~repro.aod.move.ParallelMove` batches and executes them
on the live grid as it goes (the scheduler must track the true occupancy
to emit a schedule that replays cleanly).

Batching implements the paper's Row Combination Unit (Sec. IV-C):

* commands are drained round by round — round ``k`` holds every line's
  k-th pending command, mirroring the statically-known drain order of the
  four shift-command FIFOs;
* inside a round, commands sharing the *current* hole position are merged
  into one parallel move per direction, which merges the mirror quadrants
  exactly as the paper describes (NW+SW for the west-side shift, NE+SE
  for the east-side shift, and the N/S pairs in the column phase);
* a command whose hole was filled in the meantime (stale column commands
  in the pipelined scan mode) is skipped, as is a command whose span no
  longer holds any atom ("empty shifts are removed").

Two implementations share these semantics: :func:`run_pass_reference`
is the per-line, per-command state machine kept as the behavioural
oracle, and :func:`run_pass` is the production path, which drains whole
rounds as NumPy arrays (one batched :func:`~repro.core.scan.scan_quadrant`
per quadrant, affine span arithmetic, group-by via ``lexsort``).  The
two are property-tested to emit bit-identical schedules.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.aod.executor import apply_parallel_move
from repro.aod.move import LineShift, ParallelMove
from repro.core.scan import (
    LineScanResult,
    scan_axis,
    scan_quadrant,
    scan_quadrant_batch,
)
from repro.lattice.array import AtomArray
from repro.lattice.geometry import Direction, Quadrant, QuadrantFrame


class Phase(enum.Enum):
    """Which axis a pass compresses."""

    ROW = "row"
    COLUMN = "column"


#: Deterministic quadrant order used everywhere.
QUADRANT_ORDER = (Quadrant.NW, Quadrant.NE, Quadrant.SW, Quadrant.SE)

#: Tie-break rank of quadrants inside one drain round when mirror
#: merging is off: alphabetical by quadrant code, the order the seed
#: scheduler emitted and every schedule consumer now depends on.
QUADRANT_BATCH_RANK = {
    Quadrant.NE: 0,
    Quadrant.NW: 1,
    Quadrant.SE: 2,
    Quadrant.SW: 3,
}

_RANK_TO_QUADRANT = sorted(QUADRANT_BATCH_RANK, key=QUADRANT_BATCH_RANK.get)


def batch_order_key(hole: int, quadrant: Quadrant | None = None) -> tuple[int, int]:
    """Stable ordering of same-direction batches within one drain round.

    Batches flush in ascending current-hole order; with per-quadrant
    batching (mirror merging off) the tie between same-side quadrants
    sharing a hole is broken by :data:`QUADRANT_BATCH_RANK`.  This is
    the single definition of the schedule order — both pass
    implementations and the regression tests use it.
    """
    rank = -1 if quadrant is None else QUADRANT_BATCH_RANK[quadrant]
    return (hole, rank)


@dataclass
class PassOutcome:
    """Statistics and moves produced by one pass.

    ``line_commands`` holds, per quadrant, the command count of every
    scanned line in scan order (zeros included) — the FPGA cycle model
    uses it to size the recorder/combiner token streams.
    """

    phase: Phase
    moves: list[ParallelMove] = field(default_factory=list)
    n_commands: int = 0
    n_executed: int = 0
    n_skipped_stale: int = 0
    n_skipped_empty: int = 0
    n_scanned_bits: int = 0
    line_commands: dict[Quadrant, list[int]] = field(default_factory=dict)

    @property
    def n_batches(self) -> int:
        return len(self.moves)

    def lines_with_commands(self, quadrant: Quadrant) -> int:
        return sum(1 for n in self.line_commands.get(quadrant, []) if n)


@dataclass
class _LineState:
    """Drain state of one line's pending command list."""

    frame: QuadrantFrame
    line: int
    holes: tuple[int, ...]
    n_positions: int
    next_index: int = 0
    executed: int = 0

    @property
    def exhausted(self) -> bool:
        return self.next_index >= len(self.holes)

    @property
    def current_hole(self) -> int:
        """Scanned hole adjusted for the shifts already executed here."""
        return self.holes[self.next_index] - self.executed


def _span_to_shift(
    frame: QuadrantFrame,
    phase: Phase,
    line: int,
    cur_hole: int,
    executed: int,
    n_positions: int,
) -> LineShift:
    """Full-array line shift for one command in local coordinates.

    The moved span covers every local position outboard of the current
    hole, excluding the top ``executed`` positions which earlier shifts
    of this line are guaranteed to have vacated.
    """
    local_lo = cur_hole + 1
    local_hi = n_positions - executed  # exclusive
    row_base, row_sign, col_base, col_sign = frame.affine
    if phase is Phase.ROW:
        full_line = row_base + row_sign * line
        a = col_base + col_sign * local_lo
        b = col_base + col_sign * (local_hi - 1)
        direction = frame.horizontal_inward
    else:
        full_line = col_base + col_sign * line
        a = row_base + row_sign * local_lo
        b = row_base + row_sign * (local_hi - 1)
        direction = frame.vertical_inward
    span_start, span_stop = (a, b + 1) if a <= b else (b, a + 1)
    return LineShift(
        direction=direction,
        line=full_line,
        span_start=span_start,
        span_stop=span_stop,
        steps=1,
    )


def _hole_site(
    frame: QuadrantFrame, phase: Phase, line: int, cur_hole: int
) -> tuple[int, int]:
    """Full-array site of a command's current hole."""
    row_base, row_sign, col_base, col_sign = frame.affine
    if phase is Phase.ROW:
        return row_base + row_sign * line, col_base + col_sign * cur_hole
    return row_base + row_sign * cur_hole, col_base + col_sign * line


def _span_has_atom(
    grid: np.ndarray,
    frame: QuadrantFrame,
    phase: Phase,
    line: int,
    cur_hole: int,
    executed: int,
    n_positions: int,
) -> bool:
    """Does the command's span currently hold at least one atom?"""
    local_lo = cur_hole + 1
    local_hi = n_positions - executed
    if local_lo >= local_hi:
        return False
    row_base, row_sign, col_base, col_sign = frame.affine
    if phase is Phase.ROW:
        r = row_base + row_sign * line
        c1 = col_base + col_sign * local_lo
        c2 = col_base + col_sign * (local_hi - 1)
        lo, hi = (c1, c2) if c1 <= c2 else (c2, c1)
        return bool(grid[r, lo : hi + 1].any())
    c = col_base + col_sign * line
    r1 = row_base + row_sign * local_lo
    r2 = row_base + row_sign * (local_hi - 1)
    lo, hi = (r1, r2) if r1 <= r2 else (r2, r1)
    return bool(grid[lo : hi + 1, c].any())


def _direction_order(phase: Phase) -> tuple[Direction, Direction]:
    if phase is Phase.ROW:
        return (Direction.EAST, Direction.WEST)
    return (Direction.SOUTH, Direction.NORTH)


def _quadrant_limit(scan_limit, quadrant):
    """Resolve the ``s_en`` bound for one quadrant's scan.

    ``scan_limit`` is a scalar (or None) applied to every quadrant, or a
    ``{Quadrant: per-line bounds}`` mapping — the mask-derived per-line
    limits of :meth:`ArrayGeometry.quadrant_mask_limits`.
    """
    if isinstance(scan_limit, dict):
        return scan_limit[quadrant]
    return scan_limit


def run_pass_reference(
    array: AtomArray,
    frames: dict[Quadrant, QuadrantFrame],
    phase: Phase,
    scan_source: np.ndarray,
    merge_mirror: bool = True,
    guard: bool = False,
    scan_limit=None,
) -> PassOutcome:
    """Per-line, per-command reference implementation of one pass.

    Semantically the seed scheduler: one :class:`_LineState` per line,
    drained command by command.  Kept as the oracle the vectorised
    :func:`run_pass` is property-tested against (bit-identical moves,
    tags, order, and statistics), and as the readable statement of the
    drain semantics.
    """
    outcome = PassOutcome(phase=phase)
    axis = 0 if phase is Phase.ROW else 1

    states: list[_LineState] = []
    for quadrant in QUADRANT_ORDER:
        frame = frames[quadrant]
        local = frame.extract(scan_source)
        limit = _quadrant_limit(scan_limit, quadrant)
        scans: list[LineScanResult] = scan_axis(local, axis, limit=limit)
        n_positions = local.shape[1] if phase is Phase.ROW else local.shape[0]
        outcome.line_commands[quadrant] = [scan.n_commands for scan in scans]
        for scan in scans:
            outcome.n_scanned_bits += n_positions
            outcome.n_commands += scan.n_commands
            if scan.n_commands:
                states.append(
                    _LineState(
                        frame=frame,
                        line=scan.line,
                        holes=scan.hole_positions,
                        n_positions=n_positions,
                    )
                )

    grid = array.grid
    round_index = 0
    while True:
        # Candidates for this round: every line's next pending command.
        groups: dict[tuple, list[tuple[_LineState, int]]] = {}
        pending = False
        for state in states:
            if state.exhausted:
                continue
            pending = True
            cur = state.current_hole
            if guard:
                hole_site = _hole_site(state.frame, phase, state.line, cur)
                if grid[hole_site]:
                    # A row move already filled this hole: stale command.
                    state.next_index += 1
                    outcome.n_skipped_stale += 1
                    continue
                if not _span_has_atom(
                    grid,
                    state.frame,
                    phase,
                    state.line,
                    cur,
                    state.executed,
                    state.n_positions,
                ):
                    state.next_index += 1
                    outcome.n_skipped_empty += 1
                    continue
            direction = (
                state.frame.horizontal_inward
                if phase is Phase.ROW
                else state.frame.vertical_inward
            )
            quadrant = None if merge_mirror else state.frame.quadrant
            key = (cur, direction, quadrant)
            groups.setdefault(key, []).append((state, cur))

        if not pending:
            break
        if groups:
            for direction in _direction_order(phase):
                for key in sorted(
                    (k for k in groups if k[1] is direction),
                    key=lambda k: batch_order_key(k[0], k[2]),
                ):
                    members = groups[key]
                    shifts = []
                    for state, cur in members:
                        shifts.append(
                            _span_to_shift(
                                state.frame,
                                phase,
                                state.line,
                                cur,
                                state.executed,
                                state.n_positions,
                            )
                        )
                        state.next_index += 1
                        state.executed += 1
                    shifts.sort(key=lambda s: s.line)
                    tag = f"{phase.value}-k{round_index}-h{key[0]}"
                    if key[2] is not None:
                        tag += f"-{key[2].value}"
                    move = ParallelMove.of(shifts, tag=tag)
                    apply_parallel_move(grid, move)
                    outcome.moves.append(move)
                    outcome.n_executed += len(shifts)
        round_index += 1
        if round_index > array.geometry.width + array.geometry.height:
            # Safety net: each line has at most n_positions commands.
            raise RuntimeError("pass failed to drain its command lists")

    return outcome


# ---------------------------------------------------------------------------
# Vectorised pass
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class _CommandTable:
    """All pending commands of one pass as flat per-state NumPy arrays.

    One *state* is one line with at least one command.  Command ``k`` of
    every state drains in round ``k``; ``holes_flat`` holds each state's
    scanned hole positions contiguously in state order, so the flat index
    of command ``k`` of state ``s`` is ``first_of[s] + k`` — with states
    in scan order, simply ``np.repeat``/``arange`` arithmetic.  (State
    order never reaches the schedule: batches are explicitly sorted by
    round/direction/hole/line at emission.)
    """

    n_holes: np.ndarray  # commands per state
    holes_flat: np.ndarray  # concatenated scanned hole positions
    line_full: np.ndarray  # full-array line index per state
    span_base: np.ndarray  # affine base on the span axis, per state
    span_sign: np.ndarray  # affine sign on the span axis, per state
    n_positions: np.ndarray  # quadrant extent along the span axis
    dir_rank: np.ndarray  # 0/1 index into _direction_order(phase)
    quad_rank: np.ndarray  # QUADRANT_BATCH_RANK of the state's quadrant

    @property
    def n_states(self) -> int:
        return int(self.n_holes.size)


def _build_command_table(
    outcome: PassOutcome,
    frames: dict[Quadrant, QuadrantFrame],
    phase: Phase,
    scan_source: np.ndarray,
    scan_limit,
) -> tuple[_CommandTable | None, list]:
    """Scan all quadrants and flatten the per-line commands into arrays.

    Also returns the per-quadrant ``(frame, QuadrantScan)`` pairs so the
    unguarded drain can apply each quadrant's net compaction directly.
    """
    axis = 0 if phase is Phase.ROW else 1
    first_direction = _direction_order(phase)[0]
    chunks: list[tuple] = []
    scans: list = []
    for quadrant in QUADRANT_ORDER:
        frame = frames[quadrant]
        limit = _quadrant_limit(scan_limit, quadrant)
        scan = scan_quadrant(frame.extract(scan_source), axis, limit=limit)
        scans.append((frame, scan))
        outcome.line_commands[quadrant] = scan.line_counts.tolist()
        outcome.n_scanned_bits += scan.n_scanned_bits
        outcome.n_commands += scan.n_commands
        if not scan.n_commands:
            continue
        lines = np.nonzero(scan.line_counts)[0]
        row_base, row_sign, col_base, col_sign = frame.affine
        if phase is Phase.ROW:
            line_full = row_base + row_sign * lines
            span_base, span_sign = col_base, col_sign
            inward = frame.horizontal_inward
        else:
            line_full = col_base + col_sign * lines
            span_base, span_sign = row_base, row_sign
            inward = frame.vertical_inward
        n_states = lines.size
        chunks.append(
            (
                scan.line_counts[lines],
                scan.hole_positions,
                line_full,
                np.full(n_states, span_base),
                np.full(n_states, span_sign),
                np.full(n_states, scan.n_positions),
                np.full(n_states, 0 if inward is first_direction else 1),
                np.full(n_states, QUADRANT_BATCH_RANK[quadrant]),
            )
        )
    if not chunks:
        return None, scans
    table = _CommandTable(
        n_holes=np.concatenate([c[0] for c in chunks]),
        holes_flat=np.concatenate([c[1] for c in chunks]),
        line_full=np.concatenate([c[2] for c in chunks]),
        span_base=np.concatenate([c[3] for c in chunks]),
        span_sign=np.concatenate([c[4] for c in chunks]),
        n_positions=np.concatenate([c[5] for c in chunks]),
        dir_rank=np.concatenate([c[6] for c in chunks]),
        quad_rank=np.concatenate([c[7] for c in chunks]),
    )
    return table, scans


def _apply_net_compaction(grid: np.ndarray, frame, scan) -> None:
    """Write one quadrant's post-pass occupancy directly into ``grid``.

    An unguarded pass executes *every* scanned command of a line, so its
    net effect is closed-form: each atom slides inward by the number of
    command holes scanned below it (holes at or beyond the ``s_en``
    limit issue no command and block nothing).  Equivalent to replaying
    the emitted moves one by one — property-tested against exactly that.
    """
    local = scan.lines_view
    consumed = np.zeros(local.shape, dtype=np.intp)
    if scan.n_positions > 1:
        holes_mask = np.zeros(local.shape, dtype=bool)
        holes_mask[scan.hole_lines, scan.hole_positions] = True
        np.cumsum(holes_mask[:, :-1], axis=1, out=consumed[:, 1:])
    lines, positions = np.nonzero(local)
    compacted = np.zeros_like(local)
    compacted[lines, positions - consumed[lines, positions]] = True
    if scan.axis == 1:
        compacted = compacted.T
    frame.insert(grid, compacted)


def _apply_guarded_compaction(
    grid: np.ndarray,
    horizontal: bool,
    lines: np.ndarray,
    span_base: np.ndarray,
    span_sign: np.ndarray,
    n_positions: np.ndarray,
    hole_seg: np.ndarray,
    hole_pos: np.ndarray,
) -> None:
    """Apply a guarded pass's net effect to ``grid`` in one gather/scatter.

    ``lines``/``span_base``/``span_sign``/``n_positions`` describe the
    half-line segments (one per state with at least one executed
    command); ``hole_seg``/``hole_pos`` are the executed holes as
    (segment index, pass-start local position) pairs.  The net effect of
    a segment's executed commands is closed-form: each atom slides
    inward by the number of executed holes inboard of it, and the
    vacated outboard cells empty — the guarded analogue of
    :func:`_apply_net_compaction`, against the live occupancy instead of
    the scan source.  Segments are pairwise disjoint (one state per
    quadrant half-line), so all of them gather and scatter at once.
    """
    seg_start = np.zeros(lines.size, dtype=np.intp)
    np.cumsum(n_positions[:-1], out=seg_start[1:])
    total = int(n_positions.sum())
    seg_rep = np.repeat(np.arange(lines.size), n_positions)
    local = np.arange(total) - np.repeat(seg_start, n_positions)
    base = span_base[seg_rep]
    sign = span_sign[seg_rep]
    line_rep = lines[seg_rep]
    coord = base + sign * local
    occupancy = grid[line_rep, coord] if horizontal else grid[coord, line_rep]
    # consumed[i] = executed holes inboard of local position i.  Executed
    # holes sit on empty cells, so the inclusive cumsum is exact at every
    # atom position.
    markers = np.zeros(total, dtype=np.intp)
    markers[seg_start[hole_seg] + hole_pos] = 1
    csum = np.cumsum(markers)
    consumed = csum - (csum[seg_start] - markers[seg_start])[seg_rep]
    atoms = np.nonzero(occupancy)[0]
    new_coord = base[atoms] + sign[atoms] * (local[atoms] - consumed[atoms])
    if horizontal:
        grid[line_rep, coord] = False
        grid[line_rep[atoms], new_coord] = True
    else:
        grid[coord, line_rep] = False
        grid[new_coord, line_rep[atoms]] = True


def _emit_round_groups(
    outcome: PassOutcome,
    phase: Phase,
    merge_mirror: bool,
    round_of: np.ndarray,
    dir_rank: np.ndarray,
    cur: np.ndarray,
    quad_rank: np.ndarray,
    line_full: np.ndarray,
    span_start: np.ndarray,
    span_stop: np.ndarray,
) -> None:
    """Order, group, and materialise the given commands as moves.

    The arrays are parallel, one entry per command; the batch order is
    (round, direction, :func:`batch_order_key`), with shifts inside one
    batch ascending by full-array line.  Mirror-merged mode drops the
    quadrant from the group identity, so mirror lines sharing a hole
    fuse into one :class:`~repro.aod.move.ParallelMove`.  Grid
    application is the caller's job (net compaction or round scatter).
    """
    n = cur.size
    if not n:
        return
    directions = _direction_order(phase)
    if merge_mirror:
        order = np.lexsort((line_full, cur, dir_rank, round_of))
        group_keys = (round_of, dir_rank, cur)
    else:
        order = np.lexsort((line_full, quad_rank, cur, dir_rank, round_of))
        group_keys = (round_of, dir_rank, cur, quad_rank)
    sorted_keys = [key[order] for key in group_keys]
    boundary = np.zeros(n, dtype=bool)
    boundary[0] = True
    for key in sorted_keys:
        boundary[1:] |= key[1:] != key[:-1]
    starts = np.nonzero(boundary)[0]
    ends = np.append(starts[1:], n)

    # Bulk-convert to Python scalars once; per-element ndarray indexing
    # in the group loop would dominate the pass otherwise.
    round_s = sorted_keys[0].tolist()
    dir_s = sorted_keys[1].tolist()
    cur_s = sorted_keys[2].tolist()
    quad_values = (
        None
        if merge_mirror
        else [_RANK_TO_QUADRANT[r].value for r in sorted_keys[3].tolist()]
    )
    line_s = line_full[order].tolist()
    start_s = span_start[order].tolist()
    stop_s = span_stop[order].tolist()
    phase_label = phase.value
    make_shift = LineShift.trusted
    make_move = ParallelMove.trusted
    append_move = outcome.moves.append
    for lo, hi in zip(starts.tolist(), ends.tolist()):
        direction = directions[dir_s[lo]]
        shifts = tuple(
            [
                make_shift(direction, line_s[i], start_s[i], stop_s[i])
                for i in range(lo, hi)
            ]
        )
        tag = f"{phase_label}-k{round_s[lo]}-h{cur_s[lo]}"
        if quad_values is not None:
            tag += f"-{quad_values[lo]}"
        append_move(make_move(direction, 1, shifts, tag))
        outcome.n_executed += hi - lo


def run_pass(
    array: AtomArray,
    frames: dict[Quadrant, QuadrantFrame],
    phase: Phase,
    scan_source: np.ndarray,
    merge_mirror: bool = True,
    guard: bool = False,
    scan_limit=None,
) -> PassOutcome:
    """Scan ``scan_source``, batch the commands, execute them on ``array``.

    ``scan_source`` is the grid the scan reads — the live grid for a
    fresh pass, or the iteration-start snapshot for the paper's pipelined
    column pass.  ``guard=True`` enables the stale-command checks (hole
    still empty, span still populated) against the live grid.
    ``scan_limit`` forwards the ``s_en`` bound to the scans.

    Vectorised implementation: emits exactly the schedule of
    :func:`run_pass_reference` (bit-identical moves, tags, and order),
    but drains whole passes as NumPy arrays.  Without the guard the
    entire drain order is statically known — every state consumes one
    command per round, so command ``k`` of a line executes in round
    ``k`` with ``k`` earlier shifts applied — and the full pass reduces
    to one ``lexsort``.  With the guard, each command's fate is *still*
    closed-form, because a command's stale/empty checks only ever read
    its own half-line, whose within-pass evolution is fully determined
    by the pass-start occupancy (see the derivation inline below) — so
    guarded passes, too, apply one gather/scatter total instead of one
    per round.
    """
    outcome = PassOutcome(phase=phase)
    table, scans = _build_command_table(outcome, frames, phase, scan_source, scan_limit)
    if table is None:
        return outcome
    grid = array.grid
    horizontal = phase is Phase.ROW

    state_of = np.repeat(np.arange(table.n_states), table.n_holes)
    first_of = np.zeros(table.n_states, dtype=np.intp)
    np.cumsum(table.n_holes[:-1], out=first_of[1:])
    round_of = np.arange(state_of.size) - first_of[state_of]

    if not guard:
        # Static drain: command k of every state runs in round k with
        # executed == k, so cur/spans for the whole pass come from one
        # sweep of flat array arithmetic, and the grid jumps straight to
        # each quadrant's net compaction.
        cur = table.holes_flat - round_of
        span_base = table.span_base[state_of]
        span_sign = table.span_sign[state_of]
        a = span_base + span_sign * (cur + 1)
        b = span_base + span_sign * (table.n_positions[state_of] - round_of - 1)
        _emit_round_groups(
            outcome,
            phase,
            merge_mirror,
            round_of=round_of,
            dir_rank=table.dir_rank[state_of],
            cur=cur,
            quad_rank=table.quad_rank[state_of],
            line_full=table.line_full[state_of],
            span_start=np.minimum(a, b),
            span_stop=np.maximum(a, b) + 1,
        )
        for frame, scan in scans:
            if scan.n_commands:
                _apply_net_compaction(grid, frame, scan)
        return outcome

    # Guarded drain, closed form.  The guard of command k of a state
    # depends only on that state's own half-line at pass start: commands
    # execute in ascending scanned-hole order, so every shift executed
    # before command k deleted an empty cell *inboard* of its hole h_k
    # and appended an empty cell at the outboard end.  Hence the live
    # cell the round-k stale check reads (local h_k - executed) is the
    # pass-start cell at h_k, and the live span the empty check scans is
    # exactly the pass-start suffix beyond h_k — neither depends on the
    # round it runs in:
    #
    #   stale(k)  <=>  live-at-pass-start[h_k] occupied
    #   empty(k)  <=>  no pass-start atom outboard of h_k
    #
    # so every command's fate, its executed-before count (a per-state
    # cumulative sum of the fates), and the pass's net grid effect all
    # come from one sweep of array arithmetic — no per-round loop.
    holes = table.holes_flat
    line_full = table.line_full[state_of]
    span_base = table.span_base[state_of]
    span_sign = table.span_sign[state_of]
    n_positions = table.n_positions[state_of]

    hole_coord = span_base + span_sign * holes
    if horizontal:
        stale = grid[line_full, hole_coord]
        prefix = np.zeros((grid.shape[0], grid.shape[1] + 1), dtype=np.intp)
        np.cumsum(grid, axis=1, out=prefix[:, 1:])
    else:
        stale = grid[hole_coord, line_full]
        prefix = np.zeros((grid.shape[0] + 1, grid.shape[1]), dtype=np.intp)
        np.cumsum(grid, axis=0, out=prefix[1:, :])

    has_suffix = np.zeros(holes.size, dtype=bool)
    inner = np.nonzero(holes + 1 < n_positions)[0]
    if inner.size:
        sign = span_sign[inner]
        a = span_base[inner] + sign * (holes[inner] + 1)
        b = span_base[inner] + sign * (n_positions[inner] - 1)
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        if horizontal:
            counts = prefix[line_full[inner], hi + 1] - prefix[line_full[inner], lo]
        else:
            counts = prefix[hi + 1, line_full[inner]] - prefix[lo, line_full[inner]]
        has_suffix[inner] = counts > 0

    executes = ~stale & has_suffix
    outcome.n_skipped_stale = int(np.count_nonzero(stale))
    outcome.n_skipped_empty = int(np.count_nonzero(~stale & ~has_suffix))

    # Shifts executed before command k on its own line: the exclusive
    # per-state running count of executing commands.
    inclusive = np.cumsum(executes)
    exclusive = inclusive - executes
    executed_before = exclusive - exclusive[first_of][state_of]

    alive = np.nonzero(executes)[0]
    if alive.size:
        cur = holes[alive] - executed_before[alive]
        sign = span_sign[alive]
        a = span_base[alive] + sign * (cur + 1)
        b = span_base[alive] + sign * (n_positions[alive] - executed_before[alive] - 1)
        _emit_round_groups(
            outcome,
            phase,
            merge_mirror,
            round_of=round_of[alive],
            dir_rank=table.dir_rank[state_of[alive]],
            cur=cur,
            quad_rank=table.quad_rank[state_of[alive]],
            line_full=line_full[alive],
            span_start=np.minimum(a, b),
            span_stop=np.maximum(a, b) + 1,
        )
        # One gather/scatter applies the whole pass: compact each touched
        # half-line around its executed holes.
        touched = np.unique(state_of[alive])
        seg_index = np.zeros(table.n_states, dtype=np.intp)
        seg_index[touched] = np.arange(touched.size)
        _apply_guarded_compaction(
            grid,
            horizontal,
            lines=table.line_full[touched],
            span_base=table.span_base[touched],
            span_sign=table.span_sign[touched],
            n_positions=table.n_positions[touched],
            hole_seg=seg_index[state_of[alive]],
            hole_pos=holes[alive],
        )
    return outcome


# ---------------------------------------------------------------------------
# Cross-trial batched pass
# ---------------------------------------------------------------------------


class MoveInterner:
    """Cross-trial cache for the batched pass's emitted move objects.

    Same-geometry trials share most of their (direction, line, span)
    shift combinations and (phase, round, hole) tags, so the batched
    emission deduplicates with one ``np.unique`` over packed integer
    keys and constructs each distinct ``LineShift``/tag string exactly
    once — every later occurrence, in any trial of any batch served by
    this interner, reuses the same object.  The shifts are frozen value
    types compared by field (and tags are plain strings), so sharing one
    instance across trials preserves bit-identity with the single-trial
    schedules while skipping the Python-object construction cost, which
    is the part of a pass that raw NumPy batching cannot amortise.

    Keys are the packed integers of :func:`_emit_round_groups_batch`:
    shifts pack (global direction rank, line, span start, span stop) and
    tags pack (phase, quadrant, round, hole), so the two phases can
    never collide.  Packing uses 20-bit coordinate fields — far beyond
    any realistic trap-array extent.

    Shifts are stored as a sorted key array with a parallel object
    array, so a warm lookup is one ``np.searchsorted`` plus one fancy
    index — no per-object Python work at all.  Tags are a plain dict
    (there are only a handful of distinct ones).
    """

    __slots__ = ("shift_keys", "shift_objs", "tags")

    def __init__(self) -> None:
        self.shift_keys = np.empty(0, dtype=np.int64)
        self.shift_objs = np.empty(0, dtype=object)
        self.tags: dict[int, str] = {}

    def lookup_shifts(
        self,
        uniq: np.ndarray,
        d_first: np.ndarray,
        line_first: np.ndarray,
        a_first: np.ndarray,
        b_first: np.ndarray,
        directions: tuple,
    ) -> np.ndarray:
        """Object array parallel to ``uniq``; builds and caches misses.

        ``uniq`` is the ascending packed-key array of the distinct
        shifts; the ``*_first`` arrays carry each key's unpacked fields.
        """
        keys = self.shift_keys
        known = np.zeros(uniq.size, dtype=bool)
        objs = np.empty(uniq.size, dtype=object)
        if keys.size:
            pos = np.searchsorted(keys, uniq)
            in_bounds = pos < keys.size
            known[in_bounds] = keys[pos[in_bounds]] == uniq[in_bounds]
            hits = np.nonzero(known)[0]
            if hits.size:
                objs[hits] = self.shift_objs[pos[hits]]
        new_idx = np.nonzero(~known)[0]
        if new_idx.size:
            make_shift = LineShift.trusted
            new_objs = [
                make_shift(directions[d], line, a, b)
                for d, line, a, b in zip(
                    d_first[new_idx].tolist(),
                    line_first[new_idx].tolist(),
                    a_first[new_idx].tolist(),
                    b_first[new_idx].tolist(),
                )
            ]
            objs[new_idx] = new_objs
            merged_keys = np.concatenate([keys, uniq[new_idx]])
            merged_objs = np.concatenate(
                [self.shift_objs, np.array(new_objs, dtype=object)]
            )
            order = np.argsort(merged_keys)
            self.shift_keys = merged_keys[order]
            self.shift_objs = merged_objs[order]
        return objs


def _unique_keys(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``np.unique(packed, return_index=True, return_inverse=True)``, faster.

    One plain argsort plus linear passes — several times cheaper than
    ``np.unique``'s bookkeeping.  The returned index points at *an*
    occurrence of each key rather than the first, which is equivalent
    here: every field the callers unpack is fully determined by the key.
    """
    order = np.argsort(packed)
    sorted_keys = packed[order]
    boundary = np.empty(sorted_keys.size, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
    first_sorted = np.nonzero(boundary)[0]
    inverse = np.empty(sorted_keys.size, dtype=np.intp)
    inverse[order] = np.cumsum(boundary) - 1
    return sorted_keys[first_sorted], order[first_sorted], inverse


@dataclass(frozen=True, eq=False)
class _BatchCommandTable(_CommandTable):
    """:class:`_CommandTable` plus the owning trial of every state.

    A state is one (trial, quadrant, line) with at least one command;
    all closed-form drain arithmetic of the single-trial pass works
    unchanged on the flattened multi-trial state list because it only
    ever couples commands of the same state.
    """

    trial_of: np.ndarray = None  # trial index per state


def _build_batch_command_table(
    outcomes: list[PassOutcome],
    frames: dict[Quadrant, QuadrantFrame],
    phase: Phase,
    scan_source: np.ndarray,
    scan_limit,
) -> tuple[_BatchCommandTable | None, list]:
    """Scan all quadrants of all trials and flatten into one state table.

    The batched analogue of :func:`_build_command_table`: one
    :func:`~repro.core.scan.scan_quadrant_batch` per quadrant covers
    every trial, and the per-state arrays gain a parallel ``trial_of``.
    Also returns the ``(frame, BatchQuadrantScan)`` pairs for the
    unguarded net compaction.
    """
    axis = 0 if phase is Phase.ROW else 1
    first_direction = _direction_order(phase)[0]
    chunks: list[tuple] = []
    scans: list = []
    for quadrant in QUADRANT_ORDER:
        frame = frames[quadrant]
        scan = scan_quadrant_batch(
            frame.extract_batch(scan_source),
            axis,
            limit=_quadrant_limit(scan_limit, quadrant),
        )
        scans.append((frame, scan))
        counts = scan.line_counts.tolist()
        per_trial = scan.commands_per_trial().tolist()
        n_scanned = scan.n_scanned_bits
        for trial, outcome in enumerate(outcomes):
            outcome.line_commands[quadrant] = counts[trial]
            outcome.n_scanned_bits += n_scanned
            outcome.n_commands += per_trial[trial]
        if not scan.n_commands:
            continue
        # np.nonzero order is (trial, line)-lexicographic, matching the
        # state-major layout of scan.hole_positions.
        t_states, lines = np.nonzero(scan.line_counts)
        row_base, row_sign, col_base, col_sign = frame.affine
        if phase is Phase.ROW:
            line_full = row_base + row_sign * lines
            span_base, span_sign = col_base, col_sign
            inward = frame.horizontal_inward
        else:
            line_full = col_base + col_sign * lines
            span_base, span_sign = row_base, row_sign
            inward = frame.vertical_inward
        n_states = lines.size
        chunks.append(
            (
                scan.line_counts[t_states, lines],
                scan.hole_positions,
                line_full,
                np.full(n_states, span_base),
                np.full(n_states, span_sign),
                np.full(n_states, scan.n_positions),
                np.full(n_states, 0 if inward is first_direction else 1),
                np.full(n_states, QUADRANT_BATCH_RANK[quadrant]),
                t_states,
            )
        )
    if not chunks:
        return None, scans
    table = _BatchCommandTable(
        n_holes=np.concatenate([c[0] for c in chunks]),
        holes_flat=np.concatenate([c[1] for c in chunks]),
        line_full=np.concatenate([c[2] for c in chunks]),
        span_base=np.concatenate([c[3] for c in chunks]),
        span_sign=np.concatenate([c[4] for c in chunks]),
        n_positions=np.concatenate([c[5] for c in chunks]),
        dir_rank=np.concatenate([c[6] for c in chunks]),
        quad_rank=np.concatenate([c[7] for c in chunks]),
        trial_of=np.concatenate([c[8] for c in chunks]),
    )
    return table, scans


def _apply_net_compaction_batch(grids: np.ndarray, frame, scan) -> None:
    """Batched :func:`_apply_net_compaction` over the trial axis.

    Trials whose quadrant scanned zero commands are rewritten with their
    own unchanged occupancy (consumed is identically zero there), so no
    per-trial masking is needed.
    """
    local = scan.lines_view
    consumed = np.zeros(local.shape, dtype=np.intp)
    if scan.n_positions > 1:
        np.cumsum(scan.holes_mask[:, :, :-1], axis=2, out=consumed[:, :, 1:])
    trials, lines, positions = np.nonzero(local)
    compacted = np.zeros_like(local)
    compacted[trials, lines, positions - consumed[trials, lines, positions]] = True
    if scan.axis == 1:
        compacted = compacted.transpose(0, 2, 1)
    frame.insert_batch(grids, compacted)


def _apply_guarded_compaction_batch(
    grids: np.ndarray,
    horizontal: bool,
    trials: np.ndarray,
    lines: np.ndarray,
    span_base: np.ndarray,
    span_sign: np.ndarray,
    n_positions: np.ndarray,
    hole_seg: np.ndarray,
    hole_pos: np.ndarray,
) -> None:
    """Batched :func:`_apply_guarded_compaction` over the trial axis.

    Identical gather/scatter with ``trials`` as a third coordinate:
    segments stay pairwise disjoint (one state per trial per quadrant
    half-line), so every trial's half-lines compact in the same sweep.
    """
    seg_start = np.zeros(lines.size, dtype=np.intp)
    np.cumsum(n_positions[:-1], out=seg_start[1:])
    total = int(n_positions.sum())
    seg_rep = np.repeat(np.arange(lines.size), n_positions)
    local = np.arange(total) - np.repeat(seg_start, n_positions)
    base = span_base[seg_rep]
    sign = span_sign[seg_rep]
    line_rep = lines[seg_rep]
    trial_rep = trials[seg_rep]
    coord = base + sign * local
    occupancy = (
        grids[trial_rep, line_rep, coord]
        if horizontal
        else grids[trial_rep, coord, line_rep]
    )
    markers = np.zeros(total, dtype=np.intp)
    markers[seg_start[hole_seg] + hole_pos] = 1
    csum = np.cumsum(markers)
    consumed = csum - (csum[seg_start] - markers[seg_start])[seg_rep]
    atoms = np.nonzero(occupancy)[0]
    new_coord = base[atoms] + sign[atoms] * (local[atoms] - consumed[atoms])
    if horizontal:
        grids[trial_rep, line_rep, coord] = False
        grids[trial_rep[atoms], line_rep[atoms], new_coord] = True
    else:
        grids[trial_rep, coord, line_rep] = False
        grids[trial_rep[atoms], new_coord, line_rep[atoms]] = True


def _emit_round_groups_batch(
    outcomes: list[PassOutcome],
    phase: Phase,
    merge_mirror: bool,
    trial_of: np.ndarray,
    round_of: np.ndarray,
    dir_rank: np.ndarray,
    cur: np.ndarray,
    quad_rank: np.ndarray,
    line_full: np.ndarray,
    span_start: np.ndarray,
    span_stop: np.ndarray,
    interner: MoveInterner,
) -> None:
    """Batched :func:`_emit_round_groups`: trial is the outermost key.

    Prepending ``trial_of`` to the lexsort keeps every trial's commands
    contiguous and, inside a trial, ordered by exactly the single-trial
    key tuple — and since the full-array line is unique within any
    (round, direction, hole[, quadrant]) group, that order is totally
    determined by the keys, so each trial's batch sequence is
    bit-identical to its own single-trial emission.

    The Python-object side is deduplicated, not looped: shifts and tags
    are reduced to packed integer keys, ``np.unique`` finds the distinct
    ones, each distinct object is built (or fetched from the
    :class:`MoveInterner`) once, and the full per-command object array
    comes back through one fancy index — so the per-command Python cost
    collapses to the per-*unique* cost, which across a batch of similar
    trials is a small fraction of the command count.
    """
    n = cur.size
    if not n:
        return
    directions = _direction_order(phase)

    # Sort by (trial, round, dir, cur[, quad], line) — one argsort over a
    # single packed int64 key when the coordinates fit the 13-bit fields
    # (any realistic trap array), falling back to the equivalent
    # five/six-key lexsort otherwise.  The packed keys are unique (the
    # line is unique within a group), so sort kind is irrelevant.
    trial64 = trial_of.astype(np.int64)
    packable = (
        int(line_full.max()) < 8192
        and int(cur.max()) < 8192
        and int(round_of.max()) < 8192
        and int(trial64.max()) < 1 << 22
    )
    if packable:
        key = (((trial64 << 13) | round_of) << 1 | dir_rank) << 13 | cur
        if not merge_mirror:
            key = (key << 2) | quad_rank
        order = np.argsort((key << 13) | line_full)
    elif merge_mirror:
        order = np.lexsort((line_full, cur, dir_rank, round_of, trial_of))
    else:
        order = np.lexsort((line_full, quad_rank, cur, dir_rank, round_of, trial_of))
    if merge_mirror:
        group_keys = (trial_of, round_of, dir_rank, cur)
    else:
        group_keys = (trial_of, round_of, dir_rank, cur, quad_rank)
    sorted_keys = [key[order] for key in group_keys]
    boundary = np.zeros(n, dtype=bool)
    boundary[0] = True
    for key in sorted_keys:
        boundary[1:] |= key[1:] != key[:-1]
    starts = np.nonzero(boundary)[0]
    ends = np.append(starts[1:], n)

    # Interned shifts: pack (direction, line, span) into one int64 per
    # command, unique it, and resolve the distinct keys through the
    # interner (warm keys never touch Python).  The phase offset makes
    # the direction rank global (row pass directions 0-1, column pass
    # 2-3), so one flat cache serves both phases.
    phase_offset = 0 if phase is Phase.ROW else 2
    d_sorted = sorted_keys[2].astype(np.int64)
    line_sorted = line_full[order].astype(np.int64)
    a_sorted = span_start[order].astype(np.int64)
    b_sorted = span_stop[order].astype(np.int64)
    packed = (
        ((d_sorted + phase_offset) << 60)
        | (line_sorted << 40)
        | (a_sorted << 20)
        | b_sorted
    )
    uniq, first_idx, inverse = _unique_keys(packed)
    shift_objs = interner.lookup_shifts(
        uniq,
        d_sorted[first_idx],
        line_sorted[first_idx],
        a_sorted[first_idx],
        b_sorted[first_idx],
        directions,
    )
    shifts_all = shift_objs[inverse]

    # Interned tags: one packed key per *group*, deduplicated the same
    # way (a dict suffices — distinct tags are few).
    g_round = sorted_keys[1][starts].astype(np.int64)
    g_cur = sorted_keys[3][starts].astype(np.int64)
    phase_bit = np.int64(0 if phase is Phase.ROW else 1)
    tag_packed = (phase_bit << 62) | (g_round << 22) | g_cur
    if not merge_mirror:
        g_quad = sorted_keys[4][starts].astype(np.int64)
        tag_packed |= (g_quad + 1) << 44
    t_uniq, t_first, t_inv = _unique_keys(tag_packed)
    tag_cache = interner.tags
    phase_label = phase.value
    new_round = g_round[t_first].tolist()
    new_cur = g_cur[t_first].tolist()
    new_quad = None if merge_mirror else sorted_keys[4][starts][t_first].tolist()
    tag_objs = np.empty(t_uniq.size, dtype=object)
    for i, key in enumerate(t_uniq.tolist()):
        tag = tag_cache.get(key)
        if tag is None:
            tag = f"{phase_label}-k{new_round[i]}-h{new_cur[i]}"
            if new_quad is not None:
                tag += f"-{_RANK_TO_QUADRANT[new_quad[i]].value}"
            tag_cache[key] = tag
        tag_objs[i] = tag

    # Assemble the moves through C-speed map chains: slice each group's
    # interned shifts out of one flat list, zip with the interned tags
    # and direction objects, and hand each trial its contiguous run of
    # finished moves in one extend.
    starts_l = starts.tolist()
    ends_l = ends.tolist()
    shifts_list = shifts_all.tolist()
    span_tuples = list(
        map(tuple, map(shifts_list.__getitem__, map(slice, starts_l, ends_l)))
    )
    dir_objs = np.array(directions, dtype=object)
    moves_all = list(
        map(
            ParallelMove.trusted,
            dir_objs[sorted_keys[2][starts]].tolist(),
            itertools.repeat(1),
            span_tuples,
            tag_objs[t_inv].tolist(),
        )
    )
    g_trial = sorted_keys[0][starts]
    trial_breaks = np.nonzero(g_trial[1:] != g_trial[:-1])[0] + 1
    bounds = np.concatenate(([0], trial_breaks, [g_trial.size])).tolist()
    moves_of = [outcome.moves for outcome in outcomes]
    for trial, lo, hi in zip(
        g_trial[bounds[:-1]].tolist(), bounds[:-1], bounds[1:]
    ):
        moves_of[trial].extend(moves_all[lo:hi])
    executed = np.bincount(sorted_keys[0], minlength=len(outcomes))
    for outcome, count in zip(outcomes, executed.tolist()):
        outcome.n_executed += count


def run_pass_batch(
    grids: np.ndarray,
    frames: dict[Quadrant, QuadrantFrame],
    phase: Phase,
    scan_source: np.ndarray,
    merge_mirror: bool = True,
    guard: bool = False,
    scan_limit=None,
    interner: MoveInterner | None = None,
) -> list[PassOutcome]:
    """One pass over a whole stack of trials, one per-trial outcome each.

    The cross-trial extension of :func:`run_pass`: ``grids`` stacks N
    same-geometry live occupancy grids as ``(trial, row, col)`` and is
    mutated in place; ``scan_source`` is the stack the scan reads (the
    live stack, or the iteration-start snapshot stack in pipelined
    mode).  Every cumsum, argsort, and gather/scatter of the
    single-trial pass simply gains the leading trial axis — the drain
    closed forms are untouched because they only ever couple commands of
    the same (trial, line) state — so N trials cost one NumPy dispatch
    sequence instead of N.  Per trial, the emitted moves, tags, order,
    and statistics are bit-identical to :func:`run_pass` on that trial
    alone (property-tested through the batch scheduler).
    """
    n_trials = int(grids.shape[0])
    outcomes = [PassOutcome(phase=phase) for _ in range(n_trials)]
    if interner is None:
        interner = MoveInterner()
    table, scans = _build_batch_command_table(
        outcomes, frames, phase, scan_source, scan_limit
    )
    if table is None:
        return outcomes
    horizontal = phase is Phase.ROW

    state_of = np.repeat(np.arange(table.n_states), table.n_holes)
    first_of = np.zeros(table.n_states, dtype=np.intp)
    np.cumsum(table.n_holes[:-1], out=first_of[1:])
    round_of = np.arange(state_of.size) - first_of[state_of]
    trial_of_cmd = table.trial_of[state_of]

    if not guard:
        cur = table.holes_flat - round_of
        span_base = table.span_base[state_of]
        span_sign = table.span_sign[state_of]
        a = span_base + span_sign * (cur + 1)
        b = span_base + span_sign * (table.n_positions[state_of] - round_of - 1)
        _emit_round_groups_batch(
            outcomes,
            phase,
            merge_mirror,
            trial_of=trial_of_cmd,
            round_of=round_of,
            dir_rank=table.dir_rank[state_of],
            cur=cur,
            quad_rank=table.quad_rank[state_of],
            line_full=table.line_full[state_of],
            span_start=np.minimum(a, b),
            span_stop=np.maximum(a, b) + 1,
            interner=interner,
        )
        for frame, scan in scans:
            if scan.n_commands:
                _apply_net_compaction_batch(grids, frame, scan)
        return outcomes

    # Guarded drain: the per-command fate closed forms of run_pass hold
    # per (trial, line) state, so the only change is the trial index on
    # every live-grid read and write.
    holes = table.holes_flat
    line_full = table.line_full[state_of]
    span_base = table.span_base[state_of]
    span_sign = table.span_sign[state_of]
    n_positions = table.n_positions[state_of]

    hole_coord = span_base + span_sign * holes
    if horizontal:
        stale = grids[trial_of_cmd, line_full, hole_coord]
        prefix = np.zeros(
            (n_trials, grids.shape[1], grids.shape[2] + 1), dtype=np.intp
        )
        np.cumsum(grids, axis=2, out=prefix[:, :, 1:])
    else:
        stale = grids[trial_of_cmd, hole_coord, line_full]
        prefix = np.zeros(
            (n_trials, grids.shape[1] + 1, grids.shape[2]), dtype=np.intp
        )
        np.cumsum(grids, axis=1, out=prefix[:, 1:, :])

    has_suffix = np.zeros(holes.size, dtype=bool)
    inner = np.nonzero(holes + 1 < n_positions)[0]
    if inner.size:
        sign = span_sign[inner]
        a = span_base[inner] + sign * (holes[inner] + 1)
        b = span_base[inner] + sign * (n_positions[inner] - 1)
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        t_inner = trial_of_cmd[inner]
        if horizontal:
            counts = (
                prefix[t_inner, line_full[inner], hi + 1]
                - prefix[t_inner, line_full[inner], lo]
            )
        else:
            counts = (
                prefix[t_inner, hi + 1, line_full[inner]]
                - prefix[t_inner, lo, line_full[inner]]
            )
        has_suffix[inner] = counts > 0

    executes = ~stale & has_suffix
    stale_counts = np.bincount(trial_of_cmd[stale], minlength=n_trials)
    empty_counts = np.bincount(
        trial_of_cmd[~stale & ~has_suffix], minlength=n_trials
    )
    for trial, outcome in enumerate(outcomes):
        outcome.n_skipped_stale = int(stale_counts[trial])
        outcome.n_skipped_empty = int(empty_counts[trial])

    inclusive = np.cumsum(executes)
    exclusive = inclusive - executes
    executed_before = exclusive - exclusive[first_of][state_of]

    alive = np.nonzero(executes)[0]
    if alive.size:
        cur = holes[alive] - executed_before[alive]
        sign = span_sign[alive]
        a = span_base[alive] + sign * (cur + 1)
        b = span_base[alive] + sign * (n_positions[alive] - executed_before[alive] - 1)
        _emit_round_groups_batch(
            outcomes,
            phase,
            merge_mirror,
            trial_of=trial_of_cmd[alive],
            round_of=round_of[alive],
            dir_rank=table.dir_rank[state_of[alive]],
            cur=cur,
            quad_rank=table.quad_rank[state_of[alive]],
            line_full=line_full[alive],
            span_start=np.minimum(a, b),
            span_stop=np.maximum(a, b) + 1,
            interner=interner,
        )
        touched = np.unique(state_of[alive])
        seg_index = np.zeros(table.n_states, dtype=np.intp)
        seg_index[touched] = np.arange(touched.size)
        _apply_guarded_compaction_batch(
            grids,
            horizontal,
            trials=table.trial_of[touched],
            lines=table.line_full[touched],
            span_base=table.span_base[touched],
            span_sign=table.span_sign[touched],
            n_positions=table.n_positions[touched],
            hole_seg=seg_index[state_of[alive]],
            hole_pos=holes[alive],
        )
    return outcomes
