"""The "typical rearrangement procedure" of paper Sec. III-A.

This is the centre-out reference algorithm QRM reorganises: work on the
full array, fill the centre columns first by shifting row suffixes
inward one step at a time (paper Fig. 3, Moves 1-4), then do the same
row-wise for the vertical phase (Moves 5-6), and repeat until no hole
adjacent to the compacted centre remains.

It is implemented independently of the QRM machinery (straightforward
whole-array loops, one-step moves) and serves as a functional oracle:
both algorithms drive each quadrant to the same row/column-compacted
fixpoint, so their final grids must match — an integration test asserts
exactly that.
"""

from __future__ import annotations

import numpy as np

from repro.aod.executor import apply_parallel_move
from repro.aod.move import LineShift, ParallelMove
from repro.aod.schedule import MoveSchedule
from repro.core.result import RearrangementResult, timed_schedule
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry, Direction


def _innermost_hole_west(row: np.ndarray, half: int) -> int | None:
    """Innermost unfillable... innermost hole col with atoms west of it."""
    for col in range(half - 1, -1, -1):
        if not row[col]:
            if row[:col].any():
                return col
            return None
    return None


def _innermost_hole_east(row: np.ndarray, half: int, width: int) -> int | None:
    for col in range(half, width):
        if not row[col]:
            if row[col + 1 :].any():
                return col
            return None
    return None


class TypicalScheduler:
    """Centre-out rearrangement on the full array (no quadrant split)."""

    name = "typical"

    def __init__(self, geometry: ArrayGeometry, max_phases: int = 64):
        self.geometry = geometry
        self.max_phases = max_phases

    # -- one-step rounds ----------------------------------------------------

    def _horizontal_round(self, array: AtomArray, schedule: MoveSchedule) -> int:
        """One simultaneous-move block per hole column; returns shifts done."""
        grid = array.grid
        height, width = grid.shape
        half = width // 2
        west_groups: dict[int, list[int]] = {}
        east_groups: dict[int, list[int]] = {}
        for r in range(height):
            hole = _innermost_hole_west(grid[r], half)
            if hole is not None:
                west_groups.setdefault(hole, []).append(r)
            hole = _innermost_hole_east(grid[r], half, width)
            if hole is not None:
                east_groups.setdefault(hole, []).append(r)

        n_shifts = 0
        for hole_col in sorted(west_groups, reverse=True):
            rows = west_groups[hole_col]
            shifts = [
                LineShift(Direction.EAST, r, span_start=0, span_stop=hole_col)
                for r in rows
            ]
            move = ParallelMove.of(shifts, tag=f"typical-E-h{hole_col}")
            apply_parallel_move(grid, move)
            schedule.append(move)
            n_shifts += len(shifts)
        for hole_col in sorted(east_groups):
            rows = east_groups[hole_col]
            shifts = [
                LineShift(Direction.WEST, r, span_start=hole_col + 1, span_stop=width)
                for r in rows
            ]
            move = ParallelMove.of(shifts, tag=f"typical-W-h{hole_col}")
            apply_parallel_move(grid, move)
            schedule.append(move)
            n_shifts += len(shifts)
        return n_shifts

    def _vertical_round(self, array: AtomArray, schedule: MoveSchedule) -> int:
        grid = array.grid
        height, width = grid.shape
        half = height // 2
        north_groups: dict[int, list[int]] = {}
        south_groups: dict[int, list[int]] = {}
        for c in range(width):
            col = grid[:, c]
            hole = _innermost_hole_west(col, half)
            if hole is not None:
                north_groups.setdefault(hole, []).append(c)
            hole = _innermost_hole_east(col, half, height)
            if hole is not None:
                south_groups.setdefault(hole, []).append(c)

        n_shifts = 0
        for hole_row in sorted(north_groups, reverse=True):
            cols = north_groups[hole_row]
            shifts = [
                LineShift(Direction.SOUTH, c, span_start=0, span_stop=hole_row)
                for c in cols
            ]
            move = ParallelMove.of(shifts, tag=f"typical-S-h{hole_row}")
            apply_parallel_move(grid, move)
            schedule.append(move)
            n_shifts += len(shifts)
        for hole_row in sorted(south_groups):
            cols = south_groups[hole_row]
            shifts = [
                LineShift(Direction.NORTH, c, span_start=hole_row + 1, span_stop=height)
                for c in cols
            ]
            move = ParallelMove.of(shifts, tag=f"typical-N-h{hole_row}")
            apply_parallel_move(grid, move)
            schedule.append(move)
            n_shifts += len(shifts)
        return n_shifts

    # -- public API ----------------------------------------------------------

    def schedule(self, array: AtomArray) -> RearrangementResult:
        if array.geometry != self.geometry:
            raise ValueError("array geometry does not match the scheduler's geometry")
        return timed_schedule(lambda: self._analyse(array))

    def _analyse(self, array: AtomArray) -> RearrangementResult:
        live = array.copy()
        moves = MoveSchedule(self.geometry, algorithm=self.name)
        ops = 0
        converged = False
        for _ in range(self.max_phases):
            h_shifts = 0
            while True:
                done = self._horizontal_round(live, moves)
                ops += self.geometry.n_sites
                h_shifts += done
                if done == 0:
                    break
            v_shifts = 0
            while True:
                done = self._vertical_round(live, moves)
                ops += self.geometry.n_sites
                v_shifts += done
                if done == 0:
                    break
            if h_shifts == 0 and v_shifts == 0:
                converged = True
                break
        return RearrangementResult(
            algorithm=self.name,
            initial=array.copy(),
            final=live,
            schedule=moves,
            converged=converged,
            analysis_ops=ops,
        )
