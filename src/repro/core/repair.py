"""Residual-defect repair with individual atom transports (extension).

Centre-ward quadrant compaction cannot always fill the target from a
50 %-loaded array (the compaction fixpoint is a Young-diagram staircase
per quadrant and atoms never move outboard — see DESIGN.md).  Real
systems close the gap with a hand-off stage of individual moves; this
module provides one: for every remaining target defect it transports the
nearest reservoir atom along an L-shaped path of empty sites, one atom
per move pair, in the style of the sequential baseline algorithms.

This stage is *not* part of the paper's QRM; it is off by default and
enabled through :class:`~repro.config.QrmParameters`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aod.executor import apply_parallel_move
from repro.aod.move import LineShift, ParallelMove
from repro.lattice.array import AtomArray
from repro.lattice.geometry import Direction


@dataclass
class RepairOutcome:
    """Moves emitted by the repair stage plus what it could not fix."""

    moves: list[ParallelMove] = field(default_factory=list)
    filled: int = 0
    unresolved: int = 0


def _horizontal_leg(row: int, col_from: int, col_to: int) -> LineShift:
    steps = abs(col_to - col_from)
    direction = Direction.EAST if col_to > col_from else Direction.WEST
    return LineShift(
        direction=direction,
        line=row,
        span_start=col_from,
        span_stop=col_from + 1,
        steps=steps,
    )


def _vertical_leg(col: int, row_from: int, row_to: int) -> LineShift:
    steps = abs(row_to - row_from)
    direction = Direction.SOUTH if row_to > row_from else Direction.NORTH
    return LineShift(
        direction=direction,
        line=col,
        span_start=row_from,
        span_stop=row_from + 1,
        steps=steps,
    )


def _path_clear_horizontal(grid, row: int, col_from: int, col_to: int) -> bool:
    """Are all sites strictly between and including the destination empty?"""
    if col_from == col_to:
        return True
    lo, hi = (col_from + 1, col_to) if col_to > col_from else (col_to, col_from - 1)
    return not grid[row, lo : hi + 1].any()


def _path_clear_vertical(grid, col: int, row_from: int, row_to: int) -> bool:
    if row_from == row_to:
        return True
    lo, hi = (row_from + 1, row_to) if row_to > row_from else (row_to, row_from - 1)
    return not grid[lo : hi + 1, col].any()


def _legs_for(
    grid, source: tuple[int, int], dest: tuple[int, int]
) -> list[LineShift] | None:
    """L-path from source to dest through empty sites, or None.

    Tries row-leg-then-column-leg, then column-leg-then-row-leg.
    """
    (r0, c0), (r1, c1) = source, dest
    # Row first: (r0,c0) -> (r0,c1) -> (r1,c1)
    if _path_clear_horizontal(grid, r0, c0, c1) and _path_clear_vertical(
        grid, c1, r0, r1
    ):
        legs = []
        if c0 != c1:
            legs.append(_horizontal_leg(r0, c0, c1))
        if r0 != r1:
            legs.append(_vertical_leg(c1, r0, r1))
        return legs
    # Column first: (r0,c0) -> (r1,c0) -> (r1,c1)
    if _path_clear_vertical(grid, c0, r0, r1) and _path_clear_horizontal(
        grid, r1, c0, c1
    ):
        legs = []
        if r0 != r1:
            legs.append(_vertical_leg(c0, r0, r1))
        if c0 != c1:
            legs.append(_horizontal_leg(r1, c0, c1))
        return legs
    return None


def repair_defects(array: AtomArray, max_moves: int = 4096) -> RepairOutcome:
    """Fill remaining target defects of ``array`` in place.

    Defects are processed centre-outward; each is matched to the nearest
    reservoir atom that has a clear L-path.  Atoms that cannot be routed
    are counted as unresolved rather than raising — the caller decides
    whether a partial assembly is acceptable.
    """
    outcome = RepairOutcome()
    geometry = array.geometry
    target = geometry.target_region
    grid = array.grid
    centre = ((geometry.height - 1) / 2.0, (geometry.width - 1) / 2.0)

    defects = sorted(
        array.target_defects(),
        key=lambda rc: abs(rc[0] - centre[0]) + abs(rc[1] - centre[1]),
    )
    for defect in defects:
        if len(outcome.moves) >= max_moves:
            outcome.unresolved += 1
            continue
        reservoir = [
            site
            for site in array.occupied_sites()
            if not target.contains(*site)
        ]
        reservoir.sort(
            key=lambda rc: abs(rc[0] - defect[0]) + abs(rc[1] - defect[1])
        )
        routed = False
        for source in reservoir:
            legs = _legs_for(grid, source, defect)
            if legs is None:
                continue
            for leg in legs:
                move = ParallelMove.of([leg], tag=f"repair-{defect}")
                apply_parallel_move(grid, move)
                outcome.moves.append(move)
            outcome.filled += 1
            routed = True
            break
        if not routed:
            outcome.unresolved += 1
    return outcome
