"""Residual-defect repair with individual atom transports (extension).

Centre-ward quadrant compaction cannot always fill the target from a
50 %-loaded array (the compaction fixpoint is a Young-diagram staircase
per quadrant and atoms never move outboard — see DESIGN.md).  Real
systems close the gap with a hand-off stage of individual moves; this
module provides one: for every remaining target defect it transports the
nearest reservoir atom along an L-shaped path of empty sites, one atom
per move pair, in the style of the sequential baseline algorithms.

Two implementations share the semantics: :func:`repair_defects_reference`
is the per-defect, per-candidate Python loop kept as the behavioural
oracle, and :func:`repair_defects` is the production path, which tests
every reservoir candidate's two L-paths at once with prefix-summed
occupancy counts.  The two are property-tested to emit bit-identical
moves (see ``tests/test_repair_equivalence.py``).

This stage is *not* part of the paper's QRM; it is off by default and
enabled through :class:`~repro.config.QrmParameters`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aod.executor import apply_parallel_move
from repro.aod.move import LineShift, ParallelMove
from repro.lattice.array import AtomArray
from repro.lattice.geometry import Direction


@dataclass
class RepairOutcome:
    """Moves emitted by the repair stage plus what it could not fix."""

    moves: list[ParallelMove] = field(default_factory=list)
    filled: int = 0
    unresolved: int = 0


def _horizontal_leg(row: int, col_from: int, col_to: int) -> LineShift:
    steps = abs(col_to - col_from)
    direction = Direction.EAST if col_to > col_from else Direction.WEST
    return LineShift(
        direction=direction,
        line=row,
        span_start=col_from,
        span_stop=col_from + 1,
        steps=steps,
    )


def _vertical_leg(col: int, row_from: int, row_to: int) -> LineShift:
    steps = abs(row_to - row_from)
    direction = Direction.SOUTH if row_to > row_from else Direction.NORTH
    return LineShift(
        direction=direction,
        line=col,
        span_start=row_from,
        span_stop=row_from + 1,
        steps=steps,
    )


def _path_clear_horizontal(grid, row: int, col_from: int, col_to: int) -> bool:
    """Are all sites strictly between and including the destination empty?"""
    if col_from == col_to:
        return True
    lo, hi = (col_from + 1, col_to) if col_to > col_from else (col_to, col_from - 1)
    return not grid[row, lo : hi + 1].any()


def _path_clear_vertical(grid, col: int, row_from: int, row_to: int) -> bool:
    if row_from == row_to:
        return True
    lo, hi = (row_from + 1, row_to) if row_to > row_from else (row_to, row_from - 1)
    return not grid[lo : hi + 1, col].any()


def _legs_for(
    grid, source: tuple[int, int], dest: tuple[int, int]
) -> list[LineShift] | None:
    """L-path from source to dest through empty sites, or None.

    Tries row-leg-then-column-leg, then column-leg-then-row-leg.
    """
    (r0, c0), (r1, c1) = source, dest
    # Row first: (r0,c0) -> (r0,c1) -> (r1,c1)
    if _path_clear_horizontal(grid, r0, c0, c1) and _path_clear_vertical(
        grid, c1, r0, r1
    ):
        legs = []
        if c0 != c1:
            legs.append(_horizontal_leg(r0, c0, c1))
        if r0 != r1:
            legs.append(_vertical_leg(c1, r0, r1))
        return legs
    # Column first: (r0,c0) -> (r1,c0) -> (r1,c1)
    if _path_clear_vertical(grid, c0, r0, r1) and _path_clear_horizontal(
        grid, r1, c0, c1
    ):
        legs = []
        if r0 != r1:
            legs.append(_vertical_leg(c0, r0, r1))
        if c0 != c1:
            legs.append(_horizontal_leg(r1, c0, c1))
        return legs
    return None


def repair_defects_reference(array: AtomArray, max_moves: int = 4096) -> RepairOutcome:
    """Per-defect, per-candidate reference implementation.

    Kept as the oracle the vectorised :func:`repair_defects` is
    property-tested against (bit-identical moves, tags, order, and
    counters), and as the readable statement of the routing semantics.
    """
    outcome = RepairOutcome()
    geometry = array.geometry
    target = geometry.target_mask
    grid = array.grid
    centre = ((geometry.height - 1) / 2.0, (geometry.width - 1) / 2.0)

    defects = sorted(
        array.target_defects(),
        key=lambda rc: abs(rc[0] - centre[0]) + abs(rc[1] - centre[1]),
    )
    for defect in defects:
        if len(outcome.moves) >= max_moves:
            outcome.unresolved += 1
            continue
        reservoir = [
            site for site in array.occupied_sites() if not target.contains(*site)
        ]
        reservoir.sort(key=lambda rc: abs(rc[0] - defect[0]) + abs(rc[1] - defect[1]))
        routed = False
        for source in reservoir:
            legs = _legs_for(grid, source, defect)
            if legs is None:
                continue
            for leg in legs:
                move = ParallelMove.of([leg], tag=f"repair-{defect}")
                apply_parallel_move(grid, move)
                outcome.moves.append(move)
            outcome.filled += 1
            routed = True
            break
        if not routed:
            outcome.unresolved += 1
    return outcome


def _segment_counts(
    prefix: np.ndarray, lines: np.ndarray, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Atoms on each ``lines[i]`` within the L-leg between ``a`` and ``b``.

    The counted range is the reference's path-clearance window: the sites
    strictly between the endpoints plus the destination ``b`` — empty for
    ``a == b``.  ``prefix`` is an exclusive prefix sum along the leg axis
    with a leading zero column, so the count is two gathers.
    """
    lo = np.where(b > a, a + 1, b)
    hi = np.where(b > a, b, a - 1)
    return prefix[lines, hi + 1] - prefix[lines, lo]


def repair_defects(array: AtomArray, max_moves: int = 4096) -> RepairOutcome:
    """Fill remaining target defects of ``array`` in place.

    Defects are processed centre-outward; each is matched to the nearest
    reservoir atom that has a clear L-path.  Atoms that cannot be routed
    are counted as unresolved rather than raising — the caller decides
    whether a partial assembly is acceptable.

    Vectorised implementation: emits exactly the moves of
    :func:`repair_defects_reference` (bit-identical legs, tags, and
    order).  Per defect, both L-path clearance tests of *every* reservoir
    candidate are evaluated at once against prefix-summed occupancy
    (each test is two gathers instead of a Python slice scan), and the
    nearest routable candidate is picked with one stable argsort.
    """
    outcome = RepairOutcome()
    geometry = array.geometry
    target = geometry.target_mask.mask
    grid = array.grid
    height, width = grid.shape
    centre = ((geometry.height - 1) / 2.0, (geometry.width - 1) / 2.0)

    # np.argwhere is row-major, matching the reference's target_defects()
    # enumeration order for any mask shape.
    defects = np.argwhere(~grid & target)
    if defects.size:
        dist = np.abs(defects[:, 0] - centre[0]) + np.abs(defects[:, 1] - centre[1])
        defects = defects[np.argsort(dist, kind="stable")]

    outside_target = ~target
    # Exclusive prefix sums (leading zero) along rows / columns; the two
    # gathers in _segment_counts replace every per-candidate slice scan.
    # Both they and the reservoir only change when a route lands, so
    # unroutable defects reuse the previous defect's snapshot.
    row_prefix = np.zeros((height, width + 1), dtype=np.intp)
    col_prefix = np.zeros((width, height + 1), dtype=np.intp)
    grid_changed = True
    reservoir_rows = reservoir_cols = None

    for defect in defects:
        if len(outcome.moves) >= max_moves:
            outcome.unresolved += 1
            continue
        dr, dc = int(defect[0]), int(defect[1])
        if grid_changed:
            reservoir_rows, reservoir_cols = np.nonzero(grid & outside_target)
            np.cumsum(grid, axis=1, out=row_prefix[:, 1:])
            np.cumsum(grid.T, axis=1, out=col_prefix[:, 1:])
            grid_changed = False
        if not reservoir_rows.size:
            outcome.unresolved += 1
            continue
        # Nearest-first candidate order; stable sort keeps the row-major
        # tie-break of the reference's occupied_sites() ordering.
        order = np.argsort(
            np.abs(reservoir_rows - dr) + np.abs(reservoir_cols - dc),
            kind="stable",
        )
        rows = reservoir_rows[order]
        cols = reservoir_cols[order]

        to_col = np.full(rows.shape, dc)
        to_row = np.full(rows.shape, dr)
        # Row first: (r0,c0) -> (r0,dc) -> (dr,dc)
        row_first = (_segment_counts(row_prefix, rows, cols, to_col) == 0) & (
            _segment_counts(col_prefix, to_col, rows, to_row) == 0
        )
        # Column first: (r0,c0) -> (dr,c0) -> (dr,dc)
        col_first = (_segment_counts(col_prefix, cols, rows, to_row) == 0) & (
            _segment_counts(row_prefix, to_row, cols, to_col) == 0
        )
        routable = np.nonzero(row_first | col_first)[0]
        if not routable.size:
            outcome.unresolved += 1
            continue

        pick = routable[0]
        r0, c0 = int(rows[pick]), int(cols[pick])
        tag = f"repair-{(dr, dc)}"
        if row_first[pick]:
            if c0 != dc:
                outcome.moves.append(
                    ParallelMove.of([_horizontal_leg(r0, c0, dc)], tag=tag)
                )
            if r0 != dr:
                outcome.moves.append(
                    ParallelMove.of([_vertical_leg(dc, r0, dr)], tag=tag)
                )
        else:
            if r0 != dr:
                outcome.moves.append(
                    ParallelMove.of([_vertical_leg(c0, r0, dr)], tag=tag)
                )
            if c0 != dc:
                outcome.moves.append(
                    ParallelMove.of([_horizontal_leg(dr, c0, dc)], tag=tag)
                )
        # Net effect of the (at most two) legs: the source empties, the
        # defect fills; the L-corner occupancy is transient.
        grid[r0, c0] = False
        grid[dr, dc] = True
        grid_changed = True
        outcome.filled += 1
    return outcome
