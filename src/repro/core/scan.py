"""Functional model of the shift-kernel scan pass (paper Sec. IV-C).

One *pass* scans every line of a quadrant (rows in the row phase,
columns in the column phase) in quadrant-local coordinates, where index 0
is the site closest to the array centre.  For each line the scan records
the ordered *hole positions* that have at least one atom outboard of
them; holes with nothing outboard would be "empty shifts" and are dropped
at the source, matching the paper's "empty shifts are removed from the
final schedule".

Executing the k-th command of a line is a one-step *suffix shift*: by the
time it runs, ``k`` earlier holes of that line have been consumed, so the
hole scanned at position ``h_k`` now sits at ``h_k - k`` and every site
outboard of it moves one step inward.  Executing all commands of a line
fully compacts it toward index 0.

These functions are the single source of truth for the scan semantics:
:func:`scan_line` is the per-line reference the FPGA bit-level
shift-kernel model is unit-tested against, and :func:`scan_quadrant`
is the batched whole-quadrant formulation the scheduler hot path uses —
the two are property-tested equivalent.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True, eq=False)
class LineScanResult:
    """Scan output for one quadrant-local line.

    ``hole_positions`` are in pre-pass local coordinates, strictly
    ascending.  ``bits_before`` is the occupancy snapshot streamed to the
    transpose buffers (Fig. 6 shows the pre-shift bits flowing into the
    column buffers).

    Both are backed by ndarrays (``holes``/``bits``) and materialised as
    tuples lazily, so the scheduler hot path never pays for the Python
    object conversion it does not read.
    """

    line: int
    holes: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.intp))
    bits: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))
    n_atoms: int = 0

    @functools.cached_property
    def hole_positions(self) -> tuple[int, ...]:
        return tuple(int(h) for h in self.holes)

    @functools.cached_property
    def bits_before(self) -> tuple[bool, ...]:
        return tuple(bool(b) for b in self.bits)

    @property
    def n_commands(self) -> int:
        return int(self.holes.size)


def scan_line(
    bits: np.ndarray, line: int = 0, limit: int | None = None
) -> LineScanResult:
    """Scan one line; ``bits[0]`` is the site nearest the array centre.

    ``limit`` models the paper's ``s_en`` manual-control mechanism:
    scan stages at positions >= ``limit`` have their shift enable pulled
    low, "to prevent unnecessary shifts far from the center".  Holes
    beyond the limit therefore never become commands; a limit of the
    quadrant-local target extent suffices to assemble the target with
    fewer moves.
    """
    occ = np.asarray(bits, dtype=bool)
    n = occ.size
    if n == 0:
        return LineScanResult(line)
    # atoms_outboard[j] is True when any site > j holds an atom
    suffix_counts = np.cumsum(occ[::-1])[::-1]
    atoms_outboard = np.zeros(n, dtype=bool)
    atoms_outboard[:-1] = suffix_counts[1:] > 0
    holes = np.nonzero(~occ & atoms_outboard)[0]
    if limit is not None:
        holes = holes[holes < limit]
    return LineScanResult(
        line=line,
        holes=holes,
        bits=occ,
        n_atoms=int(occ.sum()),
    )


@dataclass(frozen=True, eq=False)
class QuadrantScan:
    """Batched scan of every line of one quadrant-local grid.

    ``hole_lines``/``hole_positions`` are parallel flat arrays holding
    every command of the quadrant in scan order: line-major, positions
    strictly ascending within a line (exactly the concatenation of the
    per-line :func:`scan_line` outputs).  ``line_counts[u]`` is the
    command count of line ``u`` — zero-command lines are represented, so
    callers can account for pipeline occupancy.
    """

    axis: int
    n_lines: int
    n_positions: int
    hole_lines: np.ndarray
    hole_positions: np.ndarray
    line_counts: np.ndarray
    lines_view: np.ndarray  # occupancy, shape (n_lines, n_positions)

    @property
    def n_commands(self) -> int:
        return int(self.hole_positions.size)

    @property
    def n_scanned_bits(self) -> int:
        return self.n_lines * self.n_positions

    def holes_of_line(self, line: int) -> np.ndarray:
        """The ascending hole positions of one line."""
        start = int(self.line_counts[:line].sum())
        return self.hole_positions[start : start + int(self.line_counts[line])]

    def results(self) -> list[LineScanResult]:
        """Per-line :class:`LineScanResult` bridge (lazy tuples)."""
        splits = np.split(self.hole_positions, np.cumsum(self.line_counts)[:-1])
        atoms = self.lines_view.sum(axis=1)
        return [
            LineScanResult(
                line=u,
                holes=splits[u],
                bits=self.lines_view[u],
                n_atoms=int(atoms[u]),
            )
            for u in range(self.n_lines)
        ]


def _apply_limit(holes_mask: np.ndarray, limit) -> None:
    """Zero out hole candidates at positions >= the ``s_en`` bound.

    ``limit`` is a scalar (one bound for every line, the paper's manual
    ``s_en`` control) or a 1-D array of per-line bounds (the mask-derived
    generalisation) indexed like the lines axis of ``holes_mask`` —
    second-to-last axis, so the same broadcast serves the single-trial
    ``(line, position)`` and the batched ``(trial, line, position)``
    layouts.
    """
    bounds = np.asarray(limit)
    n_lines, n_positions = holes_mask.shape[-2:]
    if bounds.ndim == 0:
        holes_mask[..., max(0, int(bounds)) :] = False
        return
    if bounds.shape != (n_lines,):
        raise ValueError(
            f"per-line scan limit has shape {bounds.shape}, "
            f"expected ({n_lines},)"
        )
    positions = np.arange(n_positions)
    holes_mask &= positions[None, :] < bounds[:, None]


def scan_quadrant(
    local_grid: np.ndarray, axis: int, limit=None
) -> QuadrantScan:
    """Scan every line of a quadrant-local grid along ``axis``, batched.

    Semantically identical to per-line :func:`scan_line` over the grid
    (property-tested), but computes all lines' hole positions with one
    2-D cumulative sum and one ``nonzero`` instead of ``n_lines``
    separate scans.  ``axis=0`` scans rows (lines indexed by ``u``,
    positions along ``v``); ``axis=1`` scans columns.  ``limit`` is the
    ``s_en`` scan bound — a scalar (see :func:`scan_line`) or an array
    of per-line bounds (see :func:`_apply_limit`).
    """
    grid = np.asarray(local_grid, dtype=bool)
    if axis == 1:
        grid = np.ascontiguousarray(grid.T)
    elif axis != 0:
        raise ValueError(f"axis must be 0 or 1, got {axis}")
    n_lines, n_positions = grid.shape
    # atoms_outboard[u, j] is True when any site of line u beyond j holds
    # an atom; a hole is an empty site with something outboard of it.
    outboard = np.zeros_like(grid)
    if n_positions:
        suffix_counts = np.cumsum(grid[:, ::-1], axis=1)[:, ::-1]
        outboard[:, :-1] = suffix_counts[:, 1:] > 0
    holes_mask = ~grid & outboard
    if limit is not None:
        _apply_limit(holes_mask, limit)
    hole_lines, hole_positions = np.nonzero(holes_mask)
    return QuadrantScan(
        axis=axis,
        n_lines=n_lines,
        n_positions=n_positions,
        hole_lines=hole_lines,
        hole_positions=hole_positions,
        line_counts=np.bincount(hole_lines, minlength=n_lines),
        lines_view=grid,
    )


@dataclass(frozen=True, eq=False)
class BatchQuadrantScan:
    """Batched scan of one quadrant across a stack of same-shape trials.

    The trial axis leads everywhere: ``lines_view``/``holes_mask`` are
    ``(trial, line, position)`` and the flat command arrays
    (``hole_trials``/``hole_lines``/``hole_positions``) hold every
    command of every trial in ``np.nonzero`` lexicographic order —
    trial-major, then line-major, positions strictly ascending within a
    line.  Restricted to any one trial this is exactly the flat layout
    of :class:`QuadrantScan`, which is what makes the batched scheduler
    bit-compatible with the single-trial path.
    """

    axis: int
    n_trials: int
    n_lines: int
    n_positions: int
    hole_trials: np.ndarray
    hole_lines: np.ndarray
    hole_positions: np.ndarray
    line_counts: np.ndarray  # command count per (trial, line)
    holes_mask: np.ndarray  # shape (n_trials, n_lines, n_positions)
    lines_view: np.ndarray  # occupancy, shape (n_trials, n_lines, n_positions)

    @property
    def n_commands(self) -> int:
        return int(self.hole_positions.size)

    @property
    def n_scanned_bits(self) -> int:
        """Scanned bits of ONE trial (every trial scans the same extent)."""
        return self.n_lines * self.n_positions

    def commands_per_trial(self) -> np.ndarray:
        return self.line_counts.sum(axis=1)


def scan_quadrant_batch(
    local_grids: np.ndarray, axis: int, limit=None
) -> BatchQuadrantScan:
    """Scan every line of every trial's quadrant-local grid in one sweep.

    ``local_grids`` stacks same-geometry quadrant-local grids along a
    leading trial axis; the cumulative sums and the hole extraction of
    :func:`scan_quadrant` simply gain that axis, so N trials cost one
    NumPy dispatch instead of N.  Per trial the output is identical to
    :func:`scan_quadrant` (property-tested).
    """
    grids = np.asarray(local_grids, dtype=bool)
    if axis == 1:
        grids = np.ascontiguousarray(grids.transpose(0, 2, 1))
    elif axis != 0:
        raise ValueError(f"axis must be 0 or 1, got {axis}")
    n_trials, n_lines, n_positions = grids.shape
    outboard = np.zeros_like(grids)
    if n_positions:
        suffix_counts = np.cumsum(grids[:, :, ::-1], axis=2)[:, :, ::-1]
        outboard[:, :, :-1] = suffix_counts[:, :, 1:] > 0
    holes_mask = ~grids & outboard
    if limit is not None:
        _apply_limit(holes_mask, limit)
    hole_trials, hole_lines, hole_positions = np.nonzero(holes_mask)
    return BatchQuadrantScan(
        axis=axis,
        n_trials=n_trials,
        n_lines=n_lines,
        n_positions=n_positions,
        hole_trials=hole_trials,
        hole_lines=hole_lines,
        hole_positions=hole_positions,
        line_counts=holes_mask.sum(axis=2),
        holes_mask=holes_mask,
        lines_view=grids,
    )


def scan_axis(
    local_grid: np.ndarray, axis: int, limit=None
) -> list[LineScanResult]:
    """Scan every line of a quadrant-local grid along ``axis``.

    ``axis=0`` scans rows (a row pass: lines indexed by ``u``, positions
    along ``v``); ``axis=1`` scans columns.  Lines that need no command
    still appear in the result (with an empty command list) so callers
    can account for pipeline occupancy.  ``limit`` is the per-line
    ``s_en`` scan bound, see :func:`scan_line`.
    """
    return scan_quadrant(local_grid, axis, limit=limit).results()


def compact_line(bits: np.ndarray) -> np.ndarray:
    """Reference full compaction of a line toward index 0.

    Equivalent to executing every command from :func:`scan_line`; used by
    property tests as an independent oracle.
    """
    occ = np.asarray(bits, dtype=bool)
    out = np.zeros_like(occ)
    out[: int(occ.sum())] = True
    return out


def current_hole_position(hole: int, executed_before: int) -> int:
    """Where a scanned hole sits after ``executed_before`` suffix shifts.

    Each executed command of the same line consumed one hole below this
    one, pulling the whole outboard content (this hole included) one site
    inward.
    """
    return hole - executed_before


def is_prefix_line(bits: np.ndarray) -> bool:
    """True when the line is fully compacted (all atoms form a prefix)."""
    occ = np.asarray(bits, dtype=bool)
    count = int(occ.sum())
    return bool(occ[:count].all())


def is_young_diagram(local_grid: np.ndarray) -> bool:
    """True when rows and columns are all prefixes (compaction fixpoint)."""
    grid = np.asarray(local_grid, dtype=bool)
    rows_ok = all(is_prefix_line(grid[u, :]) for u in range(grid.shape[0]))
    cols_ok = all(is_prefix_line(grid[:, v]) for v in range(grid.shape[1]))
    return rows_ok and cols_ok
