"""Functional model of the shift-kernel scan pass (paper Sec. IV-C).

One *pass* scans every line of a quadrant (rows in the row phase,
columns in the column phase) in quadrant-local coordinates, where index 0
is the site closest to the array centre.  For each line the scan records
the ordered *hole positions* that have at least one atom outboard of
them; holes with nothing outboard would be "empty shifts" and are dropped
at the source, matching the paper's "empty shifts are removed from the
final schedule".

Executing the k-th command of a line is a one-step *suffix shift*: by the
time it runs, ``k`` earlier holes of that line have been consumed, so the
hole scanned at position ``h_k`` now sits at ``h_k - k`` and every site
outboard of it moves one step inward.  Executing all commands of a line
fully compacts it toward index 0.

These functions are the single source of truth for the scan semantics:
the pure-Python scheduler calls them directly and the FPGA bit-level
shift-kernel model is unit-tested against them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LineScanResult:
    """Scan output for one quadrant-local line.

    ``hole_positions`` are in pre-pass local coordinates, strictly
    ascending.  ``bits_before`` is the occupancy snapshot streamed to the
    transpose buffers (Fig. 6 shows the pre-shift bits flowing into the
    column buffers).
    """

    line: int
    hole_positions: tuple[int, ...]
    bits_before: tuple[bool, ...]
    n_atoms: int

    @property
    def n_commands(self) -> int:
        return len(self.hole_positions)


def scan_line(
    bits: np.ndarray, line: int = 0, limit: int | None = None
) -> LineScanResult:
    """Scan one line; ``bits[0]`` is the site nearest the array centre.

    ``limit`` models the paper's ``s_en`` manual-control mechanism:
    scan stages at positions >= ``limit`` have their shift enable pulled
    low, "to prevent unnecessary shifts far from the center".  Holes
    beyond the limit therefore never become commands; a limit of the
    quadrant-local target extent suffices to assemble the target with
    fewer moves.
    """
    occ = np.asarray(bits, dtype=bool)
    n = occ.size
    if n == 0:
        return LineScanResult(line, (), (), 0)
    # atoms_outboard[j] is True when any site > j holds an atom
    suffix_counts = np.cumsum(occ[::-1])[::-1]
    atoms_outboard = np.zeros(n, dtype=bool)
    atoms_outboard[:-1] = suffix_counts[1:] > 0
    holes = np.nonzero(~occ & atoms_outboard)[0]
    if limit is not None:
        holes = holes[holes < limit]
    return LineScanResult(
        line=line,
        hole_positions=tuple(int(h) for h in holes),
        bits_before=tuple(bool(b) for b in occ),
        n_atoms=int(occ.sum()),
    )


def scan_axis(
    local_grid: np.ndarray, axis: int, limit: int | None = None
) -> list[LineScanResult]:
    """Scan every line of a quadrant-local grid along ``axis``.

    ``axis=0`` scans rows (a row pass: lines indexed by ``u``, positions
    along ``v``); ``axis=1`` scans columns.  Lines that need no command
    still appear in the result (with an empty command list) so callers
    can account for pipeline occupancy.  ``limit`` is the per-line
    ``s_en`` scan bound, see :func:`scan_line`.
    """
    grid = np.asarray(local_grid, dtype=bool)
    if axis == 0:
        return [
            scan_line(grid[u, :], line=u, limit=limit)
            for u in range(grid.shape[0])
        ]
    if axis == 1:
        return [
            scan_line(grid[:, v], line=v, limit=limit)
            for v in range(grid.shape[1])
        ]
    raise ValueError(f"axis must be 0 or 1, got {axis}")


def compact_line(bits: np.ndarray) -> np.ndarray:
    """Reference full compaction of a line toward index 0.

    Equivalent to executing every command from :func:`scan_line`; used by
    property tests as an independent oracle.
    """
    occ = np.asarray(bits, dtype=bool)
    out = np.zeros_like(occ)
    out[: int(occ.sum())] = True
    return out


def current_hole_position(hole: int, executed_before: int) -> int:
    """Where a scanned hole sits after ``executed_before`` suffix shifts.

    Each executed command of the same line consumed one hole below this
    one, pulling the whole outboard content (this hole included) one site
    inward.
    """
    return hole - executed_before


def is_prefix_line(bits: np.ndarray) -> bool:
    """True when the line is fully compacted (all atoms form a prefix)."""
    occ = np.asarray(bits, dtype=bool)
    count = int(occ.sum())
    return bool(occ[:count].all())


def is_young_diagram(local_grid: np.ndarray) -> bool:
    """True when rows and columns are all prefixes (compaction fixpoint)."""
    grid = np.asarray(local_grid, dtype=bool)
    rows_ok = all(is_prefix_line(grid[u, :]) for u in range(grid.shape[0]))
    cols_ok = all(is_prefix_line(grid[:, v]) for v in range(grid.shape[1]))
    return rows_ok and cols_ok
