"""QRM core: scan kernel, pass batching, schedulers, repair stage."""

from repro.core.passes import Phase, PassOutcome, run_pass
from repro.core.qrm import QrmScheduler, rearrange
from repro.core.repair import RepairOutcome, repair_defects
from repro.core.result import IterationStats, RearrangementResult
from repro.core.scan import (
    LineScanResult,
    compact_line,
    current_hole_position,
    is_prefix_line,
    is_young_diagram,
    scan_axis,
    scan_line,
)
from repro.core.typical import TypicalScheduler

__all__ = [
    "IterationStats",
    "LineScanResult",
    "PassOutcome",
    "Phase",
    "QrmScheduler",
    "RearrangementResult",
    "RepairOutcome",
    "TypicalScheduler",
    "compact_line",
    "current_hole_position",
    "is_prefix_line",
    "is_young_diagram",
    "rearrange",
    "repair_defects",
    "run_pass",
    "scan_axis",
    "scan_line",
]
