"""QRM core: scan kernel, pass batching, schedulers, repair stage."""

from repro.core.batch import BatchQrmScheduler
from repro.core.passes import (
    MoveInterner,
    Phase,
    PassOutcome,
    batch_order_key,
    run_pass,
    run_pass_batch,
    run_pass_reference,
)
from repro.core.qrm import QrmScheduler, rearrange
from repro.core.repair import RepairOutcome, repair_defects
from repro.core.result import IterationStats, RearrangementResult
from repro.core.scan import (
    LineScanResult,
    QuadrantScan,
    compact_line,
    current_hole_position,
    is_prefix_line,
    is_young_diagram,
    scan_axis,
    scan_line,
    scan_quadrant,
)
from repro.core.typical import TypicalScheduler

__all__ = [
    "BatchQrmScheduler",
    "IterationStats",
    "LineScanResult",
    "MoveInterner",
    "PassOutcome",
    "Phase",
    "QrmScheduler",
    "QuadrantScan",
    "RearrangementResult",
    "RepairOutcome",
    "TypicalScheduler",
    "batch_order_key",
    "compact_line",
    "current_hole_position",
    "is_prefix_line",
    "is_young_diagram",
    "rearrange",
    "repair_defects",
    "run_pass",
    "run_pass_batch",
    "run_pass_reference",
    "scan_axis",
    "scan_line",
    "scan_quadrant",
]
