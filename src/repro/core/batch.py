"""Cross-trial batched QRM scheduling engine.

PRs 2-5 vectorised every per-grid hot path, leaving NumPy *dispatch* as
the dominant cost of a single small-to-medium schedule: a 64x64 QRM
analysis issues on the order of 500 NumPy calls whose per-call fixed
overhead dwarfs the array arithmetic.  :class:`BatchQrmScheduler`
amortises that dispatch across trials — the software analogue of the
paper's pipelined FPGA data path, which keeps the shift kernel busy by
streaming many rows through one set of functional units.

The engine stacks N same-geometry occupancy grids into one 3-D
``(trial, row, col)`` array and runs the whole QRM iteration loop on the
stack: every scan cumsum, drain ``lexsort`` and gather/scatter
compaction of :func:`~repro.core.passes.run_pass` simply gains the
leading trial axis (see :func:`~repro.core.passes.run_pass_batch`), so N
trials cost one NumPy dispatch sequence instead of N.  Trials converge
independently: a trial whose row and column passes both emit zero
commands leaves the active stack while the rest keep iterating.

Per trial the emitted :class:`~repro.core.result.RearrangementResult` is
bit-identical to a single-trial :class:`~repro.core.qrm.QrmScheduler`
call — schedules, tags, move order, iteration statistics, convergence
and repair all match, which makes the single-trial path the differential
oracle for this engine (property-tested in
``tests/test_batch_equivalence.py`` per the PR 3 convention).  The one
deliberate difference is the wall-time convention: ``wall_time_s`` is
the *amortised* per-trial time, total batch wall-clock divided by N, so
batched and serial timings stay directly comparable.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

from repro.aod.schedule import MoveSchedule
from repro.config import DEFAULT_QRM_PARAMETERS, QrmParameters, ScanMode
from repro.core.passes import MoveInterner, Phase, run_pass_batch
from repro.core.result import IterationStats, RearrangementResult
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry, Quadrant


class BatchQrmScheduler:
    """Schedule a stack of same-geometry arrays in one batched analysis.

    The batch-first counterpart of :class:`~repro.core.qrm.QrmScheduler`
    (always the vectorised pass — the reference oracle stays
    single-trial).  One instance holds a :class:`MoveInterner`, so
    repeated ``schedule_batch`` calls on the same geometry keep sharing
    the interned shift/tag objects.
    """

    name = "qrm"

    def __init__(
        self,
        geometry: ArrayGeometry,
        params: QrmParameters = DEFAULT_QRM_PARAMETERS,
    ):
        from repro.core.qrm import resolve_scan_limits

        self.geometry = geometry
        self.params = params
        self.frames = {q: geometry.quadrant_frame(q) for q in Quadrant}
        self._scan_limits = resolve_scan_limits(geometry, params.scan_limit)
        self._interner = MoveInterner()

    # -- public API --------------------------------------------------------

    def schedule(self, array: AtomArray) -> RearrangementResult:
        """Single-array convenience: a batch of one."""
        return self.schedule_batch([array])[0]

    def schedule_batch(
        self, arrays: Iterable[AtomArray]
    ) -> list[RearrangementResult]:
        """Analyse every array of the batch and emit per-trial results.

        Results are returned in input order; each carries the amortised
        per-trial wall time (total batch time / N).
        """
        batch = list(arrays)
        if not batch:
            return []
        for array in batch:
            if array.geometry != self.geometry:
                raise ValueError(
                    "array geometry does not match the scheduler's geometry"
                )
        start = time.perf_counter()
        results = self._analyse_batch(batch)
        amortised = (time.perf_counter() - start) / len(batch)
        for result in results:
            result.wall_time_s = amortised
        return results

    # -- internals ---------------------------------------------------------

    def _analyse_batch(
        self, batch: Sequence[AtomArray]
    ) -> list[RearrangementResult]:
        n_trials = len(batch)
        live = np.stack([array.grid for array in batch])
        moves = [
            MoveSchedule(self.geometry, algorithm=self.name)
            for _ in range(n_trials)
        ]
        iteration_stats: list[list[IterationStats]] = [[] for _ in range(n_trials)]
        pass_records: list[list] = [[] for _ in range(n_trials)]
        converged = [False] * n_trials
        analysis_ops = [0] * n_trials
        pipelined = self.params.scan_mode is ScanMode.PIPELINED

        # Trials still iterating; a trial leaves once both passes of an
        # iteration emit zero commands.  Because every trial starts at
        # iteration 0 together and only ever *leaves*, the shared loop
        # index below equals each trial's own iteration index.
        active = np.arange(n_trials)
        for index in range(self.params.n_iterations):
            sub = live if active.size == n_trials else live[active]
            snapshot = sub.copy() if pipelined else None

            row_outcomes = run_pass_batch(
                sub,
                self.frames,
                Phase.ROW,
                scan_source=sub,
                merge_mirror=self.params.merge_mirror_quadrants,
                guard=False,
                scan_limit=self._scan_limits[Phase.ROW],
                interner=self._interner,
            )
            col_outcomes = run_pass_batch(
                sub,
                self.frames,
                Phase.COLUMN,
                scan_source=snapshot if pipelined else sub,
                merge_mirror=self.params.merge_mirror_quadrants,
                guard=pipelined,
                scan_limit=self._scan_limits[Phase.COLUMN],
                interner=self._interner,
            )
            if sub is not live:
                live[active] = sub

            still_active: list[int] = []
            for k, trial in enumerate(active.tolist()):
                row_outcome = row_outcomes[k]
                col_outcome = col_outcomes[k]
                moves[trial].extend(row_outcome.moves)
                moves[trial].extend(col_outcome.moves)
                pass_records[trial].extend((row_outcome, col_outcome))
                analysis_ops[trial] += (
                    row_outcome.n_scanned_bits
                    + col_outcome.n_scanned_bits
                    + row_outcome.n_commands
                    + col_outcome.n_commands
                )
                iteration_stats[trial].append(
                    IterationStats(
                        index=index,
                        n_row_commands=row_outcome.n_commands,
                        n_col_commands=col_outcome.n_commands,
                        n_row_batches=row_outcome.n_batches,
                        n_col_batches=col_outcome.n_batches,
                        n_skipped_stale=col_outcome.n_skipped_stale,
                        n_skipped_empty=(
                            row_outcome.n_skipped_empty
                            + col_outcome.n_skipped_empty
                        ),
                    )
                )
                if row_outcome.n_commands == 0 and col_outcome.n_commands == 0:
                    converged[trial] = True
                else:
                    still_active.append(trial)
            active = np.asarray(still_active, dtype=np.intp)
            if not active.size:
                break

        results: list[RearrangementResult] = []
        for trial in range(n_trials):
            final = AtomArray(self.geometry, live[trial])
            result = RearrangementResult(
                algorithm=self.name,
                initial=batch[trial].copy(),
                final=final,
                schedule=moves[trial],
                iterations=iteration_stats[trial],
                converged=converged[trial],
                analysis_ops=analysis_ops[trial],
                pass_outcomes=pass_records[trial],
            )
            if self.params.enable_repair:
                from repro.core.repair import repair_defects

                repair_outcome = repair_defects(
                    final, max_moves=self.params.max_repair_moves
                )
                moves[trial].extend(repair_outcome.moves)
                result.repair_moves = len(repair_outcome.moves)
                result.unresolved_defects = repair_outcome.unresolved
            results.append(result)
        return results
