"""The Quadrant-based Rearrangement Method — the paper's contribution.

:class:`QrmScheduler` implements Sec. III-B / IV of the paper in pure
Python:

1. split the array into four quadrants and flip each so the target corner
   sits at the quadrant-local origin (handled by the
   :class:`~repro.lattice.geometry.QuadrantFrame` transforms);
2. per iteration, run a row-wise scan pass then a column-wise scan pass
   of the shift kernel over every quadrant, batch the resulting commands
   (merging mirror quadrants), and execute them;
3. in the paper-faithful ``PIPELINED`` scan mode the column pass analyses
   the iteration-start snapshot (the transpose stream of Fig. 6), so a
   few iterations are needed — the paper uses four;
4. restore everything to full-array coordinates (the frames do this per
   command) and emit one validated :class:`~repro.aod.MoveSchedule`.

The optional repair stage (not part of the paper's QRM) fixes residual
target defects with individual atom moves; see :mod:`repro.core.repair`.
"""

from __future__ import annotations

import warnings
from typing import Callable, Iterable

from repro.aod.schedule import MoveSchedule
from repro.config import (
    DEFAULT_QRM_PARAMETERS,
    MASK_SCAN_LIMIT,
    QrmParameters,
    ScanMode,
)
from repro.core.passes import Phase, PassOutcome, run_pass
from repro.core.result import IterationStats, RearrangementResult, timed_schedule
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry, Quadrant

#: Signature of a pass implementation (run_pass / run_pass_reference).
PassRunner = Callable[..., PassOutcome]


def resolve_scan_limits(
    geometry: ArrayGeometry, scan_limit
) -> dict[Phase, object]:
    """Resolve ``QrmParameters.scan_limit`` into per-phase pass arguments.

    Ints and ``None`` pass through unchanged; the ``"mask"`` sentinel
    becomes one ``{Quadrant: per-line bounds}`` mapping per phase,
    derived once from the geometry's target mask (row passes scan local
    rows, column passes scan local columns, so the two phases carry
    different line sets).
    """
    if scan_limit == MASK_SCAN_LIMIT:
        return {
            Phase.ROW: geometry.quadrant_mask_limits(axis=0),
            Phase.COLUMN: geometry.quadrant_mask_limits(axis=1),
        }
    return {Phase.ROW: scan_limit, Phase.COLUMN: scan_limit}


class QrmScheduler:
    """Compute a rearrangement schedule with the quadrant method.

    ``pass_runner`` selects the pass implementation: the vectorised
    :func:`~repro.core.passes.run_pass` by default, or
    :func:`~repro.core.passes.run_pass_reference` for the per-command
    oracle — the perf benchmark and the bit-identity property tests run
    both and compare.
    """

    name = "qrm"

    def __init__(
        self,
        geometry: ArrayGeometry,
        params: QrmParameters = DEFAULT_QRM_PARAMETERS,
        pass_runner: PassRunner = run_pass,
    ):
        self.geometry = geometry
        self.params = params
        self.pass_runner = pass_runner
        self.frames = {q: geometry.quadrant_frame(q) for q in Quadrant}
        self._scan_limits = resolve_scan_limits(geometry, params.scan_limit)
        self._batch_engine = None

    def schedule(self, array: AtomArray) -> RearrangementResult:
        """Analyse ``array`` and produce the full movement schedule."""
        if array.geometry != self.geometry:
            raise ValueError("array geometry does not match the scheduler's geometry")
        return timed_schedule(lambda: self._analyse(array))

    def schedule_batch(self, arrays: Iterable[AtomArray]) -> list[RearrangementResult]:
        """Batch-first entry point: schedule a stack of arrays in one call.

        With the production pass runner this delegates to the cross-trial
        :class:`~repro.core.batch.BatchQrmScheduler`, whose per-trial
        results are bit-identical to looping :meth:`schedule` but amortise
        NumPy dispatch across the stack.  The engine is constructed once
        and kept on the instance: its ``MoveInterner`` tables only pay off
        when they survive across calls, which is what makes a cached
        scheduler in the service's per-geometry LRU actually *warm*.  Any
        other ``pass_runner`` (the per-command reference oracle) falls
        back to the loop — the oracle stays strictly single-trial.
        """
        if self.pass_runner is run_pass:
            if self._batch_engine is None:
                from repro.core.batch import BatchQrmScheduler

                self._batch_engine = BatchQrmScheduler(self.geometry, self.params)
            return self._batch_engine.schedule_batch(arrays)
        return [self.schedule(array) for array in arrays]

    def _analyse(self, array: AtomArray) -> RearrangementResult:
        live = array.copy()
        moves = MoveSchedule(self.geometry, algorithm=self.name)
        iteration_stats: list[IterationStats] = []
        pass_records: list = []
        converged = False
        analysis_ops = 0
        pipelined = self.params.scan_mode is ScanMode.PIPELINED

        for index in range(self.params.n_iterations):
            snapshot = live.grid.copy() if pipelined else None

            row_outcome = self.pass_runner(
                live,
                self.frames,
                Phase.ROW,
                scan_source=live.grid,
                merge_mirror=self.params.merge_mirror_quadrants,
                guard=False,
                scan_limit=self._scan_limits[Phase.ROW],
            )
            col_source = snapshot if pipelined else live.grid
            col_outcome = self.pass_runner(
                live,
                self.frames,
                Phase.COLUMN,
                scan_source=col_source,
                merge_mirror=self.params.merge_mirror_quadrants,
                guard=pipelined,
                scan_limit=self._scan_limits[Phase.COLUMN],
            )

            moves.extend(row_outcome.moves)
            moves.extend(col_outcome.moves)
            pass_records.extend((row_outcome, col_outcome))
            analysis_ops += (
                row_outcome.n_scanned_bits
                + col_outcome.n_scanned_bits
                + row_outcome.n_commands
                + col_outcome.n_commands
            )
            iteration_stats.append(
                IterationStats(
                    index=index,
                    n_row_commands=row_outcome.n_commands,
                    n_col_commands=col_outcome.n_commands,
                    n_row_batches=row_outcome.n_batches,
                    n_col_batches=col_outcome.n_batches,
                    n_skipped_stale=col_outcome.n_skipped_stale,
                    n_skipped_empty=(
                        row_outcome.n_skipped_empty + col_outcome.n_skipped_empty
                    ),
                )
            )
            if row_outcome.n_commands == 0 and col_outcome.n_commands == 0:
                converged = True
                break

        result = RearrangementResult(
            algorithm=self.name,
            initial=array.copy(),
            final=live,
            schedule=moves,
            iterations=iteration_stats,
            converged=converged,
            analysis_ops=analysis_ops,
            pass_outcomes=pass_records,
        )

        if self.params.enable_repair:
            from repro.core.repair import repair_defects

            repair_outcome = repair_defects(
                live, max_moves=self.params.max_repair_moves
            )
            moves.extend(repair_outcome.moves)
            result.repair_moves = len(repair_outcome.moves)
            result.unresolved_defects = repair_outcome.unresolved

        return result


def rearrange(
    array: AtomArray,
    params: QrmParameters = DEFAULT_QRM_PARAMETERS,
) -> RearrangementResult:
    """Deprecated one-call wrapper around :class:`QrmScheduler`.

    .. deprecated::
        Construct schedulers through the registry instead —
        ``get_algorithm("qrm", array.geometry)`` — and prefer the batch
        API (``schedule_batch``) for more than one array.  This shim
        keeps old call sites working while they migrate.
    """
    warnings.warn(
        "rearrange() is deprecated; resolve the scheduler through "
        "repro.baselines.get_algorithm('qrm', geometry) and use "
        "schedule()/schedule_batch() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return QrmScheduler(array.geometry, params).schedule(array)
