"""Trap-array substrate: geometry, occupancy state, loading, metrics."""

from repro.lattice.array import AtomArray
from repro.lattice.geometry import (
    ArrayGeometry,
    Direction,
    Quadrant,
    QuadrantFrame,
    Region,
)
from repro.lattice.loading import (
    DEFAULT_FILL,
    LOADERS,
    apply_loss,
    as_rng,
    load_checkerboard,
    load_exact,
    load_feasible,
    load_gradient,
    load_named,
    load_poisson_clusters,
    load_uniform,
)
from repro.lattice.mask import TargetMask
from repro.lattice.metrics import (
    ArrayStats,
    defect_count,
    fill_fraction,
    is_defect_free,
    mask_fill_fraction,
    summarize,
    surplus_atoms,
    target_fill_fraction,
)
from repro.lattice.render import render_array, render_side_by_side

__all__ = [
    "ArrayGeometry",
    "ArrayStats",
    "AtomArray",
    "DEFAULT_FILL",
    "Direction",
    "LOADERS",
    "Quadrant",
    "QuadrantFrame",
    "Region",
    "TargetMask",
    "apply_loss",
    "as_rng",
    "defect_count",
    "fill_fraction",
    "is_defect_free",
    "load_checkerboard",
    "load_exact",
    "load_feasible",
    "load_gradient",
    "load_named",
    "load_poisson_clusters",
    "load_uniform",
    "mask_fill_fraction",
    "render_array",
    "render_side_by_side",
    "summarize",
    "surplus_atoms",
    "target_fill_fraction",
]
