"""Geometry of the optical-trap array: regions, directions, quadrants.

The paper works on a ``W x W`` square lattice of optical traps with a
centred ``T x T`` target region, split into four quadrants (NW, NE, SW,
SE).  Each quadrant is given a *local frame* whose origin ``(u=0, v=0)``
is the quadrant corner adjacent to the array centre, with both local axes
pointing away from the centre.  In this frame the QRM compression always
moves atoms toward index 0 along both axes, which is what lets a single
shift-kernel schedule serve all four quadrants (paper Fig. 4).
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import GeometryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lattice.mask import TargetMask


class Direction(enum.Enum):
    """Compass direction on the trap grid.

    ``NORTH`` decreases the row index, ``SOUTH`` increases it; ``WEST``
    decreases the column index, ``EAST`` increases it.  This matches the
    usual matrix convention with row 0 drawn at the top.
    """

    NORTH = "N"
    SOUTH = "S"
    EAST = "E"
    WEST = "W"

    @property
    def delta(self) -> tuple[int, int]:
        """Unit step ``(d_row, d_col)`` taken by an atom moving this way."""
        return _DELTAS[self]

    @property
    def is_horizontal(self) -> bool:
        return self in (Direction.EAST, Direction.WEST)

    @property
    def opposite(self) -> "Direction":
        return _OPPOSITES[self]


_DELTAS = {
    Direction.NORTH: (-1, 0),
    Direction.SOUTH: (1, 0),
    Direction.EAST: (0, 1),
    Direction.WEST: (0, -1),
}

_OPPOSITES = {
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
}


class Quadrant(enum.Enum):
    """The four quadrants of the trap array."""

    NW = "NW"
    NE = "NE"
    SW = "SW"
    SE = "SE"

    @property
    def is_north(self) -> bool:
        return self in (Quadrant.NW, Quadrant.NE)

    @property
    def is_west(self) -> bool:
        return self in (Quadrant.NW, Quadrant.SW)

    @property
    def horizontal_mirror(self) -> "Quadrant":
        """The quadrant sharing this one's column range (N/S mirror)."""
        return _H_MIRROR[self]

    @property
    def vertical_mirror(self) -> "Quadrant":
        """The quadrant sharing this one's row range (E/W mirror)."""
        return _V_MIRROR[self]


_H_MIRROR = {
    Quadrant.NW: Quadrant.SW,
    Quadrant.SW: Quadrant.NW,
    Quadrant.NE: Quadrant.SE,
    Quadrant.SE: Quadrant.NE,
}

_V_MIRROR = {
    Quadrant.NW: Quadrant.NE,
    Quadrant.NE: Quadrant.NW,
    Quadrant.SW: Quadrant.SE,
    Quadrant.SE: Quadrant.SW,
}


@dataclass(frozen=True)
class Region:
    """An axis-aligned rectangle of trap sites, in full-array coordinates."""

    row0: int
    col0: int
    height: int
    width: int

    def __post_init__(self) -> None:
        if self.height < 0 or self.width < 0:
            raise GeometryError(
                f"region sides must be non-negative, got {self.height}x{self.width}"
            )

    @property
    def n_sites(self) -> int:
        return self.height * self.width

    @property
    def row_slice(self) -> slice:
        return slice(self.row0, self.row0 + self.height)

    @property
    def col_slice(self) -> slice:
        return slice(self.col0, self.col0 + self.width)

    @property
    def row_stop(self) -> int:
        return self.row0 + self.height

    @property
    def col_stop(self) -> int:
        return self.col0 + self.width

    def contains(self, row: int, col: int) -> bool:
        return (
            self.row0 <= row < self.row0 + self.height
            and self.col0 <= col < self.col0 + self.width
        )

    def sites(self) -> list[tuple[int, int]]:
        """All ``(row, col)`` pairs inside the region, row-major."""
        return [
            (r, c)
            for r in range(self.row0, self.row_stop)
            for c in range(self.col0, self.col_stop)
        ]

    def intersect(self, other: "Region") -> "Region":
        r0 = max(self.row0, other.row0)
        c0 = max(self.col0, other.col0)
        r1 = min(self.row_stop, other.row_stop)
        c1 = min(self.col_stop, other.col_stop)
        return Region(r0, c0, max(0, r1 - r0), max(0, c1 - c0))


@dataclass(frozen=True)
class QuadrantFrame:
    """Mapping between one quadrant's local frame and full-array coordinates.

    Local coordinates are ``(u, v)`` with ``u`` along rows and ``v`` along
    columns, both in ``[0, n_rows) x [0, n_cols)``.  ``(0, 0)`` is the
    quadrant corner adjacent to the array centre; larger ``u``/``v`` move
    away from the centre.  A QRM shift toward smaller ``v`` therefore
    always moves atoms toward the centre column, whatever the quadrant.
    """

    quadrant: Quadrant
    row0: int
    col0: int
    n_rows: int
    n_cols: int
    flip_rows: bool
    flip_cols: bool

    @functools.cached_property
    def affine(self) -> tuple[int, int, int, int]:
        """The frame transform as ``(row_base, row_sign, col_base, col_sign)``.

        ``to_full(u, v) == (row_base + row_sign * u, col_base + col_sign * v)``
        for every local coordinate, so hot paths can map whole batches of
        coordinates with plain int (or NumPy array) arithmetic instead of
        one :meth:`to_full` call per site.
        """
        row_sign = -1 if self.flip_rows else 1
        col_sign = -1 if self.flip_cols else 1
        row_base = self.row0 + (self.n_rows - 1 if self.flip_rows else 0)
        col_base = self.col0 + (self.n_cols - 1 if self.flip_cols else 0)
        return row_base, row_sign, col_base, col_sign

    def to_full(self, u: int, v: int) -> tuple[int, int]:
        """Convert local ``(u, v)`` to full-array ``(row, col)``."""
        row_base, row_sign, col_base, col_sign = self.affine
        return row_base + row_sign * u, col_base + col_sign * v

    def to_local(self, row: int, col: int) -> tuple[int, int]:
        """Convert full-array ``(row, col)`` to local ``(u, v)``."""
        dr = row - self.row0
        dc = col - self.col0
        u = self.n_rows - 1 - dr if self.flip_rows else dr
        v = self.n_cols - 1 - dc if self.flip_cols else dc
        return u, v

    @property
    def region(self) -> Region:
        return Region(self.row0, self.col0, self.n_rows, self.n_cols)

    @property
    def horizontal_inward(self) -> Direction:
        """Full-array direction of a local shift toward smaller ``v``."""
        return Direction.EAST if self.quadrant.is_west else Direction.WEST

    @property
    def vertical_inward(self) -> Direction:
        """Full-array direction of a local shift toward smaller ``u``."""
        return Direction.SOUTH if self.quadrant.is_north else Direction.NORTH

    def extract(self, grid: np.ndarray) -> np.ndarray:
        """Return this quadrant of ``grid`` in local orientation (a copy)."""
        block = grid[
            self.row0: self.row0 + self.n_rows,
            self.col0: self.col0 + self.n_cols,
        ]
        if self.flip_rows:
            block = block[::-1, :]
        if self.flip_cols:
            block = block[:, ::-1]
        return np.ascontiguousarray(block)

    def insert(self, grid: np.ndarray, local: np.ndarray) -> None:
        """Write a local-orientation block back into ``grid`` in place."""
        if local.shape != (self.n_rows, self.n_cols):
            raise GeometryError(
                f"local block shape {local.shape} does not match quadrant "
                f"{self.quadrant.value} ({self.n_rows}x{self.n_cols})"
            )
        block = local
        if self.flip_rows:
            block = block[::-1, :]
        if self.flip_cols:
            block = block[:, ::-1]
        grid[
            self.row0: self.row0 + self.n_rows,
            self.col0: self.col0 + self.n_cols,
        ] = block

    def extract_batch(self, grids: np.ndarray) -> np.ndarray:
        """Batched :meth:`extract` over stacked ``(trial, row, col)`` grids.

        Returns this quadrant of every trial in local orientation as one
        contiguous ``(trial, u, v)`` copy — the flips act on the two
        trailing axes, trial order is preserved.
        """
        block = grids[
            :,
            self.row0: self.row0 + self.n_rows,
            self.col0: self.col0 + self.n_cols,
        ]
        if self.flip_rows:
            block = block[:, ::-1, :]
        if self.flip_cols:
            block = block[:, :, ::-1]
        return np.ascontiguousarray(block)

    def insert_batch(self, grids: np.ndarray, local: np.ndarray) -> None:
        """Batched :meth:`insert`: write every trial's local block back."""
        if local.shape[1:] != (self.n_rows, self.n_cols):
            raise GeometryError(
                f"local block shape {local.shape[1:]} does not match quadrant "
                f"{self.quadrant.value} ({self.n_rows}x{self.n_cols})"
            )
        block = local
        if self.flip_rows:
            block = block[:, ::-1, :]
        if self.flip_cols:
            block = block[:, :, ::-1]
        grids[
            :,
            self.row0: self.row0 + self.n_rows,
            self.col0: self.col0 + self.n_cols,
        ] = block


@dataclass(frozen=True)
class ArrayGeometry:
    """Dimensions of the trap array and its assembly target.

    The default target is the paper's centred rectangle, described by
    ``target_width``/``target_height``.  Arbitrary targets attach a
    :class:`~repro.lattice.mask.TargetMask` (``mask`` field, normally
    via :meth:`with_mask` or :meth:`masked`); the rectangle then becomes
    the special case ``mask=None``, and every consumer that needs the
    site set should read :attr:`target_mask`, which is always defined.

    Array ``width``/``height`` must be positive and even: evenness is
    what allows the clean four-way quadrant split (paper Fig. 4).  The
    same holds for the rectangle target extents; a mask target instead
    pins ``target_width``/``target_height`` to its bounding box, which
    may be odd.
    """

    width: int
    height: int
    target_width: int
    target_height: int
    mask: "TargetMask | None" = None

    def __post_init__(self) -> None:
        for name in ("width", "height"):
            value = getattr(self, name)
            if value <= 0:
                raise GeometryError(f"{name} must be positive, got {value}")
            if value % 2 != 0:
                raise GeometryError(f"{name} must be even, got {value}")
        if self.mask is None:
            for name in ("target_width", "target_height"):
                value = getattr(self, name)
                if value <= 0:
                    raise GeometryError(f"{name} must be positive, got {value}")
                if value % 2 != 0:
                    raise GeometryError(f"{name} must be even, got {value}")
        else:
            if self.mask.shape != (self.height, self.width):
                raise GeometryError(
                    f"target mask shape {self.mask.shape} does not match the "
                    f"{self.height}x{self.width} array"
                )
            box = self.mask.bounding_box
            if (self.target_height, self.target_width) != (box.height, box.width):
                raise GeometryError(
                    "target extents of a masked geometry must equal the mask "
                    f"bounding box {box.height}x{box.width}, got "
                    f"{self.target_height}x{self.target_width} "
                    "(construct via ArrayGeometry.with_mask)"
                )
        if self.target_width > self.width:
            raise GeometryError(
                f"target_width {self.target_width} exceeds width {self.width}"
            )
        if self.target_height > self.height:
            raise GeometryError(
                f"target_height {self.target_height} exceeds height {self.height}"
            )

    @classmethod
    def square(cls, size: int, target_size: int | None = None) -> "ArrayGeometry":
        """Square array with a centred square target.

        When ``target_size`` is omitted, the paper's headline ratio is
        used: a 30x30 target from a 50x50 array, i.e. ``0.6 * size``
        rounded down to the nearest even number.  Sizes below 4 leave no
        even target of at least 2 sites per side, so they are rejected
        instead of silently clamped.
        """
        if target_size is None:
            target_size = int(size * 0.6)
            target_size -= target_size % 2
            if target_size < 2:
                raise GeometryError(
                    f"size {size} is too small to derive a default target "
                    "(0.6 * size rounds below the minimum even extent of 2); "
                    "pass target_size explicitly"
                )
        return cls(
            width=size,
            height=size,
            target_width=target_size,
            target_height=target_size,
        )

    @classmethod
    def with_mask(cls, width: int, height: int, mask: "TargetMask") -> "ArrayGeometry":
        """Geometry over a ``width x height`` array with a mask target.

        The rectangle target extents are pinned to the mask's bounding
        box so size-derived heuristics (``s_en`` bounds, figure scaling)
        stay meaningful.
        """
        box = mask.bounding_box
        return cls(
            width=width,
            height=height,
            target_width=box.width,
            target_height=box.height,
            mask=mask,
        )

    def masked(self, mask: "TargetMask") -> "ArrayGeometry":
        """This array re-targeted at ``mask`` (same trap extents)."""
        return ArrayGeometry.with_mask(self.width, self.height, mask)

    @property
    def n_sites(self) -> int:
        return self.width * self.height

    @property
    def n_target_sites(self) -> int:
        if self.mask is not None:
            return self.mask.n_sites
        return self.target_width * self.target_height

    @functools.cached_property
    def target_mask(self) -> "TargetMask":
        """The target as a mask — always defined, rectangle included.

        This is the single source of truth for "is this site in the
        target": metrics, rendering, and the repair stage all index
        through it, so they cannot drift from each other.
        """
        if self.mask is not None:
            return self.mask
        from repro.lattice.mask import TargetMask

        return TargetMask.rect(
            self.height, self.width, self.target_height, self.target_width
        )

    @property
    def is_rect_target(self) -> bool:
        """True when the target is an axis-aligned full rectangle."""
        return self.mask is None or self.mask.is_rect

    @property
    def half_width(self) -> int:
        return self.width // 2

    @property
    def half_height(self) -> int:
        return self.height // 2

    @property
    def shape(self) -> tuple[int, int]:
        return (self.height, self.width)

    @property
    def bounds(self) -> Region:
        return Region(0, 0, self.height, self.width)

    @property
    def target_region(self) -> Region:
        """The target as a Region — only defined for rectangular targets.

        Rectangle-only consumers (the Tetris/MTA-1 baselines, region
        arithmetic) call this; mask-capable consumers should use
        :attr:`target_mask` instead.  Raises :class:`GeometryError` for
        a non-rectangular mask so the mismatch cannot pass silently.
        """
        if self.mask is not None:
            region = self.mask.as_region()
            if region is None:
                raise GeometryError(
                    "the target mask is not a rectangle; use target_mask "
                    "(or bounding_box) instead of target_region"
                )
            return region
        return Region(
            row0=(self.height - self.target_height) // 2,
            col0=(self.width - self.target_width) // 2,
            height=self.target_height,
            width=self.target_width,
        )

    def quadrant_frame(self, quadrant: Quadrant) -> QuadrantFrame:
        """Local frame of ``quadrant`` (see :class:`QuadrantFrame`)."""
        return QuadrantFrame(
            quadrant=quadrant,
            row0=0 if quadrant.is_north else self.half_height,
            col0=0 if quadrant.is_west else self.half_width,
            n_rows=self.half_height,
            n_cols=self.half_width,
            flip_rows=quadrant.is_north,
            flip_cols=quadrant.is_west,
        )

    def quadrant_frames(self) -> tuple[QuadrantFrame, ...]:
        """All four frames in the fixed order NW, NE, SW, SE."""
        return tuple(self.quadrant_frame(q) for q in Quadrant)

    def quadrant_target_region(self, quadrant: Quadrant) -> Region:
        """The part of the target region that falls inside ``quadrant``."""
        return self.target_region.intersect(self.quadrant_frame(quadrant).region)

    def quadrant_mask_limits(self, axis: int) -> dict[Quadrant, np.ndarray]:
        """Per-line ``s_en`` bounds derived from the target mask.

        For every quadrant, line ``u`` (``axis=0``: local rows, the row
        pass; ``axis=1``: local columns, the column pass) gets the
        smallest scan bound whose prefix covers every mask site of that
        line — ``1 +`` the outermost local mask position, or ``0`` when
        the line holds no mask site (its shift enables stay low and it
        is never compacted).  This is the per-line generalisation of the
        paper's scalar ``s_en`` bound, selected with
        ``QrmParameters(scan_limit="mask")``.
        """
        if axis not in (0, 1):
            raise GeometryError(f"axis must be 0 or 1, got {axis}")
        mask = np.asarray(self.target_mask.mask)
        limits: dict[Quadrant, np.ndarray] = {}
        for quadrant in Quadrant:
            local = self.quadrant_frame(quadrant).extract(mask)
            if axis == 1:
                local = local.T
            n_positions = local.shape[1]
            depth = np.arange(1, n_positions + 1, dtype=np.intp)
            limits[quadrant] = (local * depth).max(axis=1, initial=0)
        return limits

    def contains(self, row: int, col: int) -> bool:
        return 0 <= row < self.height and 0 <= col < self.width
