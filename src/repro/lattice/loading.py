"""Stochastic atom loading models.

Real neutral-atom machines load each optical trap independently with a
probability of roughly 50 % (collisional blockade).  The paper evaluates
on "a randomly generated matrix representing a random distribution of
atoms", which :func:`load_uniform` reproduces.  The other loaders exist
for experiments beyond the paper (success-probability sweeps, detection
stress tests) and for deterministic unit-test fixtures.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LoadingError
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry

#: Loading probability assumed throughout the paper.
DEFAULT_FILL = 0.5


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed/generator/None into a numpy Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def load_uniform(
    geometry: ArrayGeometry,
    fill: float = DEFAULT_FILL,
    rng: int | np.random.Generator | None = None,
) -> AtomArray:
    """Independent Bernoulli loading with probability ``fill`` per trap."""
    if not 0.0 <= fill <= 1.0:
        raise LoadingError(f"fill probability must be in [0, 1], got {fill}")
    gen = as_rng(rng)
    grid = gen.random(geometry.shape) < fill
    return AtomArray(geometry, grid)


def load_exact(
    geometry: ArrayGeometry,
    n_atoms: int,
    rng: int | np.random.Generator | None = None,
) -> AtomArray:
    """Exactly ``n_atoms`` atoms placed uniformly at random."""
    if not 0 <= n_atoms <= geometry.n_sites:
        raise LoadingError(f"n_atoms must be in [0, {geometry.n_sites}], got {n_atoms}")
    gen = as_rng(rng)
    flat = np.zeros(geometry.n_sites, dtype=bool)
    flat[gen.choice(geometry.n_sites, size=n_atoms, replace=False)] = True
    return AtomArray(geometry, flat.reshape(geometry.shape))


def load_gradient(
    geometry: ArrayGeometry,
    centre_fill: float = 0.6,
    edge_fill: float = 0.4,
    rng: int | np.random.Generator | None = None,
) -> AtomArray:
    """Radially varying loading probability (centre loads better).

    Models the Gaussian intensity profile of the trapping light: the fill
    probability interpolates linearly in normalised radial distance from
    ``centre_fill`` at the array centre to ``edge_fill`` at the corners.
    """
    for name, value in (("centre_fill", centre_fill), ("edge_fill", edge_fill)):
        if not 0.0 <= value <= 1.0:
            raise LoadingError(f"{name} must be in [0, 1], got {value}")
    gen = as_rng(rng)
    rows = np.arange(geometry.height)[:, None]
    cols = np.arange(geometry.width)[None, :]
    cr = (geometry.height - 1) / 2.0
    cc = (geometry.width - 1) / 2.0
    radius = np.sqrt((rows - cr) ** 2 + (cols - cc) ** 2)
    radius /= float(radius.max()) if radius.max() > 0 else 1.0
    prob = centre_fill + (edge_fill - centre_fill) * radius
    grid = gen.random(geometry.shape) < prob
    return AtomArray(geometry, grid)


def load_feasible(
    geometry: ArrayGeometry,
    fill: float = DEFAULT_FILL,
    rng: int | np.random.Generator | None = None,
    max_attempts: int = 100,
) -> AtomArray:
    """Uniform loading, resampled until globally enough atoms exist.

    Guarantees ``n_atoms >= n_target_sites`` so that assembling the target
    is at least not ruled out by global atom count.  Raises
    :class:`~repro.errors.LoadingError` after ``max_attempts`` failures —
    with the paper's 50 % fill and 0.6 W target this virtually never
    triggers (the target needs 36 % of the sites).
    """
    gen = as_rng(rng)
    for _ in range(max_attempts):
        array = load_uniform(geometry, fill, gen)
        if array.n_atoms >= geometry.n_target_sites:
            return array
    raise LoadingError(
        f"could not load >= {geometry.n_target_sites} atoms at fill={fill} "
        f"within {max_attempts} attempts"
    )


def load_checkerboard(geometry: ArrayGeometry, phase: int = 0) -> AtomArray:
    """Deterministic checkerboard pattern (50 % fill) for tests."""
    rows = np.arange(geometry.height)[:, None]
    cols = np.arange(geometry.width)[None, :]
    grid = (rows + cols + phase) % 2 == 0
    return AtomArray(geometry, grid)
