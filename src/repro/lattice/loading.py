"""Stochastic atom loading models.

Real neutral-atom machines load each optical trap independently with a
probability of roughly 50 % (collisional blockade).  The paper evaluates
on "a randomly generated matrix representing a random distribution of
atoms", which :func:`load_uniform` reproduces.  The other loaders exist
for experiments beyond the paper (success-probability sweeps, detection
stress tests) and for deterministic unit-test fixtures.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LoadingError
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry

#: Loading probability assumed throughout the paper.
DEFAULT_FILL = 0.5


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed/generator/None into a numpy Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def load_uniform(
    geometry: ArrayGeometry,
    fill: float = DEFAULT_FILL,
    rng: int | np.random.Generator | None = None,
) -> AtomArray:
    """Independent Bernoulli loading with probability ``fill`` per trap."""
    if not 0.0 <= fill <= 1.0:
        raise LoadingError(f"fill probability must be in [0, 1], got {fill}")
    gen = as_rng(rng)
    grid = gen.random(geometry.shape) < fill
    return AtomArray(geometry, grid)


def load_exact(
    geometry: ArrayGeometry,
    n_atoms: int,
    rng: int | np.random.Generator | None = None,
) -> AtomArray:
    """Exactly ``n_atoms`` atoms placed uniformly at random."""
    if not 0 <= n_atoms <= geometry.n_sites:
        raise LoadingError(f"n_atoms must be in [0, {geometry.n_sites}], got {n_atoms}")
    gen = as_rng(rng)
    flat = np.zeros(geometry.n_sites, dtype=bool)
    flat[gen.choice(geometry.n_sites, size=n_atoms, replace=False)] = True
    return AtomArray(geometry, flat.reshape(geometry.shape))


def load_gradient(
    geometry: ArrayGeometry,
    centre_fill: float = 0.6,
    edge_fill: float = 0.4,
    rng: int | np.random.Generator | None = None,
) -> AtomArray:
    """Radially varying loading probability (centre loads better).

    Models the Gaussian intensity profile of the trapping light: the fill
    probability interpolates linearly in normalised radial distance from
    ``centre_fill`` at the array centre to ``edge_fill`` at the corners.
    """
    for name, value in (("centre_fill", centre_fill), ("edge_fill", edge_fill)):
        if not 0.0 <= value <= 1.0:
            raise LoadingError(f"{name} must be in [0, 1], got {value}")
    gen = as_rng(rng)
    rows = np.arange(geometry.height)[:, None]
    cols = np.arange(geometry.width)[None, :]
    cr = (geometry.height - 1) / 2.0
    cc = (geometry.width - 1) / 2.0
    radius = np.sqrt((rows - cr) ** 2 + (cols - cc) ** 2)
    radius /= float(radius.max()) if radius.max() > 0 else 1.0
    prob = centre_fill + (edge_fill - centre_fill) * radius
    grid = gen.random(geometry.shape) < prob
    return AtomArray(geometry, grid)


def load_feasible(
    geometry: ArrayGeometry,
    fill: float = DEFAULT_FILL,
    rng: int | np.random.Generator | None = None,
    max_attempts: int = 100,
) -> AtomArray:
    """Uniform loading, resampled until globally enough atoms exist.

    Guarantees ``n_atoms >= n_target_sites`` so that assembling the target
    is at least not ruled out by global atom count.  Raises
    :class:`~repro.errors.LoadingError` after ``max_attempts`` failures —
    with the paper's 50 % fill and 0.6 W target this virtually never
    triggers (the target needs 36 % of the sites).
    """
    gen = as_rng(rng)
    for _ in range(max_attempts):
        array = load_uniform(geometry, fill, gen)
        if array.n_atoms >= geometry.n_target_sites:
            return array
    raise LoadingError(
        f"could not load >= {geometry.n_target_sites} atoms at fill={fill} "
        f"within {max_attempts} attempts"
    )


def load_checkerboard(geometry: ArrayGeometry, phase: int = 0) -> AtomArray:
    """Deterministic checkerboard pattern (50 % fill) for tests."""
    rows = np.arange(geometry.height)[:, None]
    cols = np.arange(geometry.width)[None, :]
    grid = (rows + cols + phase) % 2 == 0
    return AtomArray(geometry, grid)


def load_poisson_clusters(
    geometry: ArrayGeometry,
    fill: float = DEFAULT_FILL,
    rng: int | np.random.Generator | None = None,
    cluster_rate: float = 0.02,
    cluster_sigma: float = 1.5,
) -> AtomArray:
    """Spatially clustered loading (a Thomas cluster process).

    Uniform Bernoulli loading assumes independent traps, but real MOT
    loading shows spatial correlation: density ripples from the cooling
    beams load patches of neighbouring traps together.  This model draws
    Poisson-distributed cluster centres (``cluster_rate`` per site) and
    boosts the loading probability near each centre with a Gaussian
    kernel of width ``cluster_sigma``, normalised so the *expected* fill
    stays ``fill`` — campaigns can swap ``uniform`` for ``poisson``
    loading without changing the mean atom budget.
    """
    if not 0.0 <= fill <= 1.0:
        raise LoadingError(f"fill probability must be in [0, 1], got {fill}")
    if cluster_rate <= 0:
        raise LoadingError(f"cluster_rate must be positive, got {cluster_rate}")
    if cluster_sigma <= 0:
        raise LoadingError(f"cluster_sigma must be positive, got {cluster_sigma}")
    gen = as_rng(rng)
    n_clusters = int(gen.poisson(cluster_rate * geometry.n_sites))
    boost = np.zeros(geometry.shape, dtype=float)
    if n_clusters:
        centres_r = gen.uniform(0, geometry.height, size=n_clusters)
        centres_c = gen.uniform(0, geometry.width, size=n_clusters)
        rows = np.arange(geometry.height)[:, None, None]
        cols = np.arange(geometry.width)[None, :, None]
        sq = (rows - centres_r[None, None, :]) ** 2
        sq = sq + (cols - centres_c[None, None, :]) ** 2
        boost = np.exp(-sq / (2.0 * cluster_sigma**2)).sum(axis=2)
    prob = fill * (1.0 + boost)
    mean = float(prob.mean())
    if mean > 0:
        prob *= fill / mean
    np.clip(prob, 0.0, 1.0, out=prob)
    grid = gen.random(geometry.shape) < prob
    return AtomArray(geometry, grid)


#: Registered loading models selectable by name (campaign ``loading`` axis).
LOADERS = {
    "uniform": load_uniform,
    "poisson": load_poisson_clusters,
}


def load_named(
    name: str,
    geometry: ArrayGeometry,
    fill: float = DEFAULT_FILL,
    rng: int | np.random.Generator | None = None,
) -> AtomArray:
    """Dispatch to a registered loader by name (``uniform``/``poisson``)."""
    try:
        loader = LOADERS[name]
    except KeyError:
        raise LoadingError(
            f"unknown loading model {name!r}; known: {sorted(LOADERS)}"
        ) from None
    return loader(geometry, fill, rng)


def apply_loss(
    grid: np.ndarray,
    loss_rate: float,
    rng: int | np.random.Generator | None = None,
) -> int:
    """Mid-sequence loss hook: each atom survives with ``1 - loss_rate``.

    Mutates ``grid`` in place and returns the number of atoms lost, so
    drivers can interleave loss draws between rearrangement cycles (the
    closed-loop pipeline) or between scheduling stages.  A zero rate is
    a guaranteed no-op that burns no RNG draws.
    """
    if not 0.0 <= loss_rate <= 1.0:
        raise LoadingError(f"loss_rate must be in [0, 1], got {loss_rate}")
    if loss_rate == 0.0:
        return 0
    gen = as_rng(rng)
    occupied = grid.nonzero()
    n_atoms = occupied[0].size
    if n_atoms == 0:
        return 0
    lost = gen.random(n_atoms) < loss_rate
    grid[occupied[0][lost], occupied[1][lost]] = False
    return int(lost.sum())
