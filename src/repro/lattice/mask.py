"""First-class target masks: arbitrary site sets as assembly targets.

The paper evaluates on a centred ``T x T`` rectangle, but real
experiments assemble rings, triangular lattices, and sparse
logical-qubit layouts.  :class:`TargetMask` generalises "the target
region" from corner arithmetic to an explicit boolean site mask over the
full trap array, with the rectangle as the special case
(:meth:`TargetMask.rect`).  Everything downstream — metrics, rendering,
repair, campaign axes, the scheduling service's wire format — asks the
mask, so no two layers can disagree about which sites count as "in
target".

Masks are immutable value objects: the backing array is write-protected,
equality and hashing go through the raw mask bytes, and the canonical
serialised form is a tuple of ``'#'``/``'.'`` row strings — compact,
JSON-friendly, and stable enough to key caches and wire requests.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import GeometryError
from repro.lattice.geometry import Region

#: Characters of the canonical row-string rendering: target site / other.
_SITE, _HOLE = "#", "."


class TargetMask:
    """An immutable boolean mask of target sites over the full array.

    ``mask[r, c]`` is ``True`` where site ``(r, c)`` belongs to the
    assembly target.  Construct through the factories (:meth:`rect`,
    :meth:`ring`, :meth:`triangular_lattice`, :meth:`sparse_sites`,
    :meth:`from_array`) rather than raw arrays where possible — they
    validate shape and non-emptiness and document intent.
    """

    __slots__ = ("mask", "_hash")

    def __init__(self, mask: np.ndarray):
        grid = np.ascontiguousarray(mask, dtype=bool)
        if grid.ndim != 2:
            raise GeometryError(
                f"a target mask must be 2-D, got shape {grid.shape}"
            )
        if not grid.any():
            raise GeometryError("a target mask must contain at least one site")
        grid.setflags(write=False)
        object.__setattr__(self, "mask", grid)
        object.__setattr__(self, "_hash", hash((grid.shape, grid.tobytes())))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("TargetMask is immutable")

    # -- factories ---------------------------------------------------------

    @classmethod
    def rect(
        cls, height: int, width: int, target_height: int, target_width: int
    ) -> "TargetMask":
        """The paper's centred rectangle as a mask (the special case)."""
        if not (0 < target_height <= height and 0 < target_width <= width):
            raise GeometryError(
                f"rect target {target_height}x{target_width} does not fit "
                f"inside {height}x{width}"
            )
        grid = np.zeros((height, width), dtype=bool)
        r0 = (height - target_height) // 2
        c0 = (width - target_width) // 2
        grid[r0 : r0 + target_height, c0 : c0 + target_width] = True
        return cls(grid)

    @classmethod
    def ring(
        cls,
        height: int,
        width: int,
        outer_radius: float,
        inner_radius: float = 0.0,
    ) -> "TargetMask":
        """An annulus of sites centred on the array centre.

        A site belongs to the ring when its Euclidean distance ``d``
        from the array centre satisfies ``inner_radius <= d <=
        outer_radius``.  ``inner_radius=0`` gives a filled disc.
        """
        if outer_radius <= 0 or inner_radius < 0 or inner_radius > outer_radius:
            raise GeometryError(
                f"ring radii must satisfy 0 <= inner <= outer, got "
                f"inner={inner_radius} outer={outer_radius}"
            )
        centre_r = (height - 1) / 2.0
        centre_c = (width - 1) / 2.0
        rows = np.arange(height)[:, None] - centre_r
        cols = np.arange(width)[None, :] - centre_c
        dist = np.hypot(rows, cols)
        return cls((dist >= inner_radius) & (dist <= outer_radius))

    @classmethod
    def triangular_lattice(
        cls, height: int, width: int, pitch: int = 2, margin: int = 1
    ) -> "TargetMask":
        """A triangular (offset-row) lattice of sites.

        Every ``pitch``-th row carries sites every ``pitch`` columns,
        with odd lattice rows offset by ``pitch // 2`` — the square-grid
        embedding of a triangular lattice.  ``margin`` keeps a border of
        non-target sites as the reservoir the rearrangers pull from.
        """
        if pitch < 1:
            raise GeometryError(f"lattice pitch must be >= 1, got {pitch}")
        if margin < 0:
            raise GeometryError(f"lattice margin must be >= 0, got {margin}")
        grid = np.zeros((height, width), dtype=bool)
        for k, r in enumerate(range(margin, height - margin, pitch)):
            offset = (pitch // 2) if k % 2 else 0
            grid[r, margin + offset : width - margin : pitch] = True
        if not grid.any():
            raise GeometryError(
                f"triangular lattice pitch={pitch} margin={margin} leaves no "
                f"sites in a {height}x{width} array"
            )
        return cls(grid)

    @classmethod
    def sparse_sites(
        cls,
        height: int,
        width: int,
        sites: Iterable[tuple[int, int]],
    ) -> "TargetMask":
        """An explicit sparse site list (logical-qubit layouts)."""
        grid = np.zeros((height, width), dtype=bool)
        for row, col in sites:
            if not (0 <= row < height and 0 <= col < width):
                raise GeometryError(
                    f"mask site ({row}, {col}) is outside the "
                    f"{height}x{width} array"
                )
            grid[row, col] = True
        return cls(grid)

    @classmethod
    def from_array(cls, mask: np.ndarray) -> "TargetMask":
        """Wrap an arbitrary boolean occupancy-shaped array (copied)."""
        return cls(np.array(mask, dtype=bool, copy=True))

    # -- geometry ----------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self.mask.shape

    @property
    def height(self) -> int:
        return self.mask.shape[0]

    @property
    def width(self) -> int:
        return self.mask.shape[1]

    @property
    def n_sites(self) -> int:
        return int(self.mask.sum())

    def contains(self, row: int, col: int) -> bool:
        return (
            0 <= row < self.height
            and 0 <= col < self.width
            and bool(self.mask[row, col])
        )

    def sites(self) -> list[tuple[int, int]]:
        """All target ``(row, col)`` pairs, row-major."""
        return [tuple(site) for site in np.argwhere(self.mask)]

    @property
    def bounding_box(self) -> Region:
        """The tightest Region enclosing every target site."""
        rows = np.flatnonzero(self.mask.any(axis=1))
        cols = np.flatnonzero(self.mask.any(axis=0))
        return Region(
            row0=int(rows[0]),
            col0=int(cols[0]),
            height=int(rows[-1] - rows[0] + 1),
            width=int(cols[-1] - cols[0] + 1),
        )

    def as_region(self) -> Region | None:
        """The exact Region when the mask is a full rectangle, else None."""
        box = self.bounding_box
        if self.n_sites == box.n_sites:
            return box
        return None

    @property
    def is_rect(self) -> bool:
        return self.as_region() is not None

    # -- serialisation -----------------------------------------------------

    def to_rows(self) -> tuple[str, ...]:
        """Canonical row strings: ``'#'`` target sites, ``'.'`` elsewhere."""
        return tuple(
            "".join(_SITE if cell else _HOLE for cell in row) for row in self.mask
        )

    @classmethod
    def from_rows(cls, rows: Sequence[str]) -> "TargetMask":
        if not rows:
            raise GeometryError("a target mask needs at least one row")
        widths = {len(row) for row in rows}
        if len(widths) != 1:
            raise GeometryError(f"mask rows have inconsistent widths: {widths}")
        for row in rows:
            bad = set(row) - {_SITE, _HOLE}
            if bad:
                raise GeometryError(
                    f"mask rows may only contain {_SITE!r}/{_HOLE!r}, got {bad}"
                )
        return cls(
            np.array([[cell == _SITE for cell in row] for row in rows], dtype=bool)
        )

    def token(self) -> str:
        """One-line canonical encoding (rows joined by ``/``).

        Stable and hashable — this is what the scheduling service keys
        its per-geometry cache on and what travels in wire requests.
        """
        return "/".join(self.to_rows())

    @classmethod
    def from_token(cls, token: str) -> "TargetMask":
        return cls.from_rows(token.split("/"))

    def to_dict(self) -> dict:
        return {"rows": list(self.to_rows())}

    @classmethod
    def from_dict(cls, data: Mapping) -> "TargetMask":
        return cls.from_rows(list(data["rows"]))

    # -- value semantics ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TargetMask):
            return NotImplemented
        return self.mask.shape == other.mask.shape and bool(
            np.array_equal(self.mask, other.mask)
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        kind = "rect" if self.is_rect else "mask"
        return (
            f"TargetMask({kind} {self.height}x{self.width}, "
            f"{self.n_sites} sites)"
        )

    # -- pickling (slots + write-protected array) --------------------------

    def __getstate__(self) -> dict:
        return {"rows": self.to_rows()}

    def __setstate__(self, state: dict) -> None:
        rebuilt = TargetMask.from_rows(state["rows"])
        object.__setattr__(self, "mask", rebuilt.mask)
        object.__setattr__(self, "_hash", rebuilt._hash)

    def __reduce__(self):
        return (TargetMask.from_rows, (self.to_rows(),))
