"""Occupancy metrics used by the experiments and the validator.

Target metrics are defined over the geometry's
:class:`~repro.lattice.mask.TargetMask` — the same site set the
scheduler's repair stage and the renderer consult — so "fill fraction"
and "defect free" mean the same thing for the paper's rectangle and for
arbitrary masked targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lattice.array import AtomArray
from repro.lattice.geometry import Quadrant, Region
from repro.lattice.mask import TargetMask


def fill_fraction(array: AtomArray, region: Region | None = None) -> float:
    """Fraction of sites occupied inside ``region`` (whole array if None)."""
    if region is None:
        region = array.geometry.bounds
    if region.n_sites == 0:
        return 1.0
    return array.region_count(region) / region.n_sites


def mask_fill_fraction(array: AtomArray, mask: TargetMask) -> float:
    """Fraction of ``mask``'s sites that hold an atom."""
    return array.mask_count(mask) / mask.n_sites


def target_fill_fraction(array: AtomArray) -> float:
    """Fraction of the target's sites that hold an atom."""
    return mask_fill_fraction(array, array.geometry.target_mask)


def defect_count(array: AtomArray, region: Region | None = None) -> int:
    """Number of empty target-mask sites (or sites of an explicit region)."""
    if region is None:
        mask = array.geometry.target_mask
        return mask.n_sites - array.mask_count(mask)
    return region.n_sites - array.region_count(region)


def is_defect_free(array: AtomArray) -> bool:
    """True when every target site holds an atom."""
    return defect_count(array) == 0


def surplus_atoms(array: AtomArray) -> int:
    """Atoms sitting outside the target region (the reservoir)."""
    return array.n_atoms - array.target_count()


@dataclass(frozen=True)
class ArrayStats:
    """Summary of one occupancy state."""

    n_atoms: int
    n_sites: int
    fill_fraction: float
    target_count: int
    target_sites: int
    target_fill_fraction: float
    defects: int
    surplus: int
    quadrant_counts: dict[str, int]

    def format(self) -> str:
        lines = [
            f"atoms: {self.n_atoms}/{self.n_sites} "
            f"(fill {self.fill_fraction:.1%})",
            f"target: {self.target_count}/{self.target_sites} "
            f"(fill {self.target_fill_fraction:.1%}, {self.defects} defects)",
            f"reservoir surplus: {self.surplus}",
            "quadrants: " + ", ".join(
                f"{k}={v}" for k, v in self.quadrant_counts.items()
            ),
        ]
        return "\n".join(lines)


def summarize(array: AtomArray) -> ArrayStats:
    """Collect the standard metric set for one array state."""
    geo = array.geometry
    return ArrayStats(
        n_atoms=array.n_atoms,
        n_sites=geo.n_sites,
        fill_fraction=fill_fraction(array),
        target_count=array.target_count(),
        target_sites=geo.n_target_sites,
        target_fill_fraction=target_fill_fraction(array),
        defects=defect_count(array),
        surplus=surplus_atoms(array),
        quadrant_counts={q.value: array.quadrant_count(q) for q in Quadrant},
    )
