"""ASCII rendering of atom arrays for examples, the CLI and debugging."""

from __future__ import annotations

from repro.lattice.array import AtomArray

OCCUPIED = "●"  # ●
EMPTY = "·"  # ·
TARGET_EMPTY = "○"  # ○ : an unfilled target site stands out


def render_array(
    array: AtomArray,
    show_target: bool = True,
    occupied: str = OCCUPIED,
    empty: str = EMPTY,
) -> str:
    """Render the occupancy grid; target-mask defects use ``○``."""
    target = array.geometry.target_mask
    lines = []
    for r in range(array.geometry.height):
        cells = []
        for c in range(array.geometry.width):
            if array.grid[r, c]:
                cells.append(occupied)
            elif show_target and target.contains(r, c):
                cells.append(TARGET_EMPTY)
            else:
                cells.append(empty)
        lines.append(" ".join(cells))
    return "\n".join(lines)


def render_side_by_side(
    left: AtomArray,
    right: AtomArray,
    labels: tuple[str, str] = ("before", "after"),
    gap: str = "    ",
) -> str:
    """Render two arrays next to each other with headers."""
    left_lines = render_array(left).splitlines()
    right_lines = render_array(right).splitlines()
    width = max(len(line) for line in left_lines) if left_lines else 0
    header = f"{labels[0]:<{width}}{gap}{labels[1]}"
    body = [f"{l:<{width}}{gap}{r}" for l, r in zip(left_lines, right_lines)]
    return "\n".join([header, *body])
