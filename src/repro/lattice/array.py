"""Occupancy state of the trap array.

:class:`AtomArray` couples an :class:`~repro.lattice.geometry.ArrayGeometry`
with a boolean numpy grid (``True`` = trap holds an atom).  It is the
common currency between the loader, the rearrangement algorithms, the
schedule executor and the detection pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.lattice.geometry import ArrayGeometry, Quadrant, Region


class AtomArray:
    """Mutable occupancy grid over a fixed geometry.

    Parameters
    ----------
    geometry:
        Trap-array dimensions and target region.
    grid:
        Optional initial occupancy, shape ``(height, width)``; any dtype
        accepted by ``np.asarray(...).astype(bool)``.  Copied on ingest so
        the caller keeps ownership of its buffer.
    """

    __slots__ = ("geometry", "grid")

    def __init__(self, geometry: ArrayGeometry, grid: np.ndarray | None = None):
        self.geometry = geometry
        if grid is None:
            self.grid = np.zeros(geometry.shape, dtype=bool)
        else:
            arr = np.asarray(grid).astype(bool)
            if arr.shape != geometry.shape:
                raise GeometryError(
                    f"grid shape {arr.shape} does not match geometry "
                    f"shape {geometry.shape}"
                )
            self.grid = arr.copy()

    # -- constructors ----------------------------------------------------

    @classmethod
    def empty(cls, geometry: ArrayGeometry) -> "AtomArray":
        return cls(geometry)

    @classmethod
    def full(cls, geometry: ArrayGeometry) -> "AtomArray":
        return cls(geometry, np.ones(geometry.shape, dtype=bool))

    @classmethod
    def from_rows(cls, geometry: ArrayGeometry, rows: list[str]) -> "AtomArray":
        """Build from a textual picture, e.g. ``["#.#.", "..##", ...]``.

        ``#`` (or ``1``) marks an occupied trap, anything else is empty.
        Handy for writing readable unit tests.
        """
        if len(rows) != geometry.height:
            raise GeometryError(f"expected {geometry.height} rows, got {len(rows)}")
        grid = np.zeros(geometry.shape, dtype=bool)
        for r, line in enumerate(rows):
            if len(line) != geometry.width:
                raise GeometryError(
                    f"row {r} has length {len(line)}, expected {geometry.width}"
                )
            for c, ch in enumerate(line):
                grid[r, c] = ch in ("#", "1")
        return cls(geometry, grid)

    # -- basic queries ---------------------------------------------------

    @property
    def n_atoms(self) -> int:
        return int(self.grid.sum())

    def is_occupied(self, row: int, col: int) -> bool:
        return bool(self.grid[row, col])

    def set_site(self, row: int, col: int, occupied: bool) -> None:
        self.grid[row, col] = occupied

    def occupied_sites(self) -> list[tuple[int, int]]:
        """Row-major list of occupied ``(row, col)`` sites (plain ints)."""
        return [(int(r), int(c)) for r, c in np.argwhere(self.grid)]

    def row_counts(self) -> np.ndarray:
        return self.grid.sum(axis=1)

    def col_counts(self) -> np.ndarray:
        return self.grid.sum(axis=0)

    # -- region queries --------------------------------------------------

    def region_count(self, region: Region) -> int:
        return int(self.grid[region.row_slice, region.col_slice].sum())

    def region_defects(self, region: Region) -> list[tuple[int, int]]:
        """Empty sites inside ``region``, row-major."""
        block = self.grid[region.row_slice, region.col_slice]
        return [
            (int(r) + region.row0, int(c) + region.col0) for r, c in np.argwhere(~block)
        ]

    def mask_count(self, mask) -> int:
        """Atoms sitting on the sites of a :class:`TargetMask`."""
        return int(self.grid[mask.mask].sum())

    def mask_defects(self, mask) -> list[tuple[int, int]]:
        """Empty mask sites, row-major (same order as :meth:`region_defects`)."""
        return [
            (int(r), int(c)) for r, c in np.argwhere(~self.grid & mask.mask)
        ]

    def target_count(self) -> int:
        return self.mask_count(self.geometry.target_mask)

    def target_defects(self) -> list[tuple[int, int]]:
        return self.mask_defects(self.geometry.target_mask)

    def quadrant_count(self, quadrant: Quadrant) -> int:
        return self.region_count(self.geometry.quadrant_frame(quadrant).region)

    # -- conversions & dunders --------------------------------------------

    def copy(self) -> "AtomArray":
        return AtomArray(self.geometry, self.grid)

    def to_rows(self) -> list[str]:
        """Inverse of :meth:`from_rows` (``#`` occupied, ``.`` empty)."""
        return ["".join("#" if cell else "." for cell in row) for row in self.grid]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AtomArray):
            return NotImplemented
        return self.geometry == other.geometry and bool(
            np.array_equal(self.grid, other.grid)
        )

    def __repr__(self) -> str:
        geo = self.geometry
        return (
            f"AtomArray({geo.width}x{geo.height}, "
            f"target {geo.target_width}x{geo.target_height}, "
            f"{self.n_atoms} atoms)"
        )
