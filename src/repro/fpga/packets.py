"""1024-bit DDR packet packing, as used on the accelerator's AXI link.

"To enhance data transmission efficiency, we pack 1024-bit data into one
packet to move the data from DDR memory into our accelerator" — this
module implements that packing for the occupancy bitfield (input side)
and for movement records (output side), with exact round-trip tests.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SimulationError
from repro.fpga.bitvec import BitVector
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry


def packets_needed(n_bits: int, packet_bits: int = 1024) -> int:
    """Number of fixed-width packets needed for ``n_bits`` of payload."""
    if packet_bits < 1:
        raise SimulationError(f"packet_bits must be >= 1, got {packet_bits}")
    return max(1, math.ceil(n_bits / packet_bits)) if n_bits else 0


def pack_occupancy(array: AtomArray, packet_bits: int = 1024) -> list[BitVector]:
    """Row-major occupancy bitfield split into fixed-width packets.

    Bit 0 of packet 0 is site (0, 0); the final packet is zero-padded.
    """
    flat = array.grid.reshape(-1)
    packets: list[BitVector] = []
    for start in range(0, flat.size, packet_bits):
        chunk = flat[start : start + packet_bits]
        value = 0
        for i, bit in enumerate(chunk):
            if bit:
                value |= 1 << i
        packets.append(BitVector(packet_bits, value))
    return packets


def unpack_occupancy(packets: list[BitVector], geometry: ArrayGeometry) -> AtomArray:
    """Inverse of :func:`pack_occupancy`."""
    n_sites = geometry.n_sites
    bits: list[bool] = []
    for packet in packets:
        bits.extend(packet.to_bools())
    if len(bits) < n_sites:
        raise SimulationError(f"{len(bits)} packed bits cannot fill {n_sites} sites")
    grid = np.array(bits[:n_sites], dtype=bool).reshape(geometry.shape)
    return AtomArray(geometry, grid)


def pack_words(
    words: list[int], word_bits: int, packet_bits: int = 1024
) -> list[BitVector]:
    """Pack fixed-width words (e.g. movement records) into packets."""
    if word_bits < 1 or word_bits > packet_bits:
        raise SimulationError(
            f"word_bits must be in [1, {packet_bits}], got {word_bits}"
        )
    per_packet = packet_bits // word_bits
    packets: list[BitVector] = []
    for start in range(0, len(words), per_packet):
        chunk = words[start : start + per_packet]
        value = 0
        for i, word in enumerate(chunk):
            if word < 0 or word >= (1 << word_bits):
                raise SimulationError(f"word {word} does not fit in {word_bits} bits")
            value |= word << (i * word_bits)
        packets.append(BitVector(packet_bits, value))
    return packets


def unpack_words(
    packets: list[BitVector],
    word_bits: int,
    n_words: int,
    packet_bits: int = 1024,
) -> list[int]:
    """Inverse of :func:`pack_words` for the first ``n_words`` entries."""
    per_packet = packet_bits // word_bits
    words: list[int] = []
    mask = (1 << word_bits) - 1
    for packet in packets:
        for i in range(per_packet):
            if len(words) >= n_words:
                return words
            words.append((packet.value >> (i * word_bits)) & mask)
    if len(words) < n_words:
        raise SimulationError(f"packets held {len(words)} words, expected {n_words}")
    return words
