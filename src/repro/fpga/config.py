"""Configuration and calibration constants of the FPGA accelerator model.

The structural parameters (packet width, record width) come straight
from the paper; the small cycle constants (pipeline depth beyond the
bit-serial scan, hand-off cycles, control overhead) are calibration
values chosen so the simulated latency curve lands in the neighbourhood
of the paper's reported points (~0.8 us @ W=10, ~1.0 us @ W=50,
~1.9 us @ W=90 at 250 MHz).  EXPERIMENTS.md discusses the residual
deviation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FpgaConfig:
    """Clock, bus and micro-architecture parameters.

    Attributes
    ----------
    clock_mhz:
        PL clock; the paper deploys at 250 MHz.
    packet_bits:
        DDR transfer packing ("we pack 1024-bit data into one packet").
    record_bits:
        Width of one movement record (origin, direction, step count).
    kernel_pipeline_depth_extra:
        Register stages of the shift kernel beyond the ``Qw`` bit-serial
        scan stages.
    recorder_latency:
        Movement-recording unit latency per command word.
    combiner_per_cycle:
        Command streams the Row Combination Unit drains per cycle ("all
        four command buffers are processed at the same time").
    axi_setup_cycles:
        Burst setup for each DDR read/write.
    control_overhead_cycles:
        One-off PS-side trigger/flag handling per invocation.
    inter_pass_cycles:
        Hand-off bubbles between the row pass and column pass and
        between iterations.
    fifo_depth:
        Capacity of the inter-module stream channels.
    """

    clock_mhz: float = 250.0
    packet_bits: int = 1024
    record_bits: int = 32
    kernel_pipeline_depth_extra: int = 3
    recorder_latency: int = 1
    combiner_per_cycle: int = 4
    axi_setup_cycles: int = 16
    control_overhead_cycles: int = 24
    inter_pass_cycles: int = 1
    fifo_depth: int = 64

    def __post_init__(self) -> None:
        if self.clock_mhz <= 0:
            raise ConfigurationError("clock_mhz must be positive")
        for name in (
            "packet_bits",
            "record_bits",
            "recorder_latency",
            "combiner_per_cycle",
            "fifo_depth",
        ):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        for name in (
            "kernel_pipeline_depth_extra",
            "axi_setup_cycles",
            "control_overhead_cycles",
            "inter_pass_cycles",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")

    def cycles_to_us(self, cycles: int | float) -> float:
        """Convert a cycle count to microseconds at the configured clock."""
        return cycles / self.clock_mhz

    def us_to_cycles(self, us: float) -> int:
        return int(round(us * self.clock_mhz))


DEFAULT_FPGA_CONFIG = FpgaConfig()
