"""Load Data Module (LDM) — input unpacking and quadrant flipping.

Four Load Vector units split the incoming occupancy bitfield into the
four quadrant sub-arrays and apply each quadrant's flip on the fly, so
downstream shift kernels always see the canonical local orientation
(target corner at local index 0, both axes).

The functional path here deliberately avoids the numpy flip helpers used
by the scheduler: rows are rebuilt bit by bit through the
coordinate-transform equations, and a unit test asserts both paths
agree — an independent check of the flip logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.bitvec import BitVector
from repro.fpga.packets import pack_occupancy, unpack_occupancy
from repro.lattice.array import AtomArray
from repro.lattice.geometry import Quadrant, QuadrantFrame


@dataclass(frozen=True)
class LoadedQuadrant:
    """One quadrant in local orientation, as row bit vectors.

    ``rows[u]`` has bit ``v`` set when local site ``(u, v)`` holds an
    atom; bit 0 is the site nearest the array centre.
    """

    quadrant: Quadrant
    rows: tuple[BitVector, ...]

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def n_atoms(self) -> int:
        return sum(row.popcount() for row in self.rows)


class LoadVectorUnit:
    """Extracts and flips one quadrant from the full occupancy grid."""

    def __init__(self, frame: QuadrantFrame):
        self.frame = frame

    def load(self, array: AtomArray) -> LoadedQuadrant:
        frame = self.frame
        rows = []
        for u in range(frame.n_rows):
            bits = []
            for v in range(frame.n_cols):
                r, c = frame.to_full(u, v)
                bits.append(bool(array.grid[r, c]))
            rows.append(BitVector.from_bits(bits))
        return LoadedQuadrant(quadrant=frame.quadrant, rows=tuple(rows))


class LoadDataModule:
    """The four Load Vector units plus the packet-level input model."""

    def __init__(self, frames: dict[Quadrant, QuadrantFrame], packet_bits: int = 1024):
        self.units = {q: LoadVectorUnit(frame) for q, frame in frames.items()}
        self.packet_bits = packet_bits

    def input_packets(self, array: AtomArray) -> list[BitVector]:
        """The DDR packets the PS writes for this array."""
        return pack_occupancy(array, self.packet_bits)

    def load_all(self, array: AtomArray) -> dict[Quadrant, LoadedQuadrant]:
        """Round-trip through packets, then split and flip.

        Going through the packet encoding (rather than reading the grid
        directly) keeps this path honest about what the hardware sees.
        """
        packets = self.input_packets(array)
        decoded = unpack_occupancy(packets, array.geometry)
        return {q: unit.load(decoded) for q, unit in self.units.items()}

    def n_input_packets(self, array: AtomArray) -> int:
        return len(self.input_packets(array))
