"""Generic synchronous modules for the dataflow simulator.

Each module implements ``tick(cycle)``, called once per clock cycle in
dataflow order, and ``done`` which is True once the module has finished
all the work it will ever do.  The concrete accelerator blocks (LDM,
QPM, Row Combination, OCM) are built from these primitives in their own
modules, mirroring the paper's Fig. 5.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Any, Callable

from repro.fpga.sim.fifo import Fifo


class Module(ABC):
    """Base class for synchronous dataflow modules."""

    def __init__(self, name: str):
        self.name = name
        self.busy_cycles = 0

    @abstractmethod
    def tick(self, cycle: int) -> None:
        """Advance one clock cycle."""

    @property
    @abstractmethod
    def done(self) -> bool:
        """True once no further work will ever be produced or consumed."""


class SourceModule(Module):
    """Emits pre-scheduled tokens, at most one per cycle.

    Tokens are ``(ready_cycle, payload)`` pairs: a token may not be
    emitted before its ready cycle.  This models both a plain streaming
    source (all ready at 0) and the transpose hand-off, where column ``v``
    only becomes complete ``v`` cycles after the last row entered the
    scan pipeline.
    """

    def __init__(self, name: str, out: Fifo):
        super().__init__(name)
        self.out = out
        self._tokens: deque[tuple[int, Any]] = deque()

    def load(self, tokens: list[tuple[int, Any]]) -> None:
        self._tokens.extend(tokens)

    def tick(self, cycle: int) -> None:
        if not self._tokens:
            return
        ready, payload = self._tokens[0]
        if cycle < ready:
            return
        if self.out.push(payload):
            self._tokens.popleft()
            self.busy_cycles += 1

    @property
    def done(self) -> bool:
        return not self._tokens


class PipelineModule(Module):
    """An initiation-interval-1 pipeline of fixed depth.

    Accepts one token per cycle from ``inp``; the token leaves into
    ``out`` exactly ``depth`` cycles later (unless the output stalls).
    This models the shift kernel's bit-serial scan: depth = Qw bit
    stages plus a handful of register stages.
    """

    def __init__(
        self,
        name: str,
        inp: Fifo,
        out: Fifo,
        depth: int,
        transform: Callable[[Any], Any] | None = None,
    ):
        super().__init__(name)
        self.inp = inp
        self.out = out
        self.depth = max(1, depth)
        self.transform = transform
        self._in_flight: deque[tuple[int, Any]] = deque()
        self._upstream_done: Callable[[], bool] = lambda: False

    def set_upstream_done(self, probe: Callable[[], bool]) -> None:
        self._upstream_done = probe

    def tick(self, cycle: int) -> None:
        # Retire the head token when its latency has elapsed.
        if self._in_flight:
            finish, payload = self._in_flight[0]
            if cycle >= finish:
                result = self.transform(payload) if self.transform else payload
                if self.out.push(result):
                    self._in_flight.popleft()
        # Accept one new token (II = 1).
        if not self.inp.empty and len(self._in_flight) < self.depth:
            payload = self.inp.pop()
            self._in_flight.append((cycle + self.depth, payload))
            self.busy_cycles += 1

    @property
    def done(self) -> bool:
        return (not self._in_flight and self.inp.empty and self._upstream_done())


class RateConsumerModule(Module):
    """Consumes tokens at a fixed rate and forwards them after a latency."""

    def __init__(
        self,
        name: str,
        inp: Fifo,
        out: Fifo | None,
        latency: int = 1,
        per_cycle: int = 1,
    ):
        super().__init__(name)
        self.inp = inp
        self.out = out
        self.latency = max(1, latency)
        self.per_cycle = max(1, per_cycle)
        self._in_flight: deque[tuple[int, Any]] = deque()
        self._upstream_done: Callable[[], bool] = lambda: False
        self.consumed = 0

    def set_upstream_done(self, probe: Callable[[], bool]) -> None:
        self._upstream_done = probe

    def tick(self, cycle: int) -> None:
        while self._in_flight and cycle >= self._in_flight[0][0]:
            finish, payload = self._in_flight[0]
            if self.out is None or self.out.push(payload):
                self._in_flight.popleft()
            else:
                break
        accepted = 0
        while accepted < self.per_cycle and not self.inp.empty:
            payload = self.inp.pop()
            self._in_flight.append((cycle + self.latency, payload))
            self.consumed += 1
            accepted += 1
        if accepted:
            self.busy_cycles += 1

    @property
    def done(self) -> bool:
        return (not self._in_flight and self.inp.empty and self._upstream_done())
