"""Bounded FIFOs with occupancy statistics for the dataflow simulator.

These model the HLS stream channels between the accelerator's modules;
bounded capacity gives back-pressure, whose effects (pipeline stalls)
show up directly in the cycle counts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.errors import SimulationError


@dataclass
class FifoStats:
    total_pushed: int = 0
    total_popped: int = 0
    max_occupancy: int = 0
    stall_cycles: int = 0


class Fifo:
    """A bounded first-in-first-out channel between two modules."""

    def __init__(self, name: str, capacity: int = 64):
        if capacity < 1:
            raise SimulationError(f"fifo '{name}' needs capacity >= 1")
        self.name = name
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self.stats = FifoStats()

    @property
    def occupancy(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def push(self, item: Any) -> bool:
        """Append ``item``; returns False (and records a stall) when full."""
        if self.full:
            self.stats.stall_cycles += 1
            return False
        self._items.append(item)
        self.stats.total_pushed += 1
        self.stats.max_occupancy = max(self.stats.max_occupancy, len(self._items))
        return True

    def pop(self) -> Any:
        """Remove and return the head item; None when empty."""
        if not self._items:
            return None
        self.stats.total_popped += 1
        return self._items.popleft()

    def peek(self) -> Any:
        return self._items[0] if self._items else None

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"Fifo({self.name}, {len(self._items)}/{self.capacity})"
