"""Synchronous driver for a graph of dataflow modules.

Ticks every module once per clock cycle (in the registration order,
which callers arrange to be dataflow order) until all modules report
done, counting cycles and detecting deadlock — the simulation loop
behind the paper's Fig. 5 cycle counts.  Results are in integer clock
cycles; FIFO occupancy statistics ride along for the trace renderer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeadlockError
from repro.fpga.sim.fifo import Fifo
from repro.fpga.sim.module import Module
from repro.fpga.sim.trace import SimulationTrace


@dataclass
class SimulationResult:
    """Outcome of one simulator run."""

    cycles: int
    module_busy: dict[str, int] = field(default_factory=dict)
    fifo_stats: dict[str, dict] = field(default_factory=dict)


class Simulator:
    """Steps modules in dataflow order until every module reports done.

    Modules are ticked in registration order within a cycle, which for an
    acyclic graph registered producer-first models flow-through
    registered handoff (a token pushed in cycle t is at the earliest
    consumed in the consumer's tick of cycle t + 1 when the consumer
    precedes the producer, or t when it follows it — register placement
    is part of the configured pipeline depths, not of the driver).
    """

    def __init__(self, max_cycles: int = 1_000_000):
        self.max_cycles = max_cycles
        self.modules: list[Module] = []
        self.fifos: list[Fifo] = []
        self.trace: SimulationTrace | None = None

    def attach_trace(self, every: int = 1) -> SimulationTrace:
        """Record per-cycle FIFO/module state during :meth:`run`."""
        self.trace = SimulationTrace(every=every)
        return self.trace

    def add_module(self, module: Module) -> Module:
        self.modules.append(module)
        return module

    def add_fifo(self, fifo: Fifo) -> Fifo:
        self.fifos.append(fifo)
        return fifo

    def new_fifo(self, name: str, capacity: int = 64) -> Fifo:
        return self.add_fifo(Fifo(name, capacity))

    def run(self, start_cycle: int = 0) -> SimulationResult:
        """Run until completion; returns cycle count from ``start_cycle``."""
        cycle = start_cycle
        while True:
            if all(module.done for module in self.modules):
                break
            if cycle - start_cycle >= self.max_cycles:
                stuck = [m.name for m in self.modules if not m.done]
                raise DeadlockError(
                    f"simulation exceeded {self.max_cycles} cycles; "
                    f"unfinished modules: {stuck}"
                )
            for module in self.modules:
                module.tick(cycle)
            if self.trace is not None:
                self.trace.record(cycle, self.fifos, self.modules)
            cycle += 1
        return SimulationResult(
            cycles=cycle - start_cycle,
            module_busy={m.name: m.busy_cycles for m in self.modules},
            fifo_stats={
                f.name: {
                    "pushed": f.stats.total_pushed,
                    "max_occupancy": f.stats.max_occupancy,
                    "stalls": f.stats.stall_cycles,
                }
                for f in self.fifos
            },
        )
