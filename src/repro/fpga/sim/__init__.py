"""Cycle-level synchronous dataflow simulation substrate."""

from repro.fpga.sim.fifo import Fifo, FifoStats
from repro.fpga.sim.module import (
    Module,
    PipelineModule,
    RateConsumerModule,
    SourceModule,
)
from repro.fpga.sim.simulator import SimulationResult, Simulator
from repro.fpga.sim.trace import SimulationTrace, TraceSample

__all__ = [
    "Fifo",
    "FifoStats",
    "Module",
    "PipelineModule",
    "RateConsumerModule",
    "SimulationResult",
    "SimulationTrace",
    "Simulator",
    "SourceModule",
    "TraceSample",
]
