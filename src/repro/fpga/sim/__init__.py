"""Cycle-level synchronous dataflow simulation substrate.

The discrete-event core under :class:`repro.fpga.QrmAccelerator`:
modules tick once per clock cycle in dataflow order and exchange tokens
through bounded FIFOs with back-pressure, mirroring the paper's Fig. 5
HLS block diagram (LDM / QPM / Row Combination / OCM connected by
stream channels).  Time is integer *clock cycles* throughout — the
accelerator converts to microseconds via its configured clock — which
is what lets the closed-loop pipeline quote modelled hardware analysis
latency next to measured software stage times.
"""

from repro.fpga.sim.fifo import Fifo, FifoStats
from repro.fpga.sim.module import (
    Module,
    PipelineModule,
    RateConsumerModule,
    SourceModule,
)
from repro.fpga.sim.simulator import SimulationResult, Simulator
from repro.fpga.sim.trace import SimulationTrace, TraceSample

__all__ = [
    "Fifo",
    "FifoStats",
    "Module",
    "PipelineModule",
    "RateConsumerModule",
    "SimulationResult",
    "SimulationTrace",
    "Simulator",
    "SourceModule",
    "TraceSample",
]
