"""Cycle-by-cycle tracing of a dataflow simulation.

Attach a :class:`SimulationTrace` to a :class:`~repro.fpga.sim.Simulator`
before running and it records, per cycle, every FIFO's occupancy and
every module's cumulative busy count.  The text timeline rendering shows
where the pipeline fills, stalls and drains — the cheap cousin of a
waveform viewer for this repository's Fig. 5 model.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceSample:
    """State snapshot at the end of one cycle."""

    cycle: int
    fifo_occupancy: dict[str, int]
    module_busy: dict[str, int]


@dataclass
class SimulationTrace:
    """Recorded samples of one simulation run."""

    every: int = 1
    samples: list[TraceSample] = field(default_factory=list)

    def record(self, cycle: int, fifos, modules) -> None:
        if cycle % self.every:
            return
        self.samples.append(
            TraceSample(
                cycle=cycle,
                fifo_occupancy={f.name: f.occupancy for f in fifos},
                module_busy={m.name: m.busy_cycles for m in modules},
            )
        )

    @property
    def n_cycles(self) -> int:
        return self.samples[-1].cycle + 1 if self.samples else 0

    def occupancy_series(self, fifo_name: str) -> list[int]:
        """Occupancy of one FIFO over the sampled cycles."""
        return [s.fifo_occupancy.get(fifo_name, 0) for s in self.samples]

    def peak_occupancy(self, fifo_name: str) -> int:
        series = self.occupancy_series(fifo_name)
        return max(series) if series else 0

    def render_timeline(self, max_width: int = 72) -> str:
        """A text occupancy timeline, one row per FIFO.

        Each column is one sampled cycle (subsampled to ``max_width``);
        glyphs encode occupancy: '.' empty, digits 1-9, '#' for 10+.
        """
        if not self.samples:
            return "(empty trace)"
        names = sorted(self.samples[0].fifo_occupancy)
        stride = max(1, len(self.samples) // max_width)
        label_width = max(len(n) for n in names)
        lines = [
            f"{'cycle':<{label_width}}  0 .. {self.samples[-1].cycle} "
            f"(one column = {stride} sample(s))"
        ]
        for name in names:
            series = self.occupancy_series(name)[::stride]
            glyphs = []
            for value in series:
                if value <= 0:
                    glyphs.append(".")
                elif value < 10:
                    glyphs.append(str(value))
                else:
                    glyphs.append("#")
            lines.append(f"{name:<{label_width}}  {''.join(glyphs)}")
        return "\n".join(lines)
