"""Row Combination Unit — merging the four quadrants' command streams.

"All four command buffers are processed at the same time, and it is also
statically known which shift commands finish at which time" (paper
Sec. IV-C): each cycle the unit drains one command word from every
quadrant lane and emits one merged token carrying the records that will
reach the output stream.  Mirror-quadrant merging itself (which shifts
coalesce into one physical move) is the scheduler's batching logic; here
we model its cycle cost and stream occupancy.
"""

from __future__ import annotations

from typing import Callable

from repro.fpga.quadrant_processor import LineToken
from repro.fpga.sim import Fifo
from repro.fpga.sim.module import Module


class RowCombinationUnit(Module):
    """Synchronous 4-way stream merger."""

    def __init__(
        self,
        name: str,
        lanes: list[Fifo],
        out: Fifo,
        per_cycle: int = 4,
    ):
        super().__init__(name)
        self.lanes = lanes
        self.out = out
        self.per_cycle = max(1, per_cycle)
        self.merged_tokens = 0
        self.records_out = 0
        self._upstream_done: Callable[[], bool] = lambda: False
        self._pending: list[LineToken] | None = None

    def set_upstream_done(self, probe: Callable[[], bool]) -> None:
        self._upstream_done = probe

    def tick(self, cycle: int) -> None:
        # Retire a previously merged token first (one merged push/cycle).
        if self._pending is not None:
            n_records = sum(1 for t in self._pending if t.n_commands)
            if self.out.push(("merged", n_records)):
                self.merged_tokens += 1
                self.records_out += n_records
                self._pending = None
            else:
                return
        popped: list[LineToken] = []
        for lane in self.lanes:
            if len(popped) >= self.per_cycle:
                break
            if not lane.empty:
                popped.append(lane.pop())
        if popped:
            self.busy_cycles += 1
            self._pending = popped

    @property
    def done(self) -> bool:
        return (
            self._pending is None
            and all(lane.empty for lane in self.lanes)
            and self._upstream_done()
        )
