"""Top-level QRM accelerator model (paper Fig. 5).

Layering:

* **function** — the movement schedule is produced by the same code path
  as the pure-Python golden scheduler (:class:`~repro.core.qrm.QrmScheduler`
  with the paper's pipelined parameters), so the accelerator's output is
  bit-identical to the golden model by construction.  The hardware-truth
  links are tested separately: the register-level shift kernel
  (:mod:`repro.fpga.shift_kernel`) is asserted bit-exact against the
  functional scan, and the Load Vector flip path against the frame
  transforms.
* **cycles** — a synchronous dataflow simulation of the Fig. 5 pipeline
  (4x Load Vector -> 4x Shift Kernel -> 4x Recorder -> Row Combination
  -> Output Concatenation -> AXI) is run per iteration with real FIFOs
  and back-pressure; its cycle count, plus the AXI/DDR transfer and
  PS-control overheads, gives the reported latency at the configured
  250 MHz clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import DEFAULT_QRM_PARAMETERS, QrmParameters
from repro.core.passes import PassOutcome, Phase
from repro.core.qrm import QrmScheduler
from repro.core.result import RearrangementResult
from repro.errors import SimulationError
from repro.fpga.axi import AxiTransferModel
from repro.fpga.config import DEFAULT_FPGA_CONFIG, FpgaConfig
from repro.fpga.load_data import LoadDataModule
from repro.fpga.output_concat import AxiWriteSink, OutputConcatUnit
from repro.fpga.packets import packets_needed
from repro.fpga.quadrant_processor import build_lane, iteration_tokens
from repro.fpga.row_combination import RowCombinationUnit
from repro.fpga.sim import Simulator
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry, Quadrant


@dataclass
class AcceleratorReport:
    """Cycle-level accounting of one accelerator invocation."""

    size: int
    clock_mhz: float
    control_cycles: int
    load_cycles: int
    iteration_cycles: list[int] = field(default_factory=list)
    writeback_cycles: int = 0
    n_input_packets: int = 0
    n_output_packets: int = 0
    n_records: int = 0
    module_busy: dict[str, int] = field(default_factory=dict)
    fifo_stats: dict[str, dict] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return (
            self.control_cycles
            + self.load_cycles
            + sum(self.iteration_cycles)
            + self.writeback_cycles
        )

    @property
    def time_us(self) -> float:
        return self.total_cycles / self.clock_mhz

    def summary(self) -> str:
        iters = " + ".join(str(c) for c in self.iteration_cycles)
        return (
            f"{self.size}x{self.size}: {self.total_cycles} cycles "
            f"({self.time_us:.2f} us @ {self.clock_mhz:.0f} MHz) = "
            f"ctrl {self.control_cycles} + load {self.load_cycles} + "
            f"iters [{iters}] + writeback {self.writeback_cycles}; "
            f"{self.n_input_packets} pkts in, {self.n_output_packets} pkts out"
        )


@dataclass
class AcceleratorRun:
    """Functional result plus the cycle-level report."""

    result: RearrangementResult
    report: AcceleratorReport

    @property
    def schedule(self):
        return self.result.schedule

    def record_words(self) -> list[int]:
        """The movement records as 32-bit words, in execution order."""
        from repro.fpga.movement_record import encode_schedule

        return encode_schedule(self.schedule)

    def output_packets(self, packet_bits: int = 1024):
        """The packed output stream the PS reads back from DDR."""
        from repro.fpga.movement_record import RECORD_BITS
        from repro.fpga.packets import pack_words

        return pack_words(self.record_words(), RECORD_BITS, packet_bits)

    def decode_output(self, packets, packet_bits: int = 1024):
        """PS-side decode: packets back into line shifts (round trip)."""
        from repro.fpga.movement_record import RECORD_BITS, decode_shift
        from repro.fpga.packets import unpack_words

        n_words = len(self.record_words())
        words = unpack_words(packets, RECORD_BITS, n_words, packet_bits)
        return [decode_shift(word) for word in words]


class QrmAccelerator:
    """Cycle-level model of the FPGA rearrangement accelerator."""

    def __init__(
        self,
        geometry: ArrayGeometry,
        params: QrmParameters = DEFAULT_QRM_PARAMETERS,
        config: FpgaConfig = DEFAULT_FPGA_CONFIG,
    ):
        if geometry.width != geometry.height:
            raise SimulationError("the accelerator model assumes a square array")
        self.geometry = geometry
        self.params = params
        self.config = config
        self.frames = {q: geometry.quadrant_frame(q) for q in Quadrant}
        self.scheduler = QrmScheduler(geometry, params)
        self.ldm = LoadDataModule(self.frames, config.packet_bits)
        self.axi = AxiTransferModel(setup_cycles=config.axi_setup_cycles)

    # -- cycle model -------------------------------------------------------

    def _simulate_iteration(self, row_pass, col_pass, trace_every: int | None = None):
        """Run the Fig. 5 dataflow for one iteration; returns cycle stats."""
        config = self.config
        qw = self.geometry.half_width
        sim = Simulator()
        trace = sim.attach_trace(trace_every) if trace_every else None

        lanes = []
        for quadrant in Quadrant:
            tokens = iteration_tokens(quadrant, row_pass, col_pass, qw)
            lanes.append(build_lane(sim, quadrant, tokens, qw, config))

        merged = sim.new_fifo("merged", config.fifo_depth)
        packets = sim.new_fifo("out_packets", config.fifo_depth)

        combiner = RowCombinationUnit(
            "row_combination",
            lanes=[lane.out for lane in lanes],
            out=merged,
            per_cycle=config.combiner_per_cycle,
        )
        combiner.set_upstream_done(lambda: all(lane.recorder.done for lane in lanes))
        packer = OutputConcatUnit(
            "ocm",
            inp=merged,
            out=packets,
            record_bits=config.record_bits,
            packet_bits=config.packet_bits,
        )
        packer.set_upstream_done(lambda: combiner.done)
        sink = AxiWriteSink("axi_write", packets)
        sink.set_upstream_done(lambda: packer.done)

        sim.add_module(combiner)
        sim.add_module(packer)
        sim.add_module(sink)

        outcome = sim.run()
        return (
            outcome.cycles,
            outcome.module_busy,
            outcome.fifo_stats,
            packer.records_packed,
            packer.packets_emitted,
            trace,
        )

    # -- public API ----------------------------------------------------------

    def run(self, array: AtomArray) -> AcceleratorRun:
        """Analyse ``array``: golden-function schedule + cycle report."""
        if array.geometry != self.geometry:
            raise SimulationError(
                "array geometry does not match the accelerator's geometry"
            )
        result = self.scheduler.schedule(array)

        config = self.config
        n_input_packets = packets_needed(self.geometry.n_sites, config.packet_bits)
        # Load: one AXI burst plus the four Load Vector flip pipelines
        # (2-stage) running at one packet per cycle.
        load_cycles = self.axi.transfer_cycles(n_input_packets) + 2

        report = AcceleratorReport(
            size=self.geometry.width,
            clock_mhz=config.clock_mhz,
            control_cycles=config.control_overhead_cycles,
            load_cycles=load_cycles,
            n_input_packets=n_input_packets,
        )

        # The PL schedule is static: the hardware always runs the configured
        # iteration count, scanning every line even when the algorithm has
        # already converged.  Pad converged-early runs with empty passes so
        # the cycle count reflects the fixed hardware schedule.
        passes = list(result.pass_outcomes)
        while len(passes) < 2 * self.params.n_iterations:
            passes.append(PassOutcome(phase=Phase.ROW))
            passes.append(PassOutcome(phase=Phase.COLUMN))

        for index in range(0, len(passes), 2):
            row_pass = passes[index]
            col_pass = passes[index + 1]
            cycles, busy, fstats, records, out_packets, _ = (
                self._simulate_iteration(row_pass, col_pass)
            )
            report.iteration_cycles.append(cycles + config.inter_pass_cycles)
            report.n_records += records
            report.n_output_packets += out_packets
            for name, value in busy.items():
                report.module_busy[name] = report.module_busy.get(name, 0) + value
            report.fifo_stats.update(fstats)

        # Final matrix write-back shares the output AXI channel.
        matrix_packets = packets_needed(self.geometry.n_sites, config.packet_bits)
        report.writeback_cycles = self.axi.transfer_cycles(matrix_packets)

        return AcceleratorRun(result=result, report=report)

    def latency_us(self, array: AtomArray) -> float:
        """Convenience: just the simulated analysis latency."""
        return self.run(array).report.time_us

    def trace_iteration(self, array: AtomArray, iteration: int = 0, every: int = 1):
        """Cycle trace of one iteration's dataflow (for inspection).

        Returns a :class:`~repro.fpga.sim.SimulationTrace` whose
        ``render_timeline()`` shows the FIFO occupancies of the Fig. 5
        pipeline filling and draining.
        """
        result = self.scheduler.schedule(array)
        passes = list(result.pass_outcomes)
        while len(passes) < 2 * self.params.n_iterations:
            passes.append(PassOutcome(phase=Phase.ROW))
            passes.append(PassOutcome(phase=Phase.COLUMN))
        index = 2 * iteration
        if not 0 <= index < len(passes):
            raise SimulationError(
                f"iteration {iteration} out of range "
                f"(run has {len(passes) // 2} iterations)"
            )
        *_, trace = self._simulate_iteration(
            passes[index], passes[index + 1], trace_every=every
        )
        return trace
