"""Register-transfer-level model of the Shift Kernel (paper Fig. 6).

One kernel lane scans a quadrant-local row bit by bit: every cycle the
row register's LSB is inspected, the pre-shift bit is streamed into the
matching column buffer (the row-to-column transpose of Fig. 6), a shift
command bit is latched ('1' when the inspected site is an atom-backed
hole), and the register shifts right so the next bit reaches the LSB in
the next stage.  An ``s_en`` mask can block stages far from the centre
from ever issuing shifts — the paper's manual-control mechanism.

The pipelined wrapper staggers several rows through the stages (one new
row per cycle, as in Fig. 6(a) where three rows are in flight after
three cycles) purely to reproduce and visualise the pipeline occupancy;
the per-row semantics are identical.

Unit tests assert that the command bits produced here match the
vectorised functional scan (:func:`repro.core.scan.scan_line`) for every
input — this is the bit-exactness link between the hardware model and
the golden scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.fpga.bitvec import BitVector


@dataclass(frozen=True)
class StageTrace:
    """State of one scan stage for one row (for Fig. 6-style rendering)."""

    stage: int
    register_before: BitVector
    lsb: bool
    command: bool
    register_after: BitVector


@dataclass
class RowScanTrace:
    """Full per-stage trace of one row through the kernel."""

    row: int
    input_bits: BitVector
    stages: list[StageTrace] = field(default_factory=list)

    @property
    def command_bits(self) -> BitVector:
        return BitVector.from_bits(stage.command for stage in self.stages)

    def hole_positions(self) -> tuple[int, ...]:
        return tuple(stage.stage for stage in self.stages if stage.command)


class ShiftKernelLane:
    """Scans rows of width ``qw``, one bit per stage."""

    def __init__(self, qw: int, s_en_mask: BitVector | None = None):
        if qw < 1:
            raise SimulationError(f"kernel width must be >= 1, got {qw}")
        self.qw = qw
        if s_en_mask is None:
            s_en_mask = BitVector(qw, (1 << qw) - 1)
        if s_en_mask.width != qw:
            raise SimulationError(
                f"s_en mask width {s_en_mask.width} != kernel width {qw}"
            )
        self.s_en_mask = s_en_mask
        self.column_buffers: list[list[bool]] = [[] for _ in range(qw)]

    def reset_buffers(self) -> None:
        self.column_buffers = [[] for _ in range(self.qw)]

    def scan_row(self, bits: BitVector, row: int = 0) -> RowScanTrace:
        """Scan one row and return its per-stage trace.

        Side effect: appends the pre-shift bit of each stage to the
        matching column buffer (the transpose stream).
        """
        if bits.width != self.qw:
            raise SimulationError(f"row width {bits.width} != kernel width {self.qw}")
        trace = RowScanTrace(row=row, input_bits=bits)
        register = bits
        for stage in range(self.qw):
            lsb = register.lsb
            # An atom-backed hole: LSB clear while atoms remain outboard.
            atoms_outboard = register.shift_right(1).any()
            command = (not lsb) and atoms_outboard and self.s_en_mask.get(stage)
            self.column_buffers[stage].append(lsb)
            after = register.shift_right(1)
            trace.stages.append(
                StageTrace(
                    stage=stage,
                    register_before=register,
                    lsb=lsb,
                    command=command,
                    register_after=after,
                )
            )
            register = after
        return trace

    def column_stream(self) -> list[BitVector]:
        """Column buffers as bit vectors (column v across scanned rows)."""
        return [BitVector.from_bits(buf) for buf in self.column_buffers]


@dataclass(frozen=True)
class PipelineSnapshot:
    """Which row occupies which stage at one cycle (Fig. 6 rendering)."""

    cycle: int
    occupancy: tuple[tuple[int, int], ...]  # (row, stage) pairs in flight
    completed_rows: tuple[int, ...]


class PipelinedShiftKernel:
    """Staggered multi-row view of one kernel lane (II = 1).

    Row ``r`` enters at cycle ``r`` and occupies stage ``c - r`` at cycle
    ``c``; it completes after ``qw`` stages.  Used by tests and the
    Fig. 6 trace example; cycle accounting in the accelerator model uses
    the same depth figure.
    """

    def __init__(self, qw: int):
        self.lane = ShiftKernelLane(qw)
        self.qw = qw
        self.traces: list[RowScanTrace] = []

    def process(self, rows: list[BitVector]) -> list[RowScanTrace]:
        self.lane.reset_buffers()
        self.traces = [
            self.lane.scan_row(bits, row=index) for index, bits in enumerate(rows)
        ]
        return self.traces

    def latency_cycles(self, n_rows: int, extra_depth: int = 0) -> int:
        """Cycles from first row entering to last row leaving."""
        if n_rows <= 0:
            return 0
        return (n_rows - 1) + self.qw + extra_depth

    def snapshot(self, cycle: int) -> PipelineSnapshot:
        """Pipeline occupancy at ``cycle`` for the last processed batch."""
        in_flight = []
        completed = []
        for row in range(len(self.traces)):
            stage = cycle - row
            if stage < 0:
                continue
            if stage >= self.qw:
                completed.append(row)
            else:
                in_flight.append((row, stage))
        return PipelineSnapshot(
            cycle=cycle,
            occupancy=tuple(in_flight),
            completed_rows=tuple(completed),
        )

    def render_snapshot(self, cycle: int) -> str:
        """Fig. 6-style text rendering of the pipeline at ``cycle``."""
        snap = self.snapshot(cycle)
        lines = [f"cycle {cycle}: rows in flight {len(snap.occupancy)}"]
        for row, stage in snap.occupancy:
            trace = self.traces[row]
            state = trace.stages[stage]
            reg = "".join("1" if b else "0" for b in state.register_before.to_bools())
            cmds = "".join("1" if s.command else "0" for s in trace.stages[: stage + 1])
            lines.append(
                f"  row {row}: stage {stage}, register {reg}, "
                f"commands so far {cmds or '-'}"
            )
        if snap.completed_rows:
            lines.append(
                "  completed rows: " + ", ".join(str(r) for r in snap.completed_rows)
            )
        return "\n".join(lines)
