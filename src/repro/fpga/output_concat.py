"""Output Concatenation Module (OCM) — record packing and write-back.

Merged movement records are packed into 1024-bit packets and streamed
back to DDR; the packer emits at most one packet per cycle and flushes a
partial packet when the upstream drains.  The AXI write sink retires one
packet per cycle (burst setup is charged separately by the accelerator's
transfer model).
"""

from __future__ import annotations

from typing import Callable

from repro.fpga.sim import Fifo
from repro.fpga.sim.module import Module


class OutputConcatUnit(Module):
    """Packs merged record tokens into fixed-size packets."""

    def __init__(
        self,
        name: str,
        inp: Fifo,
        out: Fifo,
        record_bits: int,
        packet_bits: int,
    ):
        super().__init__(name)
        self.inp = inp
        self.out = out
        self.record_bits = record_bits
        self.packet_bits = packet_bits
        self.bits_pending = 0
        self.packets_emitted = 0
        self.records_packed = 0
        self._upstream_done: Callable[[], bool] = lambda: False

    def set_upstream_done(self, probe: Callable[[], bool]) -> None:
        self._upstream_done = probe

    def _emit_packet(self) -> bool:
        if self.out.push(("packet", self.packets_emitted)):
            self.packets_emitted += 1
            return True
        return False

    def tick(self, cycle: int) -> None:
        # Emit at most one full packet per cycle.
        if self.bits_pending >= self.packet_bits:
            if self._emit_packet():
                self.bits_pending -= self.packet_bits
                self.busy_cycles += 1
            return
        if not self.inp.empty:
            kind, n_records = self.inp.pop()
            assert kind == "merged"
            self.bits_pending += n_records * self.record_bits
            self.records_packed += n_records
            self.busy_cycles += 1
            return
        # Upstream dry: flush the partial packet.
        if self._upstream_done() and self.bits_pending > 0:
            if self._emit_packet():
                self.bits_pending = 0
                self.busy_cycles += 1

    @property
    def done(self) -> bool:
        return (self.bits_pending == 0 and self.inp.empty and self._upstream_done())


class AxiWriteSink(Module):
    """Retires one output packet per cycle."""

    def __init__(self, name: str, inp: Fifo):
        super().__init__(name)
        self.inp = inp
        self.packets = 0
        self._upstream_done: Callable[[], bool] = lambda: False

    def set_upstream_done(self, probe: Callable[[], bool]) -> None:
        self._upstream_done = probe

    def tick(self, cycle: int) -> None:
        if not self.inp.empty:
            self.inp.pop()
            self.packets += 1
            self.busy_cycles += 1

    @property
    def done(self) -> bool:
        return self.inp.empty and self._upstream_done()
