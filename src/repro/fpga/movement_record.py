"""Movement Recording Unit — command words to memory-format records.

The recording unit tracks, for every emitted shift, "the original
location of atoms, their directional shifts, and the number of steps
taken" (paper Sec. IV-B), already restored to full-array coordinates.
This module defines the 32-bit record layout used on the output stream
and its exact encode/decode round trip.

Record layout (LSB first):

====== ====== =========================================
bits   field  meaning
====== ====== =========================================
0-1    dir    0=N, 1=S, 2=E, 3=W
2-7    steps  step count (1-63)
8-15   line   row index (horizontal) / column (vertical)
16-23  start  span start along the move axis
24-31  stop   span stop (exclusive)
====== ====== =========================================

Eight-bit coordinate fields support arrays up to 256x256, comfortably
above the paper's 90x90 maximum.
"""

from __future__ import annotations

from repro.aod.move import LineShift, ParallelMove
from repro.errors import SimulationError
from repro.lattice.geometry import Direction

RECORD_BITS = 32

_DIR_CODE = {
    Direction.NORTH: 0,
    Direction.SOUTH: 1,
    Direction.EAST: 2,
    Direction.WEST: 3,
}
_CODE_DIR = {code: direction for direction, code in _DIR_CODE.items()}

_FIELD_MAX = {"steps": 63, "line": 255, "start": 255, "stop": 255}


def encode_shift(shift: LineShift) -> int:
    """Encode one line shift as a 32-bit record word."""
    if shift.steps > _FIELD_MAX["steps"]:
        raise SimulationError(f"steps {shift.steps} exceeds record field")
    for name, value in (
        ("line", shift.line),
        ("start", shift.span_start),
        ("stop", shift.span_stop),
    ):
        if value > _FIELD_MAX[name]:
            raise SimulationError(f"{name} {value} exceeds 8-bit record field")
    return (
        _DIR_CODE[shift.direction]
        | (shift.steps << 2)
        | (shift.line << 8)
        | (shift.span_start << 16)
        | (shift.span_stop << 24)
    )


def decode_shift(word: int) -> LineShift:
    """Inverse of :func:`encode_shift`."""
    if word < 0 or word >= (1 << RECORD_BITS):
        raise SimulationError(f"record word {word} outside 32-bit range")
    return LineShift(
        direction=_CODE_DIR[word & 0x3],
        steps=(word >> 2) & 0x3F,
        line=(word >> 8) & 0xFF,
        span_start=(word >> 16) & 0xFF,
        span_stop=(word >> 24) & 0xFF,
    )


def encode_move(move: ParallelMove) -> list[int]:
    """All record words of one parallel move (one per line shift)."""
    return [encode_shift(shift) for shift in move.shifts]


def encode_schedule(moves) -> list[int]:
    """Record words of a whole schedule, in execution order."""
    words: list[int] = []
    for move in moves:
        words.extend(encode_move(move))
    return words
