"""Quadrant Processing Module (QPM) — one lane of the dataflow pipeline.

Each QPM couples a shift kernel with a movement recording unit.  For the
cycle model, a lane is: a token source (one token per scanned line, with
ready times reflecting when that line's data exists), an II=1 pipeline
of depth ``Qw + extra`` (the bit-serial scan), and the recorder stage.

Per iteration a lane processes ``2 * Qw`` tokens: the ``Qw`` rows of the
row pass (ready back to back) followed by the ``Qw`` columns of the
column pass.  Column ``v`` only completes in the transpose buffers ``v``
cycles after the last row entered the scan (bit ``v`` of the final row
is inspected at its stage ``v``), which is exactly the ready-time
schedule loaded here — reproducing the paper's "2 x Qw plus the
processing time of a single row" per-iteration latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.passes import PassOutcome
from repro.fpga.config import FpgaConfig
from repro.fpga.sim import (
    Fifo,
    PipelineModule,
    RateConsumerModule,
    Simulator,
    SourceModule,
)
from repro.lattice.geometry import Quadrant


@dataclass(frozen=True)
class LineToken:
    """One scanned line travelling through a QPM lane."""

    quadrant: Quadrant
    phase: str
    line: int
    n_commands: int


@dataclass
class QpmLane:
    """Handles to the sim modules of one quadrant lane."""

    quadrant: Quadrant
    source: SourceModule
    kernel: PipelineModule
    recorder: RateConsumerModule
    out: Fifo


def iteration_tokens(
    quadrant: Quadrant,
    row_pass: PassOutcome,
    col_pass: PassOutcome,
    qw: int,
) -> list[tuple[int, LineToken]]:
    """(ready_cycle, token) schedule for one iteration of one lane."""
    tokens: list[tuple[int, LineToken]] = []
    row_counts = row_pass.line_commands.get(quadrant, [0] * qw)
    col_counts = col_pass.line_commands.get(quadrant, [0] * qw)
    for u, n_commands in enumerate(row_counts):
        tokens.append((u, LineToken(quadrant, "row", u, n_commands)))
    # Column v completes once the last row's bit v has been scanned:
    # last row enters at qw - 1 and reaches stage v at qw - 1 + v + 1.
    base = qw
    for v, n_commands in enumerate(col_counts):
        tokens.append((base + v, LineToken(quadrant, "column", v, n_commands)))
    return tokens


def build_lane(
    sim: Simulator,
    quadrant: Quadrant,
    tokens: list[tuple[int, LineToken]],
    qw: int,
    config: FpgaConfig,
) -> QpmLane:
    """Instantiate source -> kernel -> recorder for one quadrant."""
    name = quadrant.value.lower()
    to_kernel = sim.new_fifo(f"{name}.to_kernel", config.fifo_depth)
    to_recorder = sim.new_fifo(f"{name}.to_recorder", config.fifo_depth)
    out = sim.new_fifo(f"{name}.records", config.fifo_depth)

    source = SourceModule(f"{name}.load_vector", to_kernel)
    source.load(tokens)
    kernel = PipelineModule(
        f"{name}.shift_kernel",
        inp=to_kernel,
        out=to_recorder,
        depth=qw + config.kernel_pipeline_depth_extra,
    )
    kernel.set_upstream_done(lambda src=source: src.done)
    recorder = RateConsumerModule(
        f"{name}.recorder",
        inp=to_recorder,
        out=out,
        latency=config.recorder_latency,
    )
    recorder.set_upstream_done(lambda ker=kernel: ker.done)

    sim.add_module(source)
    sim.add_module(kernel)
    sim.add_module(recorder)
    return QpmLane(
        quadrant=quadrant,
        source=source,
        kernel=kernel,
        recorder=recorder,
        out=out,
    )
