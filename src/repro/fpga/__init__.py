"""Cycle-level model of the FPGA rearrangement accelerator (paper Sec. IV)."""

from repro.fpga.accelerator import (
    AcceleratorReport,
    AcceleratorRun,
    QrmAccelerator,
)
from repro.fpga.axi import AxiTransferModel
from repro.fpga.bitvec import BitVector
from repro.fpga.config import DEFAULT_FPGA_CONFIG, FpgaConfig
from repro.fpga.device import (
    DEFAULT_DEVICE,
    DEVICES,
    FpgaDevice,
    ZU7EV,
    ZU28DR,
    ZU49DR,
    get_device,
)
from repro.fpga.load_data import LoadDataModule, LoadedQuadrant, LoadVectorUnit
from repro.fpga.movement_record import (
    RECORD_BITS,
    decode_shift,
    encode_move,
    encode_schedule,
    encode_shift,
)
from repro.fpga.packets import (
    pack_occupancy,
    pack_words,
    packets_needed,
    unpack_occupancy,
    unpack_words,
)
from repro.fpga.resources import ModuleResources, ResourceModel, ResourceReport
from repro.fpga.shift_kernel import (
    PipelinedShiftKernel,
    RowScanTrace,
    ShiftKernelLane,
)

__all__ = [
    "AcceleratorReport",
    "AcceleratorRun",
    "AxiTransferModel",
    "BitVector",
    "DEFAULT_DEVICE",
    "DEFAULT_FPGA_CONFIG",
    "DEVICES",
    "FpgaConfig",
    "FpgaDevice",
    "LoadDataModule",
    "LoadVectorUnit",
    "LoadedQuadrant",
    "ModuleResources",
    "PipelinedShiftKernel",
    "QrmAccelerator",
    "RECORD_BITS",
    "ResourceModel",
    "ResourceReport",
    "RowScanTrace",
    "ShiftKernelLane",
    "ZU28DR",
    "ZU49DR",
    "ZU7EV",
    "decode_shift",
    "encode_move",
    "encode_schedule",
    "encode_shift",
    "get_device",
    "pack_occupancy",
    "pack_words",
    "packets_needed",
    "unpack_occupancy",
    "unpack_words",
]
