"""FPGA resource-utilisation model (paper Fig. 8).

Per-module parametric estimates of LUT/FF/BRAM consumption.  The paper
reports linear LUT/FF growth with array size (6.31 % LUT and 6.19 % FF
at 90x90 on the ZU49DR) and flat BRAM; it also notes that roughly half
the logic sits in the four QPMs and the other half in the output
integration logic.  The linear coefficients below are calibrated to
those anchors and split across modules accordingly; BRAM counts follow
from buffer geometry (a quadrant line buffer of Qw^2 bits fits one
36 kb BRAM for every size the paper sweeps, hence the flat curve).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.fpga.device import DEFAULT_DEVICE, FpgaDevice

#: Calibration anchors: total LUT/FF at W = 10 and W = 90 (Fig. 8).
_LUT_ANCHORS = ((10, 4253.0), (90, 26835.0))  # 1.0 % and 6.31 % of ZU49DR
_FF_ANCHORS = ((10, 7655.0), (90, 52650.0))  # 0.9 % and 6.19 %

#: Fraction of the logic attributed to each block (Sec. V-C: the four
#: QPMs take about half, output integration most of the rest).
_MODULE_SPLIT = {
    "load_data": 0.12,
    "quadrant_processors": 0.50,
    "row_combination": 0.18,
    "output_concat": 0.12,
    "axi_control": 0.08,
}

_BRAM36_BITS = 36 * 1024


def _linear(anchors: tuple[tuple[int, float], ...], size: int) -> float:
    (w1, y1), (w2, y2) = anchors
    slope = (y2 - y1) / (w2 - w1)
    return y1 + slope * (size - w1)


@dataclass(frozen=True)
class ModuleResources:
    """Estimated resources of one hardware block."""

    name: str
    luts: int
    flip_flops: int
    bram_36k: int


@dataclass
class ResourceReport:
    """Estimated utilisation of the whole accelerator at one array size."""

    size: int
    device: FpgaDevice
    modules: list[ModuleResources] = field(default_factory=list)

    @property
    def total_luts(self) -> int:
        return sum(m.luts for m in self.modules)

    @property
    def total_ffs(self) -> int:
        return sum(m.flip_flops for m in self.modules)

    @property
    def total_brams(self) -> int:
        return sum(m.bram_36k for m in self.modules)

    def utilisation(self) -> dict[str, float]:
        return self.device.utilisation(
            self.total_luts, self.total_ffs, self.total_brams
        )

    def fits(self) -> bool:
        util = self.utilisation()
        return all(value <= 100.0 for value in util.values())

    def format_table(self) -> str:
        lines = [
            f"resource estimate, {self.size}x{self.size} array on "
            f"{self.device.name}",
            f"{'module':<22}{'LUT':>10}{'FF':>10}{'BRAM36':>8}",
        ]
        for module in self.modules:
            lines.append(
                f"{module.name:<22}{module.luts:>10}{module.flip_flops:>10}"
                f"{module.bram_36k:>8}"
            )
        util = self.utilisation()
        lines.append(
            f"{'total':<22}{self.total_luts:>10}{self.total_ffs:>10}"
            f"{self.total_brams:>8}"
        )
        lines.append(
            f"{'utilisation %':<22}{util['LUT']:>10.2f}{util['FF']:>10.2f}"
            f"{util['BRAM']:>8.2f}"
        )
        return "\n".join(lines)


class ResourceModel:
    """Parametric resource estimator for the QRM accelerator."""

    def __init__(self, device: FpgaDevice = DEFAULT_DEVICE):
        self.device = device

    def _bram_per_quadrant(self, size: int) -> int:
        """Column buffer + command buffer + line FIFO per quadrant."""
        qw = size // 2
        line_buffer_bits = qw * qw
        per_buffer = max(1, math.ceil(line_buffer_bits / _BRAM36_BITS))
        return 2 * per_buffer + 1

    def estimate(self, size: int) -> ResourceReport:
        """Estimate the accelerator's resources for a ``size x size`` array."""
        if size < 2 or size % 2:
            raise ConfigurationError(f"array size must be even and >= 2, got {size}")
        total_luts = _linear(_LUT_ANCHORS, size)
        total_ffs = _linear(_FF_ANCHORS, size)

        modules: list[ModuleResources] = []
        bram_map = {
            "load_data": 4,  # one input line buffer per Load Vector unit
            "quadrant_processors": 4 * self._bram_per_quadrant(size),
            "row_combination": 4,  # the four command FIFOs
            "output_concat": 8,  # packet assembly double buffers
            "axi_control": 4,
        }
        for name, fraction in _MODULE_SPLIT.items():
            modules.append(
                ModuleResources(
                    name=name,
                    luts=int(round(total_luts * fraction)),
                    flip_flops=int(round(total_ffs * fraction)),
                    bram_36k=bram_map[name],
                )
            )
        return ResourceReport(size=size, device=self.device, modules=modules)

    def sweep(self, sizes: list[int]) -> list[ResourceReport]:
        return [self.estimate(size) for size in sizes]
