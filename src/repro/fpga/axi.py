"""AXI/DDR transfer cost model.

The accelerator exchanges 1024-bit packets with DDR through an AXI
master; a burst pays a fixed setup (address handshake, DDR latency) and
then streams one packet per cycle.  The PS-side Python API that triggers
the run adds a one-off control overhead accounted for in
:class:`~repro.fpga.config.FpgaConfig`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AxiTransferModel:
    """Burst transfer cost in cycles."""

    setup_cycles: int = 16
    packets_per_cycle: int = 1
    max_burst_packets: int = 256

    def __post_init__(self) -> None:
        if self.setup_cycles < 0:
            raise ConfigurationError("setup_cycles must be >= 0")
        if self.packets_per_cycle < 1 or self.max_burst_packets < 1:
            raise ConfigurationError(
                "packets_per_cycle and max_burst_packets must be >= 1"
            )

    def n_bursts(self, n_packets: int) -> int:
        if n_packets <= 0:
            return 0
        return math.ceil(n_packets / self.max_burst_packets)

    def transfer_cycles(self, n_packets: int) -> int:
        """Cycles to move ``n_packets`` in one direction."""
        if n_packets <= 0:
            return 0
        stream = math.ceil(n_packets / self.packets_per_cycle)
        return self.n_bursts(n_packets) * self.setup_cycles + stream
