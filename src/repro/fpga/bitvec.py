"""Fixed-width bit vectors for the register-level hardware models.

The HLS design manipulates rows as ``ap_uint<Qw>`` registers; this class
mirrors that behaviour (integer-backed, fixed width, LSB = index 0 = the
site closest to the array centre) so the register-level shift-kernel
model reads like the hardware it describes.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import SimulationError


class BitVector:
    """An immutable fixed-width bit vector (LSB first)."""

    __slots__ = ("width", "value")

    def __init__(self, width: int, value: int = 0):
        if width < 0:
            raise SimulationError(f"width must be >= 0, got {width}")
        if value < 0:
            raise SimulationError("BitVector value must be non-negative")
        self.width = width
        self.value = value & ((1 << width) - 1 if width else 0)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_bits(cls, bits: Iterable[bool]) -> "BitVector":
        value = 0
        width = 0
        for i, bit in enumerate(bits):
            if bit:
                value |= 1 << i
            width = i + 1
        return cls(width, value)

    @classmethod
    def from_array(cls, array: np.ndarray) -> "BitVector":
        return cls.from_bits(bool(b) for b in np.asarray(array, dtype=bool))

    # -- queries -----------------------------------------------------------

    def get(self, index: int) -> bool:
        self._check_index(index)
        return bool((self.value >> index) & 1)

    @property
    def lsb(self) -> bool:
        if self.width == 0:
            raise SimulationError("empty BitVector has no LSB")
        return bool(self.value & 1)

    def popcount(self) -> int:
        return bin(self.value).count("1")

    def any(self) -> bool:
        return self.value != 0

    def to_bools(self) -> list[bool]:
        return [bool((self.value >> i) & 1) for i in range(self.width)]

    def to_array(self) -> np.ndarray:
        return np.array(self.to_bools(), dtype=bool)

    # -- transforms (all return new vectors) --------------------------------

    def set(self, index: int, bit: bool) -> "BitVector":
        self._check_index(index)
        if bit:
            return BitVector(self.width, self.value | (1 << index))
        return BitVector(self.width, self.value & ~(1 << index))

    def shift_right(self, n: int = 1) -> "BitVector":
        """Drop the ``n`` lowest bits (the hardware's scan shift)."""
        return BitVector(self.width, self.value >> n)

    def shift_left(self, n: int = 1) -> "BitVector":
        return BitVector(self.width, (self.value << n))

    def reversed(self) -> "BitVector":
        return BitVector.from_bits(reversed(self.to_bools()))

    def concat(self, other: "BitVector") -> "BitVector":
        """``other`` becomes the high bits: result = other:self."""
        return BitVector(
            self.width + other.width, self.value | (other.value << self.width)
        )

    def slice(self, start: int, stop: int) -> "BitVector":
        if not 0 <= start <= stop <= self.width:
            raise SimulationError(f"slice [{start}:{stop}] outside width {self.width}")
        mask = (1 << (stop - start)) - 1
        return BitVector(stop - start, (self.value >> start) & mask)

    # -- dunders -------------------------------------------------------------

    def __iter__(self) -> Iterator[bool]:
        return iter(self.to_bools())

    def __len__(self) -> int:
        return self.width

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self.width == other.width and self.value == other.value

    def __hash__(self) -> int:
        return hash((self.width, self.value))

    def __repr__(self) -> str:
        bits = "".join("1" if b else "0" for b in self.to_bools())
        return f"BitVector({bits or '<empty>'})"

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.width:
            raise SimulationError(f"bit index {index} outside width {self.width}")
