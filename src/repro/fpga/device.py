"""FPGA device catalogue for the resource-utilisation model.

The paper deploys on a Zynq UltraScale+ RFSoC ZCU216 evaluation board,
whose XCZU49DR device provides the resource budget against which Fig. 8
reports percentages.  A few neighbouring devices are included so the
resource model can answer "would this fit elsewhere" questions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FpgaDevice:
    """Resource budget of one FPGA part."""

    name: str
    luts: int
    flip_flops: int
    bram_36k: int
    dsp_slices: int

    def __post_init__(self) -> None:
        for field_name in ("luts", "flip_flops", "bram_36k", "dsp_slices"):
            if getattr(self, field_name) <= 0:
                raise ConfigurationError(f"{field_name} must be positive")

    def utilisation(self, luts: float, ffs: float, brams: float) -> dict[str, float]:
        """Percent utilisation of each resource class."""
        return {
            "LUT": 100.0 * luts / self.luts,
            "FF": 100.0 * ffs / self.flip_flops,
            "BRAM": 100.0 * brams / self.bram_36k,
        }


#: XCZU49DR — the RFSoC on the ZCU216 board used in the paper.
ZU49DR = FpgaDevice(
    name="xczu49dr",
    luts=425_280,
    flip_flops=850_560,
    bram_36k=1080,
    dsp_slices=4272,
)

#: XCZU28DR — the smaller RFSoC (ZCU111 board), for what-if studies.
ZU28DR = FpgaDevice(
    name="xczu28dr",
    luts=425_280,
    flip_flops=850_560,
    bram_36k=1080,
    dsp_slices=4272,
)

#: XCZU7EV — a mid-range MPSoC, to show the design also fits small parts.
ZU7EV = FpgaDevice(
    name="xczu7ev",
    luts=230_400,
    flip_flops=460_800,
    bram_36k=312,
    dsp_slices=1728,
)

DEVICES: dict[str, FpgaDevice] = {
    device.name: device for device in (ZU49DR, ZU28DR, ZU7EV)
}

DEFAULT_DEVICE = ZU49DR


def get_device(name: str) -> FpgaDevice:
    try:
        return DEVICES[name]
    except KeyError:
        known = ", ".join(sorted(DEVICES))
        raise KeyError(f"unknown device '{name}'; known: {known}") from None
