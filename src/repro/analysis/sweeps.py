"""Generic parameter sweeps with CSV export.

Thin declarative layer over the experiment runners: a sweep maps a
cartesian grid of parameters through a metric function and collects rows
suitable for tables or CSV files — the workhorse behind custom studies
that go beyond the fixed paper figures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.analysis.tables import format_table, to_csv
from repro.errors import ConfigurationError


@dataclass
class SweepResult:
    """Rows collected by :func:`run_sweep`."""

    parameter_names: list[str]
    metric_names: list[str]
    rows: list[list[Any]] = field(default_factory=list)

    @property
    def headers(self) -> list[str]:
        return [*self.parameter_names, *self.metric_names]

    def format_table(self, title: str | None = None) -> str:
        return format_table(self.headers, self.rows, title=title)

    def to_csv(self) -> str:
        return to_csv(self.headers, self.rows)

    def write_csv(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_csv() + "\n")
        return path

    def column(self, name: str) -> list[Any]:
        """One named column across all rows."""
        try:
            index = self.headers.index(name)
        except ValueError:
            raise ConfigurationError(
                f"unknown column '{name}'; have {self.headers}"
            ) from None
        return [row[index] for row in self.rows]


def run_sweep(
    parameters: Mapping[str, Sequence[Any]],
    metrics: Mapping[str, Callable[..., Any]],
) -> SweepResult:
    """Evaluate ``metrics`` over the cartesian grid of ``parameters``.

    Each metric function is called with the grid point as keyword
    arguments, e.g.::

        run_sweep(
            {"size": [10, 20], "fill": [0.5, 0.6]},
            {"fill_frac": lambda size, fill: measure(size, fill)},
        )
    """
    if not parameters:
        raise ConfigurationError("a sweep needs at least one parameter")
    if not metrics:
        raise ConfigurationError("a sweep needs at least one metric")
    names = list(parameters)
    result = SweepResult(parameter_names=names, metric_names=list(metrics))
    for point in itertools.product(*(parameters[name] for name in names)):
        kwargs = dict(zip(names, point))
        row: list[Any] = list(point)
        for metric_fn in metrics.values():
            row.append(metric_fn(**kwargs))
        result.rows.append(row)
    return result


def qrm_quality_sweep(
    sizes: Sequence[int] = (20, 30, 50),
    fills: Sequence[float] = (0.5, 0.6, 0.7),
    trials: int = 3,
    seed_base: int = 0,
    algorithm: str = "qrm",
    executor=None,
    cache=None,
    journal=None,
) -> SweepResult:
    """Ready-made sweep: QRM target fill and moves over size x fill.

    Runs on the campaign engine — pass ``executor=`` to parallelise,
    ``cache=`` (a :class:`repro.campaign.TrialCache`) for incremental
    re-runs, and ``journal=`` (a :class:`repro.campaign.RunJournal`)
    for interrupt/resume.
    """
    from repro.campaign.engine import ExperimentCampaign
    from repro.campaign.spec import CampaignSpec

    spec = CampaignSpec(
        name="qrm-quality-sweep",
        algorithms=(algorithm,),
        sizes=tuple(sizes),
        fills=tuple(fills),
        n_seeds=trials,
        master_seed=seed_base,
    )
    campaign = ExperimentCampaign(
        spec, executor=executor, cache=cache, journal=journal
    ).run()
    result = SweepResult(
        parameter_names=["size", "fill"],
        metric_names=["target_fill", "p_success", "moves"],
    )
    for stats in campaign.fill_stats():
        result.rows.append(
            [
                stats.size,
                stats.fill,
                stats.mean_target_fill,
                stats.success_probability,
                stats.mean_moves,
            ]
        )
    return result
