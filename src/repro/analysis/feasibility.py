"""Analytic model of per-quadrant assembly feasibility.

Centre-ward row/column compaction inside a quadrant converges to the
canonical Young diagram of the quadrant's row-occupation counts: after
the row pass every local row is a prefix of length ``len_r``, and after
the column pass local column ``j`` holds ``h_j = #{r : len_r > j}``
atoms stacked against the corner.  With Bernoulli(p) loading the
``len_r`` are i.i.d. Binomial(Qw, p), which makes the expected target
fill *computable in closed form*:

* column ``j`` of the diagram is Binomial(Q_rows, q_j) distributed with
  ``q_j = P(Binom(Q_cols, p) > j)``;
* the quadrant's target corner (T_r x T_c sites) receives
  ``sum_{j < T_c} E[min(h_j, T_r)]`` atoms in expectation.

The model is validated against the measured QRM fill in the test suite —
it is the quantitative form of the feasibility analysis in DESIGN.md and
predicts the ~91 % fill plateau the success sweep (E5) observes at 50 %
loading.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError
from repro.lattice.geometry import ArrayGeometry


def _expected_min_binomial(n: int, prob: float, cap: int) -> float:
    """``E[min(X, cap)]`` for ``X ~ Binomial(n, prob)``."""
    if cap <= 0:
        return 0.0
    if cap >= n:
        return n * prob
    k = np.arange(0, n + 1)
    pmf = stats.binom.pmf(k, n, prob)
    return float(np.sum(np.minimum(k, cap) * pmf))


@dataclass(frozen=True)
class FeasibilityEstimate:
    """Predicted assembly quality of pure quadrant compaction."""

    geometry: ArrayGeometry
    fill: float
    expected_target_fill: float
    expected_defects: float
    column_heights: tuple[float, ...]  # E[h_j] for the target columns

    def format(self) -> str:
        return (
            f"{self.geometry.width}x{self.geometry.height} @ fill "
            f"{self.fill:.2f}: predicted target fill "
            f"{self.expected_target_fill:.1%} "
            f"({self.expected_defects:.1f} defects expected)"
        )


def predict_compaction_fill(
    geometry: ArrayGeometry, fill: float
) -> FeasibilityEstimate:
    """Expected target fill of QRM-style compaction under Bernoulli load.

    Exact in expectation for the fresh scan mode (whose fixpoint is the
    canonical Young diagram); the pipelined mode's fixpoint differs by at
    most the stale-skip residue, which the validation test bounds.
    """
    if not 0.0 <= fill <= 1.0:
        raise ConfigurationError(f"fill must be in [0, 1], got {fill}")
    q_rows = geometry.half_height
    q_cols = geometry.half_width
    t_rows = geometry.target_height // 2
    t_cols = geometry.target_width // 2

    expected_atoms = 0.0
    heights = []
    for j in range(t_cols):
        # P(one row's prefix is longer than j) under Binomial(q_cols, p).
        q_j = float(stats.binom.sf(j, q_cols, fill))
        heights.append(q_rows * q_j)
        expected_atoms += _expected_min_binomial(q_rows, q_j, t_rows)

    target_sites = t_rows * t_cols
    per_quadrant_fill = expected_atoms / target_sites if target_sites else 1.0
    return FeasibilityEstimate(
        geometry=geometry,
        fill=fill,
        expected_target_fill=per_quadrant_fill,
        expected_defects=4 * (target_sites - expected_atoms),
        column_heights=tuple(heights),
    )


def minimum_fill_for_target(
    geometry: ArrayGeometry,
    required_fill: float = 0.999,
    tolerance: float = 1e-3,
) -> float:
    """Smallest loading probability whose predicted fill meets the bar.

    Bisection on the monotone :func:`predict_compaction_fill`; tells an
    operator how hard the MOT loading has to work before pure compaction
    (no repair stage) assembles the target.
    """
    if not 0.0 < required_fill <= 1.0:
        raise ConfigurationError(
            f"required_fill must be in (0, 1], got {required_fill}"
        )
    lo, hi = 0.0, 1.0
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if predict_compaction_fill(geometry, mid).expected_target_fill >= (
            required_fill
        ):
            hi = mid
        else:
            lo = mid
    return hi
