"""Pinned pre-vectorization QRM hot path, kept for benchmarking only.

This module is a frozen copy of the scheduler hot path as it existed
before the vectorised ``scan_quadrant``/``run_pass`` rewrite: per-line
scans that eagerly materialise Python tuples, and a per-line,
per-command drain loop that calls ``QuadrantFrame.to_full`` for every
coordinate.  ``repro bench`` times it as the "before" implementation so
the recorded speedups keep meaning the same thing even as the live
reference oracle (:func:`repro.core.passes.run_pass_reference`)
continues to improve.

Do not import this from production code; it exists so performance
history stays comparable, and its schedules are asserted bit-identical
to the live implementations by the perf benchmark tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aod.executor import apply_parallel_move
from repro.aod.move import LineShift, ParallelMove
from repro.core.passes import (
    QUADRANT_ORDER,
    PassOutcome,
    Phase,
    _direction_order,
)
from repro.lattice.array import AtomArray
from repro.lattice.geometry import Quadrant, QuadrantFrame


@dataclass(frozen=True)
class _SeedLineScan:
    """Eager-tuple scan result, as the seed's ``LineScanResult`` was."""

    line: int
    hole_positions: tuple[int, ...]
    bits_before: tuple[bool, ...]
    n_atoms: int

    @property
    def n_commands(self) -> int:
        return len(self.hole_positions)


def seed_scan_line(
    bits: np.ndarray, line: int = 0, limit: int | None = None
) -> _SeedLineScan:
    """The seed ``scan_line``: one cumsum per line, tuples materialised."""
    occ = np.asarray(bits, dtype=bool)
    n = occ.size
    if n == 0:
        return _SeedLineScan(line, (), (), 0)
    suffix_counts = np.cumsum(occ[::-1])[::-1]
    atoms_outboard = np.zeros(n, dtype=bool)
    atoms_outboard[:-1] = suffix_counts[1:] > 0
    holes = np.nonzero(~occ & atoms_outboard)[0]
    if limit is not None:
        holes = holes[holes < limit]
    return _SeedLineScan(
        line=line,
        hole_positions=tuple(int(h) for h in holes),
        bits_before=tuple(bool(b) for b in occ),
        n_atoms=int(occ.sum()),
    )


def _seed_scan_axis(
    local_grid: np.ndarray, axis: int, limit: int | None
) -> list[_SeedLineScan]:
    grid = np.asarray(local_grid, dtype=bool)
    if axis == 0:
        return [
            seed_scan_line(grid[u, :], line=u, limit=limit)
            for u in range(grid.shape[0])
        ]
    return [
        seed_scan_line(grid[:, v], line=v, limit=limit) for v in range(grid.shape[1])
    ]


@dataclass
class _SeedLineState:
    frame: QuadrantFrame
    line: int
    holes: tuple[int, ...]
    n_positions: int
    next_index: int = 0
    executed: int = 0

    @property
    def exhausted(self) -> bool:
        return self.next_index >= len(self.holes)

    @property
    def current_hole(self) -> int:
        return self.holes[self.next_index] - self.executed


def _seed_span_to_shift(
    frame: QuadrantFrame,
    phase: Phase,
    line: int,
    cur_hole: int,
    executed: int,
    n_positions: int,
) -> LineShift:
    local_lo = cur_hole + 1
    local_hi = n_positions - executed  # exclusive
    if phase is Phase.ROW:
        full_line = frame.to_full(line, 0)[0]
        a = frame.to_full(line, local_lo)[1]
        b = frame.to_full(line, local_hi - 1)[1]
        direction = frame.horizontal_inward
    else:
        full_line = frame.to_full(0, line)[1]
        a = frame.to_full(local_lo, line)[0]
        b = frame.to_full(local_hi - 1, line)[0]
        direction = frame.vertical_inward
    span_start, span_stop = (a, b + 1) if a <= b else (b, a + 1)
    return LineShift(
        direction=direction,
        line=full_line,
        span_start=span_start,
        span_stop=span_stop,
        steps=1,
    )


def _seed_hole_site(
    frame: QuadrantFrame, phase: Phase, line: int, cur_hole: int
) -> tuple[int, int]:
    if phase is Phase.ROW:
        return frame.to_full(line, cur_hole)
    return frame.to_full(cur_hole, line)


def _seed_span_has_atom(
    grid: np.ndarray,
    frame: QuadrantFrame,
    phase: Phase,
    line: int,
    cur_hole: int,
    executed: int,
    n_positions: int,
) -> bool:
    local_lo = cur_hole + 1
    local_hi = n_positions - executed
    if local_lo >= local_hi:
        return False
    if phase is Phase.ROW:
        r = frame.to_full(line, 0)[0]
        c1 = frame.to_full(line, local_lo)[1]
        c2 = frame.to_full(line, local_hi - 1)[1]
        lo, hi = (c1, c2) if c1 <= c2 else (c2, c1)
        return bool(grid[r, lo : hi + 1].any())
    c = frame.to_full(0, line)[1]
    r1 = frame.to_full(local_lo, line)[0]
    r2 = frame.to_full(local_hi - 1, line)[0]
    lo, hi = (r1, r2) if r1 <= r2 else (r2, r1)
    return bool(grid[lo : hi + 1, c].any())


def seed_run_pass(
    array: AtomArray,
    frames: dict[Quadrant, QuadrantFrame],
    phase: Phase,
    scan_source: np.ndarray,
    merge_mirror: bool = True,
    guard: bool = False,
    scan_limit: int | None = None,
) -> PassOutcome:
    """The seed ``run_pass``: dict-of-lists rounds, heterogeneous keys."""
    outcome = PassOutcome(phase=phase)
    axis = 0 if phase is Phase.ROW else 1

    states: list[_SeedLineState] = []
    for quadrant in QUADRANT_ORDER:
        frame = frames[quadrant]
        local = frame.extract(scan_source)
        scans = _seed_scan_axis(local, axis, limit=scan_limit)
        n_positions = local.shape[1] if phase is Phase.ROW else local.shape[0]
        outcome.line_commands[quadrant] = [scan.n_commands for scan in scans]
        for scan in scans:
            outcome.n_scanned_bits += n_positions
            outcome.n_commands += scan.n_commands
            if scan.n_commands:
                states.append(
                    _SeedLineState(
                        frame=frame,
                        line=scan.line,
                        holes=scan.hole_positions,
                        n_positions=n_positions,
                    )
                )

    grid = array.grid
    round_index = 0
    while True:
        groups: dict[tuple, list[tuple[_SeedLineState, int]]] = {}
        pending = False
        for state in states:
            if state.exhausted:
                continue
            pending = True
            cur = state.current_hole
            if guard:
                hole_site = _seed_hole_site(state.frame, phase, state.line, cur)
                if grid[hole_site]:
                    state.next_index += 1
                    outcome.n_skipped_stale += 1
                    continue
                if not _seed_span_has_atom(
                    grid,
                    state.frame,
                    phase,
                    state.line,
                    cur,
                    state.executed,
                    state.n_positions,
                ):
                    state.next_index += 1
                    outcome.n_skipped_empty += 1
                    continue
            direction = (
                state.frame.horizontal_inward
                if phase is Phase.ROW
                else state.frame.vertical_inward
            )
            if merge_mirror:
                key = (cur, direction)
            else:
                key = (cur, direction, state.frame.quadrant)
            groups.setdefault(key, []).append((state, cur))

        if not pending:
            break
        if groups:
            for direction in _direction_order(phase):
                for key in sorted(
                    (k for k in groups if k[1] is direction),
                    key=lambda k: (k[0], k[2].value if len(k) > 2 else ""),
                ):
                    members = groups[key]
                    shifts = []
                    for state, cur in members:
                        shifts.append(
                            _seed_span_to_shift(
                                state.frame,
                                phase,
                                state.line,
                                cur,
                                state.executed,
                                state.n_positions,
                            )
                        )
                        state.next_index += 1
                        state.executed += 1
                    shifts.sort(key=lambda s: s.line)
                    tag = f"{phase.value}-k{round_index}-h{key[0]}"
                    if not merge_mirror:
                        tag += f"-{key[2].value}"
                    move = ParallelMove.of(shifts, tag=tag)
                    apply_parallel_move(grid, move)
                    outcome.moves.append(move)
                    outcome.n_executed += len(shifts)
        round_index += 1
        if round_index > array.geometry.width + array.geometry.height:
            raise RuntimeError("pass failed to drain its command lists")

    return outcome
