"""Multi-trial aggregation helpers for the experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.baselines.base import get_algorithm
from repro.lattice.geometry import ArrayGeometry
from repro.lattice.loading import load_uniform


@dataclass(frozen=True)
class Summary:
    """Mean/std/min/max of a sample."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        if not values:
            return cls(math.nan, math.nan, math.nan, math.nan, 0)
        n = len(values)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / n
        return cls(mean, math.sqrt(var), min(values), max(values), n)


def run_trials(fn: Callable[[int], float], seeds: Sequence[int]) -> Summary:
    """Evaluate ``fn(seed)`` over seeds and summarise."""
    return Summary.of([fn(seed) for seed in seeds])


@dataclass(frozen=True)
class FillStats:
    """Assembly quality of one algorithm at one operating point."""

    algorithm: str
    size: int
    fill: float
    mean_target_fill: float
    success_probability: float
    mean_moves: float
    trials: int


def assembly_statistics(
    algorithm: str,
    size: int,
    fill: float,
    seeds: Sequence[int],
    target_size: int | None = None,
) -> FillStats:
    """Run ``algorithm`` over seeded loads; aggregate fill metrics."""
    geometry = ArrayGeometry.square(size, target_size)
    fills: list[float] = []
    successes = 0
    moves: list[float] = []
    for seed in seeds:
        array = load_uniform(geometry, fill, rng=seed)
        result = get_algorithm(algorithm, geometry).schedule(array)
        fills.append(result.target_fill_fraction)
        successes += int(result.defect_free)
        moves.append(float(result.n_moves))
    return FillStats(
        algorithm=algorithm,
        size=size,
        fill=fill,
        mean_target_fill=Summary.of(fills).mean,
        success_probability=successes / len(seeds) if seeds else math.nan,
        mean_moves=Summary.of(moves).mean,
        trials=len(seeds),
    )
