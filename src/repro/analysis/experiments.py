"""Parameterised runners for every evaluation artefact in the paper.

Each ``run_*`` function regenerates one figure (or claim set) and
returns a result object with ``rows`` plus a ``format_table()`` — the
benchmarks print these, the examples reuse them, and EXPERIMENTS.md
records their output against the paper's numbers.

The grid-shaped runners (Fig. 7(a), Fig. 7(b), the success sweep, and
the loss comparison) execute on the campaign engine
(:mod:`repro.campaign`): pass ``executor=`` to parallelise them across
processes (or fan them out asynchronously), ``cache=`` to make re-runs
incremental, and ``journal=`` (a :class:`repro.campaign.RunJournal`)
to make long regenerations resumable after an interruption.  Within
one campaign every algorithm sees identical loaded arrays (paired
design), matching how the paper compares algorithms.

Paper anchor values are kept here as module constants so the comparison
columns in every table come from one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.stats import FillStats
from repro.analysis.tables import format_table, to_csv
from repro.baselines.cost_model import model_cpu_time_us
from repro.campaign.spec import CampaignSpec, LossSpec, QrmSpec, ScenarioCell
from repro.config import ScanMode
from repro.fpga.accelerator import QrmAccelerator
from repro.fpga.resources import ResourceModel
from repro.lattice.geometry import ArrayGeometry
from repro.lattice.loading import load_uniform
from repro.workflow.system import compare_architectures

#: Fig. 7(a) anchors: FPGA analysis latency (us) the paper reports.
PAPER_FIG7A_FPGA_US = {10: 0.8, 50: 1.0, 90: 1.9}
#: Fig. 7(a) anchors: FPGA-over-CPU speedups quoted in the text.
PAPER_FIG7A_SPEEDUP = {50: 54.0, 90: 134.0}
#: Fig. 7(b) anchors at 20x20, reconstructed from the quoted ratios
#: (QRM-FPGA 0.9 us; Tetris 120x that; PSCA 246x and MTA1 ~1000x QRM-CPU,
#: with QRM-CPU ~20x faster than Tetris).
PAPER_FIG7B_US = {
    "qrm-fpga": 0.9,
    "qrm-cpu": 5.4,
    "tetris": 108.0,
    "psca": 1328.0,
    "mta1": 5400.0,
}
#: Fig. 8 anchors at 90x90 (percent of the ZU49DR budget).
PAPER_FIG8_AT_90 = {"LUT": 6.31, "FF": 6.19}

DEFAULT_SIZES = (10, 30, 50, 70, 90)


def _run_campaign(spec: CampaignSpec, executor, cache, journal=None):
    """Run a campaign (deferred import: analysis <-> campaign cycle)."""
    from repro.campaign.engine import ExperimentCampaign

    return ExperimentCampaign(
        spec, executor=executor, cache=cache, journal=journal
    ).run()


# ---------------------------------------------------------------------------
# E1 — Fig. 7(a): QRM analysis time, CPU vs FPGA, across array sizes.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig7aRow:
    size: int
    fpga_cycles: float
    fpga_us: float
    cpu_model_us: float
    cpu_measured_us: float
    speedup_model: float
    paper_fpga_us: float | None


@dataclass
class Fig7aResult:
    rows: list[Fig7aRow] = field(default_factory=list)

    def format_table(self) -> str:
        headers = [
            "size",
            "fpga_cycles",
            "fpga_us",
            "cpu_model_us",
            "cpu_python_us",
            "speedup(model)",
            "paper_fpga_us",
        ]
        body = [
            [
                r.size,
                r.fpga_cycles,
                r.fpga_us,
                r.cpu_model_us,
                r.cpu_measured_us,
                r.speedup_model,
                r.paper_fpga_us if r.paper_fpga_us is not None else "-",
            ]
            for r in self.rows
        ]
        return format_table(
            headers, body, title="Fig 7(a): QRM execution time, CPU vs FPGA"
        )

    def to_csv(self) -> str:
        headers = [
            "size",
            "fpga_cycles",
            "fpga_us",
            "cpu_model_us",
            "cpu_python_us",
            "speedup_model",
            "paper_fpga_us",
        ]
        body = [
            [
                r.size,
                r.fpga_cycles,
                r.fpga_us,
                r.cpu_model_us,
                r.cpu_measured_us,
                r.speedup_model,
                r.paper_fpga_us or "",
            ]
            for r in self.rows
        ]
        return to_csv(headers, body)


def run_fig7a(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    trials: int = 3,
    seed_base: int = 0,
    fill: float = 0.5,
    executor=None,
    cache=None,
    journal=None,
) -> Fig7aResult:
    """Regenerate Fig. 7(a): analysis latency vs array size."""
    spec = CampaignSpec(
        name="fig7a",
        algorithms=("qrm",),
        sizes=tuple(sizes),
        fills=(fill,),
        n_seeds=trials,
        master_seed=seed_base,
        fpga=True,
        timing=True,
    )
    campaign = _run_campaign(spec, executor, cache, journal=journal)

    result = Fig7aResult()
    for size in sizes:
        aggregate = campaign.aggregate_for(size=size)
        fpga_us = aggregate.mean("fpga_us")
        cpu_model = model_cpu_time_us("qrm", size)
        result.rows.append(
            Fig7aRow(
                size=size,
                fpga_cycles=aggregate.mean("fpga_cycles"),
                fpga_us=fpga_us,
                cpu_model_us=cpu_model,
                cpu_measured_us=aggregate.mean("cpu_us"),
                speedup_model=cpu_model / fpga_us,
                paper_fpga_us=PAPER_FIG7A_FPGA_US.get(size),
            )
        )
    return result


# ---------------------------------------------------------------------------
# E2 — Fig. 7(b): algorithm comparison at 20x20.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig7bRow:
    label: str
    model_us: float
    measured_python_us: float | None
    paper_us: float | None
    ratio_vs_qrm_cpu: float


@dataclass
class Fig7bResult:
    size: int = 20
    rows: list[Fig7bRow] = field(default_factory=list)

    def format_table(self) -> str:
        headers = [
            "algorithm",
            "model_us",
            "python_us",
            "paper_us",
            "x vs qrm-cpu",
        ]
        body = [
            [
                r.label,
                r.model_us,
                r.measured_python_us if r.measured_python_us is not None else "-",
                r.paper_us if r.paper_us is not None else "-",
                r.ratio_vs_qrm_cpu,
            ]
            for r in self.rows
        ]
        return format_table(
            headers,
            body,
            title=f"Fig 7(b): execution time on a {self.size}x{self.size} array",
        )


def run_fig7b(
    size: int = 20,
    trials: int = 3,
    seed_base: int = 0,
    fill: float = 0.5,
    executor=None,
    cache=None,
    journal=None,
) -> Fig7bResult:
    """Regenerate Fig. 7(b): QRM (FPGA+CPU) vs Tetris, PSCA, MTA1.

    One campaign cell per algorithm; the paired seeding of the engine
    guarantees all algorithms analyse identical loaded arrays, as in
    the paper's comparison.
    """
    algorithms = ("qrm", "tetris", "psca", "mta1")
    spec = CampaignSpec(
        name="fig7b",
        algorithms=algorithms,
        sizes=(size,),
        fills=(fill,),
        n_seeds=trials,
        master_seed=seed_base,
        fpga=True,
        timing=True,
    )
    campaign = _run_campaign(spec, executor, cache, journal=journal)

    result = Fig7bResult(size=size)
    qrm_cpu_model = model_cpu_time_us("qrm", size)
    fpga_us = campaign.aggregate_for(algorithm="qrm").mean("fpga_us")
    result.rows.append(
        Fig7bRow(
            label="qrm-fpga",
            model_us=fpga_us,
            measured_python_us=None,
            paper_us=PAPER_FIG7B_US.get("qrm-fpga"),
            ratio_vs_qrm_cpu=fpga_us / qrm_cpu_model,
        )
    )
    for name in algorithms:
        aggregate = campaign.aggregate_for(algorithm=name)
        model_us = model_cpu_time_us(name, size)
        label = "qrm-cpu" if name == "qrm" else name
        result.rows.append(
            Fig7bRow(
                label=label,
                model_us=model_us,
                measured_python_us=aggregate.mean("cpu_us"),
                paper_us=PAPER_FIG7B_US.get(label),
                ratio_vs_qrm_cpu=model_us / qrm_cpu_model,
            )
        )
    return result


# ---------------------------------------------------------------------------
# E3 — Fig. 8: resource utilisation vs array size.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig8Row:
    size: int
    lut_pct: float
    ff_pct: float
    bram_pct: float
    luts: int
    ffs: int
    brams: int


@dataclass
class Fig8Result:
    device: str = ""
    rows: list[Fig8Row] = field(default_factory=list)

    def format_table(self) -> str:
        headers = ["size", "LUT %", "FF %", "BRAM %", "LUTs", "FFs", "BRAM36"]
        body = [
            [r.size, r.lut_pct, r.ff_pct, r.bram_pct, r.luts, r.ffs, r.brams]
            for r in self.rows
        ]
        return format_table(
            headers,
            body,
            title=f"Fig 8: resource utilisation on {self.device}",
        )


def run_fig8(sizes: tuple[int, ...] = DEFAULT_SIZES) -> Fig8Result:
    """Regenerate Fig. 8: LUT/FF/BRAM utilisation across sizes."""
    model = ResourceModel()
    result = Fig8Result(device=model.device.name)
    for report in model.sweep(list(sizes)):
        util = report.utilisation()
        result.rows.append(
            Fig8Row(
                size=report.size,
                lut_pct=util["LUT"],
                ff_pct=util["FF"],
                bram_pct=util["BRAM"],
                luts=report.total_luts,
                ffs=report.total_ffs,
                brams=report.total_brams,
            )
        )
    return result


# ---------------------------------------------------------------------------
# E4 — headline claims of Sec. V-B.
# ---------------------------------------------------------------------------


@dataclass
class HeadlineResult:
    fpga_us_at_50: float = 0.0
    cpu_model_us_at_50: float = 0.0
    speedup_vs_cpu: float = 0.0
    tetris_model_us_at_50: float = 0.0
    speedup_vs_tetris: float = 0.0
    iterations_used: int = 0
    converged: bool = False
    paper_speedup_vs_cpu: float = 54.0
    paper_speedup_vs_tetris: float = 300.0
    paper_iterations: int = 4

    def format_table(self) -> str:
        headers = ["claim", "ours", "paper"]
        body = [
            ["FPGA analysis @50x50 (us)", self.fpga_us_at_50, 1.0],
            ["speedup vs CPU @50", self.speedup_vs_cpu, self.paper_speedup_vs_cpu],
            [
                "speedup vs Tetris @50",
                self.speedup_vs_tetris,
                self.paper_speedup_vs_tetris,
            ],
            ["iterations used", self.iterations_used, self.paper_iterations],
        ]
        return format_table(headers, body, title="Headline claims (Sec. V-B)")


def run_headline(seed: int = 0, fill: float = 0.5) -> HeadlineResult:
    """Check the paper's headline numbers at 50x50."""
    geometry = ArrayGeometry.square(50, 30)
    array = load_uniform(geometry, fill, rng=seed)
    run = QrmAccelerator(geometry).run(array)
    fpga_us = run.report.time_us
    cpu_us = model_cpu_time_us("qrm", 50)
    tetris_us = model_cpu_time_us("tetris", 50)
    return HeadlineResult(
        fpga_us_at_50=fpga_us,
        cpu_model_us_at_50=cpu_us,
        speedup_vs_cpu=cpu_us / fpga_us,
        tetris_model_us_at_50=tetris_us,
        speedup_vs_tetris=tetris_us / fpga_us,
        iterations_used=run.result.iterations_used,
        converged=run.result.converged,
    )


# ---------------------------------------------------------------------------
# E6 — ablation: pipelined (paper) vs fresh column-pass scan mode.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AblationRow:
    mode: str
    merge: bool
    iterations: float
    moves: float
    target_fill: float
    skipped_stale: float
    fpga_us: float


@dataclass
class AblationResult:
    size: int = 50
    rows: list[AblationRow] = field(default_factory=list)

    def format_table(self) -> str:
        headers = [
            "scan mode",
            "merge",
            "iterations",
            "moves",
            "target fill",
            "stale skips",
            "fpga_us",
        ]
        body = [
            [
                r.mode,
                r.merge,
                r.iterations,
                r.moves,
                r.target_fill,
                r.skipped_stale,
                r.fpga_us,
            ]
            for r in self.rows
        ]
        return format_table(
            headers,
            body,
            title=f"Ablation: scan mode and mirror merge at {self.size}x{self.size}",
        )


def run_ablation(
    size: int = 50,
    trials: int = 3,
    seed_base: int = 0,
    fill: float = 0.5,
    executor=None,
    cache=None,
    journal=None,
) -> AblationResult:
    """Design-choice ablation for the column-pass staleness and merging.

    Runs on the campaign engine: every variant is one grid cell with a
    :class:`~repro.campaign.spec.QrmSpec` parameter override, so the
    paired seeding guarantees all variants analyse identical loaded
    arrays, and ``executor=``/``cache=`` add parallelism and incremental
    re-runs like every other grid-shaped experiment.
    """
    geometry = ArrayGeometry.square(size)
    variants = [
        ("pipelined", QrmSpec(scan_mode=ScanMode.PIPELINED.value)),
        ("fresh", QrmSpec(scan_mode=ScanMode.FRESH.value)),
        (
            "pipelined",
            QrmSpec(
                scan_mode=ScanMode.PIPELINED.value,
                merge_mirror_quadrants=False,
            ),
        ),
        (
            "pipelined+s_en",
            QrmSpec(
                scan_mode=ScanMode.PIPELINED.value,
                scan_limit=max(1, geometry.target_width // 2),
            ),
        ),
    ]
    spec = CampaignSpec(
        name="ablation",
        algorithms=(),
        sizes=(),
        n_seeds=trials,
        master_seed=seed_base,
        extra_cells=tuple(
            ScenarioCell(algorithm="qrm", size=size, fill=fill, fpga=True, qrm=qrm)
            for _, qrm in variants
        ),
    )
    campaign = _run_campaign(spec, executor, cache, journal=journal)

    result = AblationResult(size=size)
    for mode, qrm in variants:
        aggregate = campaign.aggregate_for(qrm=qrm)
        result.rows.append(
            AblationRow(
                mode=mode,
                merge=qrm.merge_mirror_quadrants,
                iterations=aggregate.mean("iterations"),
                moves=aggregate.mean("moves"),
                target_fill=aggregate.mean("target_fill"),
                skipped_stale=aggregate.mean("skipped_stale"),
                fpga_us=aggregate.mean("fpga_us"),
            )
        )
    return result


# ---------------------------------------------------------------------------
# E5 — success-probability sweep (extension beyond the paper).
# ---------------------------------------------------------------------------


@dataclass
class SuccessSweepResult:
    rows: list[FillStats] = field(default_factory=list)

    def format_table(self) -> str:
        headers = [
            "algorithm",
            "size",
            "load fill",
            "target fill",
            "P(success)",
            "moves",
            "trials",
        ]
        body = [
            [
                r.algorithm,
                r.size,
                r.fill,
                r.mean_target_fill,
                r.success_probability,
                r.mean_moves,
                r.trials,
            ]
            for r in self.rows
        ]
        return format_table(
            headers, body, title="Assembly quality vs loading probability"
        )


def run_success_sweep(
    fills: tuple[float, ...] = (0.5, 0.6, 0.7),
    size: int = 30,
    trials: int = 5,
    seed_base: int = 0,
    algorithms: tuple[str, ...] = ("qrm", "qrm-repair"),
    executor=None,
    cache=None,
    journal=None,
) -> SuccessSweepResult:
    """How assembly quality depends on the loading probability."""
    spec = CampaignSpec(
        name="success-sweep",
        algorithms=tuple(algorithms),
        sizes=(size,),
        fills=tuple(fills),
        n_seeds=trials,
        master_seed=seed_base,
    )
    campaign = _run_campaign(spec, executor, cache, journal=journal)
    result = SuccessSweepResult()
    result.rows = campaign.fill_stats()
    return result


# ---------------------------------------------------------------------------
# E8 — physical atom loss vs schedule structure (extension).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LossRow:
    algorithm: str
    moves: float
    motion_ms: float
    survival: float
    target_fill_after_loss: float


@dataclass
class LossComparisonResult:
    size: int = 20
    rows: list[LossRow] = field(default_factory=list)

    def format_table(self) -> str:
        headers = [
            "algorithm",
            "moves",
            "motion_ms",
            "survival",
            "fill after loss",
        ]
        body = [
            [r.algorithm, r.moves, r.motion_ms, r.survival, r.target_fill_after_loss]
            for r in self.rows
        ]
        return format_table(
            headers,
            body,
            title=(
                f"Physical atom loss vs schedule structure, "
                f"{self.size}x{self.size} array"
            ),
        )


def run_loss_comparison(
    size: int = 20,
    trials: int = 3,
    seed_base: int = 0,
    algorithms: tuple[str, ...] = ("qrm", "tetris", "psca", "mta1"),
    fill: float = 0.5,
    loss: LossSpec | None = None,
    executor=None,
    cache=None,
    journal=None,
) -> LossComparisonResult:
    """How each algorithm's schedule length translates into atom loss."""
    spec = CampaignSpec(
        name="loss-comparison",
        algorithms=tuple(algorithms),
        sizes=(size,),
        fills=(fill,),
        n_seeds=trials,
        master_seed=seed_base,
        loss_models=(loss if loss is not None else LossSpec(),),
    )
    campaign = _run_campaign(spec, executor, cache, journal=journal)
    result = LossComparisonResult(size=size)
    for name in algorithms:
        aggregate = campaign.aggregate_for(algorithm=name)
        result.rows.append(
            LossRow(
                algorithm=name,
                moves=aggregate.mean("moves"),
                motion_ms=aggregate.mean("motion_ms"),
                survival=aggregate.mean("survival"),
                target_fill_after_loss=aggregate.mean("fill_after_loss"),
            )
        )
    return result


# ---------------------------------------------------------------------------
# E7 — Fig. 2 motivation: architecture (a) vs (b) end-to-end budgets.
# ---------------------------------------------------------------------------


@dataclass
class WorkflowResult:
    size: int = 50
    budget_a: object = None
    budget_b: object = None

    def format_table(self) -> str:
        parts = [
            f"End-to-end control-loop budget, {self.size}x{self.size} array",
            self.budget_a.format(),
            self.budget_b.format(),
            (
                f"architecture (b) is "
                f"{self.budget_a.total_us / self.budget_b.total_us:.1f}x "
                f"faster end to end"
            ),
        ]
        return "\n".join(parts)


def run_workflow_comparison(size: int = 50, seed: int = 0) -> WorkflowResult:
    """Regenerate the Fig. 2 motivation numbers."""
    geometry = ArrayGeometry.square(size)
    array = load_uniform(geometry, 0.5, rng=seed)
    fpga_us = QrmAccelerator(geometry).run(array).report.time_us
    budgets = compare_architectures(size, fpga_us)
    return WorkflowResult(size=size, budget_a=budgets["a"], budget_b=budgets["b"])
