"""Schedule-construction performance benchmark harness (``repro bench``).

The paper's headline is that rearrangement analysis must be orders of
magnitude faster than a CPU reference, so this repository tracks its own
scheduling latency as a first-class artefact: ``repro bench`` times
schedule construction for QRM and the published baselines over a grid of
array sizes and fill fractions, and writes a machine-readable
``BENCH_qrm.json`` with mean/std/min/max per case.

The report also carries a *speedup* block for the QRM hot path — the
vectorised scheduler vs. the live per-command reference oracle
(:func:`repro.core.passes.run_pass_reference`) and vs. the pinned
pre-vectorization seed implementation
(:mod:`repro.analysis.seed_baseline`) — plus one *component speedup*
entry per additionally vectorised stage (repair, Tetris, PSCA, MTA1,
the guarded pipelined-mode drain, and the masked QRM+repair path on a
ring target), each timed against its live
``*_reference`` oracle, and one per subsystem-level before/after pair
(cross-trial batching, service micro-batching, and the closed-loop
pipeline's stage overlap).  Both the "before" and
"after" numbers of every vectorisation live in the same file, and
:func:`validate_bench_report` pins the JSON layout so the artefact
cannot silently drift.

Raw timings are wall-clock and therefore machine- and run-dependent,
but every recorded *speedup* is a ratio of best-of minima from
interleaved, GC-swept repeats — reproducible enough that
:mod:`repro.analysis.perf_gate` gates CI on them (``repro bench
--gate``).  Everything else (trial seeds, schedule sizes) is
deterministic under ``master_seed``.
"""

from __future__ import annotations

import gc
import json
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.analysis.stats import Summary
from repro.analysis.tables import format_table
from repro.baselines.base import DEFAULT_ALGORITHMS, get_algorithm
from repro.lattice.geometry import ArrayGeometry
from repro.lattice.loading import load_uniform

#: Bump when the JSON layout changes (v7: the ``masked_qrm`` component
#: times the vectorised QRM+repair path on a non-rectangular ring
#: target — mask-derived per-line scan limits plus mask-aware repair —
#: against the per-command reference composition, and records the mask
#: label and its site count next to the usual speedup block).
BENCH_SCHEMA_VERSION = 7

#: Components with a live before/after speedup measurement.  All but
#: ``batched_qrm``, ``service_latency`` and ``pipeline_latency`` time a
#: vectorised path against its per-command reference oracle
#: (``masked_qrm`` does so on a non-rectangular ring target, covering
#: the mask-derived scan limits and mask-aware repair);
#: ``batched_qrm`` times the cross-trial batched engine against serial
#: single-trial scheduling, ``service_latency`` times the scheduling
#: service with micro-batching on against the same service with
#: batching off, and ``pipeline_latency`` times the closed-loop
#: pipeline with stages overlapped across frames against the same loop
#: run to completion.
COMPONENT_NAMES = (
    "repair",
    "tetris",
    "psca",
    "mta1",
    "guarded_drain",
    "masked_qrm",
    "batched_qrm",
    "service_latency",
    "pipeline_latency",
)

DEFAULT_SIZES = (32, 64, 128)
DEFAULT_FILLS = (0.3, 0.5, 0.7)

#: Batch sizes the ``batched_qrm`` block sweeps.  1 exposes the pure
#: batching overhead, 8/32 the amortisation sweet spot, 128 the
#: cache-footprint decay on large stacks.
DEFAULT_BATCH_SIZES = (1, 8, 32, 128)

#: Client counts the ``service_latency`` block sweeps.  1 exposes the
#: pure batch-window latency cost, 4 the break-even region, 16 the
#: amortisation the service exists for.
DEFAULT_SERVICE_CONCURRENCIES = (1, 4, 16)

#: Largest array each slow scheduler is benchmarked at by default.
#: Cases beyond a cap are recorded in the report's ``skipped`` list —
#: never silently dropped.  Empty since the mta1 vectorisation: every
#: default algorithm now covers the full default grid (the per-command
#: mta1 needed ~1 minute per 128x128 schedule; the vectorised one runs
#: it in seconds).
SIZE_CAPS: dict[str, int] = {}


@dataclass(frozen=True)
class BenchCase:
    """One (algorithm, size, fill) timing scenario."""

    algorithm: str
    size: int
    fill: float

    def label(self) -> str:
        return f"{self.algorithm} {self.size}x{self.size} fill={self.fill:g}"


def summary_dict(summary: Summary) -> dict:
    """JSON shape of a :class:`Summary` used throughout ``BENCH_*.json``."""
    return {
        "mean": summary.mean,
        "std": summary.std,
        "min": summary.minimum,
        "max": summary.maximum,
    }


@dataclass(frozen=True)
class BenchRecord:
    """Timing summary of one case over its seeded trials."""

    case: BenchCase
    wall_ms: Summary
    moves: Summary

    def to_dict(self) -> dict:
        return {
            "algorithm": self.case.algorithm,
            "size": self.case.size,
            "fill": self.case.fill,
            "trials": self.wall_ms.n,
            "wall_ms": summary_dict(self.wall_ms),
            "moves": summary_dict(self.moves),
        }


@dataclass
class PerfReport:
    """Everything one ``repro bench`` invocation measured."""

    master_seed: int
    trials: int
    records: list[BenchRecord] = field(default_factory=list)
    skipped: list[dict] = field(default_factory=list)
    speedup: dict | None = None
    component_speedups: dict[str, dict] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "master_seed": self.master_seed,
            "trials": self.trials,
            "environment": {
                "python": sys.version.split()[0],
                "numpy": np.__version__,
                "platform": platform.platform(),
            },
            "entries": [record.to_dict() for record in self.records],
            "skipped": self.skipped,
            "speedup": self.speedup,
            "component_speedups": self.component_speedups,
        }

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def format_table(self) -> str:
        headers = [
            "algorithm",
            "size",
            "fill",
            "trials",
            "wall_ms",
            "std",
            "min",
            "max",
            "moves",
        ]
        body = [
            [
                r.case.algorithm,
                r.case.size,
                r.case.fill,
                r.wall_ms.n,
                r.wall_ms.mean,
                r.wall_ms.std,
                r.wall_ms.minimum,
                r.wall_ms.maximum,
                r.moves.mean,
            ]
            for r in self.records
        ]
        parts = [
            format_table(
                headers,
                body,
                title="Schedule-construction wall time (per schedule)",
            )
        ]
        for skip in self.skipped:
            parts.append(
                f"[skipped {skip['algorithm']} at {skip['size']}: "
                f"{skip['reason']}]"
            )
        if self.speedup is not None:
            s = self.speedup
            parts.append(
                f"QRM {s['size']}x{s['size']} hot path: "
                f"vectorized {s['vectorized_ms']['mean']:.2f} ms, "
                f"reference {s['reference_ms']['mean']:.2f} ms, "
                f"seed (pre-PR) {s['seed_ms']['mean']:.2f} ms -> "
                f"{s['speedup_vs_seed']:.1f}x vs seed, "
                f"{s['speedup_vs_reference']:.1f}x vs reference"
            )
        for name, s in self.component_speedups.items():
            if name == "batched_qrm":
                per_batch = ", ".join(
                    f"B={b['batch_size']}: {b['amortized_ms']['mean']:.2f} ms "
                    f"({b['speedup_vs_single']:.1f}x)"
                    for b in s["batches"]
                )
                parts.append(
                    f"batched_qrm {s['size']}x{s['size']}: "
                    f"single {s['single_ms']['mean']:.2f} ms/trial; "
                    f"amortised {per_batch}"
                )
                continue
            if name == "pipeline_latency":
                parts.append(
                    f"pipeline_latency {s['size']}x{s['size']} "
                    f"({s['shots']} shots x <= {s['cycles']} cycles): "
                    f"sequential {s['sequential_ms']['mean']:.2f} ms, "
                    f"pipelined {s['pipelined_ms']['mean']:.2f} ms -> "
                    f"{s['overlap_speedup']:.2f}x overlap"
                )
                continue
            if name == "service_latency":
                per_level = "; ".join(
                    f"c={e['clients']}: p50 "
                    f"{e['unbatched']['p50_ms']:.2f}->"
                    f"{e['batched']['p50_ms']:.2f} ms, p99 "
                    f"{e['unbatched']['p99_ms']:.2f}->"
                    f"{e['batched']['p99_ms']:.2f} ms, "
                    f"{e['speedup_batched']:.2f}x amortised"
                    for e in s["concurrency"]
                )
                parts.append(
                    f"service_latency {s['size']}x{s['size']} "
                    f"(unbatched->batched, window "
                    f"{s['batch_window_ms']:g} ms): {per_level}"
                )
                continue
            scenario = f" {s['mask']}" if name == "masked_qrm" else ""
            parts.append(
                f"{name} {s['size']}x{s['size']}{scenario}: "
                f"vectorized {s['vectorized_ms']['mean']:.2f} ms, "
                f"reference {s['reference_ms']['mean']:.2f} ms -> "
                f"{s['speedup_vs_reference']:.1f}x vs reference"
            )
        return "\n".join(parts)


def _time_schedules(
    make_scheduler: Callable[[ArrayGeometry], object],
    size: int,
    fill: float,
    trials: int,
    master_seed: int,
) -> tuple[Summary, Summary]:
    """Time ``trials`` seeded schedule constructions; returns (ms, moves)."""
    geometry = ArrayGeometry.square(size)
    scheduler = make_scheduler(geometry)
    wall_ms: list[float] = []
    moves: list[float] = []
    for index in range(trials):
        array = load_uniform(geometry, fill, rng=master_seed + index)
        start = time.perf_counter()
        result = scheduler.schedule(array)
        wall_ms.append((time.perf_counter() - start) * 1e3)
        moves.append(float(result.n_moves))
    return Summary.of(wall_ms), Summary.of(moves)


def measure_qrm_speedup(
    size: int = 64,
    fill: float = 0.5,
    trials: int = 3,
    master_seed: int = 0,
) -> dict:
    """Time the QRM hot path under all three pass implementations.

    Returns a JSON-ready mapping with the vectorised, live-reference,
    and pinned-seed ("pre-PR") timings plus their ratios — the
    before/after record the vectorisation is judged by.
    """
    from repro.analysis.seed_baseline import seed_run_pass
    from repro.core.passes import run_pass, run_pass_reference
    from repro.core.qrm import QrmScheduler

    geometry = ArrayGeometry.square(size)
    schedulers = {
        "vectorized": QrmScheduler(geometry, pass_runner=run_pass),
        "reference": QrmScheduler(geometry, pass_runner=run_pass_reference),
        "seed": QrmScheduler(geometry, pass_runner=seed_run_pass),
    }
    # All three implementations are timed inside each trial (drift never
    # lands on one side only), GC-swept before every timed region, and
    # swept twice so each minimum pools two well-separated moments —
    # the ratios below feed the CI regression gate.
    wall_ms: dict[str, list[float]] = {name: [] for name in schedulers}
    for _ in range(2):
        for index in range(trials):
            array = load_uniform(geometry, fill, rng=master_seed + index)
            for name, scheduler in schedulers.items():
                gc.collect()
                start = time.perf_counter()
                scheduler.schedule(array)
                wall_ms[name].append((time.perf_counter() - start) * 1e3)
    timings = {name: Summary.of(samples) for name, samples in wall_ms.items()}

    return {
        "size": size,
        "fill": fill,
        "trials": trials,
        "vectorized_ms": summary_dict(timings["vectorized"]),
        "reference_ms": summary_dict(timings["reference"]),
        "seed_ms": summary_dict(timings["seed"]),
        # Ratios of minima, not means: a single disturbed repeat can
        # double a mean on a shared box, while best-of minima are
        # reproducible — and these ratios feed the CI regression gate.
        "speedup_vs_seed": timings["seed"].minimum / timings["vectorized"].minimum,
        "speedup_vs_reference": (
            timings["reference"].minimum / timings["vectorized"].minimum
        ),
    }


def _speedup_block(size: int, fill: float, timings: dict[str, Summary]) -> dict:
    """JSON shape shared by every vectorised-vs-reference measurement.

    The speedup is a ratio of best-of minima (see
    :func:`measure_qrm_speedup`) so the recorded value is reproducible
    enough to gate on.
    """
    return {
        "size": size,
        "fill": fill,
        "trials": timings["vectorized"].n,
        "vectorized_ms": summary_dict(timings["vectorized"]),
        "reference_ms": summary_dict(timings["reference"]),
        "speedup_vs_reference": (
            timings["reference"].minimum / timings["vectorized"].minimum
        ),
    }


def _interleaved_timings(
    trials: int,
    make_input: Callable[[int], object],
    vectorized: Callable[[object], object],
    reference: Callable[[object], object],
) -> dict[str, Summary]:
    """Time both implementations per trial, vectorised first.

    Interleaving the pair inside each trial makes the speedup ratio
    robust to slow machine-load drift across the measurement window —
    back-to-back blocks would charge the drift to whichever side ran
    second.
    """
    vec_ms: list[float] = []
    ref_ms: list[float] = []
    for index in range(trials):
        trial_input = make_input(index)
        for stage, wall_ms in ((vectorized, vec_ms), (reference, ref_ms)):
            gc.collect()
            start = time.perf_counter()
            stage(trial_input)
            wall_ms.append((time.perf_counter() - start) * 1e3)
    return {"vectorized": Summary.of(vec_ms), "reference": Summary.of(ref_ms)}


def measure_repair_speedup(
    size: int = 64,
    fill: float = 0.5,
    trials: int = 3,
    master_seed: int = 0,
) -> dict:
    """Time the repair stage under both implementations.

    Repair runs on realistic inputs: each trial's array is first
    compacted by QRM, so the timed defect pattern is the post-compaction
    residue the stage exists for.  Both implementations repair copies of
    the same arrays (repair mutates in place).
    """
    from repro.core.qrm import QrmScheduler
    from repro.core.repair import repair_defects, repair_defects_reference

    geometry = ArrayGeometry.square(size)
    scheduler = QrmScheduler(geometry)
    timings = _interleaved_timings(
        trials,
        lambda index: scheduler.schedule(
            load_uniform(geometry, fill, rng=master_seed + index)
        ).final,
        # Repair mutates in place, so each implementation gets a copy.
        lambda array: repair_defects(array.copy()),
        lambda array: repair_defects_reference(array.copy()),
    )
    return _speedup_block(size, fill, timings)


def measure_baseline_speedup(
    component: str,
    size: int = 64,
    fill: float = 0.5,
    trials: int = 3,
    master_seed: int = 0,
) -> dict:
    """Time a scheduler against its registered ``-reference`` oracle.

    Both sides resolve through the algorithm registry — the fast path
    under ``component`` and the per-command oracle under
    ``"<component>-reference"`` — so the perf suite measures exactly the
    pair every other consumer of the registry gets.
    """
    geometry = ArrayGeometry.square(size)
    fast_scheduler = get_algorithm(component, geometry)
    slow_scheduler = get_algorithm(f"{component}-reference", geometry)
    timings = _interleaved_timings(
        trials,
        lambda index: load_uniform(geometry, fill, rng=master_seed + index),
        lambda array: fast_scheduler.schedule(array),
        lambda array: slow_scheduler.schedule(array),
    )
    return _speedup_block(size, fill, timings)


def measure_guarded_drain_speedup(
    size: int = 64,
    fill: float = 0.5,
    trials: int = 3,
    master_seed: int = 0,
) -> dict:
    """Time the guarded (pipelined-mode) column pass under both drains.

    The guarded drain is the paper's pipelined scan mode: the column
    pass analyses the iteration-start snapshot while executing against
    the live grid the row pass already changed.  Each trial reproduces
    exactly that state — a fresh load, one row pass — and then times the
    guarded column pass of the vectorised closed-form drain against the
    per-round reference, both draining copies of the same live grid.
    """
    from repro.core.passes import Phase, run_pass, run_pass_reference
    from repro.lattice.array import AtomArray
    from repro.lattice.geometry import Quadrant

    geometry = ArrayGeometry.square(size)
    frames = {q: geometry.quadrant_frame(q) for q in Quadrant}

    def make_input(index: int) -> tuple:
        array = load_uniform(geometry, fill, rng=master_seed + index)
        snapshot = array.grid.copy()
        run_pass(array, frames, Phase.ROW, scan_source=array.grid)
        return array.grid, snapshot

    def run(pass_runner, trial_input) -> None:
        live, snapshot = trial_input
        pass_runner(
            AtomArray(geometry, live),  # AtomArray copies on ingest
            frames,
            Phase.COLUMN,
            scan_source=snapshot,
            guard=True,
        )

    timings = _interleaved_timings(
        trials,
        make_input,
        lambda trial_input: run(run_pass, trial_input),
        lambda trial_input: run(run_pass_reference, trial_input),
    )
    return _speedup_block(size, fill, timings)


def measure_masked_qrm_speedup(
    size: int = 64,
    fill: float = 0.5,
    trials: int = 3,
    master_seed: int = 0,
) -> dict:
    """Time the masked QRM+repair path under both implementations.

    The scenario is a ring target (outer radius ``0.35 * size``, inner
    ``0.15 * size``) with mask-derived per-line scan limits
    (``scan_limit="mask"``) and repair enabled — the configuration that
    exercises every mask-aware code path at once.  The vectorised side
    is the production scheduler; the reference side composes the
    per-command pass runner with :func:`~repro.core.repair.
    repair_defects_reference` on the pre-repair final array, so both
    sides schedule and repair identical masked states.
    """
    from repro.config import MASK_SCAN_LIMIT, QrmParameters
    from repro.core.passes import run_pass_reference
    from repro.core.qrm import QrmScheduler
    from repro.core.repair import repair_defects_reference
    from repro.lattice.mask import TargetMask

    outer = size * 0.35
    inner = size * 0.15
    mask = TargetMask.ring(size, size, outer_radius=outer, inner_radius=inner)
    geometry = ArrayGeometry.with_mask(size, size, mask)
    fast = QrmScheduler(
        geometry,
        QrmParameters(enable_repair=True, scan_limit=MASK_SCAN_LIMIT),
    )
    slow = QrmScheduler(
        geometry,
        QrmParameters(scan_limit=MASK_SCAN_LIMIT),
        pass_runner=run_pass_reference,
    )
    timings = _interleaved_timings(
        trials,
        lambda index: load_uniform(geometry, fill, rng=master_seed + index),
        lambda array: fast.schedule(array),
        lambda array: repair_defects_reference(slow.schedule(array).final.copy()),
    )
    block = _speedup_block(size, fill, timings)
    block["mask"] = f"ring(outer={outer:g},inner={inner:g})"
    block["mask_sites"] = int(mask.n_sites)
    return block


def measure_batched_qrm_speedup(
    size: int = 64,
    fill: float = 0.5,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    trials: int = 3,
    master_seed: int = 0,
) -> dict:
    """Time the cross-trial batched QRM engine against serial scheduling.

    Measures the *steady state*: one :class:`~repro.core.batch.
    BatchQrmScheduler` and one serial :class:`~repro.core.qrm.
    QrmScheduler` are reused across all repeats (matching how the
    campaign engine drives them), with an unmeasured warm-up pass so the
    interned shift/tag pool and allocator are hot before the clock
    starts.  Batch sizes are timed smallest-first in isolated blocks —
    a 128-trial stack's result churn evicts enough cache to poison an
    adjacent small-batch repeat — with a serial repeat interleaved into
    every block and an explicit GC sweep before each timed region.
    The whole sweep runs twice and ratios come from the pooled minima
    on both sides (2 x ``trials`` samples per batch size, spread over
    two well-separated moments) — the same best-of noise-suppression
    convention as the campaign's timing cells: the analysis is
    deterministic, so repeats discard nothing but jitter.

    Returns ``{"size", "fill", "trials", "single_ms": summary,
    "batches": [{"batch_size", "amortized_ms": summary,
    "speedup_vs_single"}, ...]}`` — amortised ms is whole-batch wall
    time divided by the batch size.
    """
    from repro.core.batch import BatchQrmScheduler
    from repro.core.qrm import QrmScheduler

    geometry = ArrayGeometry.square(size)
    serial = QrmScheduler(geometry)
    batched = BatchQrmScheduler(geometry)
    n_max = max(batch_sizes)
    arrays = [
        load_uniform(geometry, fill, rng=master_seed + index)
        for index in range(n_max)
    ]

    # Warm-up: populate the move interner and touch both code paths
    # before timing anything.
    batched.schedule_batch(arrays[:1])
    serial.schedule(arrays[0])

    single_ms: list[float] = []
    amortized_ms: dict[int, list[float]] = {n: [] for n in batch_sizes}
    # Two full sweeps: each batch size's minimum pools samples from two
    # well-separated moments, so one transient disturbance (a daemon
    # waking mid-block) cannot inflate every repeat of a batch size.
    for _ in range(2):
        for n in sorted(batch_sizes):
            # Re-establish this batch size's steady-state footprint
            # before its timed repeats (the previous block's differs).
            batched.schedule_batch(arrays[:n])
            for index in range(trials):
                gc.collect()
                start = time.perf_counter()
                serial.schedule(arrays[index % n_max])
                single_ms.append((time.perf_counter() - start) * 1e3)
                gc.collect()
                start = time.perf_counter()
                batched.schedule_batch(arrays[:n])
                amortized_ms[n].append((time.perf_counter() - start) * 1e3 / n)

    single = Summary.of(single_ms)
    batches = []
    for n in batch_sizes:
        amortized = Summary.of(amortized_ms[n])
        batches.append(
            {
                "batch_size": n,
                "amortized_ms": summary_dict(amortized),
                "speedup_vs_single": single.minimum / amortized.minimum,
            }
        )
    return {
        "size": size,
        "fill": fill,
        "trials": trials,
        "single_ms": summary_dict(single),
        "batches": batches,
    }


def measure_service_latency(
    size: int = 64,
    fill: float = 0.5,
    concurrencies: Sequence[int] = DEFAULT_SERVICE_CONCURRENCIES,
    requests_per_client: int = 8,
    master_seed: int = 0,
    batch_window: float = 0.002,
    max_batch_size: int = 32,
) -> dict:
    """Time closed-loop scheduling requests through the service.

    For each concurrency level two servers run side by side — one with
    micro-batching off (``max_batch_size=1``), one with the production
    window — and that many closed-loop client threads each fire
    ``requests_per_client`` sequential QRM requests per round, recording
    per-request latency.  Rounds alternate unbatched/batched inside each
    of two sweeps (drift never lands on one side only, per the
    interleaving convention above), with an unmeasured warm-up request
    per client so scheduler caches and connections are hot, and a GC
    sweep before every timed round.

    Percentiles pool both sweeps' latencies; the amortised per-request
    cost is the *minimum* round wall over the sweeps divided by the
    round's request count — the same best-of minima convention every
    other gated ratio uses.  ``speedup_batched`` is the ratio of those
    amortised minima (unbatched / batched): above 1, concurrent clients
    pay less per schedule with batching on.  At concurrency 1 the ratio
    is *expected* to sit below 1 — a lone closed-loop client pays the
    full batch window on every request, the classic latency-for-
    throughput trade — which is why the regression gate only pins the
    highest measured concurrency.
    """
    import threading

    from repro.service import SchedulerKey, ServiceClient, serve_in_thread

    geometry = ArrayGeometry.square(size)
    key = SchedulerKey(
        geometry=(
            geometry.width,
            geometry.height,
            geometry.target_width,
            geometry.target_height,
        )
    )
    entries = []
    for clients_n in sorted(concurrencies):
        arrays = [
            [
                load_uniform(geometry, fill, rng=master_seed + 1000 * w + index)
                for index in range(requests_per_client)
            ]
            for w in range(clients_n)
        ]

        def run_round(client_pool: list) -> tuple[list[float], float]:
            latencies: list[list[float]] = [[] for _ in client_pool]
            barrier = threading.Barrier(len(client_pool) + 1)

            def worker(w: int, client) -> None:
                barrier.wait()
                for array in arrays[w]:
                    start = time.perf_counter()
                    client.schedule(key, array)
                    latencies[w].append((time.perf_counter() - start) * 1e3)

            threads = [
                threading.Thread(target=worker, args=(w, client), daemon=True)
                for w, client in enumerate(client_pool)
            ]
            for thread in threads:
                thread.start()
            gc.collect()
            barrier.wait()
            start = time.perf_counter()
            for thread in threads:
                thread.join()
            wall_ms = (time.perf_counter() - start) * 1e3
            return [sample for per in latencies for sample in per], wall_ms

        with serve_in_thread(max_batch_size=1) as off_server, serve_in_thread(
            batch_window=batch_window, max_batch_size=max_batch_size
        ) as on_server:
            pool = {
                name: [
                    ServiceClient(server.address) for _ in range(clients_n)
                ]
                for name, server in (
                    ("unbatched", off_server),
                    ("batched", on_server),
                )
            }
            try:
                for clients in pool.values():
                    for w, client in enumerate(clients):
                        client.schedule(key, arrays[w][0])  # warm-up
                pooled: dict[str, list[float]] = {name: [] for name in pool}
                walls: dict[str, list[float]] = {name: [] for name in pool}
                for _ in range(2):
                    for name in ("unbatched", "batched"):
                        samples, wall_ms = run_round(pool[name])
                        pooled[name].extend(samples)
                        walls[name].append(wall_ms)
            finally:
                for clients in pool.values():
                    for client in clients:
                        client.close()

        modes = {}
        for name in pool:
            samples = np.asarray(pooled[name])
            amortized = min(walls[name]) / (clients_n * requests_per_client)
            modes[name] = {
                "requests": int(samples.size),
                "p50_ms": float(np.percentile(samples, 50)),
                "p95_ms": float(np.percentile(samples, 95)),
                "p99_ms": float(np.percentile(samples, 99)),
                "amortized_ms": amortized,
                "throughput_rps": 1e3 / amortized,
            }
        entries.append(
            {
                "clients": clients_n,
                "unbatched": modes["unbatched"],
                "batched": modes["batched"],
                "speedup_batched": (
                    modes["unbatched"]["amortized_ms"]
                    / modes["batched"]["amortized_ms"]
                ),
            }
        )
    return {
        "size": size,
        "fill": fill,
        "trials": requests_per_client,
        "batch_window_ms": batch_window * 1e3,
        "max_batch_size": max_batch_size,
        "concurrency": entries,
    }


def measure_pipeline_latency(
    size: int = 64,
    fill: float = 0.5,
    shots: int = 4,
    cycles: int = 2,
    trials: int = 3,
    master_seed: int = 0,
) -> dict:
    """Time the closed-loop pipeline, sequential vs stage-pipelined.

    Each trial runs the full camera -> detect -> schedule -> AWG ->
    replay loop (``shots`` arrays, up to ``cycles`` repair cycles each,
    default loss model) once per mode, interleaved sequential-first and
    GC-swept per the convention above, over two sweeps so the minima
    pool well-separated moments.  Every run's deterministic trace is
    checked against the warm-up digest — a drifting mode fails the
    bench loudly rather than recording a timing for wrong results.

    ``overlap_speedup`` is the ratio of best-of wall minima (sequential
    / pipelined).  On a single-core box it sits near (or below) 1: the
    stage workers are Python threads, so overlap buys nothing without
    idle cores.  The gate therefore only pins it against the committed
    baseline measured on the same class of machine.  ``stages`` is the
    per-stage breakdown of the best sequential run — the software
    counterpart of the paper's per-stage hardware budget.
    """
    from repro.physics.loss import LossModel
    from repro.pipeline import PipelineConfig, run_pipeline

    config = PipelineConfig(
        size=size,
        fill=fill,
        shots=shots,
        cycles=cycles,
        master_seed=master_seed,
        loss=LossModel(),
    )
    # Warm-up (unmeasured): imports, scheduler caches, and the trace
    # digest every timed run must reproduce.
    digest = run_pipeline(config, "sequential").trace_digest()

    wall_ms: dict[str, list[float]] = {"sequential": [], "pipelined": []}
    best_stages: list[dict] | None = None
    best_wall = float("inf")
    for _ in range(2):
        for _ in range(trials):
            for mode in ("sequential", "pipelined"):
                gc.collect()
                result = run_pipeline(config, mode)
                if result.trace_digest() != digest:
                    raise ValueError(
                        f"pipeline {mode} mode diverged from the warm-up "
                        f"trace while benchmarking"
                    )
                wall = result.report.wall_us / 1e3
                wall_ms[mode].append(wall)
                if mode == "sequential" and wall < best_wall:
                    best_wall = wall
                    best_stages = result.report.to_dict()["stages"]

    timings = {mode: Summary.of(samples) for mode, samples in wall_ms.items()}
    return {
        "size": size,
        "fill": fill,
        "trials": trials,
        "shots": shots,
        "cycles": cycles,
        "sequential_ms": summary_dict(timings["sequential"]),
        "pipelined_ms": summary_dict(timings["pipelined"]),
        "overlap_speedup": (
            timings["sequential"].minimum / timings["pipelined"].minimum
        ),
        "trace_digest": digest,
        "stages": best_stages or [],
    }


def measure_component_speedups(
    size: int = 64,
    fill: float = 0.5,
    trials: int = 3,
    master_seed: int = 0,
) -> dict[str, dict]:
    """All per-component before/after blocks (:data:`COMPONENT_NAMES`)."""
    # The batched and service blocks are timed first: the reference
    # oracles timed below (mta1's in particular) churn through enough
    # allocation to fragment the heap and depress batched throughput
    # measured after them, and their ratios feed CI regression gates.
    batched = measure_batched_qrm_speedup(
        size=size, fill=fill, trials=trials, master_seed=master_seed
    )
    service = measure_service_latency(
        size=size,
        fill=fill,
        requests_per_client=max(trials, 3),
        master_seed=master_seed,
    )
    blocks = {
        "repair": measure_repair_speedup(size, fill, trials, master_seed),
        "guarded_drain": measure_guarded_drain_speedup(size, fill, trials, master_seed),
        "masked_qrm": measure_masked_qrm_speedup(size, fill, trials, master_seed),
    }
    for component in ("tetris", "psca", "mta1"):
        blocks[component] = measure_baseline_speedup(
            component, size, fill, trials, master_seed
        )
    blocks["batched_qrm"] = batched
    blocks["service_latency"] = service
    blocks["pipeline_latency"] = measure_pipeline_latency(
        size=size, fill=fill, trials=trials, master_seed=master_seed
    )
    return blocks


def run_perf_suite(
    sizes: Sequence[int] = DEFAULT_SIZES,
    fills: Sequence[float] = DEFAULT_FILLS,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    trials: int = 3,
    master_seed: int = 0,
    size_caps: dict[str, int] | None = None,
    speedup_size: int | None = 64,
    observer: Callable[[str], None] | None = None,
) -> PerfReport:
    """Time schedule construction over the benchmark grid.

    ``size_caps`` bounds slow schedulers (default :data:`SIZE_CAPS`,
    now empty); capped cases land in the report's ``skipped`` list.
    With ``speedup_size`` set, the QRM before/after speedup block *and*
    the per-component blocks (:data:`COMPONENT_NAMES`) are measured at
    that size (``None`` skips them, e.g. in CI smoke mode).
    """
    caps = SIZE_CAPS if size_caps is None else size_caps
    report = PerfReport(master_seed=master_seed, trials=trials)
    for algorithm in algorithms:
        for size in sizes:
            cap = caps.get(algorithm)
            if cap is not None and size > cap:
                report.skipped.append(
                    {
                        "algorithm": algorithm,
                        "size": size,
                        "reason": f"size above cap {cap} "
                        f"(pass size_caps={{}} to include)",
                    }
                )
                continue
            for fill in fills:
                case = BenchCase(algorithm=algorithm, size=size, fill=fill)
                if observer is not None:
                    observer(case.label())
                wall_ms, moves = _time_schedules(
                    lambda geo, name=algorithm: get_algorithm(name, geo),
                    size,
                    fill,
                    trials,
                    master_seed,
                )
                report.records.append(
                    BenchRecord(case=case, wall_ms=wall_ms, moves=moves)
                )
    if speedup_size is not None:
        if observer is not None:
            observer(f"qrm speedup block at {speedup_size}x{speedup_size}")
        report.speedup = measure_qrm_speedup(
            size=speedup_size, trials=trials, master_seed=master_seed
        )
        if observer is not None:
            observer(
                f"component speedups at {speedup_size}x{speedup_size} "
                f"({', '.join(COMPONENT_NAMES)})"
            )
        report.component_speedups = measure_component_speedups(
            size=speedup_size, trials=trials, master_seed=master_seed
        )
    return report


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------

_SUMMARY_KEYS = ("mean", "std", "min", "max")
_ENTRY_KEYS = ("algorithm", "size", "fill", "trials", "wall_ms", "moves")
_SPEEDUP_KEYS = (
    "size",
    "fill",
    "trials",
    "vectorized_ms",
    "reference_ms",
    "seed_ms",
    "speedup_vs_seed",
    "speedup_vs_reference",
)
_COMPONENT_KEYS = (
    "size",
    "fill",
    "trials",
    "vectorized_ms",
    "reference_ms",
    "speedup_vs_reference",
)
_BATCHED_KEYS = ("size", "fill", "trials", "single_ms", "batches")
_PIPELINE_KEYS = (
    "size",
    "fill",
    "trials",
    "shots",
    "cycles",
    "sequential_ms",
    "pipelined_ms",
    "overlap_speedup",
    "trace_digest",
    "stages",
)
_SERVICE_KEYS = (
    "size",
    "fill",
    "trials",
    "batch_window_ms",
    "max_batch_size",
    "concurrency",
)
_SERVICE_MODE_KEYS = (
    "requests",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "amortized_ms",
    "throughput_rps",
)


def _check_service_block(block: dict) -> None:
    """Validate the ``service_latency`` component's concurrency sweep."""
    context = "component_speedups['service_latency']"
    for key in _SERVICE_KEYS:
        if key not in block:
            raise ValueError(f"{context} missing {key!r}")
    levels = block["concurrency"]
    if not isinstance(levels, list) or not levels:
        raise ValueError(f"{context}.concurrency must be a non-empty list")
    for index, entry in enumerate(levels):
        entry_context = f"{context}.concurrency[{index}]"
        for key in ("clients", "unbatched", "batched", "speedup_batched"):
            if key not in entry:
                raise ValueError(f"{entry_context} missing {key!r}")
        if not isinstance(entry["clients"], int) or entry["clients"] < 1:
            raise ValueError(f"{entry_context}.clients must be a positive int")
        for mode in ("unbatched", "batched"):
            mode_block = entry[mode]
            mode_context = f"{entry_context}.{mode}"
            for key in _SERVICE_MODE_KEYS:
                if not isinstance(mode_block.get(key), (int, float)):
                    raise ValueError(
                        f"{mode_context}.{key} missing or non-numeric"
                    )
            if not (
                mode_block["p50_ms"]
                <= mode_block["p95_ms"]
                <= mode_block["p99_ms"]
            ):
                raise ValueError(
                    f"{mode_context}: p50 <= p95 <= p99 violated"
                )
            if mode_block["amortized_ms"] <= 0:
                raise ValueError(
                    f"{mode_context}.amortized_ms must be positive"
                )
        if entry["speedup_batched"] <= 0:
            raise ValueError(f"{entry_context}.speedup_batched must be positive")


def _check_pipeline_block(block: dict) -> None:
    """Validate the ``pipeline_latency`` component's shape."""
    context = "component_speedups['pipeline_latency']"
    for key in _PIPELINE_KEYS:
        if key not in block:
            raise ValueError(f"{context} missing {key!r}")
    for key in ("sequential_ms", "pipelined_ms"):
        _check_summary(block[key], f"{context}.{key}")
    if block["overlap_speedup"] <= 0:
        raise ValueError(f"{context}.overlap_speedup must be positive")
    digest = block["trace_digest"]
    if not isinstance(digest, str) or len(digest) != 64:
        raise ValueError(f"{context}.trace_digest must be a sha256 hex digest")
    stages = block["stages"]
    if not isinstance(stages, list) or not stages:
        raise ValueError(f"{context}.stages must be a non-empty list")
    for index, stage in enumerate(stages):
        stage_context = f"{context}.stages[{index}]"
        if not isinstance(stage.get("stage"), str):
            raise ValueError(f"{stage_context}.stage missing or non-string")
        for key in ("n_calls", "total_us", "mean_us"):
            if not isinstance(stage.get(key), (int, float)):
                raise ValueError(f"{stage_context}.{key} missing or non-numeric")


def _check_batched_block(block: dict) -> None:
    """Validate the ``batched_qrm`` component's batch-sweep shape."""
    context = "component_speedups['batched_qrm']"
    for key in _BATCHED_KEYS:
        if key not in block:
            raise ValueError(f"{context} missing {key!r}")
    _check_summary(block["single_ms"], f"{context}.single_ms")
    batches = block["batches"]
    if not isinstance(batches, list) or not batches:
        raise ValueError(f"{context}.batches must be a non-empty list")
    for index, entry in enumerate(batches):
        entry_context = f"{context}.batches[{index}]"
        for key in ("batch_size", "amortized_ms", "speedup_vs_single"):
            if key not in entry:
                raise ValueError(f"{entry_context} missing {key!r}")
        if not isinstance(entry["batch_size"], int) or entry["batch_size"] < 1:
            raise ValueError(f"{entry_context}.batch_size must be a positive int")
        _check_summary(entry["amortized_ms"], f"{entry_context}.amortized_ms")
        if entry["speedup_vs_single"] <= 0:
            raise ValueError(f"{entry_context}.speedup_vs_single must be positive")


def _check_summary(block: dict, context: str) -> None:
    for key in _SUMMARY_KEYS:
        if not isinstance(block.get(key), (int, float)):
            raise ValueError(f"{context}.{key} missing or non-numeric")
    if not block["min"] <= block["mean"] <= block["max"]:
        raise ValueError(f"{context}: min <= mean <= max violated")


def validate_bench_report(payload: dict) -> None:
    """Raise :class:`ValueError` unless ``payload`` is a valid report.

    This is the machine-checked contract behind ``BENCH_*.json``: the
    schema version is pinned, every entry carries the summary keys with
    coherent min/mean/max, trial counts are positive and uniform across
    entries, and the speedup blocks (QRM and per-component) expose their
    ratio keys.  ``tests/test_bench_schema.py`` holds both the committed
    artefact and freshly generated reports to it.
    """
    if payload.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"schema_version {payload.get('schema_version')!r} != "
            f"{BENCH_SCHEMA_VERSION}"
        )
    for key in ("master_seed", "trials", "environment", "entries", "skipped"):
        if key not in payload:
            raise ValueError(f"missing top-level key {key!r}")
    if not isinstance(payload["trials"], int) or payload["trials"] < 1:
        raise ValueError(f"trials must be a positive int, got {payload['trials']!r}")

    entries = payload["entries"]
    for index, entry in enumerate(entries):
        context = f"entries[{index}]"
        for key in _ENTRY_KEYS:
            if key not in entry:
                raise ValueError(f"{context} missing key {key!r}")
        if not isinstance(entry["trials"], int) or entry["trials"] < 1:
            raise ValueError(f"{context}.trials must be a positive int")
        if entry["trials"] != payload["trials"]:
            raise ValueError(
                f"{context}.trials {entry['trials']} drifted from the "
                f"report-level {payload['trials']}"
            )
        _check_summary(entry["wall_ms"], f"{context}.wall_ms")
        _check_summary(entry["moves"], f"{context}.moves")

    for skip in payload["skipped"]:
        for key in ("algorithm", "size", "reason"):
            if key not in skip:
                raise ValueError(f"skipped entry missing key {key!r}")

    speedup = payload.get("speedup")
    if speedup is not None:
        for key in _SPEEDUP_KEYS:
            if key not in speedup:
                raise ValueError(f"speedup missing key {key!r}")
        for key in ("vectorized_ms", "reference_ms", "seed_ms"):
            _check_summary(speedup[key], f"speedup.{key}")
        if speedup["speedup_vs_reference"] <= 0:
            raise ValueError("speedup.speedup_vs_reference must be positive")

    components = payload.get("component_speedups") or {}
    for name, block in components.items():
        if name not in COMPONENT_NAMES:
            raise ValueError(f"unknown component speedup {name!r}")
        if name == "batched_qrm":
            _check_batched_block(block)
            continue
        if name == "service_latency":
            _check_service_block(block)
            continue
        if name == "pipeline_latency":
            _check_pipeline_block(block)
            continue
        keys = _COMPONENT_KEYS
        if name == "masked_qrm":
            keys = keys + ("mask", "mask_sites")
        for key in keys:
            if key not in block:
                raise ValueError(f"component_speedups[{name!r}] missing {key!r}")
        for key in ("vectorized_ms", "reference_ms"):
            _check_summary(block[key], f"component_speedups[{name!r}].{key}")
        if block["speedup_vs_reference"] <= 0:
            raise ValueError(
                f"component_speedups[{name!r}].speedup_vs_reference "
                f"must be positive"
            )
        if name == "masked_qrm":
            if not isinstance(block["mask"], str) or not block["mask"]:
                raise ValueError(
                    "component_speedups['masked_qrm'].mask must be a "
                    "non-empty string"
                )
            sites = block["mask_sites"]
            if not isinstance(sites, int) or sites < 1:
                raise ValueError(
                    "component_speedups['masked_qrm'].mask_sites must be "
                    "a positive int"
                )
    if speedup is not None and set(components) != set(COMPONENT_NAMES):
        raise ValueError(
            f"component_speedups {sorted(components)} incomplete; "
            f"expected {sorted(COMPONENT_NAMES)}"
        )
