"""Speedup regression gate over committed ``BENCH_*.json`` artefacts.

Raw wall-clock numbers are machine-dependent, so the gate never compares
milliseconds across reports.  It compares the *dimensionless speedup
ratios* — vectorised-vs-reference per component, batched-vs-serial per
batch size — which are measured interleaved within one run and therefore
transfer between machines.  A fresh report passes when every ratio it
shares with the baseline is within ``tolerance`` (default 15%) of the
baseline's value; blocks present on only one side are skipped, because a
smoke-grid report legitimately measures fewer cases than the committed
full-grid artefact.
"""

from __future__ import annotations

from typing import Mapping


def _slipped(fresh: float, baseline: float, tolerance: float) -> bool:
    """Has ``fresh`` regressed more than ``tolerance`` below ``baseline``?"""
    return fresh < baseline * (1.0 - tolerance)


def _comparable(fresh: Mapping | None, baseline: Mapping | None) -> bool:
    """Blocks compare only when both exist and measured the same case."""
    return (
        fresh is not None
        and baseline is not None
        and fresh.get("size") == baseline.get("size")
        and fresh.get("fill") == baseline.get("fill")
    )


def check_perf_regression(
    fresh: Mapping,
    baseline: Mapping,
    tolerance: float = 0.15,
) -> list[str]:
    """Compare two bench-report payloads; return regression descriptions.

    ``fresh`` and ``baseline`` are ``BENCH_*.json`` payloads (the dict
    shape of :meth:`repro.analysis.perf.PerfReport.to_dict`).  An empty
    return value means the gate passes.  Each failure string names the
    ratio, both values, and the allowed floor.
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    failures: list[str] = []

    def check(label: str, fresh_ratio: float, base_ratio: float) -> None:
        if _slipped(fresh_ratio, base_ratio, tolerance):
            floor = base_ratio * (1.0 - tolerance)
            failures.append(
                f"{label}: {fresh_ratio:.2f}x < floor {floor:.2f}x "
                f"(baseline {base_ratio:.2f}x, tolerance {tolerance:.0%})"
            )

    fresh_speedup = fresh.get("speedup")
    base_speedup = baseline.get("speedup")
    if _comparable(fresh_speedup, base_speedup):
        size = fresh_speedup["size"]
        for key in ("speedup_vs_seed", "speedup_vs_reference"):
            check(
                f"qrm@{size} {key}",
                fresh_speedup[key],
                base_speedup[key],
            )

    fresh_components = fresh.get("component_speedups") or {}
    base_components = baseline.get("component_speedups") or {}
    for name in fresh_components.keys() & base_components.keys():
        fresh_block = fresh_components[name]
        base_block = base_components[name]
        if not _comparable(fresh_block, base_block):
            continue
        size = fresh_block["size"]
        if name == "batched_qrm":
            base_by_batch = {
                entry["batch_size"]: entry for entry in base_block["batches"]
            }
            for entry in fresh_block["batches"]:
                base_entry = base_by_batch.get(entry["batch_size"])
                if base_entry is None:
                    continue
                check(
                    f"batched_qrm@{size} B={entry['batch_size']} "
                    f"speedup_vs_single",
                    entry["speedup_vs_single"],
                    base_entry["speedup_vs_single"],
                )
            continue
        check(
            f"{name}@{size} speedup_vs_reference",
            fresh_block["speedup_vs_reference"],
            base_block["speedup_vs_reference"],
        )
    return failures
