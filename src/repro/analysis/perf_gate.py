"""Speedup regression gate over committed ``BENCH_*.json`` artefacts.

Raw wall-clock numbers are machine-dependent, so the gate never compares
milliseconds across reports.  It compares the *dimensionless speedup
ratios* — vectorised-vs-reference per component, batched-vs-serial per
batch size, service-batching-on-vs-off at the highest measured client
concurrency, sequential-vs-pipelined for the closed-loop pipeline —
which are measured interleaved within one run and
therefore transfer between machines.  A fresh report passes when every
ratio it shares with the baseline is within ``tolerance`` (default 15%)
of the baseline's value; blocks present on only one side are skipped,
because a smoke-grid report legitimately measures fewer cases than the
committed full-grid artefact.

:func:`check_perf_regression` returns the raw failure strings;
:func:`evaluate_gate` wraps it in a :class:`GateOutcome` that also
carries skip *notices* (which blocks could not be compared, and why)
and renders every slipping ratio in one combined failure message — the
shape ``repro bench --gate`` reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


def _slipped(fresh: float, baseline: float, tolerance: float) -> bool:
    """Has ``fresh`` regressed more than ``tolerance`` below ``baseline``?"""
    return fresh < baseline * (1.0 - tolerance)


def _comparable(fresh: Mapping | None, baseline: Mapping | None) -> bool:
    """Blocks compare only when both exist and measured the same case."""
    return (
        fresh is not None
        and baseline is not None
        and fresh.get("size") == baseline.get("size")
        and fresh.get("fill") == baseline.get("fill")
    )


def check_perf_regression(
    fresh: Mapping,
    baseline: Mapping,
    tolerance: float = 0.15,
) -> list[str]:
    """Compare two bench-report payloads; return regression descriptions.

    ``fresh`` and ``baseline`` are ``BENCH_*.json`` payloads (the dict
    shape of :meth:`repro.analysis.perf.PerfReport.to_dict`).  An empty
    return value means the gate passes.  Each failure string names the
    ratio, both values, and the allowed floor.
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    failures: list[str] = []

    def check(label: str, fresh_ratio: float, base_ratio: float) -> None:
        if _slipped(fresh_ratio, base_ratio, tolerance):
            floor = base_ratio * (1.0 - tolerance)
            failures.append(
                f"{label}: {fresh_ratio:.2f}x < floor {floor:.2f}x "
                f"(baseline {base_ratio:.2f}x, tolerance {tolerance:.0%})"
            )

    fresh_speedup = fresh.get("speedup")
    base_speedup = baseline.get("speedup")
    if _comparable(fresh_speedup, base_speedup):
        size = fresh_speedup["size"]
        for key in ("speedup_vs_seed", "speedup_vs_reference"):
            check(
                f"qrm@{size} {key}",
                fresh_speedup[key],
                base_speedup[key],
            )

    fresh_components = fresh.get("component_speedups") or {}
    base_components = baseline.get("component_speedups") or {}
    for name in fresh_components.keys() & base_components.keys():
        fresh_block = fresh_components[name]
        base_block = base_components[name]
        if not _comparable(fresh_block, base_block):
            continue
        size = fresh_block["size"]
        if name == "batched_qrm":
            base_by_batch = {
                entry["batch_size"]: entry for entry in base_block["batches"]
            }
            for entry in fresh_block["batches"]:
                base_entry = base_by_batch.get(entry["batch_size"])
                if base_entry is None:
                    continue
                check(
                    f"batched_qrm@{size} B={entry['batch_size']} "
                    f"speedup_vs_single",
                    entry["speedup_vs_single"],
                    base_entry["speedup_vs_single"],
                )
            continue
        if name == "service_latency":
            # Only the highest concurrency both reports measured is
            # pinned: low-concurrency ratios are dominated by the batch
            # window (an intentional latency-for-throughput trade), so
            # they wobble with the window/schedule-time ratio rather
            # than signalling a regression.
            fresh_by_clients = {
                entry["clients"]: entry for entry in fresh_block["concurrency"]
            }
            base_by_clients = {
                entry["clients"]: entry for entry in base_block["concurrency"]
            }
            shared = fresh_by_clients.keys() & base_by_clients.keys()
            if not shared:
                continue
            clients = max(shared)
            check(
                f"service_latency@{size} c={clients} speedup_batched",
                fresh_by_clients[clients]["speedup_batched"],
                base_by_clients[clients]["speedup_batched"],
            )
            continue
        if name == "pipeline_latency":
            # Sequential-vs-pipelined wall ratio of the closed loop.  On
            # a single-core runner it hovers near 1 (Python threads buy
            # no overlap without idle cores); the gate only catches it
            # slipping below the committed baseline's ratio.
            check(
                f"pipeline_latency@{size} overlap_speedup",
                fresh_block["overlap_speedup"],
                base_block["overlap_speedup"],
            )
            continue
        check(
            f"{name}@{size} speedup_vs_reference",
            fresh_block["speedup_vs_reference"],
            base_block["speedup_vs_reference"],
        )
    return failures


@dataclass(frozen=True)
class GateOutcome:
    """Everything one gate evaluation decided.

    ``failures`` are the slipping ratios (empty = gate passes);
    ``notices`` name the blocks that could not be compared and why, so
    a gate run that silently measured nothing is visible in the log.
    """

    failures: list[str] = field(default_factory=list)
    notices: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def message(self) -> str:
        """One combined failure message naming every slipping ratio."""
        if self.ok:
            return "perf gate passed"
        lines = [
            f"perf gate: {len(self.failures)} speedup ratio(s) regressed:"
        ]
        lines.extend(f"  - {failure}" for failure in self.failures)
        return "\n".join(lines)


def _skip_notices(fresh: Mapping, baseline: Mapping) -> list[str]:
    """Why each non-compared block was skipped, in a stable order."""
    notices: list[str] = []

    def explain(label: str, fresh_block, base_block) -> None:
        if fresh_block is None and base_block is None:
            return
        if fresh_block is None:
            notices.append(f"{label}: in the baseline but not measured here")
        elif base_block is None:
            notices.append(f"{label}: measured here but absent from the baseline")
        elif not _comparable(fresh_block, base_block):
            notices.append(
                f"{label}: case mismatch "
                f"({fresh_block.get('size')}x{fresh_block.get('size')} "
                f"fill={fresh_block.get('fill')} here vs "
                f"{base_block.get('size')}x{base_block.get('size')} "
                f"fill={base_block.get('fill')} in the baseline)"
            )

    explain("qrm speedup", fresh.get("speedup"), baseline.get("speedup"))
    fresh_components = fresh.get("component_speedups") or {}
    base_components = baseline.get("component_speedups") or {}
    for name in sorted(fresh_components.keys() | base_components.keys()):
        explain(
            f"component '{name}'",
            fresh_components.get(name),
            base_components.get(name),
        )
    return notices


def evaluate_gate(
    fresh: Mapping,
    baseline: Mapping,
    tolerance: float = 0.15,
) -> GateOutcome:
    """Run the gate and report failures *and* skipped-block notices.

    The comparison itself is :func:`check_perf_regression` — every
    shared ratio is checked, so one evaluation reports **all** slipping
    components at once rather than stopping at the first.
    """
    return GateOutcome(
        failures=check_perf_regression(fresh, baseline, tolerance),
        notices=_skip_notices(fresh, baseline),
    )
