"""Plain-text table formatting for experiment outputs."""

from __future__ import annotations

from typing import Any, Sequence


def _format_cell(value: Any, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    float_format: str = ".2f",
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule."""
    cells = [[_format_cell(value, float_format) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(values: Sequence[str]) -> str:
        return "  ".join(v.rjust(w) for v, w in zip(values, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Comma-separated rendering (no quoting — fields are plain)."""
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(_format_cell(v, ".6g") for v in row))
    return "\n".join(lines)
