"""repro — reproduction of the DATE 2025 FPGA neutral-atom rearrangement
accelerator (Quadrant-based Rearrangement Method, QRM).

Public API highlights
---------------------
``ArrayGeometry`` / ``AtomArray`` / ``load_uniform``
    the trap-array substrate;
``get_algorithm`` / ``schedule_batch``
    the algorithm registry (resolve any scheduler by name) and the
    batch-first dispatch that amortises analysis across trials;
``QrmScheduler`` / ``BatchQrmScheduler``
    the paper's algorithm, emitting validated ``MoveSchedule`` objects
    (single-trial and cross-trial batched engines);
``QrmAccelerator``
    the cycle-level FPGA model reporting latency at 250 MHz;
``validate_schedule``
    independent replay/validation of any schedule;
``run_fig7a`` / ``run_fig7b`` / ``run_fig8``
    regeneration of every evaluation figure in the paper
    (in :mod:`repro.analysis`);
``CampaignSpec`` / ``ExperimentCampaign``
    the parallel experiment-campaign engine: declarative scenario
    grids, seeded trials, process-pool execution, and an incremental
    on-disk trial cache (in :mod:`repro.campaign`).
"""

from repro.aod import (
    AodConstraints,
    LineShift,
    MoveSchedule,
    ParallelMove,
    execute_schedule,
    require_valid,
    validate_schedule,
)
from repro.baselines import get_algorithm, schedule_batch, supports_batch
from repro.campaign import CampaignSpec, ExperimentCampaign, run_campaign
from repro.config import DEFAULT_QRM_PARAMETERS, QrmParameters, ScanMode
from repro.core import (
    BatchQrmScheduler,
    QrmScheduler,
    RearrangementResult,
    TypicalScheduler,
    rearrange,
)
from repro.lattice import (
    ArrayGeometry,
    AtomArray,
    Direction,
    Quadrant,
    Region,
    load_uniform,
    render_array,
    render_side_by_side,
)

__version__ = "1.0.0"

__all__ = [
    "AodConstraints",
    "ArrayGeometry",
    "AtomArray",
    "BatchQrmScheduler",
    "CampaignSpec",
    "DEFAULT_QRM_PARAMETERS",
    "ExperimentCampaign",
    "Direction",
    "LineShift",
    "MoveSchedule",
    "ParallelMove",
    "Quadrant",
    "QrmParameters",
    "QrmScheduler",
    "RearrangementResult",
    "Region",
    "ScanMode",
    "TypicalScheduler",
    "__version__",
    "execute_schedule",
    "get_algorithm",
    "load_uniform",
    "rearrange",
    "render_array",
    "run_campaign",
    "render_side_by_side",
    "require_valid",
    "schedule_batch",
    "supports_batch",
    "validate_schedule",
]
