"""Multi-tone waveform segments with linear chirps.

A segment plays a set of simultaneous tones for a fixed duration; each
tone ramps linearly from a start to an end frequency (a chirp) under a
linear amplitude envelope.  Phase is integrated exactly so consecutive
samples are continuous within a segment.

Units: frequencies in MHz, durations in microseconds, sample rates in
MS/s (so frequency x time products are dimensionless cycles), and
amplitudes normalised to [0, 1] of full scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WaveformError


@dataclass(frozen=True)
class Tone:
    """One chirped tone inside a segment (frequencies in MHz)."""

    start_mhz: float
    end_mhz: float

    @property
    def is_static(self) -> bool:
        return self.start_mhz == self.end_mhz


@dataclass(frozen=True)
class Segment:
    """A fixed-duration block of simultaneous tones.

    ``amplitude_start``/``amplitude_end`` define a linear envelope over
    the whole segment, shared by all tones (the AWG scales channels
    together during pickup and drop ramps).
    """

    label: str
    duration_us: float
    tones: tuple[Tone, ...]
    amplitude_start: float = 1.0
    amplitude_end: float = 1.0

    def __post_init__(self) -> None:
        if self.duration_us <= 0:
            raise WaveformError(f"segment '{self.label}' needs positive duration")
        for amp in (self.amplitude_start, self.amplitude_end):
            if not 0.0 <= amp <= 1.0:
                raise WaveformError(
                    f"segment '{self.label}' amplitude {amp} outside [0, 1]"
                )

    def n_samples(self, sample_rate_msps: float) -> int:
        return max(1, int(round(self.duration_us * sample_rate_msps)))

    def synthesize(self, sample_rate_msps: float = 500.0) -> np.ndarray:
        """Sample the segment (arbitrary units, one summed channel).

        The instantaneous phase of a linear chirp from f0 to f1 over T is
        ``2*pi*(f0*t + (f1-f0)*t^2/(2*T))``.
        """
        n = self.n_samples(sample_rate_msps)
        t = np.arange(n) / sample_rate_msps  # microseconds
        envelope = self.amplitude_start + (
            self.amplitude_end - self.amplitude_start
        ) * (t / self.duration_us)
        out = np.zeros(n, dtype=float)
        for tone in self.tones:
            sweep = tone.end_mhz - tone.start_mhz
            phase = 2.0 * np.pi * (
                tone.start_mhz * t + sweep * t**2 / (2.0 * self.duration_us)
            )
            out += np.sin(phase)
        if self.tones:
            out /= len(self.tones)
        return envelope * out


@dataclass
class WaveformProgram:
    """An ordered list of segments covering a whole move schedule."""

    segments: list[Segment] = field(default_factory=list)

    def append(self, segment: Segment) -> None:
        self.segments.append(segment)

    def extend(self, segments: list[Segment]) -> None:
        self.segments.extend(segments)

    @property
    def total_duration_us(self) -> float:
        return sum(segment.duration_us for segment in self.segments)

    def n_samples(self, sample_rate_msps: float) -> int:
        return sum(s.n_samples(sample_rate_msps) for s in self.segments)

    def synthesize(self, sample_rate_msps: float = 500.0) -> np.ndarray:
        """Concatenate all segment samples (use on small programs only)."""
        if not self.segments:
            return np.zeros(0, dtype=float)
        return np.concatenate([s.synthesize(sample_rate_msps) for s in self.segments])

    def __len__(self) -> int:
        return len(self.segments)
