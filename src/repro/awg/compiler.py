"""Compile move schedules into AWG waveform programs.

Every parallel move becomes a pickup / transport / drop segment triple:

* *pickup* — the AOD tones of the selected rows and columns ramp up in
  amplitude to transfer atoms from the static traps into the tweezers;
* *transport* — the tones of the moving axis chirp by ``steps`` lattice
  spacings while the orthogonal axis stays static;
* *drop* — amplitude ramps back down, releasing atoms into the lattice.

Durations come from the shared :class:`~repro.aod.timing.MoveTimingModel`
so the program length equals the physical motion-time estimate exactly
(asserted in tests).
"""

from __future__ import annotations

from repro.aod.move import ParallelMove
from repro.aod.schedule import MoveSchedule
from repro.aod.timing import DEFAULT_MOVE_TIMING, MoveTimingModel
from repro.awg.tones import AodToneConfig
from repro.awg.waveform import Segment, Tone, WaveformProgram
from repro.lattice.geometry import Direction


def _axis_tones(tone_map, indices: list[int]) -> tuple[Tone, ...]:
    return tuple(Tone(start_mhz=f, end_mhz=f) for f in tone_map.frequencies(indices))


def _chirped_tones(tone_map, indices: list[int], delta: int) -> tuple[Tone, ...]:
    tones = []
    for index in indices:
        start = tone_map.frequency(index)
        end = tone_map.frequency(index + delta)
        tones.append(Tone(start_mhz=start, end_mhz=end))
    return tuple(tones)


def compile_move(
    move: ParallelMove,
    tones: AodToneConfig,
    timing: MoveTimingModel = DEFAULT_MOVE_TIMING,
    index: int = 0,
) -> list[Segment]:
    """Segments (pickup, transport, drop) for one parallel move."""
    if move.is_horizontal:
        row_indices = move.selected_lines()
        col_indices = move.selected_cross()
    else:
        col_indices = move.selected_lines()
        row_indices = move.selected_cross()

    row_static = _axis_tones(tones.rows, row_indices)
    col_static = _axis_tones(tones.cols, col_indices)

    delta = move.steps
    if move.direction in (Direction.NORTH, Direction.WEST):
        delta = -delta
    if move.is_horizontal:
        transport_tones = row_static + _chirped_tones(tones.cols, col_indices, delta)
    else:
        transport_tones = col_static + _chirped_tones(tones.rows, row_indices, delta)

    label = f"move{index}"
    pickup = Segment(
        label=f"{label}.pickup",
        duration_us=timing.pickup_us,
        tones=row_static + col_static,
        amplitude_start=0.0,
        amplitude_end=1.0,
    )
    transport = Segment(
        label=f"{label}.transport",
        duration_us=timing.transfer_us_per_site * move.steps,
        tones=transport_tones,
    )
    drop_row = _axis_tones(
        tones.rows,
        [i + (delta if not move.is_horizontal else 0) for i in row_indices],
    )
    drop_col = _axis_tones(
        tones.cols,
        [i + (delta if move.is_horizontal else 0) for i in col_indices],
    )
    drop = Segment(
        label=f"{label}.drop",
        duration_us=timing.drop_us,
        tones=drop_row + drop_col,
        amplitude_start=1.0,
        amplitude_end=0.0,
    )
    return [pickup, transport, drop]


def compile_schedule(
    schedule: MoveSchedule,
    tones: AodToneConfig | None = None,
    timing: MoveTimingModel = DEFAULT_MOVE_TIMING,
) -> WaveformProgram:
    """The full AWG program for ``schedule``, with settle gaps."""
    if tones is None:
        tones = AodToneConfig()
    program = WaveformProgram()
    for index, move in enumerate(schedule):
        program.extend(compile_move(move, tones, timing, index))
        if timing.settle_us > 0 and index < len(schedule) - 1:
            program.append(
                Segment(
                    label=f"move{index}.settle",
                    duration_us=timing.settle_us,
                    tones=(),
                )
            )
    return program
