"""RF tone maps: lattice coordinates <-> AOD drive frequencies.

Each axis of the 2-D AOD deflects in proportion to its drive frequency,
so a lattice row/column index maps linearly onto an RF tone.  Moving the
tweezer grid by one site means chirping every active tone on the moving
axis by one ``spacing_mhz`` step.  All frequencies are in MHz; row
index 0 maps to ``base_mhz`` and indices increase towards higher
frequency on both axes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WaveformError


@dataclass(frozen=True)
class ToneMap:
    """Linear index-to-frequency map for one AOD axis."""

    base_mhz: float = 75.0
    spacing_mhz: float = 0.5
    n_sites: int = 256

    def __post_init__(self) -> None:
        if self.spacing_mhz <= 0:
            raise WaveformError("spacing_mhz must be positive")
        if self.n_sites < 1:
            raise WaveformError("n_sites must be >= 1")

    def frequency(self, index: int) -> float:
        """Drive frequency (MHz) for lattice index ``index``."""
        if not 0 <= index < self.n_sites:
            raise WaveformError(
                f"index {index} outside tone map range [0, {self.n_sites})"
            )
        return self.base_mhz + index * self.spacing_mhz

    def frequencies(self, indices: list[int]) -> list[float]:
        return [self.frequency(i) for i in indices]

    def index_of(self, frequency_mhz: float) -> int:
        """Inverse map (nearest index)."""
        index = round((frequency_mhz - self.base_mhz) / self.spacing_mhz)
        if not 0 <= index < self.n_sites:
            raise WaveformError(
                f"frequency {frequency_mhz} MHz maps outside the lattice"
            )
        return int(index)


@dataclass(frozen=True)
class AodToneConfig:
    """Tone maps for both AOD axes."""

    rows: ToneMap = ToneMap(base_mhz=75.0)
    cols: ToneMap = ToneMap(base_mhz=110.0)
