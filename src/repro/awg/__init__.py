"""AWG waveform synthesis: move schedules -> RF tone programs."""

from repro.awg.compiler import compile_move, compile_schedule
from repro.awg.tones import AodToneConfig, ToneMap
from repro.awg.waveform import Segment, Tone, WaveformProgram

__all__ = [
    "AodToneConfig",
    "Segment",
    "Tone",
    "ToneMap",
    "WaveformProgram",
    "compile_move",
    "compile_schedule",
]
