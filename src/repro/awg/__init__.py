"""AWG waveform synthesis: move schedules -> RF tone programs.

The output end of the paper's data path: the accelerator's parallel
moves become the multi-tone RF waveforms an arbitrary waveform
generator plays into the 2-D AOD, one frequency per active row/column
(the tone-generation stage that low-latency FPGA control systems such
as Hu et al., arXiv:2607.08687, synthesise on-chip).  Conventions:
frequencies in MHz, durations in microseconds, amplitudes normalised to
[0, 1]; a compiled :class:`~repro.awg.waveform.WaveformProgram` is an
ordered list of chirp segments whose total duration equals the
schedule's physical motion-time estimate.  The closed-loop pipeline
(:mod:`repro.pipeline`) drives this package as its ``awg`` stage.
"""

from repro.awg.compiler import compile_move, compile_schedule
from repro.awg.tones import AodToneConfig, ToneMap
from repro.awg.waveform import Segment, Tone, WaveformProgram

__all__ = [
    "AodToneConfig",
    "Segment",
    "Tone",
    "ToneMap",
    "WaveformProgram",
    "compile_move",
    "compile_schedule",
]
