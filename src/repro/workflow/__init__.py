"""Control-system architecture models (paper Fig. 2)."""

from repro.workflow.links import (
    AXI_DDR,
    COAXPRESS_12,
    GIGE,
    LINKS,
    LinkModel,
    PCIE_GEN3_X8,
)
from repro.workflow.system import (
    BudgetItem,
    ControlSystemModel,
    LatencyBudget,
    architecture_a_budget,
    architecture_b_budget,
    compare_architectures,
)

__all__ = [
    "AXI_DDR",
    "BudgetItem",
    "COAXPRESS_12",
    "ControlSystemModel",
    "GIGE",
    "LINKS",
    "LatencyBudget",
    "LinkModel",
    "PCIE_GEN3_X8",
    "architecture_a_budget",
    "architecture_b_budget",
    "compare_architectures",
]
