"""Interconnect models for the control-system architectures (paper Fig. 2).

Each link charges a fixed per-transfer latency plus a bandwidth-limited
streaming time.  The values are representative datasheet numbers; the
comparison between architectures (a) and (b) depends on their orders of
magnitude, not their third digit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LinkModel:
    """A point-to-point interconnect."""

    name: str
    bandwidth_gbps: float
    latency_us: float

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ConfigurationError("bandwidth_gbps must be positive")
        if self.latency_us < 0:
            raise ConfigurationError("latency_us must be >= 0")

    def transfer_us(self, n_bits: int | float) -> float:
        """Time to move ``n_bits`` across the link."""
        if n_bits < 0:
            raise ConfigurationError("n_bits must be >= 0")
        return self.latency_us + n_bits / (self.bandwidth_gbps * 1e3)


#: CoaXPress CXP-12, camera to frame-grabber FPGA.
COAXPRESS_12 = LinkModel("coaxpress-12", bandwidth_gbps=12.5, latency_us=5.0)

#: PCIe Gen3 x8, frame-grabber to host memory (effective).
PCIE_GEN3_X8 = LinkModel("pcie-gen3-x8", bandwidth_gbps=52.0, latency_us=2.0)

#: Gigabit Ethernet, lab-network hop to a control server.
GIGE = LinkModel("gige", bandwidth_gbps=0.94, latency_us=50.0)

#: On-chip AXI to DDR (PL <-> PS of the RFSoC).
AXI_DDR = LinkModel("axi-ddr", bandwidth_gbps=128.0, latency_us=0.1)

LINKS = {link.name: link for link in (COAXPRESS_12, PCIE_GEN3_X8, GIGE, AXI_DDR)}
