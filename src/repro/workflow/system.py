"""End-to-end control-loop latency budgets for the Fig. 2 architectures.

Architecture (a): the camera image lands on a frame-grabber FPGA, crosses
to the host over PCIe, is detected and scheduled on the CPU, and the
resulting moves cross back to the AWG FPGA.  Architecture (b): detection
and scheduling run on the same FPGA that receives the image and drives
the AWG, so only on-chip hops remain.  The delta between the two budgets
is the paper's motivation for moving the rearrangement analysis into
the PL.

Every :class:`BudgetItem` carries, besides its free-form description, a
**canonical stage key** from :data:`repro.timing.latency.PIPELINE_STAGES`
(``camera``/``detect``/``schedule``/``awg``) and is denominated in
microseconds — the same vocabulary and unit the measured pipeline's
:class:`~repro.timing.latency.StageReport` uses, so the analytic model
and the simulated data path compare cell by cell
(``StageReport.compare_to_budget``) instead of by string matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.cost_model import model_cpu_time_us
from repro.detection.camera import CameraConfig, DEFAULT_CAMERA
from repro.errors import ConfigurationError
from repro.fpga.config import DEFAULT_FPGA_CONFIG, FpgaConfig
from repro.timing.latency import (
    PIPELINE_STAGES,
    STAGE_AWG,
    STAGE_CAMERA,
    STAGE_DETECT,
    STAGE_SCHEDULE,
)
from repro.workflow.links import AXI_DDR, COAXPRESS_12, LinkModel, PCIE_GEN3_X8


@dataclass(frozen=True)
class BudgetItem:
    """One contribution to an end-to-end latency budget.

    ``stage`` is the human-readable description; ``key`` the canonical
    pipeline stage this contribution belongs to (for comparison with the
    measured :class:`~repro.timing.latency.StageReport`).
    """

    stage: str
    time_us: float
    key: str = ""


@dataclass
class LatencyBudget:
    """An ordered latency breakdown (microseconds throughout)."""

    architecture: str
    items: list[BudgetItem] = field(default_factory=list)

    def add(self, stage: str, time_us: float, key: str = "") -> None:
        if key and key not in PIPELINE_STAGES:
            raise ConfigurationError(
                f"unknown stage key {key!r}; expected one of {PIPELINE_STAGES}"
            )
        self.items.append(BudgetItem(stage, time_us, key))

    @property
    def total_us(self) -> float:
        return sum(item.time_us for item in self.items)

    def stage_totals(self) -> dict[str, float]:
        """Modelled microseconds summed per canonical stage key.

        The mapping the measured pipeline compares itself against
        (``StageReport.compare_to_budget``); keys follow
        :data:`~repro.timing.latency.PIPELINE_STAGES` order.
        """
        totals: dict[str, float] = {}
        for key in PIPELINE_STAGES:
            items = [item for item in self.items if item.key == key]
            if items:
                totals[key] = sum(item.time_us for item in items)
        return totals

    def format(self) -> str:
        lines = [f"architecture {self.architecture}:"]
        for item in self.items:
            lines.append(f"  {item.stage:<28}{item.time_us:>10.2f} us")
        lines.append(f"  {'total':<28}{self.total_us:>10.2f} us")
        return "\n".join(lines)


@dataclass(frozen=True)
class ControlSystemModel:
    """Shared parameters of both architectures.

    ``cpu_detection_us_per_mpx`` is the host-side image-processing rate;
    ``fpga_detection_cycles_per_px`` the streaming PL detector rate
    (threshold-per-pixel designs process one pixel per cycle).
    """

    camera: CameraConfig = DEFAULT_CAMERA
    fpga: FpgaConfig = DEFAULT_FPGA_CONFIG
    camera_link: LinkModel = COAXPRESS_12
    host_link: LinkModel = PCIE_GEN3_X8
    onchip_link: LinkModel = AXI_DDR
    pixel_bits: int = 16
    cpu_detection_us_per_mpx: float = 2000.0
    fpga_detection_cycles_per_px: float = 1.0
    host_software_overhead_us: float = 25.0
    awg_setup_us: float = 5.0

    def image_bits(self, size: int) -> int:
        pps = self.camera.pixels_per_site
        return size * size * pps * pps * self.pixel_bits

    def n_pixels(self, size: int) -> int:
        pps = self.camera.pixels_per_site
        return size * size * pps * pps


def architecture_a_budget(
    size: int,
    fpga_analysis_us: float | None = None,
    model: ControlSystemModel = ControlSystemModel(),
) -> LatencyBudget:
    """Host-mediated architecture (Fig. 2a). Scheduling runs on the CPU."""
    if size < 2:
        raise ConfigurationError("size must be >= 2")
    del fpga_analysis_us  # analysis happens on the host in this architecture
    budget = LatencyBudget("a (host-mediated)")
    bits = model.image_bits(size)
    budget.add(
        "camera -> grabber (CXP)",
        model.camera_link.transfer_us(bits),
        key=STAGE_CAMERA,
    )
    budget.add(
        "grabber -> host (PCIe)",
        model.host_link.transfer_us(bits),
        key=STAGE_CAMERA,
    )
    budget.add(
        "host driver/interrupt overhead",
        model.host_software_overhead_us,
        key=STAGE_CAMERA,
    )
    mpx = model.n_pixels(size) / 1e6
    budget.add(
        "host atom detection",
        model.cpu_detection_us_per_mpx * mpx,
        key=STAGE_DETECT,
    )
    budget.add(
        "host QRM scheduling", model_cpu_time_us("qrm", size), key=STAGE_SCHEDULE
    )
    moves_bits = size * size  # movement list, generously one bit per site
    budget.add(
        "host -> AWG FPGA (PCIe)",
        model.host_link.transfer_us(moves_bits),
        key=STAGE_AWG,
    )
    budget.add("AWG setup", model.awg_setup_us, key=STAGE_AWG)
    return budget


def architecture_b_budget(
    size: int,
    fpga_analysis_us: float,
    model: ControlSystemModel = ControlSystemModel(),
) -> LatencyBudget:
    """Fully-on-FPGA architecture (Fig. 2b).

    ``fpga_analysis_us`` is the accelerator's simulated analysis latency
    for this array size (from :class:`~repro.fpga.QrmAccelerator`).
    """
    if size < 2:
        raise ConfigurationError("size must be >= 2")
    budget = LatencyBudget("b (fully on FPGA)")
    bits = model.image_bits(size)
    budget.add(
        "camera -> FPGA (CXP)",
        model.camera_link.transfer_us(bits),
        key=STAGE_CAMERA,
    )
    # The streaming detector consumes pixels as the camera link delivers
    # them, so only the flush of its last image row is exposed latency.
    pps = model.camera.pixels_per_site
    flush_cycles = model.fpga_detection_cycles_per_px * size * pps * pps
    budget.add(
        "on-FPGA detection (flush)",
        flush_cycles / model.fpga.clock_mhz,
        key=STAGE_DETECT,
    )
    budget.add("QRM accelerator analysis", fpga_analysis_us, key=STAGE_SCHEDULE)
    moves_bits = size * size
    budget.add(
        "PL -> AWG (on-chip)",
        model.onchip_link.transfer_us(moves_bits),
        key=STAGE_AWG,
    )
    budget.add("AWG setup", model.awg_setup_us, key=STAGE_AWG)
    return budget


def compare_architectures(
    size: int,
    fpga_analysis_us: float,
    model: ControlSystemModel = ControlSystemModel(),
) -> dict[str, LatencyBudget]:
    """Both budgets side by side."""
    return {
        "a": architecture_a_budget(size, None, model),
        "b": architecture_b_budget(size, fpga_analysis_us, model),
    }
