"""Closed-loop camera -> detect -> schedule -> AWG -> replay pipeline.

The streaming data path of the paper's FPGA architecture, runnable
sequentially (run-to-completion per frame) or pipelined (stages
overlapped across frames with bounded queues).  See
:mod:`repro.pipeline.stages` for the per-frame stage functions and
:mod:`repro.pipeline.engine` for the two drivers.
"""

from repro.pipeline.engine import PIPELINE_MODES, PipelineResult, run_pipeline
from repro.pipeline.stages import (
    CycleRecord,
    FrameState,
    PipelineConfig,
    ShotResult,
    run_shot,
    spawn_shot_streams,
)

__all__ = [
    "PIPELINE_MODES",
    "CycleRecord",
    "FrameState",
    "PipelineConfig",
    "PipelineResult",
    "ShotResult",
    "run_pipeline",
    "run_shot",
    "spawn_shot_streams",
]
