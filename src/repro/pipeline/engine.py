"""Closed-loop pipeline drivers: sequential and stage-pipelined.

Two execution modes over the same stage functions
(:mod:`repro.pipeline.stages`):

* **sequential** — every frame runs camera -> detect -> schedule -> awg
  -> replay to completion before the next frame starts (the paper's
  Fig. 2a software baseline, run-to-completion);
* **pipelined** — one worker thread per stage, bounded queues between
  them, frames overlapped exactly like the paper's streaming FPGA data
  path (Fig. 2b/5): while shot *k* is being scheduled, shot *k+1* is
  already being detected and shot *k+2* imaged.  The replay stage closes
  the loop — a shot needing another repair cycle re-enters the camera
  queue.

Determinism contract: both modes produce **byte-identical**
:class:`~repro.pipeline.stages.CycleRecord` traces for the same
:class:`~repro.pipeline.stages.PipelineConfig`, because every frame's
RNG streams are pre-spawned from the config seed and the stage functions
are pure per frame.  ``tests/test_pipeline.py`` holds the two drivers to
this property; the ``pipeline-smoke`` CI job byte-compares the traces
end to end through the CLI.

Deadlock note: the feedback edge makes the queue graph cyclic, so the
driver bounds the number of *live* shots by the queue capacity (a
semaphore released on shot retirement).  Token count in the ring is then
always <= every queue's capacity and no ``put`` can block forever.
"""

from __future__ import annotations

import hashlib
import json
import queue
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import get_algorithm
from repro.errors import ConfigurationError
from repro.lattice.loading import load_uniform
from repro.pipeline.stages import (
    STAGE_FUNCTIONS,
    FrameState,
    PipelineConfig,
    ShotResult,
    run_shot,
    spawn_shot_streams,
)
from repro.timing.latency import STAGE_SCHEDULE, StageReport

PIPELINE_MODES = ("sequential", "pipelined")


@dataclass
class PipelineResult:
    """Everything one pipeline run produced.

    ``shots`` (ordered by shot index) is the deterministic part;
    ``report`` the measured wall-clock stage latencies of this
    particular run/mode.
    """

    config: PipelineConfig
    mode: str
    shots: list[ShotResult] = field(default_factory=list)
    report: StageReport = field(default_factory=StageReport)

    # -- aggregate metrics over shots -----------------------------------

    @property
    def n_frames(self) -> int:
        return sum(len(shot.records) for shot in self.shots)

    @property
    def converged_fraction(self) -> float:
        done = sum(1 for shot in self.shots if shot.converged)
        return done / len(self.shots) if self.shots else 0.0

    @property
    def mean_final_fill(self) -> float:
        if not self.shots:
            return 0.0
        return sum(shot.final_fill for shot in self.shots) / len(self.shots)

    def modelled_fpga_us(self) -> float | None:
        """Mean cycle-model analysis latency, when ``fpga_timing`` ran."""
        samples = [
            record.fpga_us
            for shot in self.shots
            for record in shot.records
            if record.fpga_us is not None
        ]
        return sum(samples) / len(samples) if samples else None

    # -- deterministic trace --------------------------------------------

    def trace_lines(self) -> list[str]:
        """The run as canonical text, identical across execution modes.

        One line per (shot, cycle): detected occupancy, threshold-free
        schedule fingerprint, and post-replay truth.  This is what the
        CI smoke job byte-compares between modes.
        """
        lines = []
        for shot in self.shots:
            for record in shot.records:
                payload = {
                    "shot": record.shot,
                    "cycle": record.cycle,
                    "occupancy": _grid_text(record.occupancy),
                    "threshold": round(record.threshold, 9),
                    "moves": [_move_tuple(move) for move in record.moves],
                    "truth_after": _grid_text(record.truth_after),
                    "fill_after": round(record.target_fill_after, 12),
                    "lost": record.lost_atoms,
                    "fallback": record.replay_fallback,
                }
                lines.append(json.dumps(payload, sort_keys=True))
        return lines

    def trace_digest(self) -> str:
        digest = hashlib.sha256()
        for line in self.trace_lines():
            digest.update(line.encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    # -- reporting -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "size": self.config.size,
            "algorithm": self.config.algorithm,
            "shots": len(self.shots),
            "cycles": self.config.cycles,
            "frames": self.n_frames,
            "converged_fraction": self.converged_fraction,
            "mean_final_fill": self.mean_final_fill,
            "trace_digest": self.trace_digest(),
            "modelled_fpga_us": self.modelled_fpga_us(),
            "stage_report": self.report.to_dict(),
        }

    def format_summary(self) -> str:
        lines = [
            f"pipeline {self.config.algorithm} "
            f"{self.config.size}x{self.config.size}: "
            f"{len(self.shots)} shot(s), {self.n_frames} frame(s), "
            f"<= {self.config.cycles} cycle(s)/shot, "
            f"{self.converged_fraction:.0%} converged, "
            f"mean final target fill {self.mean_final_fill:.3f}",
            self.report.format(),
        ]
        comparison = self.hardware_comparison()
        if comparison is not None:
            lines.append(comparison)
        return "\n".join(lines)

    def hardware_comparison(self) -> str | None:
        """Measured stages vs the paper's architecture-b hardware budget.

        Available when the run recorded the cycle-model analysis latency
        (``fpga_timing``); the budget's ``schedule`` row is that
        simulated accelerator time, so the table reads as "what this
        software pipeline costs vs what the paper's FPGA would".
        """
        fpga_us = self.modelled_fpga_us()
        if fpga_us is None:
            return None
        from repro.workflow.system import architecture_b_budget

        budget = architecture_b_budget(self.config.size, fpga_us)
        return self.report.compare_to_budget(
            budget.stage_totals(),
            f"architecture {budget.architecture} hardware budget",
        )


def run_pipeline(config: PipelineConfig, mode: str = "sequential") -> PipelineResult:
    """Run the closed loop for every shot of ``config`` in ``mode``."""
    if mode not in PIPELINE_MODES:
        raise ConfigurationError(
            f"unknown pipeline mode {mode!r}; expected one of {PIPELINE_MODES}"
        )
    geometry = config.geometry()
    algorithm = get_algorithm(config.algorithm, geometry)
    start = time.perf_counter()
    if mode == "sequential":
        result = _run_sequential(config, algorithm)
    else:
        result = _run_pipelined(config, algorithm)
    result.report.wall_us = (time.perf_counter() - start) * 1e6
    return result


def _load_shot(config: PipelineConfig, shot: int):
    """(initial truth array, per-cycle seed streams) for one shot."""
    load_seed, cycle_streams = spawn_shot_streams(
        config.master_seed, shot, config.cycles
    )
    truth = load_uniform(
        config.geometry(), config.fill, rng=np.random.default_rng(load_seed)
    )
    return truth, cycle_streams


def _run_sequential(config: PipelineConfig, algorithm) -> PipelineResult:
    result = PipelineResult(
        config=config, mode="sequential", report=StageReport(mode="sequential")
    )
    for shot in range(config.shots):
        truth, cycle_streams = _load_shot(config, shot)
        result.shots.append(
            run_shot(
                shot, truth, cycle_streams, config, algorithm, result.report
            )
        )
    return result


def _run_pipelined(config: PipelineConfig, algorithm) -> PipelineResult:
    """One worker thread per stage, bounded queues, feedback to camera."""
    report = StageReport(mode="pipelined")
    result = PipelineResult(config=config, mode="pipelined", report=report)
    capacity = max(config.queue_depth, 1)
    queues = [queue.Queue(maxsize=capacity) for _ in STAGE_FUNCTIONS]
    done: dict[int, ShotResult] = {}
    done_lock = threading.Lock()
    all_retired = threading.Event()
    live = threading.Semaphore(capacity)
    retired = [0]
    errors: list[BaseException] = []
    sentinel = object()

    def retire(state: FrameState) -> None:
        """Record the shot's final frame and free its in-flight token."""
        with done_lock:
            done[state.shot].records.append(state.record)
            retired[0] += 1
            if retired[0] == config.shots:
                all_retired.set()
        live.release()

    def continuation(state: FrameState) -> FrameState:
        """The next cycle's frame for a not-yet-converged shot."""
        _, cycle_streams = spawn_shot_streams(
            config.master_seed, state.shot, config.cycles
        )
        cycle = state.cycle + 1
        return FrameState(
            shot=state.shot,
            cycle=cycle,
            truth=state.truth,
            camera_rng=np.random.default_rng(cycle_streams[2 * cycle]),
            loss_rng=np.random.default_rng(cycle_streams[2 * cycle + 1]),
        )

    def worker(index: int) -> None:
        key, stage = STAGE_FUNCTIONS[index]
        inbox = queues[index]
        is_replay = index == len(STAGE_FUNCTIONS) - 1
        while True:
            state = inbox.get()
            if state is sentinel:
                return
            try:
                if key == STAGE_SCHEDULE:
                    stage(state, config, algorithm)
                    report.record(key, state.schedule_us)
                else:
                    with report.timed(key):
                        stage(state, config)
            except BaseException as exc:  # pragma: no cover - defensive
                errors.append(exc)
                all_retired.set()
                # Unblock the feeder, which may be parked on the
                # in-flight semaphore; it checks ``errors`` on wake-up.
                for _ in range(config.shots):
                    live.release()
                return
            if state.record is not None and state.record.converged_at_detect:
                # The controller sees a filled target: the shot retires
                # straight out of the detect stage (the later stages
                # would be no-ops for this frame anyway).
                retire(state)
            elif is_replay:
                # Mirror run_shot's loop: only detection convergence or
                # an exhausted cycle budget ends a shot, so both drivers
                # emit identical per-cycle record sequences.
                if state.cycle + 1 < config.cycles:
                    with done_lock:
                        done[state.shot].records.append(state.record)
                    queues[0].put(continuation(state))
                else:
                    retire(state)
            else:
                queues[index + 1].put(state)

    threads = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(len(STAGE_FUNCTIONS))
    ]
    for thread in threads:
        thread.start()
    try:
        for shot in range(config.shots):
            live.acquire()
            if errors:
                break
            truth, cycle_streams = _load_shot(config, shot)
            with done_lock:
                done[shot] = ShotResult(shot=shot)
            queues[0].put(
                FrameState(
                    shot=shot,
                    cycle=0,
                    truth=truth,
                    camera_rng=np.random.default_rng(cycle_streams[0]),
                    loss_rng=np.random.default_rng(cycle_streams[1]),
                )
            )
        all_retired.wait()
    finally:
        # Once every shot retired the queues are empty, so each worker's
        # inbox takes its sentinel directly (no relay through a possibly
        # dead downstream worker on the error path).
        for inbox in queues:
            try:
                inbox.put_nowait(sentinel)
            except queue.Full:  # pragma: no cover - error path only
                pass
        for thread in threads:
            thread.join(timeout=10.0)
    if errors:
        raise errors[0]
    result.shots = [done[shot] for shot in sorted(done)]
    return result


# ---------------------------------------------------------------------------
# Canonical serialisation helpers (trace identity across modes)
# ---------------------------------------------------------------------------


def _grid_text(grid: np.ndarray | None) -> list[str] | None:
    if grid is None:
        return None
    return ["".join("#" if cell else "." for cell in row) for row in grid]


def _move_tuple(move) -> list:
    """A move as plain JSON (direction names, spans, steps)."""
    return [
        move.direction.name,
        int(move.steps),
        [
            [
                shift.direction.name,
                int(shift.line),
                int(shift.span_start),
                int(shift.span_stop),
                int(shift.steps),
            ]
            for shift in move.shifts
        ],
    ]
