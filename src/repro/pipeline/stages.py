"""Per-frame stage functions of the closed-loop data path.

One *frame* is one camera exposure of one shot's live atom array,
flowing through the paper's FPGA data path (Fig. 1/2):

``camera`` (:func:`repro.detection.imaging.render_image`) ->
``detect`` (:func:`repro.detection.detect.detect_occupancy`) ->
``schedule`` (any registered algorithm) ->
``awg`` (:func:`repro.awg.compiler.compile_schedule`) ->
``replay`` (physical execution + stochastic loss via
:mod:`repro.physics.loss`).

The functions here are **pure given their frame state**: every source
of randomness (exposure noise, loss draws) is a pre-spawned per-cycle
generator attached to the :class:`FrameState` before the frame enters
the pipeline.  That is the whole determinism story — the sequential and
the thread-pipelined driver in :mod:`repro.pipeline.engine` call exactly
these functions in dataflow order, so their outputs are byte-identical
no matter how stages interleave across frames.

Multi-cycle operation closes the loop: after ``replay``, a shot whose
detected array was not defect-free re-enters at ``camera`` (re-image the
lossy post-motion array, repair what is missing) until the target is
filled or the cycle budget is exhausted — the campaign's ``--cycles``
axis runs the same code path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.aod.timing import DEFAULT_MOVE_TIMING, MoveTimingModel
from repro.detection.camera import CameraConfig, DEFAULT_CAMERA
from repro.errors import ConfigurationError, MoveError
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry
from repro.lattice.mask import TargetMask
from repro.physics.loss import LossModel
from repro.timing.latency import (
    STAGE_AWG,
    STAGE_CAMERA,
    STAGE_DETECT,
    STAGE_REPLAY,
    STAGE_SCHEDULE,
    StageReport,
)


@dataclass(frozen=True)
class PipelineConfig:
    """One closed-loop pipeline run: geometry, stream shape, models.

    ``shots`` independent atom arrays stream through the loop; each shot
    runs up to ``cycles`` image->detect->schedule->replay cycles (it
    retires early once detection sees a defect-free target).  ``loss``
    makes the replay stage stochastic — without it a converged shot
    stays converged and extra cycles are no-ops.  ``fpga_timing`` also
    runs the cycle-level accelerator model per scheduling frame (QRM
    only) so the stage report can quote modelled hardware analysis time
    next to the measured software time.
    """

    size: int = 12
    target: int | None = None
    fill: float = 0.6
    algorithm: str = "qrm"
    shots: int = 1
    cycles: int = 1
    master_seed: int = 0
    loss: LossModel | None = None
    camera: CameraConfig = DEFAULT_CAMERA
    timing: MoveTimingModel = DEFAULT_MOVE_TIMING
    fpga_timing: bool = False
    queue_depth: int = 4
    mask: "TargetMask | None" = None

    def __post_init__(self) -> None:
        if self.size < 2:
            raise ConfigurationError("size must be >= 2")
        if not 0.0 <= self.fill <= 1.0:
            raise ConfigurationError(f"fill must be in [0, 1], got {self.fill}")
        if self.shots < 1:
            raise ConfigurationError("shots must be >= 1")
        if self.cycles < 1:
            raise ConfigurationError("cycles must be >= 1")
        if self.queue_depth < 1:
            raise ConfigurationError("queue_depth must be >= 1")
        if self.fpga_timing and self.algorithm != "qrm":
            raise ConfigurationError(
                "the FPGA cycle model only implements the 'qrm' algorithm"
            )
        if self.mask is not None and self.target is not None:
            raise ConfigurationError(
                "a pipeline takes either a rectangular 'target' size or "
                "a 'mask', not both"
            )

    def geometry(self) -> ArrayGeometry:
        if self.mask is not None:
            return ArrayGeometry.with_mask(self.size, self.size, self.mask)
        return ArrayGeometry.square(self.size, self.target)


@dataclass
class CycleRecord:
    """Deterministic trace of one closed-loop cycle of one shot.

    Everything here is a pure function of the shot's seed streams —
    wall-clock timings live separately in the run's
    :class:`~repro.timing.latency.StageReport` — so two runs (or two
    execution modes) can be compared byte for byte.
    """

    shot: int
    cycle: int
    occupancy: np.ndarray
    threshold: float
    converged_at_detect: bool
    moves: list = field(default_factory=list)
    n_moves: int = 0
    iterations: int = 0
    analysis_ops: int = 0
    skipped_stale: int = 0
    program_us: float = 0.0
    n_segments: int = 0
    replay_fallback: bool = False
    lost_atoms: int = 0
    truth_after: np.ndarray | None = None
    target_fill_after: float = 0.0
    defect_free_after: bool = False
    fpga_us: float | None = None
    fpga_cycles: int | None = None


@dataclass
class ShotResult:
    """All cycles of one shot, in execution order."""

    shot: int
    records: list[CycleRecord] = field(default_factory=list)

    @property
    def cycles_used(self) -> int:
        """Cycles that actually scheduled moves (a converged detect is free)."""
        return sum(1 for record in self.records if not record.converged_at_detect)

    @property
    def converged(self) -> bool:
        last = self.records[-1]
        return last.converged_at_detect or last.defect_free_after

    @property
    def total_moves(self) -> int:
        return sum(record.n_moves for record in self.records)

    @property
    def final_fill(self) -> float:
        return self.records[-1].target_fill_after


@dataclass
class FrameState:
    """The token that flows through the pipeline, one per (shot, cycle).

    Stages fill it in dataflow order; the per-cycle RNG streams are
    spawned before the frame is injected (see module docstring).
    """

    shot: int
    cycle: int
    truth: AtomArray
    camera_rng: np.random.Generator
    loss_rng: np.random.Generator
    image: np.ndarray | None = None
    detection: object = None
    result: object = None
    program: object = None
    record: CycleRecord | None = None
    schedule_us: float = 0.0


def spawn_shot_streams(
    master_seed: int, shot: int, cycles: int
) -> tuple[np.random.SeedSequence, list[np.random.SeedSequence]]:
    """(load seed, per-cycle [camera, loss, camera, loss, ...] seeds).

    Derivation mirrors the campaign's seeding contract: children of one
    root ``SeedSequence`` via ``spawn_key``, so results never depend on
    how many sibling shots exist or in which order frames execute.
    """
    root = np.random.SeedSequence(master_seed, spawn_key=(shot,))
    load_seed, loop_seed = root.spawn(2)
    return load_seed, loop_seed.spawn(2 * cycles)


def stage_camera(state: FrameState, config: PipelineConfig) -> FrameState:
    """Expose the shot's live array: truth -> noisy electron-count image."""
    from repro.detection.imaging import render_image

    state.image = render_image(state.truth, config.camera, rng=state.camera_rng)
    return state


def stage_detect(state: FrameState, config: PipelineConfig) -> FrameState:
    """Image -> occupancy matrix (thresholded site ROIs)."""
    from repro.detection.detect import detect_occupancy
    from repro.lattice.metrics import is_defect_free, target_fill_fraction

    geometry = state.truth.geometry
    state.detection = detect_occupancy(state.image, geometry, config.camera)
    detected = state.detection.array
    state.record = CycleRecord(
        shot=state.shot,
        cycle=state.cycle,
        occupancy=detected.grid.copy(),
        threshold=state.detection.threshold,
        converged_at_detect=is_defect_free(detected),
    )
    if state.record.converged_at_detect:
        # Nothing to schedule: the controller sees a filled target, so
        # the shot retires with the *believed* state as its outcome.
        state.record.truth_after = state.truth.grid.copy()
        state.record.target_fill_after = target_fill_fraction(state.truth)
        state.record.defect_free_after = is_defect_free(state.truth)
    return state


def stage_schedule(
    state: FrameState, config: PipelineConfig, algorithm
) -> FrameState:
    """Occupancy -> move schedule, via the configured algorithm.

    The scheduling wall time is measured here (rather than by the
    driver) because ``fpga_timing`` piggybacks the cycle-level
    accelerator model on the same frame and that modelled run must not
    count against the measured software stage.
    """
    if state.record.converged_at_detect:
        return state
    start = time.perf_counter()
    state.result = algorithm.schedule(state.detection.array)
    state.schedule_us = (time.perf_counter() - start) * 1e6
    record = state.record
    result = state.result
    record.moves = list(result.schedule)
    record.n_moves = result.n_moves
    record.iterations = result.iterations_used
    record.analysis_ops = result.analysis_ops
    record.skipped_stale = sum(
        stats.n_skipped_stale for stats in result.iterations
    )
    if config.fpga_timing:
        from repro.config import DEFAULT_QRM_PARAMETERS
        from repro.fpga.accelerator import QrmAccelerator

        # Honour the scheduler's parameter preset when it has one, so
        # ablation cells model the hardware they actually scheduled with.
        params = getattr(algorithm, "params", None) or DEFAULT_QRM_PARAMETERS
        accelerator = QrmAccelerator(
            state.detection.array.geometry, params=params
        )
        hw = accelerator.run(state.detection.array).report
        record.fpga_us = hw.time_us
        record.fpga_cycles = hw.total_cycles
    return state


def stage_awg(state: FrameState, config: PipelineConfig) -> FrameState:
    """Move schedule -> AWG tone-waveform program."""
    from repro.awg.compiler import compile_schedule

    if state.record.converged_at_detect:
        return state
    state.program = compile_schedule(state.result.schedule, timing=config.timing)
    state.record.program_us = state.program.total_duration_us
    state.record.n_segments = len(state.program.segments)
    return state


def stage_replay(state: FrameState, config: PipelineConfig) -> FrameState:
    """Physically execute the schedule on the live (truth) array.

    With a loss model the replay is the stochastic
    :func:`~repro.physics.loss.simulate_losses`; without one it is the
    exact executor.  The schedule was computed from the *detected*
    occupancy, so on the rare detection error it may be invalid against
    the truth — that frame falls back to the non-strict executor (which
    skips the offending moves) and is flagged ``replay_fallback``.
    """
    from repro.aod.executor import execute_schedule
    from repro.lattice.metrics import is_defect_free, target_fill_fraction
    from repro.physics.loss import simulate_losses

    record = state.record
    if record.converged_at_detect:
        return state
    schedule = state.result.schedule
    atoms_before = state.truth.n_atoms
    if config.loss is not None:
        try:
            report = simulate_losses(
                state.truth,
                schedule,
                loss=config.loss,
                timing=config.timing,
                rng=state.loss_rng,
            )
            after = report.final_array
        except MoveError:
            after, _ = execute_schedule(
                state.truth, schedule, constraints=None, strict=False
            )
            record.replay_fallback = True
    else:
        try:
            after, _ = execute_schedule(state.truth, schedule, constraints=None)
        except MoveError:
            after, _ = execute_schedule(
                state.truth, schedule, constraints=None, strict=False
            )
            record.replay_fallback = True
    record.lost_atoms = atoms_before - after.n_atoms
    record.truth_after = after.grid.copy()
    record.target_fill_after = target_fill_fraction(after)
    record.defect_free_after = is_defect_free(after)
    state.truth = after
    return state


#: Stage key -> stage function, in data-path order.  ``schedule`` takes
#: the algorithm as an extra argument; the drivers close over it.
STAGE_FUNCTIONS = (
    (STAGE_CAMERA, stage_camera),
    (STAGE_DETECT, stage_detect),
    (STAGE_SCHEDULE, stage_schedule),
    (STAGE_AWG, stage_awg),
    (STAGE_REPLAY, stage_replay),
)


def run_shot(
    shot: int,
    truth: AtomArray,
    cycle_streams: list[np.random.SeedSequence],
    config: PipelineConfig,
    algorithm,
    report: StageReport | None = None,
) -> ShotResult:
    """Run one shot's closed loop to completion, sequentially.

    The building block shared by the sequential pipeline driver and the
    campaign's multi-cycle trials.  ``cycle_streams`` is the flat
    ``[camera, loss, camera, loss, ...]`` seed list from
    :func:`spawn_shot_streams`.
    """
    result = ShotResult(shot=shot)
    for cycle in range(config.cycles):
        state = FrameState(
            shot=shot,
            cycle=cycle,
            truth=truth,
            camera_rng=np.random.default_rng(cycle_streams[2 * cycle]),
            loss_rng=np.random.default_rng(cycle_streams[2 * cycle + 1]),
        )
        for key, stage in STAGE_FUNCTIONS:
            args = (algorithm,) if key == STAGE_SCHEDULE else ()
            if report is None:
                stage(state, config, *args)
            elif key == STAGE_SCHEDULE:
                # The stage measures itself (fpga model excluded).
                stage(state, config, *args)
                report.record(key, state.schedule_us)
            else:
                with report.timed(key):
                    stage(state, config, *args)
            if (
                state.record is not None
                and state.record.converged_at_detect
            ):
                # The remaining stages are no-ops for a converged frame;
                # skip them so stage call counts match the pipelined
                # driver (which retires such frames at detect).
                break
        result.records.append(state.record)
        truth = state.truth
        if state.record.converged_at_detect:
            break
    return result
