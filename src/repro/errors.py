"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch one base class at an API
boundary while tests can assert on the precise subclass.

:func:`format_error` is the shared renderer for exceptions that cross a
process or wire boundary as plain strings (worker error frames, service
error frames): ``"Type: message"`` plus a bounded traceback tail, so a
remote failure stays debuggable without shipping unbounded text.
"""

from __future__ import annotations

import traceback


def format_error(exc: BaseException, tb_limit: int = 20) -> str:
    """Render ``exc`` as ``"Type: message"`` plus a traceback tail.

    ``tb_limit`` bounds the number of traceback lines kept (the *last*
    lines — the frames nearest the failure); earlier lines are elided
    with a marker.  An exception with no traceback renders as just the
    head line.
    """
    head = f"{type(exc).__name__}: {exc}"
    if exc.__traceback__ is None:
        return head
    text = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
    lines = text.rstrip("\n").splitlines()
    if len(lines) > tb_limit:
        elided = len(lines) - tb_limit
        lines = [f"... ({elided} traceback lines elided)"] + lines[-tb_limit:]
    return head + "\n" + "\n".join(lines)


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object was constructed with invalid values."""


class GeometryError(ConfigurationError):
    """An array geometry is inconsistent (odd sizes, target too large...)."""


class UnsupportedGeometryError(GeometryError):
    """An algorithm was asked to schedule a geometry it cannot handle.

    Raised by baseline schedulers whose published algorithm is defined
    only for centred rectangular targets when handed a non-rectangular
    :class:`~repro.lattice.mask.TargetMask`, and routed through
    :func:`repro.baselines.base.resolve_algorithms` so a campaign fails
    fast with the offending algorithm named instead of mid-run.
    """


class LoadingError(ReproError):
    """Stochastic loading was asked to do something impossible."""


class MoveError(ReproError):
    """A single move is malformed or cannot be applied to a grid."""


class ConstraintViolationError(MoveError):
    """A parallel move violates the crossed-AOD hardware constraints."""


class ScheduleValidationError(ReproError):
    """A full schedule failed validation against its initial array."""


class ExecutionError(ReproError):
    """A campaign trial (or its worker transport) failed while running."""


class ServiceError(ExecutionError):
    """A scheduling-service request failed (server error or dead link)."""


class ServiceTimeoutError(ServiceError):
    """A service request exhausted its timeout and retry budget."""


class SimulationError(ReproError):
    """The FPGA cycle-level simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The dataflow simulation stopped making progress before finishing."""


class DetectionError(ReproError):
    """The imaging/detection pipeline could not produce an occupancy map."""


class WaveformError(ReproError):
    """The AWG compiler could not translate a schedule into waveforms."""
