"""Timing models and measurement helpers."""

from repro.timing.latency import (
    LatencyComparison,
    cycles_to_us,
    measure_best_of,
    measure_wall,
    us_to_cycles,
)

__all__ = [
    "LatencyComparison",
    "cycles_to_us",
    "measure_best_of",
    "measure_wall",
    "us_to_cycles",
]
