"""Latency bookkeeping helpers shared by experiments and benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError


def cycles_to_us(cycles: int | float, clock_mhz: float) -> float:
    """Clock cycles to microseconds."""
    if clock_mhz <= 0:
        raise ConfigurationError("clock_mhz must be positive")
    return cycles / clock_mhz


def us_to_cycles(us: float, clock_mhz: float) -> int:
    if clock_mhz <= 0:
        raise ConfigurationError("clock_mhz must be positive")
    return int(round(us * clock_mhz))


def measure_wall(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``fn`` once; returns (result, elapsed seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def measure_best_of(fn: Callable[[], Any], repeats: int = 3) -> tuple[Any, float]:
    """Best-of-N wall time (reduces scheduler noise); returns last result."""
    if repeats < 1:
        raise ConfigurationError("repeats must be >= 1")
    best = float("inf")
    result = None
    for _ in range(repeats):
        result, elapsed = measure_wall(fn)
        best = min(best, elapsed)
    return result, best


@dataclass(frozen=True)
class LatencyComparison:
    """One CPU-vs-FPGA comparison row."""

    size: int
    fpga_us: float
    cpu_model_us: float
    cpu_measured_us: float

    @property
    def speedup_model(self) -> float:
        return self.cpu_model_us / self.fpga_us if self.fpga_us else float("inf")

    @property
    def speedup_measured(self) -> float:
        return (self.cpu_measured_us / self.fpga_us if self.fpga_us else float("inf"))
