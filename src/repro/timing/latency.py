"""Latency bookkeeping helpers shared by experiments and benchmarks.

Besides the cycle/wall conversion helpers, this module owns the
**canonical stage vocabulary** of the closed-loop data path (camera ->
detect -> schedule -> AWG -> replay).  Both sides of every latency
comparison speak it:

* the *measured* side — :class:`StageReport`, filled per frame by the
  streaming pipeline (:mod:`repro.pipeline`) with wall-clock
  microseconds per stage;
* the *modelled* side — the analytic hardware budgets in
  :mod:`repro.workflow.system`, whose :class:`BudgetItem` rows carry the
  same stage keys.

Keeping one vocabulary (and one unit: microseconds) is what makes
``StageReport.compare_to_budget`` a like-for-like table instead of a
string-matching exercise; ``tests/test_timing_workflow.py`` cross-checks
that every budget key is canonical.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.errors import ConfigurationError

#: Canonical closed-loop stage keys, in data-path order.  ``replay``
#: (software schedule replay / physical motion) has no counterpart in
#: the hardware *control* budgets — motion happens after the control
#: loop closes — so budget comparisons cover the first four stages.
STAGE_CAMERA = "camera"
STAGE_DETECT = "detect"
STAGE_SCHEDULE = "schedule"
STAGE_AWG = "awg"
STAGE_REPLAY = "replay"
PIPELINE_STAGES = (
    STAGE_CAMERA,
    STAGE_DETECT,
    STAGE_SCHEDULE,
    STAGE_AWG,
    STAGE_REPLAY,
)

#: Stages with an analytic counterpart in the hardware budgets.
BUDGETED_STAGES = PIPELINE_STAGES[:-1]


def cycles_to_us(cycles: int | float, clock_mhz: float) -> float:
    """Clock cycles to microseconds."""
    if clock_mhz <= 0:
        raise ConfigurationError("clock_mhz must be positive")
    return cycles / clock_mhz


def us_to_cycles(us: float, clock_mhz: float) -> int:
    if clock_mhz <= 0:
        raise ConfigurationError("clock_mhz must be positive")
    return int(round(us * clock_mhz))


def measure_wall(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``fn`` once; returns (result, elapsed seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def measure_best_of(fn: Callable[[], Any], repeats: int = 3) -> tuple[Any, float]:
    """Best-of-N wall time (reduces scheduler noise); returns last result."""
    if repeats < 1:
        raise ConfigurationError("repeats must be >= 1")
    best = float("inf")
    result = None
    for _ in range(repeats):
        result, elapsed = measure_wall(fn)
        best = min(best, elapsed)
    return result, best


@dataclass
class StageTiming:
    """Accumulated wall time of one pipeline stage, in microseconds."""

    stage: str
    n_calls: int = 0
    total_us: float = 0.0
    best_us: float = float("inf")

    def record(self, elapsed_us: float) -> None:
        if elapsed_us < 0:
            raise ConfigurationError("elapsed_us must be >= 0")
        self.n_calls += 1
        self.total_us += elapsed_us
        self.best_us = min(self.best_us, elapsed_us)

    @property
    def mean_us(self) -> float:
        return self.total_us / self.n_calls if self.n_calls else 0.0

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "n_calls": self.n_calls,
            "total_us": self.total_us,
            "mean_us": self.mean_us,
            "best_us": self.best_us if self.n_calls else None,
        }


@dataclass
class StageReport:
    """Structured per-stage latency record of one pipeline run.

    ``wall_us`` is the end-to-end wall time of the whole run; the summed
    per-stage busy time can exceed it in pipelined mode (stages overlap
    across frames), which is exactly what :attr:`overlap` exposes.
    Stage keys come from :data:`PIPELINE_STAGES`; unknown keys raise, so
    the measured report and the analytic budgets cannot drift apart.
    """

    mode: str = "sequential"
    stages: dict[str, StageTiming] = field(default_factory=dict)
    wall_us: float = 0.0

    def record(self, stage: str, elapsed_us: float) -> None:
        if stage not in PIPELINE_STAGES:
            raise ConfigurationError(
                f"unknown pipeline stage {stage!r}; expected one of "
                f"{PIPELINE_STAGES}"
            )
        if stage not in self.stages:
            self.stages[stage] = StageTiming(stage)
        self.stages[stage].record(elapsed_us)

    @contextlib.contextmanager
    def timed(self, stage: str) -> Iterator[None]:
        """Record the wall time of the enclosed block against ``stage``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(stage, (time.perf_counter() - start) * 1e6)

    @property
    def busy_us(self) -> float:
        """Summed per-stage busy time (= wall time when sequential)."""
        return sum(timing.total_us for timing in self.stages.values())

    @property
    def overlap(self) -> float:
        """Busy/wall ratio: > 1 means stages genuinely overlapped."""
        return self.busy_us / self.wall_us if self.wall_us > 0 else 0.0

    def ordered(self) -> list[StageTiming]:
        return [
            self.stages[key] for key in PIPELINE_STAGES if key in self.stages
        ]

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "wall_us": self.wall_us,
            "busy_us": self.busy_us,
            "overlap": self.overlap,
            "stages": [timing.to_dict() for timing in self.ordered()],
        }

    def format(self) -> str:
        lines = [
            f"stage latency ({self.mode} mode, "
            f"wall {self.wall_us / 1e3:.2f} ms, overlap {self.overlap:.2f}x):"
        ]
        for timing in self.ordered():
            lines.append(
                f"  {timing.stage:<10}{timing.mean_us:>12.1f} us/frame"
                f"  x{timing.n_calls:<5d}{timing.total_us / 1e3:>10.2f} ms total"
            )
        return "\n".join(lines)

    def compare_to_budget(
        self, stage_totals: Mapping[str, float], title: str
    ) -> str:
        """Measured-vs-modelled table over the shared stage vocabulary.

        ``stage_totals`` maps canonical stage keys to modelled
        microseconds (see ``LatencyBudget.stage_totals`` in
        :mod:`repro.workflow.system`); only :data:`BUDGETED_STAGES` are
        compared — ``replay`` is physical motion, not control latency.
        """
        lines = [f"measured software vs {title} (us/frame):"]
        for key in BUDGETED_STAGES:
            measured = self.stages.get(key)
            modelled = stage_totals.get(key)
            if measured is None and modelled is None:
                continue
            meas = f"{measured.mean_us:>12.1f}" if measured else " " * 12
            model = f"{modelled:>12.2f}" if modelled is not None else " " * 12
            ratio = (
                f"{measured.mean_us / modelled:>10.0f}x"
                if measured and modelled
                else ""
            )
            lines.append(f"  {key:<10}{meas}{model}{ratio}")
        return "\n".join(lines)


@dataclass(frozen=True)
class LatencyComparison:
    """One CPU-vs-FPGA comparison row."""

    size: int
    fpga_us: float
    cpu_model_us: float
    cpu_measured_us: float

    @property
    def speedup_model(self) -> float:
        return self.cpu_model_us / self.fpga_us if self.fpga_us else float("inf")

    @property
    def speedup_measured(self) -> float:
        return (self.cpu_measured_us / self.fpga_us if self.fpga_us else float("inf"))
