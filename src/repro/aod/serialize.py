"""JSON (de)serialisation of move schedules.

The control software archives every shot's schedule for diagnostics and
replays; this module defines a stable, versioned JSON interchange format
for :class:`~repro.aod.MoveSchedule` with exact round-trip guarantees.
"""

from __future__ import annotations

import json
from typing import Any

from repro.aod.move import LineShift, ParallelMove
from repro.aod.schedule import MoveSchedule
from repro.errors import ScheduleValidationError
from repro.lattice.geometry import ArrayGeometry, Direction

FORMAT_VERSION = 1


def _shift_to_dict(shift: LineShift) -> dict[str, Any]:
    # int() casts guard against numpy integer scalars leaking in from
    # algorithm implementations — JSON refuses to encode them.
    return {
        "dir": shift.direction.value,
        "line": int(shift.line),
        "start": int(shift.span_start),
        "stop": int(shift.span_stop),
        "steps": int(shift.steps),
    }


def _shift_from_dict(data: dict[str, Any]) -> LineShift:
    try:
        return LineShift(
            direction=Direction(data["dir"]),
            line=int(data["line"]),
            span_start=int(data["start"]),
            span_stop=int(data["stop"]),
            steps=int(data.get("steps", 1)),
        )
    except (KeyError, ValueError) as exc:
        raise ScheduleValidationError(f"malformed shift record: {data}") from exc


def schedule_to_dict(schedule: MoveSchedule) -> dict[str, Any]:
    """Schedule as a JSON-serialisable dictionary.

    The geometry block gains a ``"mask"`` row-string list only when the
    geometry carries an explicit mask, so documents for plain
    (mask-free) geometries stay byte-identical to the pre-mask format
    (and remain loadable by old readers).  A mask that happens to be
    rectangular is still recorded: its rectangle may be off-centre or
    odd-sized, which the extents-only encoding cannot represent.
    """
    geometry = schedule.geometry
    geo_dict: dict[str, Any] = {
        "width": geometry.width,
        "height": geometry.height,
        "target_width": geometry.target_width,
        "target_height": geometry.target_height,
    }
    if geometry.mask is not None:
        geo_dict["mask"] = list(geometry.mask.to_rows())
    return {
        "version": FORMAT_VERSION,
        "algorithm": schedule.algorithm,
        "geometry": geo_dict,
        "moves": [
            {
                "tag": move.tag,
                "shifts": [_shift_to_dict(s) for s in move.shifts],
            }
            for move in schedule
        ],
    }


def schedule_from_dict(data: dict[str, Any]) -> MoveSchedule:
    """Inverse of :func:`schedule_to_dict`."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ScheduleValidationError(
            f"unsupported schedule format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        geo = data["geometry"]
        mask = None
        if geo.get("mask") is not None:
            from repro.lattice.mask import TargetMask

            mask = TargetMask.from_rows(list(geo["mask"]))
        geometry = ArrayGeometry(
            width=int(geo["width"]),
            height=int(geo["height"]),
            target_width=int(geo["target_width"]),
            target_height=int(geo["target_height"]),
            mask=mask,
        )
        schedule = MoveSchedule(geometry, algorithm=data.get("algorithm", ""))
        for move_data in data["moves"]:
            shifts = [_shift_from_dict(s) for s in move_data["shifts"]]
            schedule.append(ParallelMove.of(shifts, tag=move_data.get("tag", "")))
    except (KeyError, TypeError) as exc:
        raise ScheduleValidationError("malformed schedule document") from exc
    return schedule


def dumps(schedule: MoveSchedule, indent: int | None = None) -> str:
    """Schedule to a JSON string."""
    return json.dumps(schedule_to_dict(schedule), indent=indent)


def loads(text: str) -> MoveSchedule:
    """Schedule from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScheduleValidationError(f"invalid JSON: {exc}") from exc
    return schedule_from_dict(data)


def save(schedule: MoveSchedule, path) -> None:
    """Write a schedule to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(schedule, indent=2))


def load(path) -> MoveSchedule:
    """Read a schedule from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
