"""Replay of move schedules on occupancy grids (lockstep semantics).

The executor is the single source of truth for what a move *does*: both
the pure-Python scheduler and the FPGA functional model apply moves
through these functions, so their outputs stay bit-identical and the
validator can replay any schedule independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aod.constraints import (
    AodConstraints,
    DEFAULT_CONSTRAINTS,
    Violation,
    check_parallel_move,
)
from repro.aod.move import ParallelMove
from repro.aod.schedule import MoveSchedule
from repro.errors import MoveError
from repro.lattice.array import AtomArray


def apply_parallel_move_reference(grid: np.ndarray, move: ParallelMove) -> int:
    """Site-by-site reference implementation of lockstep move semantics.

    Kept as the oracle for property tests; production code uses the
    vectorised :func:`apply_parallel_move`, which must behave
    identically (including which violations raise).
    """
    height, width = grid.shape
    sources: list[tuple[int, int]] = []
    dests: list[tuple[int, int]] = []
    source_set: set[tuple[int, int]] = set()
    for shift in move.shifts:
        for site in shift.sites():
            if not (0 <= site[0] < height and 0 <= site[1] < width):
                raise MoveError(f"selected site {site} outside grid")
            if grid[site]:
                dest = shift.destination(site)
                if not (0 <= dest[0] < height and 0 <= dest[1] < width):
                    raise MoveError(f"atom at {site} would leave the grid")
                sources.append(site)
                dests.append(dest)
                source_set.add(site)

    landing_seen: set[tuple[int, int]] = set()
    for site, dest in zip(sources, dests):
        if dest in landing_seen:
            raise MoveError(f"two atoms land on {dest}")
        landing_seen.add(dest)
        if grid[dest] and dest not in source_set:
            raise MoveError(
                f"atom from {site} collides with static atom at {dest}"
            )

    for site in sources:
        grid[site] = False
    for dest in dests:
        grid[dest] = True
    return len(sources)


def _plan_line_shift(
    vec: np.ndarray, shift
) -> tuple[np.ndarray, np.ndarray] | None:
    """Validate one line shift against a 1-D occupancy view.

    Returns ``(sources, destinations)`` as index arrays into ``vec``, or
    None when the span holds no atom.  The span is contiguous, so the
    lockstep rules collapse to: every destination falling outside the
    span must be empty.  Raises :class:`~repro.errors.MoveError` without
    mutating anything.
    """
    a, b = shift.span_start, shift.span_stop
    if a < 0 or b > vec.size:
        raise MoveError(f"span [{a}, {b}) outside line of length {vec.size}")
    occupied = np.nonzero(vec[a:b])[0]
    if occupied.size == 0:
        return None
    dr, dc = shift.direction.delta
    k = shift.steps * (dr + dc)  # signed displacement along the line
    src = occupied + a
    dst = src + k
    if dst[0] < 0 or dst[-1] >= vec.size:
        raise MoveError(
            f"line {shift.line}: atoms would leave the grid "
            f"(span [{a}, {b}), steps {shift.steps})"
        )
    outside = dst[(dst < a) | (dst >= b)]
    if outside.size and vec[outside].any():
        raise MoveError(
            f"line {shift.line}: segment collides with a static atom"
        )
    return src, dst


def apply_parallel_move(grid: np.ndarray, move: ParallelMove) -> int:
    """Apply ``move`` to ``grid`` in place; returns atoms displaced.

    Lockstep semantics: all selected atoms lift simultaneously, translate
    by ``steps`` sites, and land simultaneously.  A landing site must be
    empty *after* lift-off, i.e. either previously empty or itself a
    vacated source.  Violations raise :class:`~repro.errors.MoveError`
    and leave the grid untouched (all lines are validated before any is
    mutated; lines of one move are distinct, so they are independent).
    """
    height, width = grid.shape
    horizontal = move.direction.is_horizontal
    planned: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for shift in move.shifts:
        if horizontal:
            if not 0 <= shift.line < height:
                raise MoveError(f"row {shift.line} outside grid")
            vec = grid[shift.line, :]
        else:
            if not 0 <= shift.line < width:
                raise MoveError(f"column {shift.line} outside grid")
            vec = grid[:, shift.line]
        plan = _plan_line_shift(vec, shift)
        if plan is not None:
            planned.append((vec, plan[0], plan[1]))

    moved = 0
    for vec, src, dst in planned:
        vec[src] = False
        vec[dst] = True
        moved += int(src.size)
    return moved


@dataclass
class ExecutionReport:
    """Outcome of replaying a schedule."""

    n_moves: int = 0
    n_atom_displacements: int = 0
    n_empty_moves: int = 0
    n_failed_moves: int = 0
    violations: list[tuple[int, Violation]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.n_failed_moves == 0 and not self.violations


def execute_schedule(
    initial: AtomArray,
    schedule: MoveSchedule,
    constraints: AodConstraints | None = DEFAULT_CONSTRAINTS,
    strict: bool = True,
) -> tuple[AtomArray, ExecutionReport]:
    """Replay ``schedule`` from ``initial``; returns (final array, report).

    With ``strict=True`` the first invalid move raises; with
    ``strict=False`` invalid moves are recorded in the report and
    skipped, which is what the validator uses to diagnose bad schedules.
    Constraint checking is skipped when ``constraints`` is None.
    """
    array = initial.copy()
    report = ExecutionReport()
    for index, move in enumerate(schedule):
        if constraints is not None:
            for violation in check_parallel_move(array.grid, move, constraints):
                report.violations.append((index, violation))
                if strict:
                    raise MoveError(
                        f"move {index} violates constraints: {violation}"
                    )
        try:
            moved = apply_parallel_move(array.grid, move)
        except MoveError:
            if strict:
                raise
            report.n_failed_moves += 1
            continue
        report.n_moves += 1
        report.n_atom_displacements += moved
        if moved == 0:
            report.n_empty_moves += 1
    return array, report
