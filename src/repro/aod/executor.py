"""Replay of move schedules on occupancy grids (lockstep semantics).

The executor is the single source of truth for what a move *does*: both
the pure-Python scheduler and the FPGA functional model apply moves
through these functions, so their outputs stay bit-identical and the
validator can replay any schedule independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aod.constraints import (
    AodConstraints,
    DEFAULT_CONSTRAINTS,
    Violation,
    check_parallel_move,
)
from repro.aod.move import ParallelMove
from repro.aod.schedule import MoveSchedule
from repro.errors import MoveError
from repro.lattice.array import AtomArray


def apply_parallel_move_reference(grid: np.ndarray, move: ParallelMove) -> int:
    """Site-by-site reference implementation of lockstep move semantics.

    Kept as the oracle for property tests; production code uses the
    vectorised :func:`apply_parallel_move`, which must behave
    identically (including which violations raise).
    """
    height, width = grid.shape
    sources: list[tuple[int, int]] = []
    dests: list[tuple[int, int]] = []
    source_set: set[tuple[int, int]] = set()
    for shift in move.shifts:
        for site in shift.sites():
            if not (0 <= site[0] < height and 0 <= site[1] < width):
                raise MoveError(f"selected site {site} outside grid")
            if grid[site]:
                dest = shift.destination(site)
                if not (0 <= dest[0] < height and 0 <= dest[1] < width):
                    raise MoveError(f"atom at {site} would leave the grid")
                sources.append(site)
                dests.append(dest)
                source_set.add(site)

    landing_seen: set[tuple[int, int]] = set()
    for site, dest in zip(sources, dests):
        if dest in landing_seen:
            raise MoveError(f"two atoms land on {dest}")
        landing_seen.add(dest)
        if grid[dest] and dest not in source_set:
            raise MoveError(f"atom from {site} collides with static atom at {dest}")

    for site in sources:
        grid[site] = False
    for dest in dests:
        grid[dest] = True
    return len(sources)


def _plan_line_shift(vec: np.ndarray, shift) -> tuple[np.ndarray, np.ndarray] | None:
    """Validate one line shift against a 1-D occupancy view.

    Returns ``(sources, destinations)`` as index arrays into ``vec``, or
    None when the span holds no atom.  The span is contiguous, so the
    lockstep rules collapse to: every destination falling outside the
    span must be empty.  Raises :class:`~repro.errors.MoveError` without
    mutating anything.
    """
    a, b = shift.span_start, shift.span_stop
    if a < 0 or b > vec.size:
        raise MoveError(f"span [{a}, {b}) outside line of length {vec.size}")
    occupied = np.nonzero(vec[a:b])[0]
    if occupied.size == 0:
        return None
    dr, dc = shift.direction.delta
    k = shift.steps * (dr + dc)  # signed displacement along the line
    src = occupied + a
    dst = src + k
    if dst[0] < 0 or dst[-1] >= vec.size:
        raise MoveError(
            f"line {shift.line}: atoms would leave the grid "
            f"(span [{a}, {b}), steps {shift.steps})"
        )
    outside = dst[(dst < a) | (dst >= b)]
    if outside.size and vec[outside].any():
        raise MoveError(f"line {shift.line}: segment collides with a static atom")
    return src, dst


def apply_parallel_move(grid: np.ndarray, move: ParallelMove) -> int:
    """Apply ``move`` to ``grid`` in place; returns atoms displaced.

    Lockstep semantics: all selected atoms lift simultaneously, translate
    by ``steps`` sites, and land simultaneously.  A landing site must be
    empty *after* lift-off, i.e. either previously empty or itself a
    vacated source.  Violations raise :class:`~repro.errors.MoveError`
    and leave the grid untouched (all lines are validated before any is
    mutated; lines of one move are distinct, so they are independent).
    """
    height, width = grid.shape
    horizontal = move.direction.is_horizontal
    planned: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for shift in move.shifts:
        if horizontal:
            if not 0 <= shift.line < height:
                raise MoveError(f"row {shift.line} outside grid")
            vec = grid[shift.line, :]
        else:
            if not 0 <= shift.line < width:
                raise MoveError(f"column {shift.line} outside grid")
            vec = grid[:, shift.line]
        plan = _plan_line_shift(vec, shift)
        if plan is not None:
            planned.append((vec, plan[0], plan[1]))

    moved = 0
    for vec, src, dst in planned:
        vec[src] = False
        vec[dst] = True
        moved += int(src.size)
    return moved


#: Below this many shifts the flat-array setup of the batched applier
#: costs more than the per-shift loop it replaces.
_BATCH_MIN_SHIFTS = 4


def apply_parallel_move_batch(grid: np.ndarray, move: ParallelMove) -> int:
    """Apply ``move`` to ``grid`` in place, vectorised across its shifts.

    Semantically identical to :func:`apply_parallel_move` (which is
    itself property-tested against the site-by-site reference): the
    lines of one move are distinct, so every shift can be planned from
    one flat gather over the concatenated spans and scattered back in
    two fancy-indexed writes.  Schedule replay and validation call this
    — a wide QRM round touches dozens of lines per move, and the
    per-shift Python loop dominates replay time otherwise.

    Any detected violation delegates to :func:`apply_parallel_move` on
    the still-untouched grid, so the raised :class:`MoveError` (message,
    offending shift) is exactly the per-shift path's.
    """
    shifts = move.shifts
    if len(shifts) < _BATCH_MIN_SHIFTS or any(
        s.steps != move.steps or s.direction is not move.direction for s in shifts
    ):
        # Small moves, and trusted bundles that violated the uniform
        # direction/steps contract, keep the per-shift semantics (which
        # honour each shift's own fields) rather than silently applying
        # the move-level displacement to every line.
        return apply_parallel_move(grid, move)
    height, width = grid.shape
    horizontal = move.direction.is_horizontal
    n_lines = height if horizontal else width
    size = width if horizontal else height

    lines = np.fromiter((s.line for s in shifts), dtype=np.intp, count=len(shifts))
    starts = np.fromiter(
        (s.span_start for s in shifts), dtype=np.intp, count=len(shifts)
    )
    stops = np.fromiter((s.span_stop for s in shifts), dtype=np.intp, count=len(shifts))
    lengths = stops - starts
    if (
        lines.min() < 0
        or lines.max() >= n_lines
        or starts.min() < 0
        or stops.max() > size
        or lengths.min() <= 0
    ):
        return apply_parallel_move(grid, move)

    dr, dc = move.direction.delta
    k = move.steps * (dr + dc)
    seg_start = np.zeros(lines.size, dtype=np.intp)
    np.cumsum(lengths[:-1], out=seg_start[1:])
    ramp = np.arange(int(lengths.sum())) - np.repeat(seg_start, lengths)
    start_rep = np.repeat(starts, lengths)
    stop_rep = np.repeat(stops, lengths)
    pos = start_rep + ramp
    line_rep = np.repeat(lines, lengths)
    occupied = grid[line_rep, pos] if horizontal else grid[pos, line_rep]
    src = pos[occupied]
    if not src.size:
        return 0
    src_lines = line_rep[occupied]
    dst = src + k
    if dst.min() < 0 or dst.max() >= size:
        return apply_parallel_move(grid, move)
    # A destination outside its own (contiguous) span must be empty.
    outside = (dst < start_rep[occupied]) | (dst >= stop_rep[occupied])
    if outside.any():
        landing = (
            grid[src_lines[outside], dst[outside]]
            if horizontal
            else grid[dst[outside], src_lines[outside]]
        )
        if landing.any():
            return apply_parallel_move(grid, move)

    if horizontal:
        grid[src_lines, src] = False
        grid[src_lines, dst] = True
    else:
        grid[src, src_lines] = False
        grid[dst, src_lines] = True
    return int(src.size)


@dataclass
class ExecutionReport:
    """Outcome of replaying a schedule."""

    n_moves: int = 0
    n_atom_displacements: int = 0
    n_empty_moves: int = 0
    n_failed_moves: int = 0
    violations: list[tuple[int, Violation]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.n_failed_moves == 0 and not self.violations


def execute_schedule(
    initial: AtomArray,
    schedule: MoveSchedule,
    constraints: AodConstraints | None = DEFAULT_CONSTRAINTS,
    strict: bool = True,
) -> tuple[AtomArray, ExecutionReport]:
    """Replay ``schedule`` from ``initial``; returns (final array, report).

    With ``strict=True`` the first invalid move raises; with
    ``strict=False`` invalid moves are recorded in the report and
    skipped, which is what the validator uses to diagnose bad schedules.
    Constraint checking is skipped when ``constraints`` is None.

    Moves are applied through :func:`apply_parallel_move_batch`, which
    plans every shift of one move with flat array arithmetic — replaying
    the wide parallel moves the vectorised schedulers emit would pay a
    per-shift Python loop otherwise.
    """
    array = initial.copy()
    report = ExecutionReport()
    for index, move in enumerate(schedule):
        if constraints is not None:
            for violation in check_parallel_move(array.grid, move, constraints):
                report.violations.append((index, violation))
                if strict:
                    raise MoveError(f"move {index} violates constraints: {violation}")
        try:
            moved = apply_parallel_move_batch(array.grid, move)
        except MoveError:
            if strict:
                raise
            report.n_failed_moves += 1
            continue
        report.n_moves += 1
        report.n_atom_displacements += moved
        if moved == 0:
            report.n_empty_moves += 1
    return array, report
