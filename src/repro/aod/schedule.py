"""Ordered move schedules — the output artefact of every algorithm."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator

from repro.aod.move import ParallelMove
from repro.lattice.geometry import ArrayGeometry, Direction


@dataclass
class MoveSchedule:
    """A sequence of parallel moves produced by a rearrangement algorithm.

    The schedule is ordered: move ``i`` must complete before move
    ``i + 1`` starts (the AWG plays them back to back).  The schedule is
    pure data — replaying it against an initial array is the executor's
    job, validating it the validator's.
    """

    geometry: ArrayGeometry
    algorithm: str = ""
    moves: list[ParallelMove] = field(default_factory=list)

    def append(self, move: ParallelMove) -> None:
        self.moves.append(move)

    def extend(self, moves: list[ParallelMove]) -> None:
        self.moves.extend(moves)

    def __iter__(self) -> Iterator[ParallelMove]:
        return iter(self.moves)

    def __len__(self) -> int:
        return len(self.moves)

    def __getitem__(self, index: int) -> ParallelMove:
        return self.moves[index]

    # -- intrinsic statistics ---------------------------------------------

    @property
    def n_moves(self) -> int:
        return len(self.moves)

    @property
    def n_line_shifts(self) -> int:
        return sum(len(move) for move in self.moves)

    @property
    def total_steps(self) -> int:
        """Sum over moves of step count (proportional to ramp time)."""
        return sum(move.steps for move in self.moves)

    def direction_histogram(self) -> dict[Direction, int]:
        counts: Counter[Direction] = Counter(move.direction for move in self.moves)
        return {d: counts.get(d, 0) for d in Direction}

    def max_line_tones(self) -> int:
        return max((len(move.selected_lines()) for move in self.moves), default=0)

    def max_cross_tones(self) -> int:
        return max((len(move.selected_cross()) for move in self.moves), default=0)

    def summary(self) -> str:
        hist = self.direction_histogram()
        directions = ", ".join(f"{d.value}:{n}" for d, n in hist.items() if n)
        return (
            f"{self.algorithm or 'schedule'}: {self.n_moves} parallel moves, "
            f"{self.n_line_shifts} line shifts, "
            f"max tones {self.max_line_tones()}x{self.max_cross_tones()}, "
            f"directions {{{directions or 'none'}}}"
        )
