"""Crossed-AOD hardware constraint checks for parallel moves.

Selecting rows ``R`` and columns ``C`` creates a trap at *every* crossing
in ``R x C`` (paper Sec. II-B).  A parallel move is only safe when each
unintended crossing is empty — otherwise a bystander atom is picked up
and dragged along.  This module turns that rule (plus collision and
bounds rules) into an explicit checker shared by the executor, the
validator and the schedulers' unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aod.move import ParallelMove

#: Violation codes emitted by :func:`check_parallel_move`.
OUT_OF_BOUNDS = "out-of-bounds"
LEAD_COLLISION = "leading-collision"
CROSS_PICKUP = "cross-product-pickup"
TONE_BUDGET = "tone-budget"
EMPTY_MOVE = "empty-move"


@dataclass(frozen=True)
class AodConstraints:
    """Hardware limits of the 2-D AOD tweezer system.

    Attributes
    ----------
    max_line_tones / max_cross_tones:
        Maximum number of simultaneous RF tones on the line axis (rows
        for a horizontal move) and the cross axis.  ``None`` = unlimited,
        matching the paper which never hits a tone budget.
    enforce_cross_product:
        Check unintended AOD-grid crossings for bystander pickup.
    forbid_empty_moves:
        Flag moves that displace zero atoms ("empty shifts are removed
        from the final schedule" — paper Sec. IV-C).
    """

    max_line_tones: int | None = None
    max_cross_tones: int | None = None
    enforce_cross_product: bool = True
    forbid_empty_moves: bool = False


DEFAULT_CONSTRAINTS = AodConstraints()


@dataclass(frozen=True)
class Violation:
    """One constraint violation for one parallel move."""

    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.message}"


def check_parallel_move(
    grid: np.ndarray,
    move: ParallelMove,
    constraints: AodConstraints = DEFAULT_CONSTRAINTS,
) -> list[Violation]:
    """Check one move against ``grid`` (pre-move state). Returns violations."""
    violations: list[Violation] = []
    height, width = grid.shape

    def in_bounds(site: tuple[int, int]) -> bool:
        return 0 <= site[0] < height and 0 <= site[1] < width

    intended: set[tuple[int, int]] = set()
    moved_atoms = 0
    for shift in move.shifts:
        sites = shift.sites()
        intended.update(sites)
        for site in sites:
            if not in_bounds(site):
                violations.append(
                    Violation(OUT_OF_BOUNDS, f"selected site {site} outside grid")
                )
                return violations
            dest = shift.destination(site)
            if not in_bounds(dest):
                violations.append(
                    Violation(
                        OUT_OF_BOUNDS,
                        f"destination {dest} of site {site} outside grid",
                    )
                )
                return violations
            if grid[site]:
                moved_atoms += 1
        span_has_atom = any(grid[s] for s in sites)
        for lead in shift.leading_sites():
            if not in_bounds(lead):
                violations.append(
                    Violation(
                        OUT_OF_BOUNDS,
                        f"leading site {lead} of line {shift.line} outside grid",
                    )
                )
                return violations
            if span_has_atom and grid[lead]:
                violations.append(
                    Violation(
                        LEAD_COLLISION,
                        f"line {shift.line}: atom at {lead} blocks the "
                        f"advancing segment",
                    )
                )

    if constraints.enforce_cross_product:
        for site in move.cross_product_sites():
            if site in intended:
                continue
            if in_bounds(site) and grid[site]:
                violations.append(
                    Violation(
                        CROSS_PICKUP,
                        f"unintended AOD crossing at occupied site {site}",
                    )
                )

    n_lines = len(move.selected_lines())
    n_cross = len(move.selected_cross())
    if constraints.max_line_tones is not None and n_lines > constraints.max_line_tones:
        violations.append(
            Violation(
                TONE_BUDGET,
                f"{n_lines} line tones exceed budget {constraints.max_line_tones}",
            )
        )
    if (
        constraints.max_cross_tones is not None
        and n_cross > constraints.max_cross_tones
    ):
        violations.append(
            Violation(
                TONE_BUDGET,
                f"{n_cross} cross tones exceed budget {constraints.max_cross_tones}",
            )
        )

    if constraints.forbid_empty_moves and moved_atoms == 0:
        violations.append(Violation(EMPTY_MOVE, "move displaces zero atoms"))

    return violations


def is_move_safe(
    grid: np.ndarray,
    move: ParallelMove,
    constraints: AodConstraints = DEFAULT_CONSTRAINTS,
) -> bool:
    """Convenience wrapper: True when :func:`check_parallel_move` is clean."""
    return not check_parallel_move(grid, move, constraints)
