"""Physical motion-time model for executed schedules.

The paper accelerates the *analysis* step (computing the schedule), but a
full control-loop budget also needs the time the atoms spend moving:
tweezer pick-up, frequency-ramped transport, and hand-off back to the
static trap.  The defaults below follow the orders of magnitude quoted in
the multi-tweezer literature (hundreds of microseconds per elementary
move) — they make the point the paper's introduction makes: moving atoms
is slow, so the analysis must not add to it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aod.move import ParallelMove
from repro.aod.schedule import MoveSchedule
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MoveTimingModel:
    """Per-move physical timing parameters (microseconds).

    Attributes
    ----------
    pickup_us / drop_us:
        Amplitude ramp to transfer atoms between static (SLM) traps and
        the mobile AOD tweezers.
    transfer_us_per_site:
        Frequency-ramp time to translate the tweezer grid by one lattice
        site.
    settle_us:
        Dead time between consecutive parallel moves.
    """

    pickup_us: float = 300.0
    drop_us: float = 300.0
    transfer_us_per_site: float = 50.0
    settle_us: float = 20.0

    def __post_init__(self) -> None:
        for name in ("pickup_us", "drop_us", "transfer_us_per_site", "settle_us"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")

    def move_duration_us(self, move: ParallelMove) -> float:
        """Duration of one parallel move (all lines ramp together)."""
        return (self.pickup_us + move.steps * self.transfer_us_per_site + self.drop_us)

    def schedule_motion_us(self, schedule: MoveSchedule) -> float:
        """Total wall time for the atoms to execute ``schedule``."""
        if not len(schedule):
            return 0.0
        total = sum(self.move_duration_us(move) for move in schedule)
        total += self.settle_us * (len(schedule) - 1)
        return total


DEFAULT_MOVE_TIMING = MoveTimingModel()
