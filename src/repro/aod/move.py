"""Move primitives under the crossed-AOD tweezer model.

The paper's 2-D AOD generates a *grid* of movable tweezers: the control
system selects a set of rows and a set of columns, a trap appears at every
(row, column) crossing, and all trapped atoms then move in lockstep — the
same direction and the same step size for everyone (paper Sec. II-B).

The rearrangement algorithms in this library emit two shapes of motion,
both expressible as a :class:`LineShift`:

* *suffix shifts* — every site of a row (or column) segment moves one
  step toward the array centre, closing a hole (the QRM/typical kernel);
* *single-atom transports* — one site moves ``steps`` sites along a line
  (the MTA1 baseline and the repair stage).

A :class:`ParallelMove` bundles line shifts that execute simultaneously,
one per selected line, all sharing direction and step count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MoveError
from repro.lattice.geometry import Direction


@dataclass(frozen=True)
class LineShift:
    """A segment of one line moving ``steps`` sites along ``direction``.

    ``line`` is the row index for horizontal moves and the column index
    for vertical moves.  ``span_start``/``span_stop`` delimit the moved
    segment along the *other* axis, half-open ``[span_start, span_stop)``,
    always in increasing-index order regardless of the move direction.
    Every trap site in the span is selected — occupied or not; empty
    selected traps simply carry no atom.
    """

    direction: Direction
    line: int
    span_start: int
    span_stop: int
    steps: int = 1

    def __post_init__(self) -> None:
        if self.line < 0:
            raise MoveError(f"line index must be >= 0, got {self.line}")
        if self.span_start < 0 or self.span_stop <= self.span_start:
            raise MoveError(f"invalid span [{self.span_start}, {self.span_stop})")
        if self.steps < 1:
            raise MoveError(f"steps must be >= 1, got {self.steps}")

    @classmethod
    def trusted(
        cls,
        direction: Direction,
        line: int,
        span_start: int,
        span_stop: int,
        steps: int = 1,
    ) -> "LineShift":
        """Build a shift without ``__post_init__`` validation.

        For bulk producers (the vectorised QRM pass) whose spans are
        valid by construction and property-tested against the validating
        reference path; everyone else should use the normal constructor.
        """
        shift = object.__new__(cls)
        fields = shift.__dict__
        fields["direction"] = direction
        fields["line"] = line
        fields["span_start"] = span_start
        fields["span_stop"] = span_stop
        fields["steps"] = steps
        return shift

    @property
    def span_length(self) -> int:
        return self.span_stop - self.span_start

    def sites(self) -> list[tuple[int, int]]:
        """Selected trap sites ``(row, col)`` of this shift."""
        if self.direction.is_horizontal:
            return [(self.line, c) for c in range(self.span_start, self.span_stop)]
        return [(r, self.line) for r in range(self.span_start, self.span_stop)]

    def destination(self, site: tuple[int, int]) -> tuple[int, int]:
        """Where an atom at ``site`` ends up after this shift."""
        dr, dc = self.direction.delta
        return site[0] + dr * self.steps, site[1] + dc * self.steps

    def leading_sites(self) -> list[tuple[int, int]]:
        """The ``steps`` sites the segment advances into.

        These must hold no (unselected) atom or the move collides.
        """
        dr, dc = self.direction.delta
        if dr + dc > 0:  # SOUTH or EAST: advancing toward larger indices
            lead = range(self.span_stop, self.span_stop + self.steps)
        else:  # NORTH or WEST: advancing toward smaller indices
            lead = range(self.span_start - self.steps, self.span_start)
        if self.direction.is_horizontal:
            return [(self.line, c) for c in lead]
        return [(r, self.line) for r in lead]

    def vacated_sites(self) -> list[tuple[int, int]]:
        """Sites guaranteed empty after the shift (the trailing edge)."""
        dr, dc = self.direction.delta
        if dr + dc > 0:
            trail = range(
                self.span_start, self.span_start + min(self.steps, self.span_length)
            )
        else:
            trail = range(
                max(self.span_start, self.span_stop - self.steps), self.span_stop
            )
        if self.direction.is_horizontal:
            return [(self.line, c) for c in trail]
        return [(r, self.line) for r in trail]


@dataclass(frozen=True)
class ParallelMove:
    """Simultaneous line shifts sharing direction and step size.

    This is one physical AOD move: the union of the shifts' lines and
    spans defines the selected row/column tone sets.  Construction
    enforces the lockstep rules (uniform direction and step count, at
    most one shift per line); grid-dependent safety (collisions,
    cross-product pickup) is checked by :mod:`repro.aod.constraints`.
    """

    direction: Direction
    steps: int
    shifts: tuple[LineShift, ...]
    tag: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.shifts:
            raise MoveError("a ParallelMove needs at least one LineShift")
        lines_seen = set()
        for shift in self.shifts:
            if shift.direction is not self.direction:
                raise MoveError(
                    f"shift direction {shift.direction} differs from move "
                    f"direction {self.direction}"
                )
            if shift.steps != self.steps:
                raise MoveError(
                    f"shift steps {shift.steps} differ from move steps "
                    f"{self.steps}"
                )
            if shift.line in lines_seen:
                raise MoveError(f"two shifts target the same line {shift.line}")
            lines_seen.add(shift.line)

    @classmethod
    def trusted(
        cls,
        direction: Direction,
        steps: int,
        shifts: tuple[LineShift, ...],
        tag: str = "",
    ) -> "ParallelMove":
        """Bundle shifts without the lockstep re-validation.

        Counterpart of :meth:`LineShift.trusted` for bulk producers that
        guarantee uniform direction/steps and distinct lines upfront.
        """
        move = object.__new__(cls)
        fields = move.__dict__
        fields["direction"] = direction
        fields["steps"] = steps
        fields["shifts"] = shifts
        fields["tag"] = tag
        return move

    @classmethod
    def of(cls, shifts: list[LineShift], tag: str = "") -> "ParallelMove":
        """Bundle pre-validated shifts, inferring direction and steps."""
        if not shifts:
            raise MoveError("cannot build a ParallelMove from zero shifts")
        return cls(
            direction=shifts[0].direction,
            steps=shifts[0].steps,
            shifts=tuple(shifts),
            tag=tag,
        )

    @property
    def n_lines(self) -> int:
        return len(self.shifts)

    @property
    def is_horizontal(self) -> bool:
        return self.direction.is_horizontal

    def selected_lines(self) -> list[int]:
        """Sorted tone indices on the line axis (rows if horizontal)."""
        return sorted(shift.line for shift in self.shifts)

    def selected_cross(self) -> list[int]:
        """Sorted tone indices on the span axis (cols if horizontal)."""
        cross: set[int] = set()
        for shift in self.shifts:
            cross.update(range(shift.span_start, shift.span_stop))
        return sorted(cross)

    def sites(self) -> list[tuple[int, int]]:
        """All intended trap sites across the shifts."""
        out: list[tuple[int, int]] = []
        for shift in self.shifts:
            out.extend(shift.sites())
        return out

    def cross_product_sites(self) -> list[tuple[int, int]]:
        """Every site of selected-lines x selected-cross (the AOD grid).

        Includes the unintended crossings that the constraint checker
        must prove harmless.
        """
        lines = self.selected_lines()
        cross = self.selected_cross()
        if self.is_horizontal:
            return [(r, c) for r in lines for c in cross]
        return [(r, c) for c in lines for r in cross]

    def __len__(self) -> int:
        return len(self.shifts)
