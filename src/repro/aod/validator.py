"""Independent schedule validation.

Every benchmark and integration test funnels schedules through
:func:`validate_schedule`, which replays the moves and checks the
properties the physics demands:

* every move respects the crossed-AOD constraints at its execution time;
* no collisions, no atoms pushed off the grid;
* atom count conserved end to end;
* the final state is reported against the target region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aod.constraints import AodConstraints, DEFAULT_CONSTRAINTS, Violation
from repro.aod.executor import execute_schedule
from repro.aod.schedule import MoveSchedule
from repro.errors import ScheduleValidationError
from repro.lattice.array import AtomArray
from repro.lattice.metrics import defect_count, target_fill_fraction


@dataclass(frozen=True)
class ValidationReport:
    """Result of replaying a schedule against its initial array."""

    algorithm: str
    n_moves: int
    n_atom_displacements: int
    initial_atoms: int
    final_atoms: int
    atoms_conserved: bool
    violations: tuple[tuple[int, Violation], ...]
    initial_defects: int
    final_defects: int
    final_target_fill: float
    final_array: AtomArray = field(compare=False)

    @property
    def ok(self) -> bool:
        return self.atoms_conserved and not self.violations

    @property
    def defect_free(self) -> bool:
        return self.final_defects == 0

    def format(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violations"
        return (
            f"{self.algorithm}: {self.n_moves} moves, "
            f"{self.n_atom_displacements} atom displacements, "
            f"atoms {self.initial_atoms}->{self.final_atoms}, "
            f"defects {self.initial_defects}->{self.final_defects} "
            f"(target fill {self.final_target_fill:.1%}) [{status}]"
        )


def validate_schedule(
    initial: AtomArray,
    schedule: MoveSchedule,
    constraints: AodConstraints = DEFAULT_CONSTRAINTS,
) -> ValidationReport:
    """Replay ``schedule`` and build a :class:`ValidationReport`."""
    final, report = execute_schedule(
        initial, schedule, constraints=constraints, strict=False
    )
    return ValidationReport(
        algorithm=schedule.algorithm,
        n_moves=report.n_moves,
        n_atom_displacements=report.n_atom_displacements,
        initial_atoms=initial.n_atoms,
        final_atoms=final.n_atoms,
        atoms_conserved=initial.n_atoms == final.n_atoms,
        violations=tuple(report.violations),
        initial_defects=defect_count(initial),
        final_defects=defect_count(final),
        final_target_fill=target_fill_fraction(final),
        final_array=final,
    )


def require_valid(
    initial: AtomArray,
    schedule: MoveSchedule,
    constraints: AodConstraints = DEFAULT_CONSTRAINTS,
) -> ValidationReport:
    """Validate and raise :class:`ScheduleValidationError` when not ok."""
    report = validate_schedule(initial, schedule, constraints)
    if not report.ok:
        first = report.violations[0] if report.violations else None
        detail = f"; first violation: move {first[0]}: {first[1]}" if first else ""
        raise ScheduleValidationError(
            f"schedule '{schedule.algorithm}' failed validation "
            f"(conserved={report.atoms_conserved}, "
            f"{len(report.violations)} violations){detail}"
        )
    return report
