"""Crossed-AOD move model: primitives, constraints, execution, timing."""

from repro.aod.constraints import (
    AodConstraints,
    CROSS_PICKUP,
    DEFAULT_CONSTRAINTS,
    EMPTY_MOVE,
    LEAD_COLLISION,
    OUT_OF_BOUNDS,
    TONE_BUDGET,
    Violation,
    check_parallel_move,
    is_move_safe,
)
from repro.aod.executor import (
    ExecutionReport,
    apply_parallel_move,
    execute_schedule,
)
from repro.aod.move import LineShift, ParallelMove
from repro.aod.schedule import MoveSchedule
from repro.aod.serialize import (
    load as load_schedule,
    loads as schedule_from_json,
    dumps as schedule_to_json,
    save as save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.aod.timing import DEFAULT_MOVE_TIMING, MoveTimingModel
from repro.aod.validator import ValidationReport, require_valid, validate_schedule

__all__ = [
    "AodConstraints",
    "CROSS_PICKUP",
    "DEFAULT_CONSTRAINTS",
    "DEFAULT_MOVE_TIMING",
    "EMPTY_MOVE",
    "ExecutionReport",
    "LEAD_COLLISION",
    "LineShift",
    "MoveSchedule",
    "MoveTimingModel",
    "OUT_OF_BOUNDS",
    "ParallelMove",
    "TONE_BUDGET",
    "ValidationReport",
    "Violation",
    "apply_parallel_move",
    "check_parallel_move",
    "execute_schedule",
    "is_move_safe",
    "load_schedule",
    "require_valid",
    "save_schedule",
    "schedule_from_dict",
    "schedule_from_json",
    "schedule_to_dict",
    "schedule_to_json",
    "validate_schedule",
]
