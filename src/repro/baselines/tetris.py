"""Tetris baseline — row-by-row assembly with maximum parallelism
(Wang et al., Phys. Rev. Applied 19, 054032, 2023).

Wang et al. assemble the target like falling Tetris rows: target rows
are completed one at a time from the centre outward; each row first
compresses its own atoms horizontally into the target columns, then
pulls replacements for the remaining defects vertically from the
reservoir rows outboard of it, batching every simultaneous-compatible
pull into one multi-tweezer move ("maximum parallelism").  Its analysis
walks the occupancy matrix per target row, which the paper measures at
roughly 20x the QRM-CPU analysis time.

Reimplementation notes (the original runs on an FPGA's ARM core, no
source available):

* horizontal compression uses one-step suffix shifts, identical physics
  to the typical procedure, restricted to the row being assembled;
* vertical pulls are ``steps = k`` single-site transports; pulls that
  share the same source row (same ``k``) are merged into one parallel
  move, which is the cross-product-safe maximal merge;
* rows that cannot be completed (exhausted reservoir above them) are
  left defective and counted, as in the original when loading is unlucky.

Two implementations share these semantics:
:class:`TetrisSchedulerReference` is the per-site re-scanning state
machine kept as the behavioural oracle, and :class:`TetrisScheduler` is
the production path, which plans each row's full compression sequence
from one :func:`~repro.core.scan.scan_line` call (the re-scanned
innermost hole after ``k`` executed shifts is the ``k``-th scanned hole
displaced by ``k`` — the same suffix-shift identity the QRM pass drains
with) and each row's pulls from one column-batched ``argmax``.  The two
are property-tested to emit bit-identical schedules
(``tests/test_baseline_equivalence.py``).
"""

from __future__ import annotations

import numpy as np

from repro.aod.executor import apply_parallel_move
from repro.aod.move import LineShift, ParallelMove
from repro.aod.schedule import MoveSchedule
from repro.core.result import RearrangementResult, timed_schedule
from repro.core.scan import scan_line
from repro.errors import UnsupportedGeometryError
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry, Direction


class TetrisScheduler:
    """Centre-out row-by-row target assembly (vectorised planner)."""

    name = "tetris"

    def __init__(self, geometry: ArrayGeometry):
        if not geometry.is_rect_target:
            raise UnsupportedGeometryError(
                "tetris assembles row-by-row rectangles; it does not "
                "support non-rectangular target masks (use qrm-repair)"
            )
        self.geometry = geometry

    # -- helpers -----------------------------------------------------------

    def _compress_row(self, array: AtomArray, schedule: MoveSchedule, row: int) -> int:
        """Fully compact ``row`` toward the centre columns; returns ops.

        One :func:`scan_line` per half replaces the reference's re-scan
        after every shift: the hole scanned at position ``h_k`` is
        executed as the row's ``k``-th command at ``h_k - k``, exactly
        the identity the reference's innermost-hole search converges to.
        """
        grid = array.grid
        width = self.geometry.width
        half = width // 2
        line = grid[row]

        # West half in centre-first orientation (local 0 = column half-1).
        west = scan_line(line[:half][::-1])
        # East half is already centre-first (local 0 = column half).
        east = scan_line(line[half:])
        rounds = np.arange(max(west.n_commands, east.n_commands))
        west_holes = half - 1 - (west.holes - rounds[: west.n_commands])
        east_holes = half + (east.holes - rounds[: east.n_commands])

        # Spans are valid by construction (every executed hole still has
        # an atom outboard), so the trusted bulk constructors apply.
        tag = f"tetris-row{row}"
        west_list = west_holes.tolist()
        east_list = east_holes.tolist()
        for k in range(rounds.size):
            if k < len(west_list):
                shift = LineShift.trusted(
                    Direction.EAST,
                    row,
                    span_start=0,
                    span_stop=west_list[k],
                )
                schedule.append(
                    ParallelMove.trusted(Direction.EAST, 1, (shift,), tag=tag)
                )
            if k < len(east_list):
                shift = LineShift.trusted(
                    Direction.WEST,
                    row,
                    span_start=east_list[k] + 1,
                    span_stop=width,
                )
                schedule.append(
                    ParallelMove.trusted(Direction.WEST, 1, (shift,), tag=tag)
                )

        # Net effect of executing every command: both halves compact
        # toward the centre columns.
        line[:half] = False
        line[half - west.n_atoms : half] = True
        line[half:] = False
        line[half : half + east.n_atoms] = True
        # The reference re-scans once more to observe no remaining hole.
        return width * (rounds.size + 1)

    def _pull_defects(
        self, array: AtomArray, schedule: MoveSchedule, row: int, outboard: int
    ) -> tuple[int, int]:
        """Pull atoms into ``row``'s empty target sites from outboard rows.

        ``outboard`` is +1 when the reservoir lies at larger row indices
        (south half) and -1 otherwise.  Returns (ops, unresolved).
        All columns' nearest outboard sources come from one ``argmax``
        over the outboard block instead of a per-column walk.
        """
        grid = array.grid
        target = self.geometry.target_region
        height = self.geometry.height
        cols = np.arange(target.col0, target.col_stop)
        ops = height * cols.size

        need = cols[~grid[row, cols]]
        block = grid[:row, need] if outboard < 0 else grid[row + 1 :, need]
        if not block.size:
            return ops, int(need.size)
        if outboard < 0:
            sources = row - 1 - np.argmax(block[::-1, :], axis=0)
        else:
            sources = row + 1 + np.argmax(block, axis=0)
        found = block.any(axis=0)
        unresolved = int(need.size - np.count_nonzero(found))
        need = need[found]
        sources = sources[found]

        direction = Direction.NORTH if outboard > 0 else Direction.SOUTH
        for source_row in np.unique(sources):
            pulled = need[sources == source_row]
            steps = abs(int(source_row) - row)
            shifts = [
                LineShift(
                    direction=direction,
                    line=int(col),
                    span_start=int(source_row),
                    span_stop=int(source_row) + 1,
                    steps=steps,
                )
                for col in pulled
            ]
            schedule.append(ParallelMove.of(shifts, tag=f"tetris-pull-r{row}"))
            grid[source_row, pulled] = False
            grid[row, pulled] = True
        return ops, unresolved

    # -- public API --------------------------------------------------------

    def schedule(self, array: AtomArray) -> RearrangementResult:
        if array.geometry != self.geometry:
            raise ValueError("array geometry does not match the scheduler's geometry")
        return timed_schedule(lambda: self._analyse(array))

    def _analyse(self, array: AtomArray) -> RearrangementResult:
        live = array.copy()
        moves = MoveSchedule(self.geometry, algorithm=self.name)
        target = self.geometry.target_region
        half = self.geometry.height // 2
        ops = 0
        unresolved = 0

        north_rows = list(range(half - 1, target.row0 - 1, -1))
        south_rows = list(range(half, target.row_stop))
        for row in north_rows:
            ops += self._compress_row(live, moves, row)
            pull_ops, missing = self._pull_defects(live, moves, row, outboard=-1)
            ops += pull_ops
            unresolved += missing
        for row in south_rows:
            ops += self._compress_row(live, moves, row)
            pull_ops, missing = self._pull_defects(live, moves, row, outboard=+1)
            ops += pull_ops
            unresolved += missing

        return RearrangementResult(
            algorithm=self.name,
            initial=array.copy(),
            final=live,
            schedule=moves,
            converged=unresolved == 0,
            analysis_ops=ops,
            unresolved_defects=unresolved,
        )


class TetrisSchedulerReference(TetrisScheduler):
    """Per-site re-scanning implementation kept as the oracle.

    Semantically the seed scheduler: every compression shift re-scans
    the row for its innermost hole and every pull walks its column.
    :class:`TetrisScheduler` must emit bit-identical schedules — the
    differential property tests enforce it.
    """

    def _compress_row(self, array: AtomArray, schedule: MoveSchedule, row: int) -> int:
        grid = array.grid
        width = self.geometry.width
        half = width // 2
        ops = 0
        while True:
            ops += width
            shifts = []
            line = grid[row]
            hole = self._innermost_hole_low(line, half)
            if hole is not None:
                shifts.append(
                    LineShift(Direction.EAST, row, span_start=0, span_stop=hole)
                )
            hole = self._innermost_hole_high(line, half, width)
            if hole is not None:
                shifts.append(
                    LineShift(Direction.WEST, row, span_start=hole + 1, span_stop=width)
                )
            if not shifts:
                return ops
            for shift in shifts:
                move = ParallelMove.of([shift], tag=f"tetris-row{row}")
                apply_parallel_move(grid, move)
                schedule.append(move)

    @staticmethod
    def _innermost_hole_low(line: np.ndarray, half: int) -> int | None:
        for idx in range(half - 1, -1, -1):
            if not line[idx]:
                return idx if line[:idx].any() else None
        return None

    @staticmethod
    def _innermost_hole_high(line: np.ndarray, half: int, n: int) -> int | None:
        for idx in range(half, n):
            if not line[idx]:
                return idx if line[idx + 1 :].any() else None
        return None

    def _pull_defects(
        self, array: AtomArray, schedule: MoveSchedule, row: int, outboard: int
    ) -> tuple[int, int]:
        grid = array.grid
        target = self.geometry.target_region
        height = self.geometry.height
        ops = 0

        # Group pull candidates by source row => maximum parallel merge.
        pulls_by_source: dict[int, list[int]] = {}
        unresolved = 0
        for col in range(target.col0, target.col_stop):
            ops += height
            if grid[row, col]:
                continue
            source_row = None
            r = row + outboard
            while 0 <= r < height:
                if grid[r, col]:
                    source_row = r
                    break
                r += outboard
            if source_row is None:
                unresolved += 1
                continue
            pulls_by_source.setdefault(source_row, []).append(col)

        for source_row in sorted(pulls_by_source):
            cols = pulls_by_source[source_row]
            steps = abs(source_row - row)
            direction = Direction.NORTH if outboard > 0 else Direction.SOUTH
            shifts = [
                LineShift(
                    direction=direction,
                    line=col,
                    span_start=source_row,
                    span_stop=source_row + 1,
                    steps=steps,
                )
                for col in cols
            ]
            move = ParallelMove.of(shifts, tag=f"tetris-pull-r{row}")
            apply_parallel_move(grid, move)
            schedule.append(move)
        return ops, unresolved
