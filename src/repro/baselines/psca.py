"""PSCA baseline — parallel sorting with a multi-tweezer grid
(Tian et al., Phys. Rev. Applied 19, 034048, 2023).

Tian et al. assemble arbitrary defect-free arrays with a *limited* grid
of mobile tweezers: atoms are first compressed column-wise toward the
target row band, then balanced row-wise, with at most ``max_tweezers``
lines addressed per physical move.  The per-step re-planning over the
whole array is what makes its analysis markedly slower than QRM's single
streaming scan (paper Fig. 7(b): ~246x slower than QRM-CPU).

Reimplementation notes (the original is closed source):

* one-step suffix shifts toward the array centre, exactly like the
  typical procedure, but chunked into batches of at most
  ``max_tweezers`` lines — more, smaller parallel moves;
* the planner re-scans the full occupancy matrix before every batch
  (the published algorithm recomputes its assignment matrix each cycle),
  reproducing the heavier analysis cost profile;
* phases alternate column-compression and row-compression until a full
  sweep makes no progress.

Two implementations share these semantics:
:class:`PscaSchedulerReference` re-scans with per-site Python loops and
is kept as the behavioural oracle; :class:`PscaScheduler` is the
production path, which finds every half-line's innermost hole with one
batched :func:`~repro.core.scan.scan_quadrant` per side and applies each
round's hole closures as a single gather per side.  The two are
property-tested to emit bit-identical schedules
(``tests/test_baseline_equivalence.py``).
"""

from __future__ import annotations

import numpy as np

from repro.aod.executor import apply_parallel_move
from repro.aod.move import LineShift, ParallelMove
from repro.aod.schedule import MoveSchedule
from repro.core.result import RearrangementResult, timed_schedule
from repro.core.scan import scan_quadrant
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry, Direction


class PscaScheduler:
    """Tweezer-budgeted centre-ward compression (vectorised planner)."""

    name = "psca"

    def __init__(
        self,
        geometry: ArrayGeometry,
        max_tweezers: int = 8,
        max_phases: int = 64,
    ):
        self.geometry = geometry
        self.max_tweezers = max_tweezers
        self.max_phases = max_phases

    # -- planning helpers -----------------------------------------------

    def _round(self, array: AtomArray, schedule: MoveSchedule, vertical: bool) -> int:
        """One full re-scan + batched execution; returns shifts done.

        Each half of every line is scanned for its innermost hole with
        one :func:`scan_quadrant` per side (centre-first local views),
        the groups flush in the reference's ``(direction.value, hole)``
        order, and the round's net effect — every addressed line's first
        hole closes by one suffix shift — lands as one gather per side.
        """
        grid = array.grid
        height, width = grid.shape
        if vertical:
            half = height // 2
            span_len = height
            # Local views are line-major with position 0 innermost.
            sides = (
                (Direction.NORTH, np.ascontiguousarray(grid[half:, :].T), half, +1),
                (
                    Direction.SOUTH,
                    np.ascontiguousarray(grid[:half, :][::-1, :].T),
                    half - 1,
                    -1,
                ),
            )
        else:
            half = width // 2
            span_len = width
            sides = (
                (
                    Direction.EAST,
                    np.ascontiguousarray(grid[:, :half][:, ::-1]),
                    half - 1,
                    -1,
                ),
                (Direction.WEST, np.ascontiguousarray(grid[:, half:]), half, +1),
            )

        n_shifts = 0
        closures = []
        for direction, local, base, sign in sides:
            scan = scan_quadrant(local, axis=0)
            counts = scan.line_counts
            has = counts > 0
            if not has.any():
                continue
            offsets = np.zeros(counts.size, dtype=np.intp)
            np.cumsum(counts[:-1], out=offsets[1:])
            lines_idx = np.nonzero(has)[0]
            first = scan.hole_positions[offsets[has]]
            holes_full = base + sign * first
            closures.append((direction, local, lines_idx, first))
            n_shifts += int(lines_idx.size)

            # Flush groups in ascending-hole order, lines ascending
            # within a group, chunked to the tweezer budget.
            order = np.lexsort((lines_idx, holes_full))
            holes_sorted = holes_full[order].tolist()
            lines_sorted = lines_idx[order].tolist()
            starts = np.nonzero(np.r_[True, np.diff(holes_full[order]) != 0])[0]
            ends = np.append(starts[1:], len(holes_sorted))
            inward = direction in (Direction.EAST, Direction.SOUTH)
            for lo, hi in zip(starts.tolist(), ends.tolist()):
                hole = holes_sorted[lo]
                span = (0, hole) if inward else (hole + 1, span_len)
                tag = f"psca-{direction.value}-h{hole}"
                for start in range(lo, hi, self.max_tweezers):
                    chunk = lines_sorted[start : min(start + self.max_tweezers, hi)]
                    shifts = tuple(
                        LineShift.trusted(direction, line, span[0], span[1])
                        for line in chunk
                    )
                    schedule.append(ParallelMove.trusted(direction, 1, shifts, tag=tag))

        # Net grid update: close every addressed line's first hole.  The
        # two sides of one round own disjoint grid halves, so their
        # closures commute with the emission order above.
        for direction, local, lines_idx, first in closures:
            n_pos = local.shape[1]
            idx = np.arange(n_pos)
            padded = np.concatenate(
                [local[lines_idx], np.zeros((lines_idx.size, 1), dtype=bool)],
                axis=1,
            )
            take = idx[None, :] + (idx[None, :] >= first[:, None])
            local[lines_idx] = padded[np.arange(lines_idx.size)[:, None], take]
            if vertical:
                if direction is Direction.NORTH:
                    grid[height // 2 :, :] = local.T
                else:
                    grid[: height // 2, :] = local.T[::-1, :]
            else:
                if direction is Direction.WEST:
                    grid[:, width // 2 :] = local
                else:
                    grid[:, : width // 2] = local[:, ::-1]
        return n_shifts

    # -- public API -------------------------------------------------------

    def schedule(self, array: AtomArray) -> RearrangementResult:
        if array.geometry != self.geometry:
            raise ValueError("array geometry does not match the scheduler's geometry")
        return timed_schedule(lambda: self._analyse(array))

    def _analyse(self, array: AtomArray) -> RearrangementResult:
        live = array.copy()
        moves = MoveSchedule(self.geometry, algorithm=self.name)
        ops = 0
        converged = False
        for _ in range(self.max_phases):
            progressed = 0
            while True:
                ops += self.geometry.n_sites
                done = self._round(live, moves, vertical=True)
                progressed += done
                if done == 0:
                    break
            while True:
                ops += self.geometry.n_sites
                done = self._round(live, moves, vertical=False)
                progressed += done
                if done == 0:
                    break
            if progressed == 0:
                converged = True
                break
        return RearrangementResult(
            algorithm=self.name,
            initial=array.copy(),
            final=live,
            schedule=moves,
            converged=converged,
            analysis_ops=ops,
        )


class PscaSchedulerReference(PscaScheduler):
    """Per-site re-scanning implementation kept as the oracle.

    Semantically the seed scheduler: every round walks the occupancy
    matrix site by site and replays each batch through the general
    executor.  :class:`PscaScheduler` must emit bit-identical schedules
    — the differential property tests enforce it.
    """

    def _round(self, array: AtomArray, schedule: MoveSchedule, vertical: bool) -> int:
        groups = self._plan_lines(array.grid, vertical)
        return self._emit_batches(array, schedule, groups, vertical)

    def _plan_lines(
        self, grid: np.ndarray, vertical: bool
    ) -> dict[tuple[Direction, int], list[int]]:
        """Full re-scan: innermost hole per half-line, grouped for batching."""
        height, width = grid.shape
        groups: dict[tuple[Direction, int], list[int]] = {}
        if vertical:
            half = height // 2
            for c in range(width):
                col = grid[:, c]
                hole = self._innermost_hole(col, half, inward_from_low=True)
                if hole is not None:
                    groups.setdefault((Direction.SOUTH, hole), []).append(c)
                hole = self._innermost_hole(col, half, inward_from_low=False)
                if hole is not None:
                    groups.setdefault((Direction.NORTH, hole), []).append(c)
        else:
            half = width // 2
            for r in range(height):
                row = grid[r]
                hole = self._innermost_hole(row, half, inward_from_low=True)
                if hole is not None:
                    groups.setdefault((Direction.EAST, hole), []).append(r)
                hole = self._innermost_hole(row, half, inward_from_low=False)
                if hole is not None:
                    groups.setdefault((Direction.WEST, hole), []).append(r)
        return groups

    @staticmethod
    def _innermost_hole(
        line: np.ndarray, half: int, inward_from_low: bool
    ) -> int | None:
        """Innermost hole of one half-line with atoms outboard of it."""
        n = line.shape[0]
        if inward_from_low:
            for idx in range(half - 1, -1, -1):
                if not line[idx]:
                    return idx if line[:idx].any() else None
            return None
        for idx in range(half, n):
            if not line[idx]:
                return idx if line[idx + 1 :].any() else None
        return None

    def _emit_batches(
        self,
        array: AtomArray,
        schedule: MoveSchedule,
        groups: dict[tuple[Direction, int], list[int]],
        vertical: bool,
    ) -> int:
        """Execute each group in tweezer-budget chunks; returns shifts done."""
        grid = array.grid
        height, width = grid.shape
        n_shifts = 0
        for (direction, hole), lines in sorted(
            groups.items(), key=lambda kv: (kv[0][0].value, kv[0][1])
        ):
            for start in range(0, len(lines), self.max_tweezers):
                chunk = lines[start : start + self.max_tweezers]
                shifts = []
                for line in chunk:
                    if direction in (Direction.EAST, Direction.SOUTH):
                        span = (0, hole)
                    else:
                        span = (hole + 1, height if vertical else width)
                    shifts.append(
                        LineShift(
                            direction=direction,
                            line=line,
                            span_start=span[0],
                            span_stop=span[1],
                        )
                    )
                move = ParallelMove.of(shifts, tag=f"psca-{direction.value}-h{hole}")
                apply_parallel_move(grid, move)
                schedule.append(move)
                n_shifts += len(shifts)
        return n_shifts
