"""PSCA baseline — parallel sorting with a multi-tweezer grid
(Tian et al., Phys. Rev. Applied 19, 034048, 2023).

Tian et al. assemble arbitrary defect-free arrays with a *limited* grid
of mobile tweezers: atoms are first compressed column-wise toward the
target row band, then balanced row-wise, with at most ``max_tweezers``
lines addressed per physical move.  The per-step re-planning over the
whole array is what makes its analysis markedly slower than QRM's single
streaming scan (paper Fig. 7(b): ~246x slower than QRM-CPU).

Reimplementation notes (the original is closed source):

* one-step suffix shifts toward the array centre, exactly like the
  typical procedure, but chunked into batches of at most
  ``max_tweezers`` lines — more, smaller parallel moves;
* the planner re-scans the full occupancy matrix before every batch
  (the published algorithm recomputes its assignment matrix each cycle),
  reproducing the heavier analysis cost profile;
* phases alternate column-compression and row-compression until a full
  sweep makes no progress.
"""

from __future__ import annotations

import time

import numpy as np

from repro.aod.executor import apply_parallel_move
from repro.aod.move import LineShift, ParallelMove
from repro.aod.schedule import MoveSchedule
from repro.core.result import RearrangementResult
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry, Direction


class PscaScheduler:
    """Tweezer-budgeted centre-ward compression."""

    name = "psca"

    def __init__(
        self,
        geometry: ArrayGeometry,
        max_tweezers: int = 8,
        max_phases: int = 64,
    ):
        self.geometry = geometry
        self.max_tweezers = max_tweezers
        self.max_phases = max_phases

    # -- planning helpers -----------------------------------------------

    def _plan_lines(
        self, grid: np.ndarray, vertical: bool
    ) -> dict[tuple[Direction, int], list[int]]:
        """Full re-scan: innermost hole per half-line, grouped for batching."""
        height, width = grid.shape
        groups: dict[tuple[Direction, int], list[int]] = {}
        if vertical:
            half = height // 2
            for c in range(width):
                col = grid[:, c]
                hole = self._innermost_hole(col, half, inward_from_low=True)
                if hole is not None:
                    groups.setdefault((Direction.SOUTH, hole), []).append(c)
                hole = self._innermost_hole(col, half, inward_from_low=False)
                if hole is not None:
                    groups.setdefault((Direction.NORTH, hole), []).append(c)
        else:
            half = width // 2
            for r in range(height):
                row = grid[r]
                hole = self._innermost_hole(row, half, inward_from_low=True)
                if hole is not None:
                    groups.setdefault((Direction.EAST, hole), []).append(r)
                hole = self._innermost_hole(row, half, inward_from_low=False)
                if hole is not None:
                    groups.setdefault((Direction.WEST, hole), []).append(r)
        return groups

    @staticmethod
    def _innermost_hole(
        line: np.ndarray, half: int, inward_from_low: bool
    ) -> int | None:
        """Innermost hole of one half-line with atoms outboard of it."""
        n = line.shape[0]
        if inward_from_low:
            for idx in range(half - 1, -1, -1):
                if not line[idx]:
                    return idx if line[:idx].any() else None
            return None
        for idx in range(half, n):
            if not line[idx]:
                return idx if line[idx + 1 :].any() else None
        return None

    def _emit_batches(
        self,
        array: AtomArray,
        schedule: MoveSchedule,
        groups: dict[tuple[Direction, int], list[int]],
        vertical: bool,
    ) -> int:
        """Execute each group in tweezer-budget chunks; returns shifts done."""
        grid = array.grid
        height, width = grid.shape
        n_shifts = 0
        for (direction, hole), lines in sorted(
            groups.items(), key=lambda kv: (kv[0][0].value, kv[0][1])
        ):
            for start in range(0, len(lines), self.max_tweezers):
                chunk = lines[start : start + self.max_tweezers]
                shifts = []
                for line in chunk:
                    if direction in (Direction.EAST, Direction.SOUTH):
                        span = (0, hole)
                    else:
                        span = (hole + 1, height if vertical else width)
                    shifts.append(
                        LineShift(
                            direction=direction,
                            line=line,
                            span_start=span[0],
                            span_stop=span[1],
                        )
                    )
                move = ParallelMove.of(
                    shifts, tag=f"psca-{direction.value}-h{hole}"
                )
                apply_parallel_move(grid, move)
                schedule.append(move)
                n_shifts += len(shifts)
        return n_shifts

    # -- public API -------------------------------------------------------

    def schedule(self, array: AtomArray) -> RearrangementResult:
        if array.geometry != self.geometry:
            raise ValueError(
                "array geometry does not match the scheduler's geometry"
            )
        t_start = time.perf_counter()
        live = array.copy()
        moves = MoveSchedule(self.geometry, algorithm=self.name)
        ops = 0
        converged = False
        for _ in range(self.max_phases):
            progressed = 0
            while True:
                groups = self._plan_lines(live.grid, vertical=True)
                ops += self.geometry.n_sites
                done = self._emit_batches(live, moves, groups, vertical=True)
                progressed += done
                if done == 0:
                    break
            while True:
                groups = self._plan_lines(live.grid, vertical=False)
                ops += self.geometry.n_sites
                done = self._emit_batches(live, moves, groups, vertical=False)
                progressed += done
                if done == 0:
                    break
            if progressed == 0:
                converged = True
                break
        return RearrangementResult(
            algorithm=self.name,
            initial=array.copy(),
            final=live,
            schedule=moves,
            converged=converged,
            analysis_ops=ops,
            wall_time_s=time.perf_counter() - t_start,
        )
