"""Calibrated analysis-time cost models (C++-on-i7 equivalent).

The paper measures its CPU numbers from a C++ implementation on an
11th-gen i7 at 2.8 GHz.  Re-measuring the same algorithms in Python
preserves ordering but not absolute microseconds, so every experiment
reports both: the *measured* Python wall-clock and the *modelled*
C++-equivalent time from the power laws below.

Calibration anchors (documented; all from the paper's evaluation):

* QRM-CPU:    54 us at W = 50 and ~255 us at W = 90 (speedups 54x/134x
  against the ~1.0/1.9 us FPGA latencies, Fig. 7a) => exponent 2.64.
* Tetris:     120x slower than the 0.9 us QRM-FPGA at W = 20 => 108 us
  (Fig. 7b), and ~300 us at W = 50 (the 300x claim of Sec. V-B);
  the two anchors imply the flat exponent ~1.1 of a per-row algorithm.
* PSCA:       246x QRM-CPU at W = 20 (Fig. 7b); steeper growth from its
  per-batch full re-planning.
* MTA1:       ~1000x QRM-CPU at W = 20 (Fig. 7b); cubic-class growth
  from per-defect reservoir re-scans.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PowerLawCost:
    """``t_us = coeff_us * W ** exponent`` for an initial array size W."""

    name: str
    coeff_us: float
    exponent: float

    def __post_init__(self) -> None:
        if self.coeff_us <= 0 or self.exponent <= 0:
            raise ConfigurationError(
                f"cost model {self.name!r} needs positive coefficients"
            )

    def time_us(self, size: int) -> float:
        if size <= 0:
            raise ConfigurationError(f"array size must be positive, got {size}")
        return self.coeff_us * size**self.exponent


def _power_law_through(
    name: str, p1: tuple[float, float], p2: tuple[float, float]
) -> PowerLawCost:
    """Power law through two (size, time_us) anchor points."""
    (w1, t1), (w2, t2) = p1, p2
    exponent = math.log(t2 / t1) / math.log(w2 / w1)
    coeff = t1 / w1**exponent
    return PowerLawCost(name, coeff, exponent)


#: QRM on CPU, anchored to Fig. 7(a): 54 us @ 50, 255 us @ 90.
QRM_CPU_COST = _power_law_through("qrm", (50.0, 54.0), (90.0, 255.0))

#: Tetris, anchored to Fig. 7(b) (120x the 0.9 us FPGA at 20 => 108 us)
#: and to the Sec. V-B claim of a 300x FPGA speedup at 50 (=> ~300 us).
TETRIS_COST = _power_law_through("tetris", (20.0, 108.0), (50.0, 300.0))

#: PSCA, anchored to 246x QRM-CPU @ 20 with a steeper exponent.
PSCA_COST = PowerLawCost(
    "psca",
    coeff_us=246.0 * QRM_CPU_COST.time_us(20) / 20.0**2.8,
    exponent=2.8,
)

#: MTA1, anchored to ~1000x QRM-CPU @ 20 with cubic growth.
MTA1_COST = PowerLawCost(
    "mta1",
    coeff_us=1000.0 * QRM_CPU_COST.time_us(20) / 20.0**3.0,
    exponent=3.0,
)

COST_MODELS: dict[str, PowerLawCost] = {
    "qrm": QRM_CPU_COST,
    "typical": QRM_CPU_COST,  # same scan structure as QRM on one core
    "tetris": TETRIS_COST,
    "psca": PSCA_COST,
    "mta1": MTA1_COST,
}


def model_cpu_time_us(algorithm: str, size: int) -> float:
    """Modelled C++-equivalent analysis time for ``algorithm`` at ``size``."""
    try:
        model = COST_MODELS[algorithm]
    except KeyError:
        known = ", ".join(sorted(COST_MODELS))
        raise KeyError(f"no cost model for '{algorithm}'; known: {known}") from None
    return model.time_us(size)
