"""Algorithm registry shared by experiments, benchmarks and the CLI.

Every rearrangement algorithm — the paper's QRM, the Sec. III-A typical
procedure, and the three published baselines — registers a factory here
under a stable name, so experiment runners can be parameterised by
string.  Factories share one construction signature,
``(geometry, *, rng=None, **params)``: ``rng`` is reserved for
stochastic algorithms (the built-ins are deterministic and ignore it)
and ``params`` forwards algorithm-specific knobs (QRM's
:class:`~repro.config.QrmParameters` fields, PSCA's tweezer budget, …).
The per-command oracle implementations register too, under
``"<name>-reference"`` keys, so differential tests and the perf suite
resolve both sides of every fast/reference pair through this one
registry.

The API is batch-first: :func:`schedule_batch` dispatches a stack of
same-geometry arrays to an algorithm's native ``schedule_batch`` when it
has one (QRM's cross-trial engine) and otherwise falls back to looping
``schedule`` — so every algorithm can be driven through the batched
campaign path unchanged.
"""

from __future__ import annotations

from typing import Callable, Iterable, Protocol

from repro.core.result import RearrangementResult
from repro.errors import ExecutionError, UnsupportedGeometryError
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry


class RearrangementAlgorithm(Protocol):
    """Anything that can analyse an array and emit a schedule."""

    name: str

    def schedule(self, array: AtomArray) -> RearrangementResult:
        """Compute the move schedule for ``array``."""
        ...


AlgorithmFactory = Callable[..., RearrangementAlgorithm]

#: The canonical benchmark line-up (QRM vs the published baselines) —
#: the single source both ``repro bench`` and ``repro campaign`` default
#: to.
DEFAULT_ALGORITHMS = ("qrm", "tetris", "psca", "mta1")

_REGISTRY: dict[str, AlgorithmFactory] = {}

#: Algorithms whose published formulation is defined only for centred
#: rectangular targets; they raise
#: :class:`~repro.errors.UnsupportedGeometryError` on masked geometries.
_RECT_ONLY: set[str] = set()


def register_algorithm(
    name: str, factory: AlgorithmFactory, *, rect_only: bool = False
) -> None:
    """Register ``factory`` under ``name`` (overwrites silently in tests).

    New factories should accept ``(geometry, *, rng=None, **params)``;
    plain single-argument factories keep working as long as they are
    resolved without extra keyword arguments.  ``rect_only`` declares
    that the algorithm cannot assemble non-rectangular target masks —
    :func:`resolve_algorithms` uses it to fail campaigns fast.
    """
    _REGISTRY[name] = factory
    if rect_only:
        _RECT_ONLY.add(name)
    else:
        _RECT_ONLY.discard(name)


def unregister_algorithm(name: str) -> None:
    """Remove a registration (primarily for test cleanup)."""
    _REGISTRY.pop(name, None)
    _RECT_ONLY.discard(name)


def supports_geometry(name: str, geometry: ArrayGeometry) -> bool:
    """Can registered algorithm ``name`` schedule ``geometry``?

    False only for rect-only algorithms handed a non-rectangular target
    mask; unknown names raise ``KeyError`` like :func:`get_algorithm`.
    """
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown algorithm '{name}'; known: {known}")
    return geometry.is_rect_target or name not in _RECT_ONLY


def get_algorithm(
    name: str,
    geometry: ArrayGeometry,
    *,
    rng=None,
    **params,
) -> RearrangementAlgorithm:
    """Instantiate a registered algorithm for ``geometry``.

    ``rng`` and ``params`` forward to the factory only when provided, so
    legacy single-argument factories stay resolvable.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown algorithm '{name}'; known: {known}") from None
    if rng is None and not params:
        return factory(geometry)
    if rng is not None:
        params["rng"] = rng
    return factory(geometry, **params)


def list_algorithms() -> list[str]:
    return sorted(_REGISTRY)


def resolve_algorithms(
    names: Iterable[str] | None = None,
    geometry: ArrayGeometry | None = None,
) -> tuple[str, ...]:
    """Validate a requested algorithm line-up against the registry.

    ``None`` resolves to :data:`DEFAULT_ALGORITHMS`.  This is the one
    code path both the bench and campaign CLIs use, so an unknown name
    fails identically everywhere.  When a ``geometry`` is given, the
    line-up is also checked against its target: rect-only algorithms on
    a non-rectangular mask raise
    :class:`~repro.errors.UnsupportedGeometryError` up front, naming the
    offenders and the mask-capable alternatives.
    """
    chosen = DEFAULT_ALGORITHMS if names is None else tuple(names)
    unknown = [name for name in chosen if name not in _REGISTRY]
    if unknown:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown algorithm(s): {', '.join(unknown)}; known: {known}"
        )
    if geometry is not None and not geometry.is_rect_target:
        rect_only = [name for name in chosen if name in _RECT_ONLY]
        if rect_only:
            capable = ", ".join(sorted(set(_REGISTRY) - _RECT_ONLY))
            raise UnsupportedGeometryError(
                f"algorithm(s) {', '.join(rect_only)} only support "
                "rectangular targets, but the geometry carries a "
                f"non-rectangular mask; mask-capable algorithms: {capable}"
            )
    return chosen


def supports_batch(algorithm: RearrangementAlgorithm) -> bool:
    """Does the algorithm expose a native cross-trial batched path?"""
    return callable(getattr(algorithm, "schedule_batch", None))


def schedule_batch(
    algorithm: RearrangementAlgorithm,
    arrays: Iterable[AtomArray],
) -> list[RearrangementResult]:
    """Batch-first dispatch with a loop-over-``schedule`` fallback.

    Algorithms with a native ``schedule_batch`` (QRM's cross-trial
    engine) get the whole stack in one call; everything else schedules
    the arrays one by one — same results, same order, no batch-only
    capability required of implementors.

    A failure inside the fallback loop is wrapped in
    :class:`~repro.errors.ExecutionError` naming the failing trial's
    position in the batch, so callers grouping many trials into one
    call (the batched campaign path, the service dispatcher) can report
    *which* trial is at fault; siblings scheduled before the failure are
    untouched (the loop materialises one result at a time).
    """
    batch = list(arrays)
    native = getattr(algorithm, "schedule_batch", None)
    if callable(native):
        return native(batch)
    results = []
    for index, array in enumerate(batch):
        try:
            results.append(algorithm.schedule(array))
        except Exception as exc:
            raise ExecutionError(
                f"schedule_batch fallback: trial {index} of {len(batch)} "
                f"failed in {algorithm.name!r}: {type(exc).__name__}: {exc}"
            ) from exc
    return results


def _register_builtins() -> None:
    """Register the built-in algorithms lazily to avoid import cycles."""
    from repro.baselines.mta1 import Mta1Scheduler, Mta1SchedulerReference
    from repro.baselines.psca import PscaScheduler, PscaSchedulerReference
    from repro.baselines.tetris import TetrisScheduler, TetrisSchedulerReference
    from repro.config import QrmParameters, ScanMode
    from repro.core.passes import run_pass_reference
    from repro.core.qrm import QrmScheduler
    from repro.core.typical import TypicalScheduler

    def qrm_variant(**preset):
        def factory(geometry, *, rng=None, **params):
            del rng  # deterministic; accepted for signature uniformity
            return QrmScheduler(geometry, QrmParameters(**{**preset, **params}))

        return factory

    def qrm_sen(geometry, *, rng=None, **params):
        del rng
        params.setdefault("scan_limit", max(1, geometry.target_width // 2))
        return QrmScheduler(geometry, QrmParameters(**params))

    def qrm_reference(geometry, *, rng=None, **params):
        del rng
        return QrmScheduler(
            geometry, QrmParameters(**params), pass_runner=run_pass_reference
        )

    def plain(cls):
        def factory(geometry, *, rng=None, **params):
            del rng  # deterministic; accepted for signature uniformity
            return cls(geometry, **params)

        return factory

    register_algorithm("qrm", qrm_variant())
    register_algorithm(
        "qrm-fresh", qrm_variant(n_iterations=2, scan_mode=ScanMode.FRESH)
    )
    register_algorithm("qrm-repair", qrm_variant(enable_repair=True))
    register_algorithm("qrm-sen", qrm_sen)
    register_algorithm("qrm-reference", qrm_reference)
    register_algorithm("typical", plain(TypicalScheduler))
    register_algorithm("tetris", plain(TetrisScheduler), rect_only=True)
    register_algorithm(
        "tetris-reference", plain(TetrisSchedulerReference), rect_only=True
    )
    register_algorithm("psca", plain(PscaScheduler))
    register_algorithm("psca-reference", plain(PscaSchedulerReference))
    register_algorithm("mta1", plain(Mta1Scheduler), rect_only=True)
    register_algorithm(
        "mta1-reference", plain(Mta1SchedulerReference), rect_only=True
    )


_register_builtins()
