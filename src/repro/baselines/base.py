"""Algorithm registry shared by experiments, benchmarks and the CLI.

Every rearrangement algorithm — the paper's QRM, the Sec. III-A typical
procedure, and the three published baselines — registers a factory here
under a stable name, so experiment runners can be parameterised by
string.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.core.result import RearrangementResult
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry


class RearrangementAlgorithm(Protocol):
    """Anything that can analyse an array and emit a schedule."""

    name: str

    def schedule(self, array: AtomArray) -> RearrangementResult:
        """Compute the move schedule for ``array``."""
        ...


AlgorithmFactory = Callable[[ArrayGeometry], RearrangementAlgorithm]

_REGISTRY: dict[str, AlgorithmFactory] = {}


def register_algorithm(name: str, factory: AlgorithmFactory) -> None:
    """Register ``factory`` under ``name`` (overwrites silently in tests)."""
    _REGISTRY[name] = factory


def unregister_algorithm(name: str) -> None:
    """Remove a registration (primarily for test cleanup)."""
    _REGISTRY.pop(name, None)


def get_algorithm(name: str, geometry: ArrayGeometry) -> RearrangementAlgorithm:
    """Instantiate a registered algorithm for ``geometry``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown algorithm '{name}'; known: {known}") from None
    return factory(geometry)


def list_algorithms() -> list[str]:
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    """Register the built-in algorithms lazily to avoid import cycles."""
    from repro.baselines.mta1 import Mta1Scheduler
    from repro.baselines.psca import PscaScheduler
    from repro.baselines.tetris import TetrisScheduler
    from repro.config import QrmParameters, ScanMode
    from repro.core.qrm import QrmScheduler
    from repro.core.typical import TypicalScheduler

    register_algorithm("qrm", lambda geo: QrmScheduler(geo))
    register_algorithm(
        "qrm-fresh",
        lambda geo: QrmScheduler(
            geo, QrmParameters(n_iterations=2, scan_mode=ScanMode.FRESH)
        ),
    )
    register_algorithm(
        "qrm-repair",
        lambda geo: QrmScheduler(geo, QrmParameters(enable_repair=True)),
    )
    register_algorithm(
        "qrm-sen",
        lambda geo: QrmScheduler(
            geo, QrmParameters(scan_limit=max(1, geo.target_width // 2))
        ),
    )
    register_algorithm("typical", lambda geo: TypicalScheduler(geo))
    register_algorithm("tetris", lambda geo: TetrisScheduler(geo))
    register_algorithm("psca", lambda geo: PscaScheduler(geo))
    register_algorithm("mta1", lambda geo: Mta1Scheduler(geo))


_register_builtins()
