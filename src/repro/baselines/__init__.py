"""Published baseline algorithms and the shared algorithm registry."""

from repro.baselines.base import (
    DEFAULT_ALGORITHMS,
    RearrangementAlgorithm,
    get_algorithm,
    list_algorithms,
    register_algorithm,
    resolve_algorithms,
    schedule_batch,
    supports_batch,
    supports_geometry,
    unregister_algorithm,
)
from repro.baselines.cost_model import (
    COST_MODELS,
    MTA1_COST,
    PSCA_COST,
    PowerLawCost,
    QRM_CPU_COST,
    TETRIS_COST,
    model_cpu_time_us,
)
from repro.baselines.mta1 import Mta1Scheduler
from repro.baselines.psca import PscaScheduler
from repro.baselines.tetris import TetrisScheduler

__all__ = [
    "COST_MODELS",
    "DEFAULT_ALGORITHMS",
    "MTA1_COST",
    "Mta1Scheduler",
    "PSCA_COST",
    "PowerLawCost",
    "PscaScheduler",
    "QRM_CPU_COST",
    "RearrangementAlgorithm",
    "TETRIS_COST",
    "TetrisScheduler",
    "get_algorithm",
    "list_algorithms",
    "model_cpu_time_us",
    "register_algorithm",
    "resolve_algorithms",
    "schedule_batch",
    "supports_batch",
    "supports_geometry",
    "unregister_algorithm",
]
