"""MTA1 baseline — sequential single-atom transport (Ebadi et al., 2021).

The 256-atom programmable simulator of Ebadi et al. rearranges with one
mobile tweezer at a time: every target defect is matched to a reservoir
atom which is transported individually along a row-leg plus column-leg
path.  There is no multi-atom parallelism, which is why the paper's
Fig. 7(b) shows it roughly three orders of magnitude slower than QRM.

Reimplementation notes (the original is closed source):

* defects are served centre-outward, matching the published strategy of
  building the array from the middle;
* candidate atoms are ranked by Manhattan distance and the first one with
  a collision-free L-path wins; each leg is an individual ``steps = k``
  move of a single site;
* the analysis deliberately re-scans the occupancy per defect (the
  published algorithm recomputes reachability after every transport),
  giving the natural O(defects x reservoir) cost profile:
  ``analysis_ops`` counts every reservoir candidate examined per defect
  plus every path cell the short-circuiting L-path clearance actually
  probes.

Two implementations share these semantics:
:class:`Mta1SchedulerReference` is the per-defect, per-candidate
re-scanning loop kept as the behavioural oracle, and
:class:`Mta1Scheduler` is the production path, which tests every
reservoir candidate's two L-paths at once against prefix-summed
occupancy and picks the nearest routable atom with one stable argsort —
the same machinery as :func:`repro.core.repair.repair_defects`, while
still emitting the identical one-leg-at-a-time single-site moves.  The
two are property-tested to emit bit-identical schedules
(``tests/test_baseline_equivalence.py``).
"""

from __future__ import annotations

import numpy as np

from repro.aod.executor import apply_parallel_move
from repro.aod.move import LineShift, ParallelMove
from repro.aod.schedule import MoveSchedule
from repro.core.repair import (
    _horizontal_leg,
    _path_clear_horizontal,
    _path_clear_vertical,
    _segment_counts,
    _vertical_leg,
)
from repro.core.result import RearrangementResult, timed_schedule
from repro.errors import UnsupportedGeometryError
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry


def _probe_candidate(
    grid, source: tuple[int, int], dest: tuple[int, int]
) -> tuple[list[LineShift] | None, int]:
    """L-path legs for one candidate plus the path cells the probe tested.

    Same routing semantics as :func:`repro.core.repair._legs_for`
    (row-leg-then-column-leg, then column-leg-then-row-leg), but also
    returns the analysis cost: each clearance window that actually runs
    charges its cell count (the sites strictly between the endpoints plus
    the destination), with the reference's short-circuit order — a failed
    horizontal test stops the row-first attempt before its vertical leg
    is ever probed, and a routable row-first path skips the column-first
    attempt entirely.
    """
    (r0, c0), (r1, c1) = source, dest
    h_cells = abs(c1 - c0)
    v_cells = abs(r1 - r0)
    # Row first: (r0,c0) -> (r0,c1) -> (r1,c1)
    ops = h_cells
    if _path_clear_horizontal(grid, r0, c0, c1):
        ops += v_cells
        if _path_clear_vertical(grid, c1, r0, r1):
            legs = []
            if c0 != c1:
                legs.append(_horizontal_leg(r0, c0, c1))
            if r0 != r1:
                legs.append(_vertical_leg(c1, r0, r1))
            return legs, ops
    # Column first: (r0,c0) -> (r1,c0) -> (r1,c1)
    ops += v_cells
    if _path_clear_vertical(grid, c0, r0, r1):
        ops += h_cells
        if _path_clear_horizontal(grid, r1, c0, c1):
            legs = []
            if r0 != r1:
                legs.append(_vertical_leg(c0, r0, r1))
            if c0 != c1:
                legs.append(_horizontal_leg(r1, c0, c1))
            return legs, ops
    return None, ops


class Mta1Scheduler:
    """Sequential one-atom-at-a-time rearrangement (vectorised planner)."""

    name = "mta1"

    def __init__(self, geometry: ArrayGeometry):
        if not geometry.is_rect_target:
            raise UnsupportedGeometryError(
                "mta1 routes into a rectangular target region; it does not "
                "support non-rectangular target masks (use qrm-repair)"
            )
        self.geometry = geometry

    def schedule(self, array: AtomArray) -> RearrangementResult:
        if array.geometry != self.geometry:
            raise ValueError("array geometry does not match the scheduler's geometry")
        return timed_schedule(lambda: self._analyse(array))

    def _analyse(self, array: AtomArray) -> RearrangementResult:
        live = array.copy()
        moves = MoveSchedule(self.geometry, algorithm=self.name)
        ops, unresolved = self._route_defects(live, moves)
        return RearrangementResult(
            algorithm=self.name,
            initial=array.copy(),
            final=live,
            schedule=moves,
            converged=unresolved == 0,
            analysis_ops=ops,
            unresolved_defects=unresolved,
        )

    def _route_defects(self, live: AtomArray, moves: MoveSchedule) -> tuple[int, int]:
        """Serve every target defect centre-outward; returns (ops, unresolved).

        Vectorised implementation: emits exactly the moves of
        :class:`Mta1SchedulerReference` (bit-identical legs, tags, order,
        and op counts).  Per defect, both L-path clearance tests of
        *every* reservoir candidate are evaluated at once against
        prefix-summed occupancy, and the nearest routable candidate is
        picked with one stable argsort that preserves the row-major
        ``occupied_sites()`` tie-break of the reference.  The prefix sums
        and the reservoir only change when a route lands, so unroutable
        defects reuse the previous defect's snapshot.
        """
        geometry = self.geometry
        target = geometry.target_region
        grid = live.grid
        height, width = grid.shape
        centre = ((geometry.height - 1) / 2.0, (geometry.width - 1) / 2.0)

        block = grid[target.row_slice, target.col_slice]
        defects = np.argwhere(~block)
        if defects.size:
            defects += (target.row0, target.col0)
            dist = np.abs(defects[:, 0] - centre[0]) + np.abs(defects[:, 1] - centre[1])
            defects = defects[np.argsort(dist, kind="stable")]

        outside_target = np.ones(grid.shape, dtype=bool)
        outside_target[target.row_slice, target.col_slice] = False
        row_prefix = np.zeros((height, width + 1), dtype=np.intp)
        col_prefix = np.zeros((width, height + 1), dtype=np.intp)
        grid_changed = True
        reservoir_rows = reservoir_cols = None
        ops = 0
        unresolved = 0

        for defect in defects:
            dr, dc = int(defect[0]), int(defect[1])
            if grid_changed:
                reservoir_rows, reservoir_cols = np.nonzero(grid & outside_target)
                np.cumsum(grid, axis=1, out=row_prefix[:, 1:])
                np.cumsum(grid.T, axis=1, out=col_prefix[:, 1:])
                grid_changed = False
            # The published re-scan examines (ranks) the whole reservoir
            # for every defect — the O(defects x reservoir) term.
            ops += int(reservoir_rows.size)
            if not reservoir_rows.size:
                unresolved += 1
                continue
            order = np.argsort(
                np.abs(reservoir_rows - dr) + np.abs(reservoir_cols - dc),
                kind="stable",
            )
            rows = reservoir_rows[order]
            cols = reservoir_cols[order]

            to_col = np.full(rows.shape, dc)
            to_row = np.full(rows.shape, dr)
            # Row first: (r0,c0) -> (r0,dc) -> (dr,dc)
            h_clear_src = _segment_counts(row_prefix, rows, cols, to_col) == 0
            v_clear_dst = _segment_counts(col_prefix, to_col, rows, to_row) == 0
            # Column first: (r0,c0) -> (dr,c0) -> (dr,dc)
            v_clear_src = _segment_counts(col_prefix, cols, rows, to_row) == 0
            h_clear_dst = _segment_counts(row_prefix, to_row, cols, to_col) == 0
            row_first = h_clear_src & v_clear_dst
            col_first = v_clear_src & h_clear_dst

            # Path cells each candidate's probe would test, mirroring the
            # short-circuit order of _probe_candidate.
            h_cells = np.abs(cols - dc)
            v_cells = np.abs(rows - dr)
            cells = h_cells + np.where(h_clear_src, v_cells, 0)
            cells += np.where(
                ~row_first, v_cells + np.where(v_clear_src, h_cells, 0), 0
            )

            routable = np.nonzero(row_first | col_first)[0]
            if not routable.size:
                ops += int(cells.sum())
                unresolved += 1
                continue
            pick = int(routable[0])
            # Only candidates up to (and including) the first routable
            # one are ever probed.
            ops += int(cells[: pick + 1].sum())

            r0, c0 = int(rows[pick]), int(cols[pick])
            # The picked candidate is routable, so one scalar re-probe
            # yields its legs — the same helper the reference uses, so
            # the leg-construction convention cannot diverge.
            legs, _ = _probe_candidate(grid, (r0, c0), (dr, dc))
            for leg in legs:
                moves.append(ParallelMove.of([leg], tag=f"mta1-{(dr, dc)}"))
            # Net effect of the (at most two) legs: the source empties,
            # the defect fills; the L-corner occupancy is transient.
            grid[r0, c0] = False
            grid[dr, dc] = True
            grid_changed = True
        return ops, unresolved


class Mta1SchedulerReference(Mta1Scheduler):
    """Per-defect, per-candidate re-scanning oracle.

    Semantically the seed scheduler: every defect re-derives the
    reservoir from ``occupied_sites()`` and probes candidates one by one
    until an L-path clears.  :class:`Mta1Scheduler` must emit
    bit-identical schedules and op counts — the differential property
    tests enforce it.
    """

    def _route_defects(self, live: AtomArray, moves: MoveSchedule) -> tuple[int, int]:
        grid = live.grid
        target = self.geometry.target_region
        centre = (
            (self.geometry.height - 1) / 2.0,
            (self.geometry.width - 1) / 2.0,
        )
        ops = 0
        unresolved = 0

        defects = sorted(
            live.target_defects(),
            key=lambda rc: abs(rc[0] - centre[0]) + abs(rc[1] - centre[1]),
        )
        for defect in defects:
            reservoir = [
                site for site in live.occupied_sites() if not target.contains(*site)
            ]
            ops += len(reservoir)
            reservoir.sort(
                key=lambda rc: abs(rc[0] - defect[0]) + abs(rc[1] - defect[1])
            )
            routed = False
            for source in reservoir:
                legs, probed = _probe_candidate(grid, source, defect)
                ops += probed
                if legs is None:
                    continue
                for leg in legs:
                    move = ParallelMove.of([leg], tag=f"mta1-{defect}")
                    apply_parallel_move(grid, move)
                    moves.append(move)
                routed = True
                break
            if not routed:
                unresolved += 1
        return ops, unresolved
