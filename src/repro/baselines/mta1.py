"""MTA1 baseline — sequential single-atom transport (Ebadi et al., 2021).

The 256-atom programmable simulator of Ebadi et al. rearranges with one
mobile tweezer at a time: every target defect is matched to a reservoir
atom which is transported individually along a row-leg plus column-leg
path.  There is no multi-atom parallelism, which is why the paper's
Fig. 7(b) shows it roughly three orders of magnitude slower than QRM.

Reimplementation notes (the original is closed source):

* defects are served centre-outward, matching the published strategy of
  building the array from the middle;
* candidate atoms are ranked by Manhattan distance and the first one with
  a collision-free L-path wins; each leg is an individual ``steps = k``
  move of a single site;
* the analysis deliberately re-scans the occupancy per defect (the
  published algorithm recomputes reachability after every transport),
  giving the natural O(defects x reservoir) cost profile.
"""

from __future__ import annotations

import time

from repro.aod.executor import apply_parallel_move
from repro.aod.move import ParallelMove
from repro.aod.schedule import MoveSchedule
from repro.core.repair import _legs_for
from repro.core.result import RearrangementResult
from repro.lattice.array import AtomArray
from repro.lattice.geometry import ArrayGeometry


class Mta1Scheduler:
    """Sequential one-atom-at-a-time rearrangement."""

    name = "mta1"

    def __init__(self, geometry: ArrayGeometry):
        self.geometry = geometry

    def schedule(self, array: AtomArray) -> RearrangementResult:
        if array.geometry != self.geometry:
            raise ValueError("array geometry does not match the scheduler's geometry")
        t_start = time.perf_counter()
        live = array.copy()
        moves = MoveSchedule(self.geometry, algorithm=self.name)
        grid = live.grid
        target = self.geometry.target_region
        centre = (
            (self.geometry.height - 1) / 2.0,
            (self.geometry.width - 1) / 2.0,
        )
        ops = 0
        unresolved = 0

        defects = sorted(
            live.target_defects(),
            key=lambda rc: abs(rc[0] - centre[0]) + abs(rc[1] - centre[1]),
        )
        for defect in defects:
            reservoir = [
                site for site in live.occupied_sites() if not target.contains(*site)
            ]
            ops += len(reservoir) + self.geometry.n_sites
            reservoir.sort(
                key=lambda rc: abs(rc[0] - defect[0]) + abs(rc[1] - defect[1])
            )
            routed = False
            for source in reservoir:
                legs = _legs_for(grid, source, defect)
                ops += 4
                if legs is None:
                    continue
                for leg in legs:
                    move = ParallelMove.of([leg], tag=f"mta1-{defect}")
                    apply_parallel_move(grid, move)
                    moves.append(move)
                routed = True
                break
            if not routed:
                unresolved += 1

        return RearrangementResult(
            algorithm=self.name,
            initial=array.copy(),
            final=live,
            schedule=moves,
            converged=unresolved == 0,
            analysis_ops=ops,
            wall_time_s=time.perf_counter() - t_start,
            unresolved_defects=unresolved,
        )
