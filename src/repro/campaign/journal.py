"""Append-only JSONL run journals for resumable campaigns.

A run journal records everything a campaign run produces, one JSON
object per line, in the order it happened:

* ``campaign_started`` — spec hash, the full spec, trial counts (one
  per run segment; a resumed journal holds several);
* ``trial_started`` — a trial was submitted for execution;
* ``trial_finished`` — a trial's metrics landed (executed or served
  from the trial cache);
* ``trial_error`` — a trial raised; the message is recorded before the
  campaign aborts;
* ``cell_checkpoint`` — one cell's aggregate summary (mean/std/min/max
  per metric), written as each cell closes;
* ``campaign_completed`` — final counts and duration.

Every line is flushed as it is written, so a crash — SIGKILL included —
loses at most the line being appended.  The reader is correspondingly
crash-consistent: it accepts a journal truncated at *any* byte offset
by parsing complete lines until the first undecodable one and ignoring
the torn tail (``JournalReplay.truncated``).  Resuming from a truncated
journal therefore replays exactly the trials whose ``trial_finished``
lines survived, and the engine re-executes the remainder — aggregates
come out identical to an uninterrupted run because per-trial results
are deterministic and aggregation order is fixed by the spec.

``repro campaign --journal out.jsonl`` writes one; ``repro campaign
--resume out.jsonl`` reconstructs the spec from it, replays the
finished trials, and appends the rest of the run to the same file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.campaign.spec import CampaignSpec
from repro.campaign.trial import TrialResult, TrialSpec
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.campaign.engine import CampaignResult, CellAggregate
    from repro.campaign.spec import ScenarioCell

#: Bump when the journal event schema changes incompatibly.
JOURNAL_SCHEMA_VERSION = 1


@dataclass
class JournalReplay:
    """Everything recovered from an existing journal file."""

    path: Path
    spec: CampaignSpec | None = None
    spec_hash: str | None = None
    results: dict[str, TrialResult] = field(default_factory=dict)
    started_keys: set[str] = field(default_factory=set)
    errors: list[tuple[str, str]] = field(default_factory=list)
    n_events: int = 0
    n_runs: int = 0
    completed: bool = False
    truncated: bool = False
    valid_bytes: int = 0

    @property
    def in_flight_keys(self) -> set[str]:
        """Trials submitted to an executor but never finished.

        The engine dispatches every pending trial to the executor in
        one batch, so after a crash this is the unexecuted remainder
        (which includes whatever was genuinely mid-flight) — exactly
        the set a resume will run.
        """
        return self.started_keys - set(self.results)


def read_journal(path: str | Path) -> JournalReplay:
    """Parse a journal, tolerating a torn tail.

    Lines parse in order until the first one that is not a complete,
    newline-terminated JSON object; that line and everything after it
    are ignored (and ``truncated`` is set), which makes recovery
    insensitive to *where* a crash cut the file.  ``valid_bytes`` marks
    the end of the committed prefix — the writer truncates back to it
    before appending, so a resumed journal stays parseable end to end.
    """
    path = Path(path)
    replay = JournalReplay(path=path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise ConfigurationError(f"cannot read journal {path}: {exc}") from exc
    for line in raw.splitlines(keepends=True):
        if not line.endswith(b"\n"):
            # A line the crash cut before its newline committed.
            replay.truncated = True
            break
        if not line.strip():
            replay.valid_bytes += len(line)
            continue
        try:
            event = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            replay.truncated = True
            break
        if not isinstance(event, dict) or "event" not in event:
            replay.truncated = True
            break
        _apply_event(replay, event)
        replay.n_events += 1
        replay.valid_bytes += len(line)
    return replay


def _apply_event(replay: JournalReplay, event: dict[str, Any]) -> None:
    name = event["event"]
    if name == "campaign_started":
        spec_hash = event.get("spec_hash")
        if replay.spec_hash is not None and spec_hash != replay.spec_hash:
            raise ConfigurationError(
                f"journal {replay.path} mixes campaigns: spec hash "
                f"{spec_hash} after {replay.spec_hash}"
            )
        replay.spec_hash = spec_hash
        if replay.spec is None and event.get("spec") is not None:
            replay.spec = CampaignSpec.from_dict(event["spec"])
        replay.n_runs += 1
        replay.completed = False
    elif name == "trial_started":
        replay.started_keys.add(event["key"])
    elif name == "trial_finished":
        replay.results[event["key"]] = TrialResult(
            key=event["key"], metrics=dict(event["metrics"])
        )
    elif name == "trial_error":
        replay.errors.append((event["key"], event.get("error", "")))
    elif name == "campaign_completed":
        replay.completed = True
    # Unknown events (cell_checkpoint, future additions) replay as no-ops.


class RunJournal:
    """Writer half: appends events, carrying any replayed prior state.

    Use :meth:`fresh` to start a new journal (truncates an existing
    file) and :meth:`resume` to load an existing one and append to it.
    Every event is flushed on write; checkpoints and completion are
    additionally fsynced.
    """

    def __init__(self, path: str | Path, replay: JournalReplay | None = None) -> None:
        self.path = Path(path)
        self.replay = replay if replay is not None else JournalReplay(path=self.path)
        self._fh = None

    @classmethod
    def fresh(cls, path: str | Path) -> "RunJournal":
        journal = cls(path)
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        journal.path.write_text("")
        return journal

    @classmethod
    def resume(cls, path: str | Path) -> "RunJournal":
        path = Path(path)
        replay = read_journal(path)
        if replay.valid_bytes < path.stat().st_size:
            # Drop the torn tail so appended events stay line-aligned.
            with open(path, "r+b") as fh:
                fh.truncate(replay.valid_bytes)
        return cls(path, replay=replay)

    # -- writing ----------------------------------------------------------

    def _write(self, payload: dict[str, Any], sync: bool = False) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(payload, sort_keys=True) + "\n")
        self._fh.flush()
        if sync:
            os.fsync(self._fh.fileno())

    def record_started(
        self, spec: CampaignSpec, n_trials: int, n_cached: int, n_replayed: int
    ) -> None:
        spec_hash = spec.spec_hash()
        if self.replay.spec_hash is not None and spec_hash != self.replay.spec_hash:
            raise ConfigurationError(
                f"journal {self.path} belongs to spec {self.replay.spec_hash}, "
                f"refusing to append run of spec {spec_hash}"
            )
        self._write(
            {
                "event": "campaign_started",
                "schema": JOURNAL_SCHEMA_VERSION,
                "spec_hash": spec_hash,
                "spec": spec.to_dict(),
                "n_trials": n_trials,
                "n_cached": n_cached,
                "n_replayed": n_replayed,
            },
            sync=True,
        )

    def record_trial_started(self, trial: TrialSpec) -> None:
        self._write({"event": "trial_started", "key": trial.key()})

    def record_trial_finished(
        self, trial: TrialSpec, result: TrialResult, from_cache: bool
    ) -> None:
        self._write(
            {
                "event": "trial_finished",
                "key": result.key,
                "from_cache": from_cache,
                "metrics": dict(result.metrics),
            }
        )

    def record_trial_error(self, trial: TrialSpec, error: str) -> None:
        self._write({"event": "trial_error", "key": trial.key(), "error": error})

    def record_checkpoint(
        self, cell: "ScenarioCell", aggregate: "CellAggregate"
    ) -> None:
        self._write(
            {
                "event": "cell_checkpoint",
                "cell": cell.to_dict(),
                "trials": aggregate.trials,
                "metrics": {
                    name: {
                        "mean": summary.mean,
                        "std": summary.std,
                        "min": summary.minimum,
                        "max": summary.maximum,
                        "n": summary.n,
                    }
                    for name, summary in sorted(aggregate.metrics.items())
                },
            },
            sync=True,
        )

    def record_completed(self, result: "CampaignResult") -> None:
        self._write(
            {
                "event": "campaign_completed",
                "n_trials": result.n_trials,
                "cache_hits": result.cache_hits,
                "journal_replays": result.journal_replays,
                "duration_s": result.duration_s,
            },
            sync=True,
        )

    def close(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
