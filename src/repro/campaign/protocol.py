"""Frame protocol shared by the dispatch client and the worker.

Length-prefixed pickle frames over a byte stream: one unsigned
big-endian 32-bit payload length, then the pickled payload.  The
handshake frame names the work function as a ``"module:qualname"``
import path; work frames are ``(index, item)``; result frames are
``("ok", index, result)`` or ``("error", index, message)``.

Lives apart from :mod:`repro.campaign.worker` so that importing the
campaign package (which pulls in the dispatch client) never pre-imports
the worker's ``__main__`` module.
"""

from __future__ import annotations

import importlib
import pickle
import struct
from typing import Any, BinaryIO, Callable

from repro.errors import ConfigurationError

#: Frame header: one unsigned big-endian 32-bit payload length.
_HEADER = struct.Struct(">I")


def write_frame(stream: BinaryIO, payload: Any) -> None:
    """Pickle ``payload`` and write it as one length-prefixed frame."""
    data = pickle.dumps(payload)
    stream.write(_HEADER.pack(len(data)))
    stream.write(data)
    stream.flush()


def read_frame(stream: BinaryIO) -> Any:
    """Read one frame, or None on a clean EOF at a frame boundary."""
    header = stream.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise EOFError("truncated frame header")
    (length,) = _HEADER.unpack(header)
    data = stream.read(length)
    if len(data) < length:
        raise EOFError("truncated frame payload")
    return pickle.loads(data)


def resolve_function(path: str) -> Callable:
    """Import ``"module:qualname"`` back into a callable."""
    module_name, _, qualname = path.partition(":")
    if not module_name or not qualname:
        raise ConfigurationError(f"malformed function path {path!r}")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise ConfigurationError(f"{path!r} does not name a callable")
    return obj


def function_path(fn: Callable) -> str:
    """The import path of a module-level callable (for the handshake)."""
    qualname = getattr(fn, "__qualname__", "")
    module = getattr(fn, "__module__", "")
    if not module or not qualname or "<" in qualname:
        raise ConfigurationError(
            f"distributed dispatch needs a module-level function, got {fn!r}"
        )
    return f"{module}:{qualname}"
