"""Frame protocol shared by the dispatch client, the worker and the service.

Length-prefixed pickle frames over a byte stream: one unsigned
big-endian 32-bit payload length, then the pickled payload.  A stream
opens with a two-byte handshake preamble — :data:`PROTOCOL_MAGIC` then
:data:`PROTOCOL_VERSION` — followed by a regular frame carrying the
handshake payload, so a stray process writing garbage into a worker's
stdin (or a port scanner hitting the scheduling service) fails fast
with a :class:`ConfigurationError` instead of a pickle explosion.
:func:`read_frame` additionally bounds the declared payload length
(:data:`MAX_FRAME_BYTES` by default): a corrupt or hostile header
cannot trigger a multi-gigabyte allocation.

For the worker protocol the handshake payload names the work function
as a ``"module:qualname"`` import path; work frames are
``(index, item)``; liveness probes are ``("ping", token)`` answered by
``("pong", token, None)``; result frames are ``("ok", index, result)``
or ``("error", index, message)`` where the message carries a traceback
tail (:func:`repro.errors.format_error`).  The scheduling service
(:mod:`repro.service`) speaks the same frames asynchronously with its
own payload vocabulary.

Lives apart from :mod:`repro.campaign.worker` so that importing the
campaign package (which pulls in the dispatch client) never pre-imports
the worker's ``__main__`` module.
"""

from __future__ import annotations

import importlib
import pickle
import struct
from typing import Any, BinaryIO, Callable

from repro.errors import ConfigurationError

#: Frame header: one unsigned big-endian 32-bit payload length.
_HEADER = struct.Struct(">I")

#: First byte of every handshake.  Deliberately a non-ASCII value: a
#: text-protocol client (HTTP, JSON lines) can never start with it, so
#: servers can sniff the stream kind from the first byte.
PROTOCOL_MAGIC = 0xA7

#: Bump when the frame vocabulary changes incompatibly.
PROTOCOL_VERSION = 1

#: Default ceiling on a single frame's declared payload length.  Far
#: beyond any real schedule or occupancy stack (a 512x512 bool grid is
#: 256 KiB) while keeping a garbage header from allocating gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_PREAMBLE = struct.Struct(">BB")


def write_frame(stream: BinaryIO, payload: Any) -> None:
    """Pickle ``payload`` and write it as one length-prefixed frame."""
    data = pickle.dumps(payload)
    stream.write(_HEADER.pack(len(data)))
    stream.write(data)
    stream.flush()


def read_frame(stream: BinaryIO, max_bytes: int = MAX_FRAME_BYTES) -> Any:
    """Read one frame, or None on a clean EOF at a frame boundary.

    A declared payload length above ``max_bytes`` raises
    :class:`ConfigurationError` *before* any allocation: an oversized
    header means a corrupt, truncated-then-resynced, or hostile stream,
    and the right failure mode is a clear error, not an OOM.
    """
    header = stream.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise EOFError("truncated frame header")
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ConfigurationError(
            f"frame declares a {length}-byte payload, above the "
            f"{max_bytes}-byte limit — corrupt or non-protocol stream"
        )
    data = stream.read(length)
    if len(data) < length:
        raise EOFError("truncated frame payload")
    return pickle.loads(data)


def write_handshake(stream: BinaryIO, payload: Any) -> None:
    """Open a frame stream: magic byte, version byte, handshake frame."""
    stream.write(_PREAMBLE.pack(PROTOCOL_MAGIC, PROTOCOL_VERSION))
    write_frame(stream, payload)


def read_handshake(stream: BinaryIO, max_bytes: int = MAX_FRAME_BYTES) -> Any:
    """Validate the preamble and return the handshake payload.

    Returns ``None`` on a clean EOF before any byte (a peer that
    connected and left).  A wrong magic byte or an unsupported version
    raises :class:`ConfigurationError` naming what arrived.
    """
    preamble = stream.read(_PREAMBLE.size)
    if not preamble:
        return None
    if len(preamble) < _PREAMBLE.size:
        raise EOFError("truncated handshake preamble")
    magic, version = _PREAMBLE.unpack(preamble)
    if magic != PROTOCOL_MAGIC:
        raise ConfigurationError(
            f"bad handshake magic 0x{magic:02X} (expected "
            f"0x{PROTOCOL_MAGIC:02X}) — not a repro frame stream"
        )
    if version != PROTOCOL_VERSION:
        raise ConfigurationError(
            f"unsupported protocol version {version} "
            f"(this side speaks {PROTOCOL_VERSION})"
        )
    return read_frame(stream, max_bytes=max_bytes)


def parse_hostport(text: str) -> tuple[str, int]:
    """Parse ``"host:port"`` into its parts (shared by worker and CLI).

    The split is on the *last* colon, so bracketless IPv6 literals like
    ``::1:7500`` parse as ``("::1", 7500)``.
    """
    host, sep, port_text = text.strip().rpartition(":")
    if not sep or not host:
        raise ConfigurationError(f"expected HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"non-numeric port {port_text!r} in {text!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ConfigurationError(f"port {port} out of range in {text!r}")
    return host, port


def resolve_function(path: str) -> Callable:
    """Import ``"module:qualname"`` back into a callable."""
    module_name, _, qualname = path.partition(":")
    if not module_name or not qualname:
        raise ConfigurationError(f"malformed function path {path!r}")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise ConfigurationError(f"{path!r} does not name a callable")
    return obj


def function_path(fn: Callable) -> str:
    """The import path of a module-level callable (for the handshake)."""
    qualname = getattr(fn, "__qualname__", "")
    module = getattr(fn, "__module__", "")
    if not module or not qualname or "<" in qualname:
        raise ConfigurationError(
            f"distributed dispatch needs a module-level function, got {fn!r}"
        )
    return f"{module}:{qualname}"
