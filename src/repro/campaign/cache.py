"""Disk cache of per-trial results.

Each trial persists as one small JSON file keyed by its content hash
(cell parameters + master seed + seed index + schema version — see
:meth:`repro.campaign.trial.TrialSpec.key`).  Because the key carries
everything that determines the result, re-running a campaign is a pure
cache hit, while any spec change (fill, algorithm, loss model, seed)
misses exactly the trials it invalidates.  Extending a grid reuses all
previously executed cells.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.campaign.trial import TrialResult, TrialSpec

#: Default cache root, overridable via the environment.
DEFAULT_CACHE_DIR = ".repro-cache/campaigns"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


class TrialCache:
    """Content-addressed store of :class:`TrialResult` objects."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, trial: TrialSpec) -> TrialResult | None:
        """The cached result for ``trial``, or None on a miss."""
        path = self._path(trial.key())
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if data.get("key") != trial.key():
            self.misses += 1
            return None
        self.hits += 1
        return TrialResult.from_dict(data)

    def put(self, trial: TrialSpec, result: TrialResult) -> Path:
        """Persist ``result`` atomically (write + rename)."""
        path = self._path(trial.key())
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(result.to_dict(), sort_keys=True))
        tmp.replace(path)
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
