"""Parallel experiment-campaign engine.

Declares Monte-Carlo scenario grids (array size x fill x algorithm x
loss model), executes every (cell, seed) trial exactly once with
deterministic ``SeedSequence``-spawned RNG streams, caches per-trial
results on disk, and aggregates into the ``analysis`` table outputs.
See README.md ("Campaign engine") for the spec format and CLI.
"""

from repro.campaign.cache import TrialCache, default_cache_dir
from repro.campaign.engine import (
    CampaignResult,
    CellAggregate,
    ExperimentCampaign,
    aggregate_cell,
    run_campaign,
)
from repro.campaign.executors import (
    CampaignExecutor,
    MultiprocessingExecutor,
    SerialExecutor,
    make_executor,
)
from repro.campaign.observer import (
    CampaignObserver,
    CompositeObserver,
    ConsoleObserver,
    NullObserver,
    RecordingObserver,
)
from repro.campaign.spec import (
    CampaignSpec,
    LossSpec,
    QrmSpec,
    ScenarioCell,
    grid_spec,
    stable_hash,
)
from repro.campaign.trial import TrialResult, TrialSpec, cell_sequence, run_trial

__all__ = [
    "CampaignExecutor",
    "CampaignObserver",
    "CampaignResult",
    "CampaignSpec",
    "CellAggregate",
    "CompositeObserver",
    "ConsoleObserver",
    "ExperimentCampaign",
    "LossSpec",
    "MultiprocessingExecutor",
    "NullObserver",
    "QrmSpec",
    "RecordingObserver",
    "ScenarioCell",
    "SerialExecutor",
    "TrialCache",
    "TrialResult",
    "TrialSpec",
    "aggregate_cell",
    "cell_sequence",
    "default_cache_dir",
    "grid_spec",
    "make_executor",
    "run_campaign",
    "run_trial",
    "stable_hash",
]
