"""Parallel experiment-campaign engine.

Declares Monte-Carlo scenario grids (array size x fill x algorithm x
loss model), executes every (cell, seed) trial exactly once with
deterministic ``SeedSequence``-spawned RNG streams — serially, over a
process pool, through the asyncio executor, or across local/remote
worker processes via the fault-tolerant dispatch fabric — caches
per-trial results on disk, records
resumable JSONL run journals, and aggregates into the ``analysis``
table outputs.  See README.md ("Campaign engine") for the spec format,
the journal format, and the CLI.
"""

from repro.campaign.cache import TrialCache, default_cache_dir
from repro.campaign.dispatch import (
    DistributedExecutor,
    SubprocessWorkerTransport,
    TcpWorkerTransport,
    WorkerSpec,
    WorkerTransport,
    parse_workers,
)
from repro.campaign.engine import (
    CampaignResult,
    CellAggregate,
    ExperimentCampaign,
    aggregate_cell,
    run_campaign,
)
from repro.campaign.executors import (
    EXECUTOR_KINDS,
    AsyncExecutor,
    CampaignExecutor,
    MultiprocessingExecutor,
    SerialExecutor,
    make_executor,
)
from repro.campaign.journal import (
    JOURNAL_SCHEMA_VERSION,
    JournalReplay,
    RunJournal,
    read_journal,
)
from repro.campaign.observer import (
    CampaignObserver,
    CompositeObserver,
    ConsoleObserver,
    InterruptingObserver,
    NullObserver,
    RecordingObserver,
)
from repro.campaign.spec import (
    CampaignSpec,
    LossSpec,
    QrmSpec,
    ScenarioCell,
    grid_spec,
    stable_hash,
)
from repro.campaign.trial import (
    TrialFailure,
    TrialResult,
    TrialSpec,
    cell_sequence,
    run_trial,
    run_trial_guarded,
    use_scheduler_factory,
)

__all__ = [
    "EXECUTOR_KINDS",
    "JOURNAL_SCHEMA_VERSION",
    "AsyncExecutor",
    "CampaignExecutor",
    "CampaignObserver",
    "CampaignResult",
    "CampaignSpec",
    "CellAggregate",
    "CompositeObserver",
    "ConsoleObserver",
    "DistributedExecutor",
    "ExperimentCampaign",
    "InterruptingObserver",
    "JournalReplay",
    "LossSpec",
    "MultiprocessingExecutor",
    "NullObserver",
    "QrmSpec",
    "RecordingObserver",
    "RunJournal",
    "ScenarioCell",
    "SerialExecutor",
    "SubprocessWorkerTransport",
    "TcpWorkerTransport",
    "TrialCache",
    "TrialFailure",
    "TrialResult",
    "TrialSpec",
    "WorkerSpec",
    "WorkerTransport",
    "aggregate_cell",
    "cell_sequence",
    "default_cache_dir",
    "grid_spec",
    "make_executor",
    "parse_workers",
    "read_journal",
    "run_campaign",
    "run_trial",
    "run_trial_guarded",
    "use_scheduler_factory",
    "stable_hash",
]
