"""Declarative campaign specifications and grid expansion.

A :class:`CampaignSpec` names a cartesian grid of scenarios — array
size, target geometry, loading fill fraction, rearrangement algorithm,
and optional atom-loss model — plus the number of seeded trials per
grid cell.  The spec is pure data: it can be hashed stably (for the
on-disk trial cache), serialised to JSON (for the ``repro campaign``
CLI), and expanded into :class:`ScenarioCell` objects that the engine
turns into trials.

Seeding contract
----------------
Per-trial RNG streams derive from ``numpy.random.SeedSequence`` with
entropy ``[master_seed, instance_entropy(cell)]`` where the *instance*
part of a cell deliberately excludes the algorithm and loss model.
Two consequences:

* algorithms compared within one campaign see **identical** loaded
  arrays (a paired design, like the paper's Fig. 7(b) comparison);
* extending a campaign with more seeds, algorithms, or grid cells
  never changes the seeds of the trials that already ran, so the disk
  cache stays valid incrementally.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError

#: Bump to invalidate every cached trial when the metric schema changes.
TRIAL_SCHEMA_VERSION = 3


def stable_hash(payload: Any) -> str:
    """Hex SHA-256 of the canonical JSON rendering of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def stable_entropy(payload: Any) -> int:
    """A 128-bit integer digest usable as ``SeedSequence`` entropy."""
    return int(stable_hash(payload)[:32], 16)


@dataclass(frozen=True)
class LossSpec:
    """Serialisable mirror of :class:`repro.physics.loss.LossModel`."""

    vacuum_lifetime_s: float = 30.0
    loss_per_transfer: float = 2e-3
    loss_per_site: float = 1e-4

    def to_model(self):
        from repro.physics.loss import LossModel

        return LossModel(
            vacuum_lifetime_s=self.vacuum_lifetime_s,
            loss_per_transfer=self.loss_per_transfer,
            loss_per_site=self.loss_per_site,
        )

    def to_dict(self) -> dict[str, float]:
        return {
            "vacuum_lifetime_s": self.vacuum_lifetime_s,
            "loss_per_transfer": self.loss_per_transfer,
            "loss_per_site": self.loss_per_site,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "LossSpec":
        return cls(**dict(data))


@dataclass(frozen=True)
class QrmSpec:
    """Serialisable mirror of :class:`repro.config.QrmParameters`.

    Attaching one to a cell runs that cell's QRM scheduler (and FPGA
    cycle model) with non-default algorithm parameters — the ablation
    study sweeps scan modes, mirror merging, and the ``s_en`` bound this
    way.  ``scan_mode`` is the string value of
    :class:`repro.config.ScanMode` so specs stay plain JSON.
    """

    n_iterations: int = 4
    scan_mode: str = "pipelined"
    merge_mirror_quadrants: bool = True
    enable_repair: bool = False
    scan_limit: int | None = None

    def to_params(self):
        from repro.config import QrmParameters, ScanMode

        return QrmParameters(
            n_iterations=self.n_iterations,
            scan_mode=ScanMode(self.scan_mode),
            merge_mirror_quadrants=self.merge_mirror_quadrants,
            enable_repair=self.enable_repair,
            scan_limit=self.scan_limit,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_iterations": self.n_iterations,
            "scan_mode": self.scan_mode,
            "merge_mirror_quadrants": self.merge_mirror_quadrants,
            "enable_repair": self.enable_repair,
            "scan_limit": self.scan_limit,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QrmSpec":
        return cls(**dict(data))

    def label(self) -> str:
        parts = [self.scan_mode]
        if not self.merge_mirror_quadrants:
            parts.append("split")
        if self.scan_limit is not None:
            parts.append(f"s_en={self.scan_limit}")
        if self.enable_repair:
            parts.append("repair")
        return "+".join(parts)


def _freeze(value: Any) -> Any:
    """Recursively convert lists to tuples so params stay hashable."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze` for JSON rendering."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class MaskSpec:
    """Serialisable recipe for a :class:`repro.lattice.mask.TargetMask`.

    A campaign axis value: ``kind`` names a mask family and ``params``
    carries that family's knobs as sorted ``(name, value)`` pairs
    (tuples, so cells stay hashable).  The recipe is size-relative:
    :meth:`build` instantiates it for a concrete array size, which lets
    one spec sweep cleanly across a campaign's ``sizes`` axis.

    Families: ``ring`` (annulus; ``outer``/``inner`` radii, outer
    defaults to ``0.35 * size``), ``triangular`` (offset-row lattice;
    ``pitch``/``margin``), ``sparse`` (explicit ``sites`` list of
    ``(row, col)`` pairs), and ``rect`` (centred rectangle;
    ``height``/``width`` — the paper's special case, mainly for
    equivalence tests).
    """

    kind: str
    params: tuple[tuple[str, Any], ...] = ()

    KINDS = ("rect", "ring", "triangular", "sparse")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ConfigurationError(
                f"unknown mask kind {self.kind!r}; known: {', '.join(self.KINDS)}"
            )
        object.__setattr__(
            self,
            "params",
            tuple(sorted((str(key), _freeze(value)) for key, value in self.params)),
        )

    @classmethod
    def of(cls, kind: str, **params: Any) -> "MaskSpec":
        """Keyword-argument convenience constructor."""
        return cls(kind=kind, params=tuple(params.items()))

    @classmethod
    def parse(cls, text: str) -> "MaskSpec":
        """Parse a CLI mask string: ``kind[:key=value,...]``.

        Examples: ``ring``, ``ring:outer=5,inner=2.5``,
        ``triangular:pitch=2,margin=1``, ``sparse:sites=1-2+3-4``
        (``row-col`` pairs joined by ``+``), ``rect:height=4,width=6``.
        """
        kind, _, rest = text.partition(":")
        params: dict[str, Any] = {}
        if rest:
            for item in rest.split(","):
                key, sep, raw = item.partition("=")
                if not sep or not key:
                    raise ConfigurationError(
                        f"mask parameter {item!r} is not of the form key=value"
                    )
                if key == "sites":
                    sites = []
                    for pair in raw.split("+"):
                        row, sep, col = pair.partition("-")
                        if not sep:
                            raise ConfigurationError(
                                f"mask site {pair!r} is not of the form row-col"
                            )
                        sites.append((int(row), int(col)))
                    params[key] = tuple(sites)
                else:
                    try:
                        params[key] = int(raw)
                    except ValueError:
                        try:
                            params[key] = float(raw)
                        except ValueError:
                            raise ConfigurationError(
                                f"mask parameter {key}={raw!r} is not numeric"
                            ) from None
        return cls.of(kind, **params)

    def param_dict(self) -> dict[str, Any]:
        return {key: value for key, value in self.params}

    def build(self, size: int):
        """Instantiate the recipe as a ``TargetMask`` for a size x size array."""
        from repro.lattice.mask import TargetMask

        params = self.param_dict()
        if self.kind == "ring":
            outer = float(params.get("outer", max(1.0, size * 0.35)))
            inner = float(params.get("inner", 0.0))
            return TargetMask.ring(size, size, outer, inner)
        if self.kind == "triangular":
            return TargetMask.triangular_lattice(
                size,
                size,
                pitch=int(params.get("pitch", 2)),
                margin=int(params.get("margin", 1)),
            )
        if self.kind == "sparse":
            sites = params.get("sites")
            if not sites:
                raise ConfigurationError(
                    "a sparse mask needs a non-empty 'sites' parameter"
                )
            return TargetMask.sparse_sites(
                size, size, [(int(row), int(col)) for row, col in sites]
            )
        height = int(params.get("height", max(2, size // 2)))
        width = int(params.get("width", height))
        return TargetMask.rect(size, size, height, width)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "params": {key: _thaw(value) for key, value in self.params},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MaskSpec":
        return cls(
            kind=data["kind"],
            params=tuple(dict(data.get("params", {})).items()),
        )

    def label(self) -> str:
        if not self.params:
            return self.kind
        rendered = []
        for key, value in self.params:
            if key == "sites":
                rendered.append(f"sites={len(value)}")
            else:
                rendered.append(f"{key}={value:g}" if isinstance(value, float)
                                else f"{key}={value}")
        return f"{self.kind}({','.join(rendered)})"


@dataclass(frozen=True)
class ScenarioCell:
    """One grid point of a campaign: a fully specified scenario.

    ``fpga`` asks the trial to also run the cycle-level accelerator
    model (only meaningful for the ``qrm`` algorithm); ``timing`` adds
    measured Python wall-clock metrics, which are inherently
    non-deterministic and therefore excluded from both the engine's
    determinism guarantee and the on-disk trial cache (timing cells
    always re-execute).

    ``cycles > 1`` turns the trial into a closed-loop run through
    :mod:`repro.pipeline`: rearrange, apply losses, re-image, repair —
    up to ``cycles`` camera frames per trial, retiring early once
    detection sees a defect-free target.
    """

    algorithm: str = "qrm"
    size: int = 20
    target: int | None = None
    fill: float = 0.5
    loss: LossSpec | None = None
    fpga: bool = False
    timing: bool = False
    qrm: QrmSpec | None = None
    cycles: int = 1
    mask: MaskSpec | None = None
    loading: str = "uniform"

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"size must be positive, got {self.size}")
        if not 0.0 <= self.fill <= 1.0:
            raise ConfigurationError(f"fill must be in [0, 1], got {self.fill}")
        if self.cycles < 1:
            raise ConfigurationError(f"cycles must be >= 1, got {self.cycles}")
        if self.mask is not None and self.target is not None:
            raise ConfigurationError(
                "a cell takes either a rectangular 'target' size or a "
                "'mask' recipe, not both"
            )
        if self.loading != "uniform":
            from repro.lattice.loading import LOADERS

            if self.loading not in LOADERS:
                raise ConfigurationError(
                    f"unknown loading model {self.loading!r}; "
                    f"known: {', '.join(sorted(LOADERS))}"
                )
        if self.fpga and self.algorithm != "qrm":
            raise ConfigurationError(
                "the FPGA cycle model only implements the 'qrm' algorithm; "
                f"cell requested fpga metrics for '{self.algorithm}'"
            )
        if self.qrm is not None and self.algorithm != "qrm":
            raise ConfigurationError(
                "qrm parameter overrides only apply to the 'qrm' algorithm; "
                f"cell requested them for '{self.algorithm}'"
            )

    def instance_key(self) -> dict[str, Any]:
        """The part of the cell that defines the random *instance*.

        Excludes the algorithm and loss model so that every algorithm
        in a campaign is evaluated on identical loaded arrays.  The
        mask and loading keys appear only when non-default, so every
        pre-mask instance key (and thus every cached trial's seed
        stream) is untouched by the geometry generalisation.
        """
        key: dict[str, Any] = {
            "size": self.size,
            "target": self.target,
            "fill": self.fill,
        }
        if self.mask is not None:
            key["mask"] = self.mask.to_dict()
        if self.loading != "uniform":
            key["loading"] = self.loading
        return key

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "algorithm": self.algorithm,
            "size": self.size,
            "target": self.target,
            "fill": self.fill,
            "loss": self.loss.to_dict() if self.loss is not None else None,
            "fpga": self.fpga,
            "timing": self.timing,
            "qrm": self.qrm.to_dict() if self.qrm is not None else None,
            "cycles": self.cycles,
        }
        # Omitted at their defaults: rectangle cells keep byte-identical
        # dicts (and trial cache keys) across the mask generalisation.
        if self.mask is not None:
            payload["mask"] = self.mask.to_dict()
        if self.loading != "uniform":
            payload["loading"] = self.loading
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioCell":
        payload = dict(data)
        loss = payload.get("loss")
        if loss is not None:
            payload["loss"] = LossSpec.from_dict(loss)
        qrm = payload.get("qrm")
        if qrm is not None:
            payload["qrm"] = QrmSpec.from_dict(qrm)
        mask = payload.get("mask")
        if mask is not None:
            payload["mask"] = MaskSpec.from_dict(mask)
        return cls(**payload)

    def label(self) -> str:
        parts = [self.algorithm, f"{self.size}x{self.size}", f"fill={self.fill:g}"]
        if self.target is not None:
            parts.insert(2, f"target={self.target}")
        if self.mask is not None:
            parts.insert(2, self.mask.label())
        if self.loading != "uniform":
            parts.append(f"loading={self.loading}")
        if self.qrm is not None:
            parts.append(self.qrm.label())
        if self.loss is not None:
            parts.append("loss")
        if self.cycles > 1:
            parts.append(f"cycles={self.cycles}")
        return " ".join(parts)


@dataclass(frozen=True)
class CampaignSpec:
    """A named cartesian scenario grid plus its trial count and seed.

    The grid expands in declared axis order — algorithms outermost,
    then sizes, fills, and loss models — so the row order of every
    aggregate table is deterministic.
    """

    name: str
    algorithms: tuple[str, ...] = ("qrm",)
    sizes: tuple[int, ...] = (20,)
    fills: tuple[float, ...] = (0.5,)
    targets: tuple[int | None, ...] = (None,)
    loss_models: tuple[LossSpec | None, ...] = (None,)
    masks: tuple[MaskSpec | None, ...] = (None,)
    loading: str = "uniform"
    n_seeds: int = 1
    master_seed: int = 0
    fpga: bool = False
    timing: bool = False
    cycles: int = 1
    extra_cells: tuple[ScenarioCell, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a campaign needs a non-empty name")
        if self.n_seeds < 0:
            raise ConfigurationError(f"n_seeds must be >= 0, got {self.n_seeds}")
        if self.cycles < 1:
            raise ConfigurationError(f"cycles must be >= 1, got {self.cycles}")

    def expand(self) -> list[ScenarioCell]:
        """Expand the grid into scenario cells (may be empty).

        The ``targets`` and ``masks`` axes merge into one geometry axis
        (a mask already *is* a target).  A ``None`` entry in ``masks``
        stands for "the rectangular ``targets`` axis"; non-``None``
        entries add one masked geometry each.  So ``masks=(ring,)``
        replaces the rectangle leg outright, ``masks=(None, ring)``
        runs both, and the default ``masks=(None,)`` expands to exactly
        the pre-mask grid, cell for cell.
        """
        geometries: list[tuple[int | None, MaskSpec | None]] = []
        if None in self.masks:
            geometries.extend((target, None) for target in self.targets)
        geometries.extend(
            (None, mask) for mask in self.masks if mask is not None
        )
        cells = [
            ScenarioCell(
                algorithm=algorithm,
                size=size,
                target=target,
                fill=fill,
                loss=loss,
                fpga=self.fpga and algorithm == "qrm",
                timing=self.timing,
                cycles=self.cycles,
                mask=mask,
                loading=self.loading,
            )
            for algorithm, size, (target, mask), fill, loss in itertools.product(
                self.algorithms,
                self.sizes,
                geometries,
                self.fills,
                self.loss_models,
            )
        ]
        cells.extend(self.extra_cells)
        return cells

    @property
    def n_cells(self) -> int:
        return len(self.expand())

    @property
    def n_trials(self) -> int:
        return self.n_cells * self.n_seeds

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "algorithms": list(self.algorithms),
            "sizes": list(self.sizes),
            "fills": list(self.fills),
            "targets": list(self.targets),
            "loss_models": [
                loss.to_dict() if loss is not None else None
                for loss in self.loss_models
            ],
            "n_seeds": self.n_seeds,
            "master_seed": self.master_seed,
            "fpga": self.fpga,
            "timing": self.timing,
            "cycles": self.cycles,
            "extra_cells": [cell.to_dict() for cell in self.extra_cells],
        }
        # Omitted at their defaults so pre-mask specs keep their hashes.
        if self.masks != (None,):
            payload["masks"] = [
                mask.to_dict() if mask is not None else None
                for mask in self.masks
            ]
        if self.loading != "uniform":
            payload["loading"] = self.loading
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        payload = dict(data)
        for axis in ("algorithms", "sizes", "fills", "targets"):
            if axis in payload:
                payload[axis] = tuple(payload[axis])
        if "loss_models" in payload:
            payload["loss_models"] = tuple(
                LossSpec.from_dict(loss) if loss is not None else None
                for loss in payload["loss_models"]
            )
        if "masks" in payload:
            payload["masks"] = tuple(
                MaskSpec.from_dict(mask) if mask is not None else None
                for mask in payload["masks"]
            )
        if "extra_cells" in payload:
            payload["extra_cells"] = tuple(
                ScenarioCell.from_dict(cell) for cell in payload["extra_cells"]
            )
        return cls(**payload)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    def spec_hash(self) -> str:
        """Stable digest of everything that affects campaign results."""
        payload = self.to_dict()
        payload["version"] = TRIAL_SCHEMA_VERSION
        return stable_hash(payload)[:16]


def grid_spec(
    name: str,
    algorithms: Iterable[str] = ("qrm",),
    sizes: Iterable[int] = (20,),
    fills: Iterable[float] = (0.5,),
    n_seeds: int = 1,
    master_seed: int = 0,
    loss_models: Sequence[LossSpec | None] = (None,),
    **kwargs: Any,
) -> CampaignSpec:
    """Convenience constructor coercing iterables to tuples."""
    return CampaignSpec(
        name=name,
        algorithms=tuple(algorithms),
        sizes=tuple(sizes),
        fills=tuple(fills),
        n_seeds=n_seeds,
        master_seed=master_seed,
        loss_models=tuple(loss_models),
        **kwargs,
    )
