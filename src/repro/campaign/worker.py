"""Subprocess worker endpoint for distributed trial dispatch.

``python -m repro.campaign.worker`` speaks the length-prefixed pickle
frame protocol of :mod:`repro.campaign.protocol` over stdin/stdout:

* the stream opens with the magic/version handshake whose payload names
  the work function as an import path (``"module:qualname"``, e.g.
  ``"repro.campaign.trial:run_trial"``);
* every following inbound frame is one ``(index, item)`` work unit;
* every outbound frame is ``("ok", index, result)`` or
  ``("error", index, message)``;
* EOF on stdin ends the worker.

The worker never lets user code write to the frame stream: ``sys.stdout``
is rebound to stderr while serving, so a chatty trial function cannot
corrupt the protocol.  :mod:`repro.campaign.dispatch` is the client side.
"""

from __future__ import annotations

import contextlib
import sys
from typing import BinaryIO

from repro.campaign.protocol import (
    read_frame,
    read_handshake,
    resolve_function,
    write_frame,
)


def serve(stdin: BinaryIO, stdout: BinaryIO) -> int:
    """Run the worker loop until EOF; returns the number of work units."""
    handshake = read_handshake(stdin)
    if handshake is None:
        return 0
    fn = resolve_function(handshake["fn"])
    served = 0
    while True:
        frame = read_frame(stdin)
        if frame is None:
            return served
        index, item = frame
        try:
            result = fn(item)
        except Exception as exc:  # forwarded, not fatal to the worker
            write_frame(stdout, ("error", index, f"{type(exc).__name__}: {exc}"))
        else:
            write_frame(stdout, ("ok", index, result))
        served += 1


def main() -> int:
    stdout = sys.stdout.buffer
    with contextlib.redirect_stdout(sys.stderr):
        serve(sys.stdin.buffer, stdout)
    return 0


if __name__ == "__main__":
    sys.exit(main())
