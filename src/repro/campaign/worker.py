"""Worker endpoint for distributed trial dispatch.

``python -m repro.campaign.worker`` (or ``repro worker``) speaks the
length-prefixed pickle frame protocol of :mod:`repro.campaign.protocol`
— over stdin/stdout by default, or as a TCP daemon with ``--listen
HOST:PORT`` (what ``repro campaign --executor distributed`` dials).

Each connection (or the stdio stream):

* opens with the magic/version handshake whose payload names the work
  function as an import path (``"module:qualname"``, e.g.
  ``"repro.campaign.trial:run_trial"``).  Resolution is per-connection,
  so one daemon serves campaigns with different work functions back to
  back;
* every following inbound frame is one ``(index, item)`` work unit or a
  ``("ping", token)`` liveness probe;
* outbound frames are ``("ok", index, result)``, ``("error", index,
  message)`` — the message carries a traceback tail so remote failures
  stay debuggable — or ``("pong", token, None)``;
* EOF on the stream ends the session; ``--listen`` mode then accepts
  the next connection (connections are served sequentially — run one
  daemon per slot for parallelism on one host).

Pings are answered from a reader thread *while a work unit computes*,
which is what lets the dispatch layer distinguish a busy worker (pongs
keep arriving) from a dead or unreachable one (silence past the
deadline).

The worker never lets user code write to the frame stream: ``sys.stdout``
is rebound to stderr while serving, so a chatty trial function cannot
corrupt the protocol.  :mod:`repro.campaign.dispatch` is the client side.
"""

from __future__ import annotations

import argparse
import contextlib
import queue
import socket
import sys
import threading
from typing import BinaryIO, Callable

from repro.campaign.protocol import (
    parse_hostport,
    read_frame,
    read_handshake,
    resolve_function,
    write_frame,
)
from repro.errors import ConfigurationError, format_error


def serve(stdin: BinaryIO, stdout: BinaryIO) -> int:
    """Run one worker session until EOF; returns the number of work units.

    A reader thread pulls frames off ``stdin`` and answers pings
    immediately (under a write lock shared with the compute loop), so
    liveness probes are served even while a unit is mid-computation.
    Work units execute in the calling thread, in arrival order.
    """
    handshake = read_handshake(stdin)
    if handshake is None:
        return 0
    fn = resolve_function(handshake["fn"])
    write_lock = threading.Lock()
    work: queue.SimpleQueue = queue.SimpleQueue()
    reader_error: list[BaseException] = []

    def read_loop() -> None:
        try:
            while True:
                frame = read_frame(stdin)
                if frame is None:
                    return
                if isinstance(frame, tuple) and frame and frame[0] == "ping":
                    with write_lock:
                        write_frame(stdout, ("pong", frame[1], None))
                    continue
                work.put(frame)
        except BaseException as exc:  # re-raised on the serving thread
            reader_error.append(exc)
        finally:
            work.put(None)

    reader = threading.Thread(target=read_loop, name="worker-reader", daemon=True)
    reader.start()
    served = 0
    while True:
        unit = work.get()
        if unit is None:
            break
        index, item = unit
        try:
            result = fn(item)
        except Exception as exc:  # forwarded, not fatal to the worker
            with write_lock:
                write_frame(stdout, ("error", index, format_error(exc)))
        else:
            with write_lock:
                write_frame(stdout, ("ok", index, result))
        served += 1
    reader.join()
    if reader_error:
        raise reader_error[0]
    return served


def serve_connections(
    listener: socket.socket,
    max_connections: int | None = None,
    log: Callable[[str], None] | None = None,
) -> int:
    """Accept connections sequentially, serving each to EOF.

    A connection that fails mid-session (garbage handshake, truncated
    stream, reset) is logged and dropped; the daemon stays up for the
    next one.  Returns the number of connections served (bounded by
    ``max_connections`` when given — mainly for tests).
    """
    connections = 0
    while max_connections is None or connections < max_connections:
        try:
            conn, peer = listener.accept()
        except OSError:
            break
        with conn:
            stdin = conn.makefile("rb")
            stdout = conn.makefile("wb")
            try:
                units = serve(stdin, stdout)
                if log is not None:
                    log(f"served {units} units for {peer[0]}:{peer[1]}")
            except (ConfigurationError, EOFError, OSError, ValueError) as exc:
                if log is not None:
                    log(f"connection from {peer[0]}:{peer[1]} failed: {exc}")
            finally:
                for stream in (stdin, stdout):
                    try:
                        stream.close()
                    except OSError:
                        pass
        connections += 1
    return connections


def run_worker(
    listen: str | None = None,
    max_connections: int | None = None,
    quiet: bool = False,
) -> int:
    """Entry point shared by ``python -m`` and the ``repro worker`` CLI."""
    log = (
        None
        if quiet
        else lambda message: print(f"[worker] {message}", file=sys.stderr, flush=True)
    )
    if listen is None:
        stdout = sys.stdout.buffer
        with contextlib.redirect_stdout(sys.stderr):
            serve(sys.stdin.buffer, stdout)
        return 0
    host, port = parse_hostport(listen)
    listener = socket.create_server((host, port))
    bound_host, bound_port = listener.getsockname()[:2]
    if log is not None:
        log(f"listening on {bound_host}:{bound_port}")
    try:
        with contextlib.redirect_stdout(sys.stderr):
            serve_connections(listener, max_connections=max_connections, log=log)
    except KeyboardInterrupt:
        return 130
    finally:
        listener.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description=(
            "Serve distributed campaign trials: over stdin/stdout by "
            "default, or as a TCP daemon with --listen HOST:PORT."
        ),
    )
    parser.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="serve TCP connections on this address instead of "
        "stdin/stdout (port 0 picks a free port; the bound "
        "address is announced on stderr)",
    )
    parser.add_argument(
        "--max-connections",
        type=int,
        default=None,
        metavar="N",
        help="exit after serving N connections (default: serve forever)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress stderr status lines"
    )
    args = parser.parse_args(argv)
    return run_worker(
        listen=args.listen,
        max_connections=args.max_connections,
        quiet=args.quiet,
    )


if __name__ == "__main__":
    sys.exit(main())
