"""Pluggable trial executors.

The engine hands an executor a picklable function and a list of items;
the executor yields ``(index, result)`` pairs in whatever order the
trials finish.  The engine re-keys results, so completion order never
affects aggregates — which is what lets the serial, multiprocessing,
and async executors produce bit-identical campaign results.

Three in-process families live here:

* :class:`SerialExecutor` — submission order, no concurrency;
* :class:`MultiprocessingExecutor` — ``multiprocessing.Pool`` fan-out;
* :class:`AsyncExecutor` — asyncio-driven process-pool fan-out with a
  bounded number of in-flight trials (backpressure) and cooperative
  cancellation when the consumer stops iterating.

Multi-host dispatch lives in :mod:`repro.campaign.dispatch` behind the
same protocol.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import multiprocessing
import os
from dataclasses import dataclass
from typing import Any, AsyncIterator, Callable, Iterator, Protocol, Sequence, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")

#: Executor kinds accepted by :func:`make_executor` and the CLI.
EXECUTOR_KINDS = ("serial", "process", "async", "service", "distributed")


class CampaignExecutor(Protocol):
    """Anything that can map a function over trial specs."""

    def run(
        self, fn: Callable[[T], Any], items: Sequence[T]
    ) -> Iterator[tuple[int, Any]]:
        """Yield ``(index, fn(items[index]))`` in completion order."""
        ...


class SerialExecutor:
    """In-process execution, in submission order."""

    def run(
        self, fn: Callable[[T], Any], items: Sequence[T]
    ) -> Iterator[tuple[int, Any]]:
        for index, item in enumerate(items):
            yield index, fn(item)


def _apply_indexed(payload: tuple[Callable, int, Any]) -> tuple[int, Any]:
    fn, index, item = payload
    return index, fn(item)


@dataclass
class MultiprocessingExecutor:
    """``multiprocessing.Pool``-backed execution.

    Parameters
    ----------
    workers:
        Pool size; defaults to the CPU count.  Capped at the number of
        items so tiny campaigns don't fork idle processes.
    chunksize:
        Trials handed to a worker per dispatch.  Larger chunks amortise
        IPC for cheap trials; 1 balances best for heavy ones.
    start_method:
        Forwarded to ``multiprocessing.get_context`` (None = platform
        default).
    """

    workers: int | None = None
    chunksize: int = 1
    start_method: str | None = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.chunksize < 1:
            raise ConfigurationError(f"chunksize must be >= 1, got {self.chunksize}")

    def run(
        self, fn: Callable[[T], Any], items: Sequence[T]
    ) -> Iterator[tuple[int, Any]]:
        items = list(items)
        if not items:
            return
        workers = self.workers or os.cpu_count() or 1
        workers = min(workers, len(items))
        if workers == 1:
            yield from SerialExecutor().run(fn, items)
            return
        context = multiprocessing.get_context(self.start_method)
        payloads = [(fn, index, item) for index, item in enumerate(items)]
        with context.Pool(processes=workers) as pool:
            yield from pool.imap_unordered(
                _apply_indexed, payloads, chunksize=self.chunksize
            )


@dataclass
class AsyncExecutor:
    """``asyncio``-driven process-pool fan-out with backpressure.

    Trials run in a ``concurrent.futures.ProcessPoolExecutor``; an
    asyncio event loop owns submission and completion.  At most
    ``max_in_flight`` trials are submitted to the pool at any moment (a
    semaphore provides the backpressure bound), results are yielded in
    completion order, and closing the result iterator early — or an
    exception escaping a trial — cancels every outstanding submission
    and shuts the pool down.

    The synchronous :meth:`run` drives a private event loop so the
    executor slots behind the same :class:`CampaignExecutor` protocol
    as the serial and multiprocessing executors; async callers can
    consume :meth:`arun` directly from their own loop.

    Parameters
    ----------
    workers:
        Process-pool size; defaults to the CPU count, capped at the
        number of items.
    max_in_flight:
        Bound on concurrently submitted trials; defaults to twice the
        worker count, which keeps every worker busy without flooding
        the pool queue when trials are produced faster than they run.
    start_method:
        Forwarded to ``multiprocessing.get_context`` (None = platform
        default).
    """

    workers: int | None = None
    max_in_flight: int | None = None
    start_method: str | None = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ConfigurationError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )

    def _pool_size(self, n_items: int) -> int:
        workers = self.workers or os.cpu_count() or 1
        return max(1, min(workers, n_items))

    async def arun(
        self, fn: Callable[[T], Any], items: Sequence[T]
    ) -> AsyncIterator[tuple[int, Any]]:
        """Async variant of :meth:`run` for callers that own a loop."""
        items = list(items)
        if not items:
            return
        workers = self._pool_size(len(items))
        bound = self.max_in_flight or 2 * workers
        loop = asyncio.get_running_loop()
        context = multiprocessing.get_context(self.start_method)
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        )
        semaphore = asyncio.Semaphore(bound)

        async def submit(index: int, item: T) -> tuple[int, Any]:
            async with semaphore:
                return index, await loop.run_in_executor(pool, fn, item)

        tasks = [loop.create_task(submit(i, item)) for i, item in enumerate(items)]
        try:
            for future in asyncio.as_completed(tasks):
                yield await future
        finally:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            pool.shutdown(wait=True, cancel_futures=True)

    def run(
        self, fn: Callable[[T], Any], items: Sequence[T]
    ) -> Iterator[tuple[int, Any]]:
        items = list(items)
        if not items:
            return
        if self._pool_size(len(items)) == 1:
            yield from SerialExecutor().run(fn, items)
            return
        loop = asyncio.new_event_loop()
        stream = self.arun(fn, items)
        try:
            while True:
                try:
                    yield loop.run_until_complete(stream.__anext__())
                except StopAsyncIteration:
                    break
        finally:
            loop.run_until_complete(stream.aclose())
            loop.close()


def make_executor(
    workers: int | str | None,
    chunksize: int = 1,
    kind: str = "process",
    service_addr: str | tuple[str, int] | None = None,
) -> CampaignExecutor:
    """CLI helper mapping ``--workers``/``--executor`` to an executor.

    ``kind`` is one of :data:`EXECUTOR_KINDS`.  For the default
    ``"process"`` kind, 0/1/None workers degrade to the serial executor
    (the pre-async CLI behaviour); ``"async"`` always builds an
    :class:`AsyncExecutor`, whose worker count defaults to the CPU
    count when ``workers`` is None; ``"service"`` runs trials as
    clients of a scheduling server (``repro serve``) and requires
    ``service_addr``; ``"distributed"`` fans trials out across worker
    endpoints — ``workers`` is then ``"host:port[,host:port...]"``
    naming running ``repro worker --listen`` daemons, or a count of
    local subprocess workers to launch.
    """
    if kind not in EXECUTOR_KINDS:
        raise ConfigurationError(
            f"unknown executor kind '{kind}'; choose from {EXECUTOR_KINDS}"
        )
    if kind == "distributed":
        if service_addr is not None:
            raise ConfigurationError(
                "--service-addr only applies to the service executor, "
                "not 'distributed'"
            )
        from repro.campaign.dispatch import DistributedExecutor, parse_workers

        return DistributedExecutor(workers=parse_workers(workers))
    if isinstance(workers, str):
        raise ConfigurationError(
            f"--workers {workers!r} (worker endpoints) only applies to "
            f"the distributed executor, not '{kind}'"
        )
    if kind == "service":
        if service_addr is None:
            raise ConfigurationError(
                "the service executor needs the server address "
                "(--service-addr host:port)"
            )
        from repro.service.executor import ServiceExecutor

        return ServiceExecutor(service_addr)
    if service_addr is not None:
        raise ConfigurationError(
            f"--service-addr only applies to the service executor, "
            f"not '{kind}'"
        )
    if kind == "serial":
        return SerialExecutor()
    if kind == "async":
        return AsyncExecutor(workers=workers)
    if workers is None or workers <= 1:
        return SerialExecutor()
    return MultiprocessingExecutor(workers=workers, chunksize=chunksize)
